#!/usr/bin/env bash
# Offline CI gate: build, test, and lint the fault-isolated flow crates.
#
# The workspace has zero external dependencies, so everything here must
# pass with --offline on a bare toolchain. The clippy stage denies
# unwrap/expect in the hot flow path (smart-core, smart-gp) — failures
# there must be typed errors, not panics. clippy.toml allows both in
# #[cfg(test)] code.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --workspace --release --offline

# The whole suite runs twice: once serial, once with the exploration
# sweep fanned across 4 workers (explore/explore_with read SMART_WORKERS
# from the environment). Any test that diverges between the two runs is a
# determinism bug in the parallel runtime (DESIGN.md §9).
echo "== test (workspace, SMART_WORKERS=1) =="
SMART_WORKERS=1 cargo test -q --offline --workspace

echo "== test (workspace, SMART_WORKERS=4) =="
SMART_WORKERS=4 cargo test -q --offline --workspace

echo "== explore_scaling smoke (parallel + memoized sweeps) =="
cargo run -q --offline --release -p smart-bench --bin explore_scaling -- --smoke

# Smoke-sized GP kernel bench: exercises the sparse-vs-dense trajectory
# assertion and the warm-start ladder end to end. Writes to target/ci so
# the committed full-run BENCH_gp.json is never clobbered by smoke data.
echo "== gp_kernel smoke (sparse kernel parity + warm-start ladder) =="
mkdir -p target/ci
cargo run -q --offline --release -p smart-bench --bin gp_kernel -- \
  --smoke --out target/ci/BENCH_gp.json

# The trace example runs a traced exploration (cold + warm out of the
# sizing cache) and prints the stable JSON export. The bytes on stdout
# must not depend on how the sweep was scheduled: byte-compare the
# SMART_WORKERS=1 and SMART_WORKERS=4 exports (DESIGN.md §11).
echo "== trace determinism (stable export, 1 vs 4 workers) =="
mkdir -p target/ci
SMART_WORKERS=1 cargo run -q --offline --release --example trace \
  > target/ci/trace-w1.json 2>/dev/null
SMART_WORKERS=4 cargo run -q --offline --release --example trace \
  > target/ci/trace-w4.json 2>/dev/null
cmp target/ci/trace-w1.json target/ci/trace-w4.json || {
  echo "trace export diverged between SMART_WORKERS=1 and =4" >&2
  exit 1
}

# Chaos determinism: a fixed-seed fault-injection sweep must produce
# byte-identical outcomes no matter how the sweep was scheduled — fault
# decisions are pure functions of (seed, site, candidate), never of
# worker interleaving (DESIGN.md §13).
echo "== chaos smoke (fixed-seed fault injection, 1 vs 4 workers) =="
SMART_WORKERS=1 cargo run -q --offline --release --example chaos \
  > target/ci/chaos-w1.txt
SMART_WORKERS=4 cargo run -q --offline --release --example chaos \
  > target/ci/chaos-w4.txt
cmp target/ci/chaos-w1.txt target/ci/chaos-w4.txt || {
  echo "chaos outcomes diverged between SMART_WORKERS=1 and =4" >&2
  exit 1
}

# Interrupt/resume: a sweep killed by a budget and resumed from its
# checkpoint must be byte-identical to an uninterrupted sweep, and the
# smoke-sized robustness bench replays the survival/salvage study
# (writes to target/ci so the committed full-run BENCH_robustness.json
# is never clobbered).
echo "== chaos interrupt/resume byte-identity =="
cargo test -q --offline -p smart-core --test chaos_invariants \
  interrupted_then_resumed_sweep_is_byte_identical_to_uninterrupted

echo "== robustness smoke (chaos survival/salvage + corner/yield sweep) =="
cargo run -q --offline --release -p smart-bench --bin robustness -- \
  --smoke --out target/ci/BENCH_robustness.json
grep -q '"corner_yield"' target/ci/BENCH_robustness.json || {
  echo "robustness smoke output is missing the corner_yield section" >&2
  exit 1
}
grep -q '"serve"' target/ci/BENCH_robustness.json || {
  echo "robustness smoke output is missing the serve section" >&2
  exit 1
}

# Multi-corner robust sizing: the corners example sizes once against the
# slow/typical/fast set, self-checks feasibility at every corner plus the
# soundness bound in-process, then prints a bit-exact exploration table.
# Worker count must never leak into robust sizing (DESIGN.md §14).
echo "== corners example (self-checked, byte-identical at 1 vs 4 workers) =="
SMART_WORKERS=1 cargo run -q --offline --release --example corners \
  > target/ci/corners-w1.txt
SMART_WORKERS=4 cargo run -q --offline --release --example corners \
  > target/ci/corners-w4.txt
cmp target/ci/corners-w1.txt target/ci/corners-w4.txt || {
  echo "corners example diverged between SMART_WORKERS=1 and =4" >&2
  exit 1
}

# The database must be lint-clean at Error severity: the example exits
# non-zero on any Error-severity finding across the representative
# database sweep (rule engine + monotonicity dataflow, DESIGN.md §10).
echo "== lint-database (Error severity gates the build) =="
cargo run -q --offline --release --example lint -- --only-dirty

# The database must be certificate-clean: the audit example runs the
# pre-solve static analyzer over every representative macro at a 50%
# margin above its own t* and exits non-zero on any infeasibility
# certificate (an analyzer false positive at that margin). The report
# stream is byte-compared across worker counts — the analysis must not
# depend on scheduling (DESIGN.md §15). The prune-parity differential
# suite itself runs inside both workspace test passes above.
echo "== audit-database (certificate-clean, byte-identical at 1 vs 4 workers) =="
SMART_WORKERS=1 cargo run -q --offline --release --example audit \
  > target/ci/audit-w1.txt
SMART_WORKERS=4 cargo run -q --offline --release --example audit \
  > target/ci/audit-w4.txt
cmp target/ci/audit-w1.txt target/ci/audit-w4.txt || {
  echo "audit reports diverged between SMART_WORKERS=1 and =4" >&2
  exit 1
}

# Serve protocol determinism, end to end through the real binary in
# --script mode: a scripted request mix (sizes, a typed-error row, a
# batch fan-out, an exploration sweep, a cache snapshot) must produce
# byte-identical response streams at any worker count, and a daemon
# warm-booted from the cold run's snapshot (into a different shard
# count) must replay the same work byte-identically — only the stats op
# reports cache state, so it alone is excluded from the warm compare.
# Re-snapshotting from the warm daemon must reproduce the cold snapshot
# file byte-for-byte: restarts are lossless (DESIGN.md §16).
echo "== serve smoke (script mode: 1 vs 4 workers, snapshot warm restart) =="
SERVE=target/ci/serve
mkdir -p "$SERVE"
cat > "$SERVE/requests.ndjson" <<'EOF'
{"op":"size","id":"s1","macro":"mux8:dom","load":20,"delay":320}
{"op":"size","id":"s2","macro":"zd16:domino"}
{"op":"size","id":"s3","macro":"bogus9"}
{"op":"batch","id":"b1","requests":[{"macro":"inc8","delay":400},{"macro":"mux8:dom","load":20,"delay":320},{"macro":"mux4"}]}
{"op":"explore","id":"e1","macro":"mux4","delay":400}
{"op":"snapshot","id":"sn","path":"target/ci/serve/cache.snapshot"}
{"op":"stats","id":"st"}
EOF
SMART_WORKERS=1 target/release/smart-datapath serve \
  --script "$SERVE/requests.ndjson" > "$SERVE/cold-w1.ndjson"
SMART_WORKERS=4 target/release/smart-datapath serve \
  --script "$SERVE/requests.ndjson" > "$SERVE/cold-w4.ndjson"
cmp "$SERVE/cold-w1.ndjson" "$SERVE/cold-w4.ndjson" || {
  echo "serve replies diverged between SMART_WORKERS=1 and =4" >&2
  exit 1
}
cp "$SERVE/cache.snapshot" "$SERVE/cache.cold.snapshot"
for w in 1 4; do
  SMART_WORKERS=$w target/release/smart-datapath serve --shards 3 \
    --restore "$SERVE/cache.cold.snapshot" \
    --script "$SERVE/requests.ndjson" > "$SERVE/warm-w$w.ndjson"
done
cmp "$SERVE/warm-w1.ndjson" "$SERVE/warm-w4.ndjson" || {
  echo "warm serve replies diverged between SMART_WORKERS=1 and =4" >&2
  exit 1
}
grep -v '"op":"stats"' "$SERVE/cold-w1.ndjson" > "$SERVE/cold-work.ndjson"
grep -v '"op":"stats"' "$SERVE/warm-w1.ndjson" > "$SERVE/warm-work.ndjson"
cmp "$SERVE/cold-work.ndjson" "$SERVE/warm-work.ndjson" || {
  echo "warm-restarted serve replies diverged from the cold run" >&2
  exit 1
}
cmp "$SERVE/cache.cold.snapshot" "$SERVE/cache.snapshot" || {
  echo "re-snapshot from the warm daemon diverged from the cold snapshot" >&2
  exit 1
}

echo "== clippy (no unwrap/expect in flow crates, pool/cache included) =="
cargo clippy -q --offline -p smart-core -p smart-gp -p smart-lint -p smart-trace \
  -p smart-sta -p smart-models -p smart-posy -p smart-chaos -p smart-prng \
  -p smart-audit -p smart-netlist -p smart-sim -p smart-power -p smart-blocks \
  -p smart-macros -p smart-bench -p smart-serve -- \
  -D clippy::unwrap_used -D clippy::expect_used

echo "CI OK"
