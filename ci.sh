#!/usr/bin/env bash
# Offline CI gate: build, test, and lint the fault-isolated flow crates.
#
# The workspace has zero external dependencies, so everything here must
# pass with --offline on a bare toolchain. The clippy stage denies
# unwrap/expect in the hot flow path (smart-core, smart-gp) — failures
# there must be typed errors, not panics. clippy.toml allows both in
# #[cfg(test)] code.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== test (workspace) =="
cargo test -q --offline --workspace

echo "== clippy (no unwrap/expect in flow crates) =="
cargo clippy -q --offline -p smart-core -p smart-gp -- \
  -D clippy::unwrap_used -D clippy::expect_used

echo "CI OK"
