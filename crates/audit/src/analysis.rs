//! Interval bound propagation over the log-domain posynomial system, and
//! the machine-checkable infeasibility certificates it emits.
//!
//! # The relaxation
//!
//! A normalized GP constraint is `Σₖ cₖ·∏ⱼ xⱼ^aₖⱼ ≤ 1` with every term
//! positive. In log variables `y = ln x` each *term* is `exp(aₖ·y + ln cₖ)`,
//! and because the terms are positive, each one is individually bounded by
//! the whole body:
//!
//! ```text
//! aₖ·y ≤ ln(1 − Σ const terms) − ln cₖ        (one affine row per term)
//! ```
//!
//! Every row is an exact implication of its constraint — no approximation
//! is introduced — so any bound derived by propagating rows is sound, and
//! any derived *contradiction* (a variable's lower bound above its upper
//! bound, or a constraint whose interval image lies strictly above 1) is a
//! proof of infeasibility.
//!
//! # Order-independence
//!
//! Propagation is Jacobi-style: every round scans all rows against the
//! *previous* round's box and applies, per variable bound, the single
//! strongest proposal (ties broken by constraint label). The fixpoint and
//! every intermediate round are therefore independent of constraint
//! order — the property the 32-shuffle reorder-invariance suite pins.
//!
//! # Certificates
//!
//! Each derived bound carries its *provenance*: the set of constraint
//! indices whose rows participated in the derivation chain, captured
//! transitively at derivation time. A contradiction's certificate is the
//! union of the provenances involved, so re-running this same propagation
//! restricted to the certificate subset re-derives the contradiction —
//! that is [`Certificate::verify`], the machine check.

use std::collections::BTreeSet;

use smart_gp::GpProblem;

use crate::interval::Interval;
use crate::report::AuditConfig;

/// Margin (log-domain, absolute) a contradiction must clear before the
/// audit certifies infeasibility. The rows are exact implications, so a
/// feasible problem can only produce sub-margin crossings through float
/// rounding; anything past the margin is a real proof. Kept far below
/// every structural gap in the generated GPs (the tightest is the pin
/// slack, `ln(1+1e-6)² ≈ 2e-6`) and far above accumulated `ln`/divide
/// rounding noise.
pub(crate) const FEAS_MARGIN: f64 = 1e-9;

/// Smallest improvement worth recording — guards the fixpoint detector
/// against asymptotic chains that tighten by float dust forever.
const TIGHTEN_EPS: f64 = 1e-12;

/// Derived bounds are clamped to ±`BIG` so contradiction cascades (rows
/// with zero slack propose `−∞` bounds) stay in ordinary float
/// arithmetic. `e^±10¹²` is unrepresentable anyway; the clamp loses no
/// information a solver could use.
const BIG: f64 = 1e12;

/// Why a problem is infeasible — the shape of the contradiction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateKind {
    /// One constraint's variable-free terms already sum past 1: no
    /// assignment can help (e.g. a fixed input arrival beyond the budget).
    ConstantTerms {
        /// Label of the violated constraint.
        label: String,
    },
    /// A variable's derived log-domain lower bound exceeds its derived
    /// upper bound.
    CrossedBounds {
        /// Name of the crossed variable.
        var: String,
    },
    /// A constraint's interval image over the propagated box lies
    /// strictly above 1 — every term fits individually, their sum cannot.
    EmptyImage {
        /// Label of the violated constraint.
        label: String,
    },
}

/// A machine-checkable proof that a GP is infeasible: a subset of its
/// constraints whose interval images cannot intersect. Produced by
/// [`crate::audit_problem`] before any Newton work; checked by
/// [`Certificate::verify`], which re-runs interval propagation restricted
/// to the subset and confirms the contradiction re-derives.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The contradiction's shape.
    pub kind: CertificateKind,
    /// Indices (into the audited problem's constraint list) of the
    /// certifying subset, in label order.
    pub constraints: Vec<usize>,
    /// Labels of those constraints, in the same (sorted) order.
    pub labels: Vec<String>,
    /// Human-readable contradiction summary.
    pub detail: String,
}

impl Certificate {
    /// Re-verifies the certificate against `gp` by interval evaluation:
    /// propagation restricted to the certificate's constraint subset must
    /// re-derive a contradiction on its own. `gp` must be the audited
    /// problem (the indices address its constraint list).
    pub fn verify(&self, gp: &GpProblem) -> bool {
        let keep: BTreeSet<usize> = self.constraints.iter().copied().collect();
        if keep.iter().any(|&i| i >= gp.constraints().len()) {
            return false;
        }
        propagate(gp, Some(&keep), &AuditConfig::default())
            .certificate
            .is_some()
    }
}

/// One affine row `Σⱼ aⱼ·yⱼ ≤ rhs`, the log-domain relaxation of one
/// posynomial term of one constraint.
struct Row {
    constraint: usize,
    /// `(variable index, exponent)` pairs, in variable order, exponents
    /// nonzero.
    coeffs: Vec<(usize, f64)>,
    rhs: f64,
}

/// The provenance of one derived bound: every constraint index in the
/// derivation chain, transitively.
type Prov = BTreeSet<usize>;

/// Result of one propagation run.
pub(crate) struct Propagation {
    /// Final per-variable log-domain box.
    pub bounds: Vec<Interval>,
    /// Accepted tightenings across all rounds.
    pub tightened: usize,
    /// Rounds executed before fixpoint (or the round cap).
    pub rounds: usize,
    /// The contradiction, if one was derived.
    pub certificate: Option<Certificate>,
    /// Every constraint whose constant terms alone exceed 1 (for
    /// findings; the certificate picks the label-smallest one).
    pub const_violations: Vec<usize>,
    /// Every constraint whose image over the final box lies above 1.
    pub image_violations: Vec<usize>,
}

fn labels_of(gp: &GpProblem, set: &Prov) -> (Vec<usize>, Vec<String>) {
    let mut pairs: Vec<(String, usize)> = set
        .iter()
        .map(|&i| (gp.constraints()[i].label.clone(), i))
        .collect();
    // Canonicalize by label: constraint *indices* are an artifact of
    // insertion order, labels are not — sorting here keeps certificates
    // (and the findings built from them) byte-stable under reorder.
    pairs.sort();
    let indices = pairs.iter().map(|p| p.1).collect();
    let labels = pairs.into_iter().map(|p| p.0).collect();
    (indices, labels)
}

/// Builds the affine rows of every (kept) constraint, and reports the
/// per-constraint constant-term sums alongside.
fn build_rows(gp: &GpProblem, filter: Option<&BTreeSet<usize>>) -> (Vec<Row>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut const_sums = vec![0.0f64; gp.constraints().len()];
    let mut order: Vec<usize> = (0..gp.constraints().len())
        .filter(|i| filter.is_none_or(|keep| keep.contains(i)))
        .collect();
    // Scan constraints in label order so every downstream first-wins
    // tie-break is a function of labels, not of insertion order.
    order.sort_by(|&a, &b| gp.constraints()[a].label.cmp(&gp.constraints()[b].label));
    for &ci in &order {
        let body = &gp.constraints()[ci].body;
        let mut const_sum = 0.0;
        for term in body.terms() {
            if term.is_constant() {
                const_sum += term.coeff();
            }
        }
        const_sums[ci] = const_sum;
        // Remaining slack for the variable terms once the constant terms
        // are paid. `ln(0) = −∞` is deliberate: a constraint whose
        // constants exhaust the budget forces every variable term to 0,
        // and the resulting ±∞ proposals (clamped to ±BIG) derive the
        // contradiction with full provenance.
        let slack_log = if const_sum > 0.0 {
            (1.0 - const_sum).max(0.0).ln()
        } else {
            0.0
        };
        for term in body.terms() {
            if term.is_constant() {
                continue;
            }
            rows.push(Row {
                constraint: ci,
                coeffs: term
                    .exponents()
                    .map(|(v, e)| (v.index(), e))
                    .collect(),
                rhs: slack_log - term.coeff().ln(),
            });
        }
    }
    (rows, const_sums)
}

/// The minimum of `a·y` over `y`'s current interval, and which end it
/// uses (`0` = lo, `1` = hi). `−∞` when the needed end is unbounded.
fn min_contrib(a: f64, b: &Interval) -> (f64, usize) {
    if a >= 0.0 {
        (a * b.lo, 0)
    } else {
        (a * b.hi, 1)
    }
}

/// Runs Jacobi interval propagation over the (optionally filtered)
/// constraint set of `gp` and performs the three infeasibility checks —
/// constant-term overflow, crossed bounds, empty constraint image — in
/// that priority order.
pub(crate) fn propagate(
    gp: &GpProblem,
    filter: Option<&BTreeSet<usize>>,
    cfg: &AuditConfig,
) -> Propagation {
    let dim = gp.dim();
    let (rows, const_sums) = build_rows(gp, filter);
    let mut bounds = vec![Interval::top(); dim];
    let mut prov: Vec<[Prov; 2]> = vec![[Prov::new(), Prov::new()]; dim];
    let mut tightened = 0usize;
    let mut rounds = 0usize;

    // Check 1: constant terms alone exceed 1. No propagation needed; the
    // certificate is the violated constraint by itself.
    let const_violations: Vec<usize> = (0..const_sums.len())
        .filter(|&i| {
            filter.is_none_or(|keep| keep.contains(&i)) && const_sums[i] > 1.0 + FEAS_MARGIN
        })
        .collect();
    if let Some(&worst) = const_violations
        .iter()
        .min_by_key(|&&i| &gp.constraints()[i].label)
    {
        let label = gp.constraints()[worst].label.clone();
        let certificate = Some(Certificate {
            kind: CertificateKind::ConstantTerms { label: label.clone() },
            constraints: vec![worst],
            labels: vec![label.clone()],
            detail: format!(
                "constant terms of '{label}' sum to {:.6} > 1 before any sizing choice",
                const_sums[worst]
            ),
        });
        return Propagation {
            bounds,
            tightened,
            rounds,
            certificate,
            const_violations,
            image_violations: Vec::new(),
        };
    }

    // A winning proposal for one bound of one variable.
    struct Proposal {
        value: f64,
        row: usize,
    }
    let better = |side: usize, a: f64, b: f64| if side == 0 { a > b } else { a < b };

    let mut certificate = None;
    'rounds: for _ in 0..cfg.max_rounds {
        // Collect the strongest proposal per (var, side) against the
        // current snapshot. `[lo, hi]` per variable.
        let mut best: Vec<[Option<Proposal>; 2]> = Vec::with_capacity(dim);
        best.resize_with(dim, || [None, None]);
        for (ri, row) in rows.iter().enumerate() {
            // Sum of minimum contributions; at most one may be −∞ for a
            // bound on that term's variable to be derivable.
            let mut finite_sum = 0.0f64;
            let mut inf_count = 0usize;
            for &(v, a) in &row.coeffs {
                let (c, _) = min_contrib(a, &bounds[v]);
                if c == f64::NEG_INFINITY {
                    inf_count += 1;
                } else {
                    finite_sum += c;
                }
            }
            for &(v, a) in &row.coeffs {
                let (c, _) = min_contrib(a, &bounds[v]);
                let rest = if inf_count == 0 {
                    finite_sum - c
                } else if inf_count == 1 && c == f64::NEG_INFINITY {
                    finite_sum
                } else {
                    continue;
                };
                // a·y_v ≤ rhs − rest ⇒ bound on y_v, side by sign of a.
                let raw = (row.rhs - rest) / a;
                let side = if a > 0.0 { 1 } else { 0 };
                let value = if raw.is_nan() {
                    continue;
                } else {
                    raw.clamp(-BIG, BIG)
                };
                let current = if side == 0 { bounds[v].lo } else { bounds[v].hi };
                let improves = if side == 0 {
                    value > current + TIGHTEN_EPS
                } else {
                    value < current - TIGHTEN_EPS
                };
                if !improves {
                    continue;
                }
                let stronger = match &best[v][side] {
                    None => true,
                    // Rows are scanned in label order, so on an exact
                    // value tie the first (label-smallest) proposer wins
                    // regardless of constraint insertion order.
                    Some(p) => better(side, value, p.value),
                };
                if stronger {
                    best[v][side] = Some(Proposal { value, row: ri });
                }
            }
        }

        // Apply every winning proposal. Provenance is captured from the
        // snapshot (before any of this round's updates), so each recorded
        // chain re-derives with exactly the bound values it used.
        let mut applied = 0usize;
        let mut updates: Vec<(usize, usize, f64, Prov)> = Vec::new();
        for (v, sides) in best.iter().enumerate() {
            for (side, slot) in sides.iter().enumerate() {
                let Some(p) = slot else { continue };
                let row = &rows[p.row];
                let mut set = Prov::new();
                set.insert(row.constraint);
                for &(u, a) in &row.coeffs {
                    if u == v {
                        continue;
                    }
                    let (c, used_side) = min_contrib(a, &bounds[u]);
                    if c.is_finite() {
                        set.extend(prov[u][used_side].iter().copied());
                    }
                }
                updates.push((v, side, p.value, set));
            }
        }
        for (v, side, value, set) in updates {
            if side == 0 {
                bounds[v].lo = value;
            } else {
                bounds[v].hi = value;
            }
            prov[v][side] = set;
            applied += 1;
        }
        if applied == 0 {
            break;
        }
        rounds += 1;
        tightened += applied;

        // Check 2: crossed bounds. Variable index order is insertion
        // order in the pool — unaffected by constraint shuffles.
        for (v, b) in bounds.iter().enumerate() {
            if b.lo > b.hi + FEAS_MARGIN {
                let mut set = prov[v][0].clone();
                set.extend(prov[v][1].iter().copied());
                let (constraints, labels) = labels_of(gp, &set);
                let name = gp.pool().name(smart_posy::VarId::from_index(v)).to_owned();
                certificate = Some(Certificate {
                    kind: CertificateKind::CrossedBounds { var: name.clone() },
                    constraints,
                    labels,
                    detail: format!(
                        "derived log-bounds on '{name}' cross: lower {:.6} > upper {:.6}",
                        b.lo, b.hi
                    ),
                });
                break 'rounds;
            }
        }
    }

    // Check 3: empty constraint image over the final box. Each term's
    // minimum fits under 1 (that is what propagation enforced), but the
    // *sum* of minima may not.
    let mut image_violations = Vec::new();
    if certificate.is_none() {
        let mut candidates: Vec<(usize, f64, Prov)> = Vec::new();
        for (ci, constraint) in gp.constraints().iter().enumerate() {
            if filter.is_some_and(|keep| !keep.contains(&ci)) {
                continue;
            }
            let body = &constraint.body;
            let mut img = const_sums[ci];
            let mut support = Prov::new();
            support.insert(ci);
            for term in body.terms() {
                if term.is_constant() {
                    continue;
                }
                let mut aff = term.coeff().ln();
                for (vid, a) in term.exponents() {
                    let v = vid.index();
                    let (c, used_side) = min_contrib(a, &bounds[v]);
                    aff += c;
                    if c.is_finite() {
                        support.extend(prov[v][used_side].iter().copied());
                    }
                }
                // exp(−∞) = 0: a term free to vanish contributes nothing
                // to the image's lower end.
                img += aff.exp();
            }
            if img > 1.0 + FEAS_MARGIN {
                image_violations.push(ci);
                candidates.push((ci, img, support));
            }
        }
        if let Some((ci, img, support)) = candidates
            .into_iter()
            .min_by(|a, b| gp.constraints()[a.0].label.cmp(&gp.constraints()[b.0].label))
        {
            let label = gp.constraints()[ci].label.clone();
            let (constraints, labels) = labels_of(gp, &support);
            certificate = Some(Certificate {
                kind: CertificateKind::EmptyImage { label: label.clone() },
                constraints,
                labels,
                detail: format!(
                    "interval image of '{label}' lies above 1: minimum {img:.6} over the propagated box"
                ),
            });
        }
    }

    Propagation {
        bounds,
        tightened,
        rounds,
        certificate,
        const_violations,
        image_violations,
    }
}
