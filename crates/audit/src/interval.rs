//! The interval lattice the audit analyses compute over.
//!
//! Every quantity lives in the *log domain*: a GP variable `x > 0` is
//! represented by `y = ln x`, so multiplicative constraints become affine
//! and a box `[lo, hi]` on `y` is exactly a multiplicative range
//! `[e^lo, e^hi]` on `x`. The lattice is the usual interval
//! meet-semilattice with `[-∞, +∞]` as top; an interval with `lo > hi`
//! is empty — the contradiction witness the infeasibility certificates
//! are built from.

/// A closed interval `[lo, hi]` over log-domain values, with `±∞` as the
/// unbounded ends. `lo > hi` encodes the empty interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower end (may be `-∞`).
    pub lo: f64,
    /// Upper end (may be `+∞`).
    pub hi: f64,
}

impl Interval {
    /// The whole line `[-∞, +∞]` — the lattice top (no information).
    pub fn top() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The interval `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// The degenerate point interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval is empty (`lo > hi`).
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether both ends are finite.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The lattice meet: intersection of the two intervals (may be empty).
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// The interval shifted by `d` (interval image of `y + d`).
    #[must_use]
    pub fn shift(&self, d: f64) -> Interval {
        Interval {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// The interval image of `k·y` — the ends swap when `k < 0`.
    #[must_use]
    pub fn scale(&self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval {
                lo: self.lo * k,
                hi: self.hi * k,
            }
        } else {
            Interval {
                lo: self.hi * k,
                hi: self.lo * k,
            }
        }
    }

    /// Elementwise sum of two intervals (image of `y₁ + y₂`).
    #[must_use]
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// `hi - lo`; `+∞` when either end is unbounded, negative when empty.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_contains_everything_and_meets_to_operand() {
        let top = Interval::top();
        assert!(top.contains(-1e300) && top.contains(1e300));
        let i = Interval::new(-2.0, 3.0);
        assert_eq!(top.intersect(&i), i);
    }

    #[test]
    fn empty_is_detected_after_crossing_meet() {
        let a = Interval::new(2.0, f64::INFINITY);
        let b = Interval::new(f64::NEG_INFINITY, 1.0);
        assert!(!a.is_empty() && !b.is_empty());
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn scale_flips_orientation_on_negative_factor() {
        let i = Interval::new(1.0, 4.0);
        let s = i.scale(-2.0);
        assert_eq!((s.lo, s.hi), (-8.0, -2.0));
        assert!(!s.is_empty());
        let z = i.scale(0.0);
        assert_eq!((z.lo, z.hi), (0.0, 0.0));
    }

    #[test]
    fn add_and_shift_agree_on_points() {
        let i = Interval::new(-1.0, 2.0);
        assert_eq!(i.shift(3.0), i.add(&Interval::point(3.0)));
    }
}
