//! `smart-audit` — pre-solve static analysis of sizing geometric programs.
//!
//! PR 3's `smart-lint` front-loads knowledge at the component-graph level:
//! Error-severity topologies never reach the sizer. This crate applies the
//! same discipline one layer down, to the *generated GP itself*: a
//! zero-dependency static pass that runs over a constructed
//! [`GpProblem`] before Newton ever starts. Three cooperating analyses
//! over the log-domain posynomial system:
//!
//! * **Interval bound propagation** ([`analysis`]): a Jacobi-style
//!   forward/backward fixpoint over the monomial-term relaxation that
//!   tightens per-variable log-bounds and emits a machine-checkable
//!   [`Certificate`] of infeasibility — the constraint subset whose
//!   interval images cannot intersect — when the spec cannot be met by
//!   any sizing. The flow surfaces this as a typed error with zero Newton
//!   work, zero retry-ladder burn, and zero cache pollution.
//! * **Dominance pruning** ([`prune`]): constraints term-wise dominated
//!   by another active constraint (exact exponent-row match with
//!   coefficient ordering — the multi-corner duplicate case) are proven
//!   redundant and can be dropped from the solved system.
//! * **Structural diagnostics**: unbounded-below variables, dead
//!   variables, exponent-spread conditioning hazards.
//!
//! Findings flow through the same report shape as `smart-lint` (rule
//! range `SA001`–`SA005`, same severities and waivers, byte-stable JSON),
//! and every analysis is constraint-order invariant: shuffling the
//! constraint list changes neither the certificate labels, the pruned
//! set, nor a byte of the report.

#![warn(missing_docs)]

mod analysis;
mod interval;
mod prune;
mod report;

pub use analysis::{Certificate, CertificateKind};
pub use interval::Interval;
pub use prune::Dominance;
pub use report::{
    rule_info, AuditConfig, AuditReport, Finding, RuleInfo, Severity, Waiver, RULES,
};

use smart_gp::GpProblem;

/// Everything one audit run produces.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Canonical-order findings (the lint-shaped report).
    pub report: AuditReport,
    /// The infeasibility proof, when the problem admits no solution.
    pub certificate: Option<Certificate>,
    /// Final per-variable log-domain bounds, indexed by variable.
    pub bounds: Vec<Interval>,
    /// Indices of constraints proven redundant by dominance (sorted
    /// ascending) — safe to drop via `GpProblem::without_constraints`.
    pub prunable: Vec<usize>,
    /// The individual dominance witnesses behind [`Self::prunable`].
    pub dominance: Vec<Dominance>,
    /// Bound tightenings accepted across all propagation rounds.
    pub tightened: usize,
    /// Propagation rounds executed before fixpoint (or the round cap).
    pub rounds: usize,
}

/// Audits `gp` under `cfg`. `problem` names the report (typically the
/// macro instance being sized). Pure and deterministic: same problem
/// (up to constraint order) in, byte-identical report out.
pub fn audit_problem(gp: &GpProblem, problem: &str, cfg: &AuditConfig) -> AuditOutcome {
    let prop = analysis::propagate(gp, None, cfg);
    let dominance = prune::find_dominated(gp);
    let mut findings = Vec::new();

    // SA001 — the certificate, plus every individual violated constraint.
    if let Some(cert) = &prop.certificate {
        let anchor = match &cert.kind {
            CertificateKind::ConstantTerms { label } | CertificateKind::EmptyImage { label } => {
                label.clone()
            }
            CertificateKind::CrossedBounds { var } => var.clone(),
        };
        findings.push(Finding {
            rule: "SA001",
            severity: Severity::Error,
            path: anchor,
            nets: cert.labels.clone(),
            message: cert.detail.clone(),
        });
    }
    for &ci in prop.const_violations.iter().chain(&prop.image_violations) {
        let label = &gp.constraints()[ci].label;
        findings.push(Finding {
            rule: "SA001",
            severity: Severity::Error,
            path: label.clone(),
            nets: vec![label.clone()],
            message: "constraint is violated over the entire propagated box".into(),
        });
    }

    // SA002 — dominated constraints.
    for d in &dominance {
        findings.push(Finding {
            rule: "SA002",
            severity: Severity::Warning,
            path: gp.constraints()[d.dropped].label.clone(),
            nets: vec![gp.constraints()[d.kept].label.clone()],
            message: "term-wise dominated by another active constraint; redundant".into(),
        });
    }

    // Variable support: which variables any constraint or objective term
    // touches, and the objective exponent signs per variable.
    let dim = gp.dim();
    let mut in_constraint = vec![false; dim];
    for c in gp.constraints() {
        for t in c.body.terms() {
            for (v, _) in t.exponents() {
                in_constraint[v.index()] = true;
            }
        }
    }
    let mut obj_pos = vec![false; dim]; // has a positive objective exponent
    let mut obj_any = vec![false; dim];
    for t in gp.objective().terms() {
        for (v, e) in t.exponents() {
            obj_any[v.index()] = true;
            if e > 0.0 {
                obj_pos[v.index()] = true;
            }
        }
    }

    for v in 0..dim {
        let name = gp.pool().name(smart_posy::VarId::from_index(v));
        // SA004 — dead variable: nothing mentions it.
        if !in_constraint[v] && !obj_any[v] {
            findings.push(Finding {
                rule: "SA004",
                severity: Severity::Warning,
                path: name.to_owned(),
                nets: Vec::new(),
                message: "variable appears in no constraint and no objective term".into(),
            });
            continue;
        }
        // SA003 — cost-bearing variable with no derivable log-domain lower
        // bound: the objective only rewards shrinking it (every objective
        // exponent positive), and propagation found nothing stopping the
        // descent.
        if obj_any[v] && obj_pos[v] && prop.bounds[v].lo == f64::NEG_INFINITY {
            findings.push(Finding {
                rule: "SA003",
                severity: Severity::Warning,
                path: name.to_owned(),
                nets: Vec::new(),
                message: "cost-bearing variable has no derivable lower bound (unbounded descent direction)".into(),
            });
        }
    }

    // SA005 — exponent spread per constraint.
    for c in gp.constraints() {
        let spread = c
            .body
            .terms()
            .iter()
            .flat_map(|t| t.exponents().map(|(_, e)| e.abs()))
            .fold(0.0f64, f64::max);
        if spread > cfg.spread_limit {
            findings.push(Finding {
                rule: "SA005",
                severity: Severity::Warning,
                path: c.label.clone(),
                nets: Vec::new(),
                message: format!(
                    "largest |exponent| {spread:.3} exceeds the conditioning limit {:.3}",
                    cfg.spread_limit
                ),
            });
        }
    }

    let report = report::finalize(problem, findings, cfg);
    let prunable: Vec<usize> = dominance.iter().map(|d| d.dropped).collect();
    AuditOutcome {
        report,
        certificate: prop.certificate,
        bounds: prop.bounds,
        prunable,
        dominance,
        tightened: prop.tightened,
        rounds: prop.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_posy::{Monomial, Posynomial, VarPool};

    fn pool2() -> (VarPool, smart_posy::VarId, smart_posy::VarId) {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let b = pool.var("b");
        (pool, a, b)
    }

    #[test]
    fn crossed_bounds_yield_a_verifying_certificate() {
        let (pool, a, _) = pool2();
        let mut gp = GpProblem::new(pool);
        gp.set_objective(Posynomial::var(a));
        gp.add_lower_bound(a, 4.0);
        gp.add_upper_bound(a, 2.0);
        let out = audit_problem(&gp, "toy", &AuditConfig::default());
        let cert = out.certificate.expect("a >= 4 with a <= 2 is infeasible");
        assert!(matches!(&cert.kind, CertificateKind::CrossedBounds { var } if var == "a"));
        let mut labels = cert.labels.clone();
        labels.sort();
        assert_eq!(labels, vec!["a <= 2".to_string(), "a >= 4".to_string()]);
        assert!(cert.verify(&gp), "certificate must re-derive on its own subset");
        assert!(out.report.has_errors());
    }

    #[test]
    fn constant_terms_past_one_certify_immediately() {
        let (pool, a, _) = pool2();
        let mut gp = GpProblem::new(pool);
        gp.set_objective(Posynomial::var(a));
        // 1.5 + a/10 <= 1: the constant alone exhausts the budget.
        let mut body = Posynomial::constant(1.5);
        body.push(Monomial::new(0.1).pow(a, 1.0));
        gp.add_le("arrival", body, Monomial::one()).unwrap();
        let out = audit_problem(&gp, "toy", &AuditConfig::default());
        let cert = out.certificate.expect("constant terms exceed 1");
        assert!(matches!(&cert.kind, CertificateKind::ConstantTerms { label } if label == "arrival"));
        assert_eq!(cert.constraints, vec![0]);
        assert!(cert.verify(&gp));
    }

    #[test]
    fn empty_image_catches_sum_level_infeasibility() {
        let (pool, a, b) = pool2();
        let mut gp = GpProblem::new(pool);
        gp.set_objective(Posynomial::var(a));
        // Each term alone fits under 1, the sum cannot: a >= 2, b >= 2,
        // and 0.4·a/2 + 0.4·b/2 <= 1 needs a + b <= 5 while a,b >= 2
        // forces each term >= 0.4, sum >= 0.8 — feasible; tighten to make
        // it impossible: coefficients 0.6 give sum >= 1.2.
        gp.add_lower_bound(a, 2.0);
        gp.add_lower_bound(b, 2.0);
        let mut body = Posynomial::from(Monomial::new(0.3).pow(a, 1.0));
        body.push(Monomial::new(0.3).pow(b, 1.0));
        gp.add_le("sum", body, Monomial::one()).unwrap();
        let out = audit_problem(&gp, "toy", &AuditConfig::default());
        let cert = out.certificate.expect("sum of term minima is 1.2 > 1");
        assert!(matches!(&cert.kind, CertificateKind::EmptyImage { label } if label == "sum"));
        assert!(cert.constraints.len() >= 3, "needs the sum row and both lower bounds");
        assert!(cert.verify(&gp));
    }

    #[test]
    fn feasible_problems_carry_no_certificate_and_tight_bounds() {
        let (pool, a, b) = pool2();
        let mut gp = GpProblem::new(pool);
        gp.set_objective(Posynomial::var(a));
        gp.add_lower_bound(a, 0.5);
        gp.add_upper_bound(a, 8.0);
        // b <= 4/a: couples b's upper bound to a's range.
        gp.add_le(
            "couple",
            Posynomial::from(Monomial::new(0.25).pow(a, 1.0).pow(b, 1.0)),
            Monomial::one(),
        )
        .unwrap();
        let out = audit_problem(&gp, "toy", &AuditConfig::default());
        assert!(out.certificate.is_none());
        let (la, lb) = (out.bounds[0], out.bounds[1]);
        assert!((la.lo - 0.5f64.ln()).abs() < 1e-12 && (la.hi - 8.0f64.ln()).abs() < 1e-12);
        // From a >= 0.5: b <= 4/0.5 = 8.
        assert!((lb.hi - 8.0f64.ln()).abs() < 1e-9, "hi = {}", lb.hi);
        assert!(out.tightened >= 3);
    }

    #[test]
    fn dominated_duplicates_are_pruned_with_label_tiebreak() {
        let (pool, a, b) = pool2();
        let mut gp = GpProblem::new(pool);
        gp.set_objective(Posynomial::var(a));
        gp.add_lower_bound(a, 1.0);
        gp.add_lower_bound(b, 1.0);
        let body = |c: f64| {
            let mut p = Posynomial::from(Monomial::new(c).pow(a, 1.0));
            p.push(Monomial::new(c).pow(b, 1.0));
            p
        };
        gp.add_le("path@fast", body(0.2), Monomial::one()).unwrap();
        gp.add_le("path@slow", body(0.3), Monomial::one()).unwrap();
        gp.add_le("path@typ", body(0.3), Monomial::one()).unwrap();
        let out = audit_problem(&gp, "toy", &AuditConfig::default());
        assert!(out.certificate.is_none());
        // fast (0.2) dominated by slow (0.3); typ == slow is an exact
        // duplicate and the label-smaller "path@slow" survives.
        let dropped: Vec<&str> = out
            .prunable
            .iter()
            .map(|&i| gp.constraints()[i].label.as_str())
            .collect();
        assert_eq!(dropped, vec!["path@fast", "path@typ"]);
        assert_eq!(out.report.findings.iter().filter(|f| f.rule == "SA002").count(), 2);
        // Different exponent rows never compare.
        assert!(!out.prunable.contains(&0) && !out.prunable.contains(&1));
    }

    #[test]
    fn structural_diagnostics_fire_on_degenerate_problems() {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let dead = pool.var("dead");
        let _ = dead;
        let mut gp = GpProblem::new(pool);
        // Objective rewards shrinking `a` and nothing bounds it below.
        gp.set_objective(Posynomial::var(a));
        gp.add_le(
            "steep",
            Posynomial::from(Monomial::new(0.5).pow(a, 14.0)),
            Monomial::one(),
        )
        .unwrap();
        let out = audit_problem(&gp, "toy", &AuditConfig::default());
        assert!(out.certificate.is_none());
        let rules: Vec<&str> = out.report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"SA003"), "unbounded-below: {rules:?}");
        assert!(rules.contains(&"SA004"), "dead variable: {rules:?}");
        assert!(rules.contains(&"SA005"), "exponent spread: {rules:?}");
    }

    #[test]
    fn report_is_invariant_under_constraint_reorder() {
        use smart_prng::Prng;
        let build = |order: &[usize]| {
            let (pool, a, b) = pool2();
            let mut gp = GpProblem::new(pool);
            gp.set_objective(Posynomial::var(a));
            let add: Vec<Box<dyn Fn(&mut GpProblem)>> = vec![
                Box::new(move |g: &mut GpProblem| g.add_lower_bound(a, 4.0)),
                Box::new(move |g: &mut GpProblem| g.add_upper_bound(a, 2.0)),
                Box::new(move |g: &mut GpProblem| g.add_lower_bound(b, 1.0)),
                Box::new(move |g: &mut GpProblem| {
                    g.add_le(
                        "couple",
                        Posynomial::from(Monomial::new(0.25).pow(a, 1.0).pow(b, 1.0)),
                        Monomial::one(),
                    )
                    .unwrap();
                }),
            ];
            for &i in order {
                add[i](&mut gp);
            }
            gp
        };
        let base = build(&[0, 1, 2, 3]);
        let ref_out = audit_problem(&base, "toy", &AuditConfig::default());
        let ref_json = ref_out.report.to_json();
        let ref_cert_labels = {
            let mut l = ref_out.certificate.as_ref().unwrap().labels.clone();
            l.sort();
            l
        };
        let mut prng = Prng::new(0xA0D17);
        let mut order = vec![0usize, 1, 2, 3];
        for _ in 0..32 {
            // Fisher–Yates driven by the repo PRNG.
            for i in (1..order.len()).rev() {
                let j = prng.u64_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let gp = build(&order);
            let out = audit_problem(&gp, "toy", &AuditConfig::default());
            assert_eq!(out.report.to_json(), ref_json, "order {order:?}");
            let mut labels = out.certificate.as_ref().unwrap().labels.clone();
            labels.sort();
            assert_eq!(labels, ref_cert_labels, "order {order:?}");
            assert!(out.certificate.as_ref().unwrap().verify(&gp));
        }
    }
}
