//! Dominance/redundancy pruning: constraints term-wise dominated by
//! another active constraint.
//!
//! # Soundness
//!
//! Two normalized constraints `Σₖ cₖ·mₖ(x) ≤ 1` and `Σₖ dₖ·mₖ(x) ≤ 1`
//! over the *same* monomial set `{mₖ}` (exact exponent-row match) satisfy
//! a pointwise ordering whenever their coefficient vectors do: if
//! `cₖ ≥ dₖ` for every `k`, then for every `x > 0`
//!
//! ```text
//! Σ dₖ·mₖ(x) ≤ Σ cₖ·mₖ(x) ≤ 1
//! ```
//!
//! because every monomial is strictly positive. The dominated constraint
//! is implied by the dominating one at *every* point — not just the
//! optimum — so dropping it leaves the feasible set unchanged and the
//! pruned problem has the same optimizer set as the original. (The
//! barrier trajectory may differ, which is why the parity suite compares
//! optima within a pinned tolerance rather than step-for-step.)
//!
//! This is exactly the multi-corner duplicate case: under identity or
//! near-identity derates, two corners emit the same monomial structure
//! with coefficients scaled by the derate, and the slower corner's
//! constraint dominates.
//!
//! # Determinism
//!
//! Matching is by exact exponent bit patterns, grouping uses ordered
//! maps, and the keep/drop tie-break on *equal* coefficient vectors is
//! the constraint label — so the pruned set is a function of the
//! constraint multiset, not of its order.

use std::collections::BTreeMap;

use smart_gp::GpProblem;

/// One pruning decision: `dropped` is term-wise dominated by `kept`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominance {
    /// Index of the surviving (dominating) constraint.
    pub kept: usize,
    /// Index of the redundant (dominated) constraint.
    pub dropped: usize,
}

/// A constraint's monomial structure: sorted exponent rows (bit-exact)
/// with the coefficient of each row. Two constraints are comparable iff
/// their row lists are identical.
fn signature(gp: &GpProblem, ci: usize) -> (Vec<Vec<(u32, u64)>>, Vec<f64>) {
    let mut rows: Vec<(Vec<(u32, u64)>, f64)> = gp.constraints()[ci]
        .body
        .terms()
        .iter()
        .map(|t| {
            let row: Vec<(u32, u64)> = t
                .exponents()
                .map(|(v, e)| (v.index() as u32, e.to_bits()))
                .collect();
            (row, t.coeff())
        })
        .collect();
    // Same-row terms cannot merge here (the posynomial representation
    // already canonicalizes), but sort rows so structurally equal bodies
    // built in different term orders compare equal.
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    rows.into_iter().unzip()
}

/// Exponent-row structure of a constraint family: one sorted
/// `(variable, exponent-bits)` row per non-constant term.
type FamilyKey = Vec<Vec<(u32, u64)>>;

/// Finds every term-wise dominated constraint. Within a family of
/// constraints sharing the same exponent rows, constraint `B` is dropped
/// iff some other member `A` has `coeff_A ≥ coeff_B` componentwise with
/// either a strict inequality somewhere or, on exact coefficient ties
/// (true duplicates), the lexicographically smaller label. Each drop
/// records the kept witness; results are sorted by dropped index.
pub(crate) fn find_dominated(gp: &GpProblem) -> Vec<Dominance> {
    // Group constraints by exponent-row structure.
    let mut families: BTreeMap<FamilyKey, Vec<(usize, Vec<f64>)>> = BTreeMap::new();
    for ci in 0..gp.constraints().len() {
        let (rows, coeffs) = signature(gp, ci);
        families.entry(rows).or_default().push((ci, coeffs));
    }

    let label = |i: usize| &gp.constraints()[i].label;
    let mut out = Vec::new();
    for members in families.values() {
        if members.len() < 2 {
            continue;
        }
        for (b, cb) in members {
            // The best dominating witness for `b`, by (label) — stable
            // under constraint reorder.
            let mut witness: Option<usize> = None;
            for (a, ca) in members {
                if a == b {
                    continue;
                }
                let ge = ca.iter().zip(cb).all(|(x, y)| x >= y);
                if !ge {
                    continue;
                }
                let strict = ca.iter().zip(cb).any(|(x, y)| x > y);
                // On exact duplicates keep the label-smaller constraint,
                // so exactly one side of each duplicate pair survives.
                if strict || label(*a) < label(*b) {
                    let better = witness.is_none_or(|w| label(*a) < label(w));
                    if better {
                        witness = Some(*a);
                    }
                }
            }
            if let Some(kept) = witness {
                out.push(Dominance { kept, dropped: *b });
            }
        }
    }
    out.sort_by_key(|d| d.dropped);
    out
}
