//! Audit findings and reports, mirroring the `smart-lint` report shape.
//!
//! The finding record and the JSON encoding are deliberately identical in
//! shape to `smart_lint::Finding` / `LintReport::to_json` — same severity
//! vocabulary, same `{"rule","severity","path","nets","message"}` finding
//! object, same canonical ordering — so any tooling that consumes lint
//! reports consumes audit reports unchanged. For an audit finding, `path`
//! anchors to a *constraint label* or *variable name* (the GP has no
//! instance hierarchy) and `nets` carries the involved constraint labels
//! or variable names, in rule-defined order.

use std::collections::{BTreeMap, BTreeSet};

/// How severe a finding is. `Error`-severity findings gate the sizing
/// flow (via `AuditGate`); `Warning`s are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: legal but degenerate or wasteful structure.
    Warning,
    /// The problem cannot or should not be solved as posed.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One audit finding. Name-based like lint findings: it carries labels
/// and variable names, never raw constraint indices, so structurally
/// equal problems produce equal findings regardless of constraint
/// insertion order (the reorder-invariance property the test suite
/// enforces). The derived `Ord` (field order: rule, severity, path,
/// nets, message) is the canonical report order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Finding {
    /// Stable rule id (`"SA001"`).
    pub rule: &'static str,
    /// Effective severity (default, or the configured override).
    pub severity: Severity,
    /// Constraint label or variable name the finding anchors to.
    pub path: String,
    /// Involved constraint labels / variable names, rule-defined order.
    pub nets: Vec<String>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.rule, self.severity)?;
        if !self.path.is_empty() {
            write!(f, " at {}", self.path)?;
        }
        if !self.nets.is_empty() {
            write!(f, " [{}]", self.nets.join(", "))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A label-based waiver: suppress `rule` (or every rule, `"*"`) for
/// findings anchored under `label_prefix` — the audit twin of the lint
/// engine's path-prefix waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id to waive, or `"*"` for all rules.
    pub rule: String,
    /// Anchor-label prefix the waiver covers (`""` covers everything).
    pub label_prefix: String,
}

impl Waiver {
    pub(crate) fn covers(&self, finding: &Finding) -> bool {
        (self.rule == "*" || self.rule == finding.rule)
            && finding.path.starts_with(&self.label_prefix)
    }
}

/// Per-run audit configuration: rule enablement, severity overrides,
/// waivers, and the numeric knobs of the parameterized analyses.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Rule ids to skip entirely.
    pub disabled: BTreeSet<String>,
    /// Severity overrides by rule id.
    pub severities: BTreeMap<String, Severity>,
    /// Label-based waivers applied after severity resolution.
    pub waivers: Vec<Waiver>,
    /// Cap on interval-propagation fixpoint rounds. Each round applies
    /// every derivable tightening once (Jacobi-style, so the fixpoint is
    /// independent of constraint order); the cap bounds pathological
    /// chains without affecting soundness (bounds are valid after any
    /// prefix of rounds).
    pub max_rounds: usize,
    /// `SA005`: largest `|exponent|` a constraint may carry before it is
    /// flagged as a conditioning hazard for the log-domain Newton kernel.
    pub spread_limit: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            disabled: BTreeSet::new(),
            severities: BTreeMap::new(),
            waivers: Vec::new(),
            max_rounds: 32,
            spread_limit: 12.0,
        }
    }
}

/// A registered audit rule (id, kebab-case name, default severity,
/// one-line description).
pub struct RuleInfo {
    /// Stable id (`SA` + number).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Severity findings carry unless overridden by configuration.
    pub default_severity: Severity,
    /// One-line description of what the analysis reports.
    pub description: &'static str,
}

/// The audit rule registry, in rule-id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "SA001",
        name: "infeasibility-certificate",
        default_severity: Severity::Error,
        description: "interval images of a constraint subset cannot intersect; the GP is infeasible before any Newton work",
    },
    RuleInfo {
        id: "SA002",
        name: "dominated-constraint",
        default_severity: Severity::Warning,
        description: "constraint is term-wise dominated by another active constraint and is redundant (prunable)",
    },
    RuleInfo {
        id: "SA003",
        name: "unbounded-below-variable",
        default_severity: Severity::Warning,
        description: "cost-bearing variable has no derivable lower bound in the log domain (unbounded descent direction)",
    },
    RuleInfo {
        id: "SA004",
        name: "dead-variable",
        default_severity: Severity::Warning,
        description: "variable appears in no constraint and no objective term",
    },
    RuleInfo {
        id: "SA005",
        name: "exponent-spread",
        default_severity: Severity::Warning,
        description: "constraint carries exponents large enough to condition the log-domain Hessian badly",
    },
];

/// Looks up a rule's registry entry.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// The result of auditing one problem: canonical-order findings plus the
/// problem's name, serializable to deterministic JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Name of the audited problem (typically the macro instance).
    pub problem: String,
    /// Findings in canonical order (sorted, deduplicated).
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warning`-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Whether any finding is an `Error`.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Serializes the report as JSON, byte-stable: fixed key order,
    /// findings in canonical order — equal reports are byte-equal
    /// strings (the determinism suite compares these bytes across
    /// constraint shuffles and worker counts).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.findings.len() * 96);
        out.push_str("{\"problem\":");
        json_string(&mut out, &self.problem);
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"findings\":[",
            self.errors(),
            self.warnings()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, f.rule);
            out.push_str(",\"severity\":");
            json_string(&mut out, &f.severity.to_string());
            out.push_str(",\"path\":");
            json_string(&mut out, &f.path);
            out.push_str(",\"nets\":[");
            for (j, n) in f.nets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, n);
            }
            out.push_str("],\"message\":");
            json_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes) — the same
/// encoding `smart-lint` uses, so the two report families stay
/// byte-compatible for consumers.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Applies configuration to raw findings: severity overrides by rule,
/// waiver filtering, canonical sort + dedup.
pub(crate) fn finalize(
    problem: &str,
    mut findings: Vec<Finding>,
    cfg: &AuditConfig,
) -> AuditReport {
    findings.retain(|f| !cfg.disabled.contains(f.rule));
    for f in &mut findings {
        if let Some(&sev) = cfg.severities.get(f.rule) {
            f.severity = sev;
        }
    }
    findings.retain(|f| !cfg.waivers.iter().any(|w| w.covers(f)));
    findings.sort();
    findings.dedup();
    AuditReport {
        problem: problem.to_owned(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_sorted() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "registry must be id-ordered and duplicate-free");
        assert_eq!(rule_info("SA001").map(|r| r.default_severity), Some(Severity::Error));
        assert!(rule_info("SA999").is_none());
    }

    #[test]
    fn json_matches_the_lint_shape_byte_for_byte() {
        let report = AuditReport {
            problem: "a\"b\\c\n".into(),
            findings: vec![Finding {
                rule: "SA001",
                severity: Severity::Error,
                path: "path0.0 a -> y (eval)".into(),
                nets: vec!["w_x >= 0.6".into()],
                message: "bad".into(),
            }],
        };
        assert_eq!(
            report.to_json(),
            "{\"problem\":\"a\\\"b\\\\c\\n\",\"errors\":1,\"warnings\":0,\
             \"findings\":[{\"rule\":\"SA001\",\"severity\":\"error\",\
             \"path\":\"path0.0 a -> y (eval)\",\"nets\":[\"w_x >= 0.6\"],\
             \"message\":\"bad\"}]}"
        );
    }

    #[test]
    fn config_overrides_waivers_and_dedup_apply() {
        let f = |path: &str| Finding {
            rule: "SA005",
            severity: Severity::Warning,
            path: path.into(),
            nets: vec![],
            message: "m".into(),
        };
        let mut cfg = AuditConfig::default();
        cfg.severities.insert("SA005".into(), Severity::Error);
        cfg.waivers.push(Waiver {
            rule: "SA005".into(),
            label_prefix: "noise".into(),
        });
        let report = finalize(
            "p",
            vec![f("slope a"), f("noise b"), f("slope a")],
            &cfg,
        );
        assert_eq!(report.findings.len(), 1, "waived + deduplicated");
        assert_eq!(report.findings[0].severity, Severity::Error);
        let mut off = AuditConfig::default();
        off.disabled.insert("SA005".into());
        assert!(finalize("p", vec![f("slope a")], &off).findings.is_empty());
    }
}
