//! One timing case per paper table/figure: each case regenerates the
//! corresponding result (at a reduced scale where the full experiment is
//! a multi-second batch job — the `fig*`/`table*` binaries print the
//! full-scale rows).
//!
//! Plain timing harness (`harness = false`), no external bench framework:
//! the workspace builds offline. Run with
//! `cargo bench -p smart-bench --bench experiments`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use smart_bench::{block64, fig5a, fig5b, fig5c, fig6, fig7, paths52, protocol_61, table2};
use smart_blocks::{evaluate_block, table2_blocks};
use smart_core::SizingOptions;
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f()); // warmup
    let budget = Duration::from_secs(1);
    let mut times = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget && times.len() < 10 {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    let n = times.len();
    let mean = times.iter().sum::<Duration>() / n as u32;
    println!(
        "{name:<28} min {:>10.1?}  median {:>10.1?}  mean {:>10.1?}  ({n} iters)",
        times[0],
        times[n / 2],
        mean
    );
}

fn main() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();

    // One representative row per sub-figure; the binaries run all rows.
    bench("fig5/fig5a_row_inc13", || {
        protocol_61(
            "13bitinc",
            &MacroSpec::Incrementor { width: 13 },
            12.0,
            &lib,
            &opts,
        )
        .unwrap()
        .normalized()
    });
    bench("fig5/fig5b_row_zd16", || {
        protocol_61(
            "16bit",
            &MacroSpec::ZeroDetect {
                width: 16,
                style: smart_macros::ZeroDetectStyle::Static,
            },
            12.0,
            &lib,
            &opts,
        )
        .unwrap()
        .normalized()
    });
    bench("fig5/fig5c_row_dec4to16", || {
        protocol_61("4to16", &MacroSpec::Decoder { in_bits: 4 }, 8.0, &lib, &opts)
            .unwrap()
            .normalized()
    });

    bench("table1/row_unsplit_domino", || {
        let row = protocol_61(
            "unsplit",
            &MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
            14.0,
            &lib,
            &opts,
        )
        .unwrap();
        (row.width_savings(), row.clock_savings())
    });

    // 8-bit sweep for the bench; the binary runs 64 bits.
    bench("fig6/adder_curve_8bit", || fig6(&lib, &opts, 8).len());

    bench("fig7/comparator_exploration", || fig7(&lib, &opts).len());

    bench("blocks/table2_block4", || {
        let spec = &table2_blocks()[3]; // the smallest block
        evaluate_block(spec, &lib, &opts).unwrap().power_savings()
    });
    bench("blocks/block64", || block64(&lib, &opts).power_savings());

    bench("paths52/adder16_compaction", || {
        let s = paths52(&lib, &opts, 16);
        (s.raw, s.compacted)
    });

    // Smoke-level full-table runs (one iteration each is already a batch
    // job; min/median over up to 10 runs is still a stable signal).
    bench("full_tables/fig5a_all_rows", || fig5a(&lib, &opts).len());
    bench("full_tables/fig5b_all_rows", || fig5b(&lib, &opts).len());
    bench("full_tables/fig5c_all_rows", || fig5c(&lib, &opts).len());
    bench("full_tables/table2_all_blocks", || table2(&lib, &opts).len());
}
