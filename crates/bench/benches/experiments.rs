//! One Criterion bench per paper table/figure: each bench regenerates the
//! corresponding result (at a reduced scale where the full experiment is
//! a multi-second batch job — the `fig*`/`table*` binaries print the
//! full-scale rows).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smart_bench::{block64, fig5a, fig5b, fig5c, fig6, fig7, paths52, protocol_61, table2};
use smart_blocks::{evaluate_block, table2_blocks};
use smart_core::SizingOptions;
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;

fn bench_fig5(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    // One representative row per sub-figure; the binaries run all rows.
    group.bench_function("fig5a_row_inc13", |b| {
        b.iter(|| {
            let row = protocol_61(
                "13bitinc",
                &MacroSpec::Incrementor { width: 13 },
                12.0,
                &lib,
                &opts,
            )
            .unwrap();
            black_box(row.normalized())
        })
    });
    group.bench_function("fig5b_row_zd16", |b| {
        b.iter(|| {
            let row = protocol_61(
                "16bit",
                &MacroSpec::ZeroDetect {
                    width: 16,
                    style: smart_macros::ZeroDetectStyle::Static,
                },
                12.0,
                &lib,
                &opts,
            )
            .unwrap();
            black_box(row.normalized())
        })
    });
    group.bench_function("fig5c_row_dec4to16", |b| {
        b.iter(|| {
            let row = protocol_61(
                "4to16",
                &MacroSpec::Decoder { in_bits: 4 },
                8.0,
                &lib,
                &opts,
            )
            .unwrap();
            black_box(row.normalized())
        })
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("row_unsplit_domino", |b| {
        b.iter(|| {
            let row = protocol_61(
                "unsplit",
                &MacroSpec::Mux {
                    topology: MuxTopology::UnsplitDomino,
                    width: 8,
                },
                14.0,
                &lib,
                &opts,
            )
            .unwrap();
            black_box((row.width_savings(), row.clock_savings()))
        })
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    // 8-bit sweep for the bench; the binary runs 64 bits.
    group.bench_function("adder_curve_8bit", |b| {
        b.iter(|| {
            let pts = fig6(&lib, &opts, 8);
            black_box(pts.len())
        })
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("comparator_exploration", |b| {
        b.iter(|| {
            let rows = fig7(&lib, &opts);
            black_box(rows.len())
        })
    });
    group.finish();
}

fn bench_table2_and_block64(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("blocks");
    group.sample_size(10);
    group.bench_function("table2_block4", |b| {
        let spec = &table2_blocks()[3]; // the smallest block
        b.iter(|| {
            let r = evaluate_block(spec, &lib, &opts).unwrap();
            black_box(r.power_savings())
        })
    });
    group.bench_function("block64", |b| {
        b.iter(|| {
            let r = block64(&lib, &opts);
            black_box(r.power_savings())
        })
    });
    group.finish();
}

fn bench_paths52(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("paths52");
    group.sample_size(10);
    group.bench_function("adder16_compaction", |b| {
        b.iter(|| {
            let s = paths52(&lib, &opts, 16);
            black_box((s.raw, s.compacted))
        })
    });
    group.finish();
}

/// Smoke-level full-table benches (one iteration each is already a batch
/// job; Criterion still gives stable medians at sample_size 10).
fn bench_full_tables(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("full_tables");
    group.sample_size(10);
    group.bench_function("fig5a_all_rows", |b| {
        b.iter(|| black_box(fig5a(&lib, &opts).len()))
    });
    group.bench_function("fig5b_all_rows", |b| {
        b.iter(|| black_box(fig5b(&lib, &opts).len()))
    });
    group.bench_function("fig5c_all_rows", |b| {
        b.iter(|| black_box(fig5c(&lib, &opts).len()))
    });
    group.bench_function("table2_all_blocks", |b| {
        b.iter(|| black_box(table2(&lib, &opts).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5,
    bench_table1,
    bench_fig6,
    bench_fig7,
    bench_table2_and_block64,
    bench_paths52,
    bench_full_tables
);
criterion_main!(benches);
