//! Microbenchmarks of the flow's hot machinery: GP solving, path
//! compaction, static timing, functional simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use smart_core::{compaction_stats, size_circuit, DelaySpec, SizingOptions};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_netlist::Sizing;
use smart_sim::{Logic, Simulator};
use smart_sta::{analyze, Boundary};

fn boundary_for(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

fn bench_gp_sizing(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("gp_sizing");
    for (name, spec, budget) in [
        (
            "mux8_passgate",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
            300.0,
        ),
        (
            "mux8_domino",
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
            300.0,
        ),
        ("inc13", MacroSpec::Incrementor { width: 13 }, 4000.0),
    ] {
        let circuit = spec.generate();
        let boundary = boundary_for(&circuit, 20.0);
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = size_circuit(
                    black_box(&circuit),
                    &lib,
                    &boundary,
                    &DelaySpec::uniform(budget),
                    &opts,
                )
                .expect("feasible");
                black_box(out.total_width)
            })
        });
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let mut group = c.benchmark_group("path_compaction");
    group.sample_size(20);
    for bits in [8usize, 16, 32] {
        let circuit = MacroSpec::ClaAdder { width: bits }.generate();
        let boundary = Boundary::default();
        group.bench_function(format!("cla{bits}"), |b| {
            b.iter(|| {
                let stats =
                    compaction_stats(black_box(&circuit), &lib, &boundary, &opts).unwrap();
                black_box(stats.classes.len())
            })
        });
    }
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let lib = ModelLibrary::reference();
    let circuit = MacroSpec::ClaAdder { width: 32 }.generate();
    let sizing = Sizing::uniform(circuit.labels(), 4.0);
    let boundary = Boundary::default();
    c.bench_function("sta_cla32", |b| {
        b.iter(|| {
            let report = analyze(black_box(&circuit), &lib, &sizing, &boundary).unwrap();
            black_box(
                report
                    .worst_over(circuit.output_ports().map(|p| p.net))
                    .map(|(_, a)| a.time),
            )
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let circuit = MacroSpec::ClaAdder { width: 32 }.generate();
    c.bench_function("sim_cla32_vector", |b| {
        b.iter_batched(
            || Simulator::new(&circuit),
            |mut sim| {
                sim.set("clk", Logic::Zero).unwrap();
                for i in 0..32 {
                    sim.set(&format!("a{i}"), Logic::from_bool(i % 3 == 0))
                        .unwrap();
                    sim.set(&format!("b{i}"), Logic::from_bool(i % 5 == 0))
                        .unwrap();
                }
                sim.set("cin0", Logic::One).unwrap();
                sim.settle().unwrap();
                sim.set("clk", Logic::One).unwrap();
                sim.settle().unwrap();
                black_box(sim.get("cout").unwrap())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_gp_sizing,
    bench_compaction,
    bench_sta,
    bench_simulation
);
criterion_main!(benches);
