//! Microbenchmarks of the flow's hot machinery: GP solving, path
//! compaction, static timing, functional simulation.
//!
//! Plain timing harness (`harness = false`), no external bench framework:
//! the workspace builds offline. Each case is warmed up once, then run
//! until ~1 s or 50 iterations, and the min/median/mean wall times are
//! printed. Run with `cargo bench -p smart-bench --bench sizing`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use smart_core::{compaction_stats, size_circuit, DelaySpec, SizingOptions};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_netlist::Sizing;
use smart_sim::{Logic, Simulator};
use smart_sta::{analyze, Boundary};

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f()); // warmup
    let budget = Duration::from_secs(1);
    let mut times = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget && times.len() < 50 {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    let n = times.len();
    let mean = times.iter().sum::<Duration>() / n as u32;
    println!(
        "{name:<28} min {:>10.1?}  median {:>10.1?}  mean {:>10.1?}  ({n} iters)",
        times[0],
        times[n / 2],
        mean
    );
}

fn boundary_for(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

fn bench_gp_sizing(lib: &ModelLibrary, opts: &SizingOptions) {
    for (name, spec, budget) in [
        (
            "gp_sizing/mux8_passgate",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
            300.0,
        ),
        (
            "gp_sizing/mux8_domino",
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
            300.0,
        ),
        ("gp_sizing/inc13", MacroSpec::Incrementor { width: 13 }, 4000.0),
    ] {
        let circuit = spec.generate();
        let boundary = boundary_for(&circuit, 20.0);
        bench(name, || {
            let out = size_circuit(
                black_box(&circuit),
                lib,
                &boundary,
                &DelaySpec::uniform(budget),
                opts,
            )
            .expect("feasible");
            out.total_width
        });
    }
}

fn bench_compaction(lib: &ModelLibrary, opts: &SizingOptions) {
    for bits in [8usize, 16, 32] {
        let circuit = MacroSpec::ClaAdder { width: bits }.generate();
        let boundary = Boundary::default();
        bench(&format!("path_compaction/cla{bits}"), || {
            let stats = compaction_stats(black_box(&circuit), lib, &boundary, opts).unwrap();
            stats.classes.len()
        });
    }
}

fn bench_sta(lib: &ModelLibrary) {
    let circuit = MacroSpec::ClaAdder { width: 32 }.generate();
    let sizing = Sizing::uniform(circuit.labels(), 4.0);
    let boundary = Boundary::default();
    bench("sta_cla32", || {
        let report = analyze(black_box(&circuit), lib, &sizing, &boundary).unwrap();
        report
            .worst_over(circuit.output_ports().map(|p| p.net))
            .map(|(_, a)| a.time)
    });
}

fn bench_simulation() {
    let circuit = MacroSpec::ClaAdder { width: 32 }.generate();
    bench("sim_cla32_vector", || {
        let mut sim = Simulator::new(&circuit);
        sim.set("clk", Logic::Zero).unwrap();
        for i in 0..32 {
            sim.set(&format!("a{i}"), Logic::from_bool(i % 3 == 0))
                .unwrap();
            sim.set(&format!("b{i}"), Logic::from_bool(i % 5 == 0))
                .unwrap();
        }
        sim.set("cin0", Logic::One).unwrap();
        sim.settle().unwrap();
        sim.set("clk", Logic::One).unwrap();
        sim.settle().unwrap();
        sim.get("cout").unwrap()
    });
}

fn bench_lint() {
    // Lint throughput on the 64-bit adder — the largest database macro —
    // reported as findings scanned per second so the rule engine's cost
    // relative to one GP solve stays visible.
    let circuit = MacroSpec::ClaAdder { width: 64 }.generate();
    let t0 = Instant::now();
    let findings = smart_lint::lint_circuit(&circuit).findings.len();
    let cold = t0.elapsed();
    bench("lint_cla64_full_engine", || {
        smart_lint::lint_circuit(black_box(&circuit)).findings.len()
    });
    bench("lint_cla64_dataflow_only", || {
        smart_lint::dataflow::MonotonicityAnalysis::run(black_box(&circuit)).iterations()
    });
    let per_sec = findings as f64 / cold.as_secs_f64();
    println!(
        "lint_cla64 throughput: {findings} findings in {cold:.1?} cold \
         ({per_sec:.0} findings/s)"
    );
}

fn main() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    bench_gp_sizing(&lib, &opts);
    bench_compaction(&lib, &opts);
    bench_sta(&lib);
    bench_simulation();
    bench_lint();
}
