//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Fanout dominance**: the paper's heuristic (one worst-load
//!    representative per path shape) vs the sound Pareto set — constraint
//!    counts and resulting width at identical specs.
//! 2. **Opportunistic Time Borrowing** (paper §5.3): end-to-end path
//!    constraints vs conventional per-stage budgets on multi-stage domino
//!    macros.
//! 3. **Dynamic-circuit methodology rules**: noise/clock-ratio
//!    constraints on vs off — what undisciplined width optimization does
//!    to clock load.

use smart_core::{compaction_stats, size_circuit, DelaySpec, SizingOptions};
use smart_macros::{ComparatorVariant, MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_sta::Boundary;

fn boundary_for(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

fn main() {
    let lib = ModelLibrary::reference();

    println!("## Ablation 1 — fanout dominance: heuristic vs sound Pareto\n");
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "macro", "raw", "heur paths", "exact paths", "heur width", "exact width"
    );
    for (name, spec, budget) in [
        ("cla16", MacroSpec::ClaAdder { width: 16 }, 1400.0),
        ("cla32", MacroSpec::ClaAdder { width: 32 }, 1800.0),
        (
            "cmp32",
            MacroSpec::Comparator {
                width: 32,
                variant: ComparatorVariant::merced(),
            },
            500.0,
        ),
        ("inc13", MacroSpec::Incrementor { width: 13 }, 4200.0),
    ] {
        let circuit = spec.generate();
        let boundary = boundary_for(&circuit, 12.0);
        let heur = SizingOptions::default();
        let exact = SizingOptions {
            heuristic_dominance: false,
            ..Default::default()
        };
        let sh = compaction_stats(&circuit, &lib, &boundary, &heur)
            .unwrap_or_else(|e| panic!("heuristic compaction: {e}"));
        let se = compaction_stats(&circuit, &lib, &boundary, &exact)
            .unwrap_or_else(|e| panic!("exact compaction: {e}"));
        let wh = size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(budget), &heur)
            .map(|o| o.total_width);
        let we = size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(budget), &exact)
            .map(|o| o.total_width);
        println!(
            "{:<24} {:>10} {:>12} {:>12} {:>12} {:>12}",
            name,
            sh.raw_paths,
            sh.classes.len(),
            se.classes.len(),
            wh.map(|w| format!("{w:.0}")).unwrap_or_else(|e| format!("{e:.10}")),
            we.map(|w| format!("{w:.0}")).unwrap_or_else(|e| format!("{e:.10}")),
        );
    }
    println!(
        "\n(The heuristic's width may differ slightly from the sound mode's; the\n\
         Fig.-4 STA loop guarantees both meet the spec.)\n"
    );

    println!("## Ablation 2 — Opportunistic Time Borrowing (paper §5.3)\n");
    println!(
        "{:<24} {:>14} {:>14} {:>10}",
        "macro", "OTB width", "no-OTB width", "penalty"
    );
    for (name, spec, budget) in [
        (
            "cmp32 (D1-D2)",
            MacroSpec::Comparator {
                width: 32,
                variant: ComparatorVariant::merced(),
            },
            520.0,
        ),
        (
            "zd32 domino (D1-D2)",
            MacroSpec::ZeroDetect {
                width: 32,
                style: smart_macros::ZeroDetectStyle::Domino,
            },
            460.0,
        ),
        ("cla8 (D1 + KS-D2)", MacroSpec::ClaAdder { width: 8 }, 950.0),
    ] {
        let circuit = spec.generate();
        let boundary = boundary_for(&circuit, 15.0);
        let otb = SizingOptions::default();
        let hard = SizingOptions {
            otb: false,
            ..Default::default()
        };
        let w_otb = size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(budget), &otb);
        let w_hard =
            size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(budget), &hard);
        match (w_otb, w_hard) {
            (Ok(a), Ok(b)) => println!(
                "{:<24} {:>14.0} {:>14.0} {:>9.1}%",
                name,
                a.total_width,
                b.total_width,
                100.0 * (b.total_width / a.total_width - 1.0)
            ),
            (Ok(a), Err(e)) => println!(
                "{:<24} {:>14.0} {:>14} (hard boundaries: {e})",
                name, a.total_width, "infeasible"
            ),
            (Err(e), _) => println!("{name:<24} OTB infeasible: {e}"),
        }
    }
    println!(
        "\n(Per-stage budgets either cost width or become outright infeasible —\n\
         the formulation's built-in time borrowing is what makes tight domino\n\
         specs reachable.)\n"
    );

    println!("## Ablation 3 — dynamic-circuit methodology rules (noise/clock ratio)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "macro", "width (on)", "clock (on)", "width (off)", "clock (off)"
    );
    for (name, spec, budget) in [
        (
            "mux8 unsplit domino",
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
            280.0,
        ),
        (
            "mux12 partitioned",
            MacroSpec::Mux {
                topology: MuxTopology::PartitionedDomino,
                width: 12,
            },
            300.0,
        ),
    ] {
        let circuit = spec.generate();
        let boundary = boundary_for(&circuit, 20.0);
        let on = SizingOptions::default();
        let off = SizingOptions {
            noise_constraints: false,
            ..Default::default()
        };
        let a = size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(budget), &on)
            .unwrap_or_else(|e| panic!("disciplined: {e}"));
        let b = size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(budget), &off)
            .unwrap_or_else(|e| panic!("undisciplined: {e}"));
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            name,
            a.total_width,
            circuit.clock_load(&a.sizing),
            b.total_width,
            circuit.clock_load(&b.sizing),
        );
    }
    println!(
        "\n(Without the rules the optimizer buys width with clocked devices —\n\
         slightly less total width, materially more clock load.)"
    );
}
