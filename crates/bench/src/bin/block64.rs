//! §6.4: the full datapath block (macros = 22% width / 36% power);
//! paper reports ~8% block width and ~8% block power reduction.

use smart_bench::block64;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let lib = ModelLibrary::reference();
    let r = block64(&lib, &SizingOptions::default());
    println!("# Section 6.4 — full functional block");
    println!("macro devices        : {}", r.baseline.macro_devices);
    println!(
        "macro width share    : {:.1}%",
        100.0 * r.baseline.macro_width / r.baseline.width
    );
    println!(
        "macro power share    : {:.1}%",
        100.0 * r.baseline.macro_power / r.baseline.power
    );
    println!("block width savings  : {:.1}%", r.width_savings() * 100.0);
    println!("block power savings  : {:.1}%", r.power_savings() * 100.0);
    println!(
        "macro power savings  : {:.1}%",
        r.macro_power_savings() * 100.0
    );
    println!("instances re-sized   : {}", r.resized);
}
