//! Exploration scaling study: wall-clock of the Fig.-1 topology sweep at
//! 1/2/4/8 workers, plus the memoization cache's algorithmic speedup on
//! repeated sweeps (the multi-instance reality: a datapath instantiates
//! the same macro at many points, and every sweep point re-sizes the same
//! alternatives).
//!
//! Thread speedup is bounded by the host's core count — on a single-core
//! CI box the worker sweep proves determinism-at-scale, not speed; the
//! cache rows provide the machine-independent speedup evidence.
//!
//! `--smoke` runs a 2-iteration reduced sweep (CI-sized); the default
//! runs the full macro set.

use std::sync::Arc;
use std::time::{Duration, Instant};

use smart_core::{
    explore_parallel, DelaySpec, Exploration, ParallelOptions, SizingCache, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_sta::Boundary;

struct Case {
    name: &'static str,
    request: MacroSpec,
    spec_ps: f64,
}

fn cases(smoke: bool) -> Vec<Case> {
    if smoke {
        return vec![Case {
            name: "mux4",
            request: MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 4,
            },
            spec_ps: 400.0,
        }];
    }
    vec![
        Case {
            name: "mux8",
            request: MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
            spec_ps: 450.0,
        },
        Case {
            name: "zd16",
            request: MacroSpec::ZeroDetect {
                width: 16,
                style: ZeroDetectStyle::Domino,
            },
            spec_ps: 450.0,
        },
        Case {
            name: "inc13",
            request: MacroSpec::Incrementor { width: 13 },
            spec_ps: 900.0,
        },
    ]
}

fn boundary_for(request: &MacroSpec, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for port in request.generate().output_ports() {
        b.output_loads.insert(port.name.clone(), load);
    }
    b
}

/// One full sweep: every case × every load, at the given worker count.
/// Returns elapsed wall clock and the concatenated tables.
fn run_sweep(
    cases: &[Case],
    loads: &[f64],
    lib: &ModelLibrary,
    opts: &SizingOptions,
    par: &ParallelOptions,
) -> (Duration, Vec<Exploration>) {
    let start = Instant::now();
    let mut tables = Vec::new();
    for case in cases {
        for &load in loads {
            let boundary = boundary_for(&case.request, load);
            tables.push(explore_parallel(
                &case.request,
                lib,
                &boundary,
                &DelaySpec::uniform(case.spec_ps),
                opts,
                par,
            ));
        }
    }
    (start.elapsed(), tables)
}

/// Order-sensitive fingerprint of a sweep's results: per row, the spec
/// and either the exact total-width bits or the failure taxonomy. Two
/// sweeps agree iff their fingerprints agree.
fn fingerprint(tables: &[Exploration]) -> String {
    let mut out = String::new();
    for t in tables {
        for c in &t.candidates {
            out.push_str(&match &c.result {
                Ok(m) => format!("{}:{:016x};", c.spec, m.outcome.total_width.to_bits()),
                Err(e) => format!("{}:{};", c.spec, e.taxonomy()),
            });
        }
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iterations = if smoke { 2 } else { 3 };
    let loads: &[f64] = if smoke { &[12.0, 20.0] } else { &[8.0, 16.0, 32.0] };
    let cases = cases(smoke);
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();

    println!(
        "# Exploration scaling ({} mode, cases [{}] x {} load(s), best of {iterations})\n",
        if smoke { "smoke" } else { "full" },
        cases.iter().map(|c| c.name).collect::<Vec<_>>().join(", "),
        loads.len(),
    );

    // --- Worker scaling (cold, no cache) ------------------------------
    println!("{:<9} {:>10} {:>9}  vs serial", "workers", "wall", "speedup");
    let mut serial_best = Duration::MAX;
    let mut serial_print: Option<String> = None;
    let mut workers_diverged = false;
    for workers in [1usize, 2, 4, 8] {
        let par = ParallelOptions::with_workers(workers);
        let mut best = Duration::MAX;
        let mut print = String::new();
        for _ in 0..iterations {
            let (elapsed, tables) = run_sweep(&cases, loads, &lib, &opts, &par);
            best = best.min(elapsed);
            print = fingerprint(&tables);
        }
        let status = if let Some(reference) = &serial_print {
            if *reference == print {
                "identical"
            } else {
                workers_diverged = true;
                "DIVERGED"
            }
        } else {
            serial_best = best;
            serial_print = Some(print);
            "reference"
        };
        println!(
            "{workers:<9} {:>9.1}ms {:>8.2}x  {status}",
            best.as_secs_f64() * 1e3,
            serial_best.as_secs_f64() / best.as_secs_f64(),
        );
    }

    // --- Memoization speedup (serial, shared cache) -------------------
    // A datapath instantiates the same macro at many sweep points; the
    // second pass replays every GP/STA solve from the cache.
    let cache = Arc::new(SizingCache::new());
    let mut cached_opts = opts.clone();
    cached_opts.cache = Some(Arc::clone(&cache));
    let par = ParallelOptions::serial();
    let (cold, cold_tables) = run_sweep(&cases, loads, &lib, &cached_opts, &par);
    let (warm, warm_tables) = run_sweep(&cases, loads, &lib, &cached_opts, &par);
    let (hits, misses) = cache.stats();
    println!("\n{:<9} {:>10} {:>9}  hit-rate", "cache", "wall", "speedup");
    println!(
        "{:<9} {:>9.1}ms {:>8.2}x  -",
        "cold",
        cold.as_secs_f64() * 1e3,
        1.0,
    );
    println!(
        "{:<9} {:>9.1}ms {:>8.2}x  {:.0}% ({hits} hits / {misses} misses lifetime)",
        "warm",
        warm.as_secs_f64() * 1e3,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        100.0 * warm_tables
            .iter()
            .map(|t| t.cache_hits)
            .sum::<usize>() as f64
            / warm_tables
                .iter()
                .map(|t| t.cache_hits + t.cache_misses)
                .sum::<usize>()
                .max(1) as f64,
    );
    let agree = fingerprint(&cold_tables) == fingerprint(&warm_tables);
    println!(
        "\n(warm tables {} the cold tables; thread speedup is capped by the\n\
         host's cores — the cache row is the machine-independent evidence.)",
        if agree { "replay exactly" } else { "DIVERGED from" }
    );

    // --- Trace overhead (serial, no cache) ----------------------------
    // The observability layer is off by default; the off row must cost
    // nothing measurable (<1% is the PR's acceptance criterion — events
    // behind a disabled trace are a single thread-local read), and the
    // on row documents what full-fidelity tracing costs.
    let traced_diverged = {
        let mut traced_opts = opts.clone();
        traced_opts.trace = smart_trace::Trace::enabled();
        let par = ParallelOptions::serial();
        let mut off = Duration::MAX;
        let mut on = Duration::MAX;
        let mut off_print = String::new();
        let mut on_print = String::new();
        let mut events = 0usize;
        for _ in 0..iterations {
            let (elapsed, tables) = run_sweep(&cases, loads, &lib, &opts, &par);
            off = off.min(elapsed);
            off_print = fingerprint(&tables);
            let (elapsed, tables) = run_sweep(&cases, loads, &lib, &traced_opts, &par);
            on = on.min(elapsed);
            on_print = fingerprint(&tables);
        }
        events = events.max(traced_opts.trace.collect().stable_event_count());
        println!("\n{:<9} {:>10} {:>9}  events", "trace", "wall", "overhead");
        println!("{:<9} {:>9.1}ms {:>9}  -", "off", off.as_secs_f64() * 1e3, "-");
        println!(
            "{:<9} {:>9.1}ms {:>8.1}%  {events} stable (all iterations)",
            "on",
            on.as_secs_f64() * 1e3,
            100.0 * (on.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0),
        );
        println!(
            "\n(tracing {} the untraced rows; the off row is the product\n\
             configuration and the one the <1% overhead budget applies to.)",
            if off_print == on_print { "reproduces" } else { "DIVERGED from" }
        );
        off_print != on_print
    };
    if !agree || workers_diverged || traced_diverged {
        std::process::exit(1);
    }
}
