//! Fig. 5(a): normalized total transistor width of incrementors,
//! original (hand-design model) vs SMART, at identical measured delay.

use smart_bench::fig5a;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let lib = ModelLibrary::reference();
    let rows = fig5a(&lib, &SizingOptions::default());
    println!("# Fig 5(a) — incrementors: normalized transistor width");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "circuit", "original", "SMART", "normalized", "savings", "delay(ps)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.3} {:>8.1}% {:>10.1}",
            r.circuit,
            r.original_width,
            r.smart_width,
            r.normalized(),
            r.width_savings() * 100.0,
            r.delay
        );
    }
    let avg = rows.iter().map(|r| r.width_savings()).sum::<f64>() / rows.len() as f64;
    println!("# average width savings: {:.1}%", avg * 100.0);
}
