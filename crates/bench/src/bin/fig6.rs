//! Fig. 6: area-delay tradeoff curve of the 64-bit dynamic CLA adder
//! (paper's normalized delays 1.0, 1.074, 1.1716, 1.2707).

use smart_bench::fig6;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let lib = ModelLibrary::reference();
    let pts = fig6(&lib, &SizingOptions::default(), width);
    println!("# Fig 6 — {width}-bit domino adder area-delay curve");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "norm delay", "norm area", "delay (ps)", "width"
    );
    for p in &pts {
        println!(
            "{:>12.4} {:>12.4} {:>12.1} {:>12.1}",
            p.norm_delay, p.norm_area, p.delay_ps, p.width
        );
    }
}
