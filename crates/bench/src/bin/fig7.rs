//! Fig. 7: 32-bit D1-D2 comparator topology exploration — original vs
//! SMART resize vs the two alternative D1/D2 gate mixes, at matched
//! phase delays.

use smart_bench::fig7;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let lib = ModelLibrary::reference();
    let rows = fig7(&lib, &SizingOptions::default());
    println!("# Fig 7 — 32-bit comparator topology exploration (normalized to original)");
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>8}",
        "candidate", "area", "clock", "eval", "pre"
    );
    for r in &rows {
        println!(
            "{:<34} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.name, r.norm_area, r.norm_clock, r.norm_eval, r.norm_pre
        );
    }
}
