//! GP Newton-kernel microbenchmark: the perf evidence for the sparse
//! structure-exploiting kernel and warm-start chaining.
//!
//! Four sections, all written to a machine-readable `BENCH_gp.json`:
//!
//! * **kernel** — per-macro sizing-GP solve wall time and Newton
//!   steps/sec for the sparse production kernel vs the dense reference
//!   oracle (`solve_reference`), same problems, same trajectories;
//! * **warm_start** — phase-1 + phase-2 step counts and wall time across
//!   a simulated relaxation ladder, with chaining (rung k+1 starts from
//!   rung k's solution) vs without (every rung restarts from mid-range
//!   widths);
//! * **audit** — dominance pruning on the multi-corner
//!   (slow/typical/fast) constraint system: pruned-constraint counts per
//!   macro and end-to-end audit+solve time vs solving the full system;
//! * **explore_scaling** — the acceptance number: the full
//!   representative sweep of `explore_scaling` at one worker, measured
//!   here and compared against the recorded pre-PR baseline.
//!
//! `--smoke` shrinks every section to CI size; `--out PATH` redirects
//! the JSON (CI uses this so smoke numbers never clobber the committed
//! full-run record).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use smart_audit::{audit_problem, AuditConfig};
use smart_core::constraints::{boundary_extra_loads, build_sizing_gp, SizingGp};
use smart_core::{
    compact, explore_parallel, DelaySpec, ParallelOptions, SizingOptions,
};
use smart_gp::SolverOptions;
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::{CornerSet, ModelLibrary};
use smart_sta::Boundary;

/// `explore_scaling` full-sweep serial wall time (best of 3) measured at
/// the commit before this kernel landed (c6d5b09, dense `Vec<Vec<f64>>`
/// Newton steps, no warm-start chaining), on the same container class CI
/// uses. The acceptance criterion is ≥ 2× against this number.
const PRE_PR_BASELINE_MS: f64 = 168.3;

fn boundary_for(request: &MacroSpec, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for port in request.generate().output_ports() {
        b.output_loads.insert(port.name.clone(), load);
    }
    b
}

/// Builds one macro's sizing GP the way `size_circuit` would (honoring
/// `opts.corners`: a multi-corner set emits the whole timing/slope
/// family once per corner).
fn sizing_gp_with(
    request: &MacroSpec,
    load: f64,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> SizingGp {
    let circuit = request.generate();
    let lib = ModelLibrary::reference();
    let boundary = boundary_for(request, load);
    let (_, vars) = smart_models::label_vars(&circuit);
    let extra = boundary_extra_loads(&circuit, &boundary);
    let compaction = compact(&circuit, &lib, &vars, &extra, opts)
        .unwrap_or_else(|e| panic!("compaction: {e}"));
    build_sizing_gp(&circuit, &lib, &compaction, &boundary, &extra, spec, opts)
        .unwrap_or_else(|e| panic!("GP builds: {e}"))
}

/// Builds one macro's single-corner sizing GP under default options.
fn sizing_gp(request: &MacroSpec, load: f64, spec: &DelaySpec) -> SizingGp {
    sizing_gp_with(request, load, spec, &SizingOptions::default())
}

struct KernelRow {
    name: &'static str,
    dim: usize,
    constraints: usize,
    newton_steps: usize,
    sparse_ms: f64,
    dense_ms: f64,
    steps_per_sec: f64,
}

/// Times `solve` and `solve_reference` on one sizing GP (best of
/// `iters`); asserts both walk the same trajectory.
fn bench_kernel(name: &'static str, built: &SizingGp, iters: usize) -> KernelRow {
    let opts = SolverOptions::default();
    let mut sparse_best = Duration::MAX;
    let mut dense_best = Duration::MAX;
    let mut steps = 0usize;
    for _ in 0..iters {
        let t0 = Instant::now();
        let sol = built.gp.solve(&opts).unwrap_or_else(|e| panic!("sparse solve: {e}"));
        sparse_best = sparse_best.min(t0.elapsed());
        steps = sol.phase1_newton_steps + sol.phase2_newton_steps;

        let t0 = Instant::now();
        let dsol = built
            .gp
            .solve_reference(&opts)
            .unwrap_or_else(|e| panic!("dense solve: {e}"));
        dense_best = dense_best.min(t0.elapsed());
        assert_eq!(
            steps,
            dsol.phase1_newton_steps + dsol.phase2_newton_steps,
            "{name}: kernels walked different trajectories"
        );
    }
    KernelRow {
        name,
        dim: built.gp.dim(),
        constraints: built.gp.constraints().len(),
        newton_steps: steps,
        sparse_ms: sparse_best.as_secs_f64() * 1e3,
        dense_ms: dense_best.as_secs_f64() * 1e3,
        steps_per_sec: steps as f64 / sparse_best.as_secs_f64().max(1e-12),
    }
}

struct ChainRow {
    phase1_steps: usize,
    phase2_steps: usize,
    ms: f64,
}

/// Simulates `size_to_spec`'s relaxation ladder on one macro: solve at a
/// tight starting spec, then re-solve at progressively relaxed specs
/// (the flow loosens 1.1× per rung). With `chain`, rung k+1 starts from
/// rung k's solution (what the sizing loop now does); without, every
/// rung restarts from mid-range widths (the pre-PR behavior). On these
/// macros the ablation is roughly step-neutral — the barrier schedule,
/// not the start point, dominates the step count — so chaining's value
/// in the flow is anchoring (keeping phase I inside the size box on
/// macros whose natural widths sit far from mid-range), not raw speed;
/// the JSON records both sides so that regressions in either direction
/// are visible.
fn bench_chaining(request: &MacroSpec, load: f64, base_ps: f64, chain: bool) -> ChainRow {
    let lib = ModelLibrary::reference();
    let w0 = (lib.process().w_min * lib.process().w_max).sqrt();
    let relax = [1.0, 1.1, 1.21, 1.331];
    let mut p1 = 0usize;
    let mut p2 = 0usize;
    let mut prev: Option<Vec<f64>> = None;
    let t0 = Instant::now();
    for factor in relax {
        let built = sizing_gp(request, load, &DelaySpec::uniform(base_ps * factor));
        let initial = match (&prev, chain) {
            (Some(x), true) => x.clone(),
            _ => vec![w0; built.gp.dim()],
        };
        let opts = SolverOptions {
            initial_x: Some(initial),
            ..Default::default()
        };
        let sol = built.gp.solve(&opts).unwrap_or_else(|e| panic!("retarget solve: {e}"));
        p1 += sol.phase1_newton_steps;
        p2 += sol.phase2_newton_steps;
        prev = Some(sol.x);
    }
    ChainRow {
        phase1_steps: p1,
        phase2_steps: p2,
        ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

struct AuditRow {
    name: &'static str,
    constraints: usize,
    prunable: usize,
    audit_ms: f64,
    full_ms: f64,
    pruned_ms: f64,
}

/// Audit section: dominance pruning on the multi-corner constraint
/// system. Builds the macro's sizing GP against the slow/typical/fast
/// corner set (every timing/slope constraint emitted three times over
/// shared width variables — the workload PR 7 created and the pruner
/// targets), runs the static audit, and times the Newton solve of the
/// full system vs the audit+solve of the pruned one (best of `iters`).
/// Sanity-checks in-process that pruning moved the optimum by at most a
/// relative 1e-6 — the cheap echo of the exhaustive parity suite.
fn bench_audit(name: &'static str, request: &MacroSpec, load: f64, ps: f64, iters: usize) -> AuditRow {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions {
        corners: Some(CornerSet::slow_typical_fast(lib.process())),
        ..Default::default()
    };
    let built = sizing_gp_with(request, load, &DelaySpec::uniform(ps), &opts);
    let cfg = AuditConfig::default();

    let mut audit_best = Duration::MAX;
    let mut outcome = audit_problem(&built.gp, name, &cfg);
    for _ in 0..iters {
        let t0 = Instant::now();
        outcome = audit_problem(&built.gp, name, &cfg);
        audit_best = audit_best.min(t0.elapsed());
    }
    assert!(
        outcome.certificate.is_none(),
        "{name}: unexpected infeasibility certificate at a feasible bench spec"
    );
    let pruned = built.gp.without_constraints(&outcome.prunable);

    let solver = SolverOptions::default();
    let mut full_best = Duration::MAX;
    let mut pruned_best = Duration::MAX;
    let mut full_obj = f64::NAN;
    let mut pruned_obj = f64::NAN;
    for _ in 0..iters {
        let t0 = Instant::now();
        let sol = built.gp.solve(&solver).unwrap_or_else(|e| panic!("full solve: {e}"));
        full_best = full_best.min(t0.elapsed());
        full_obj = sol.objective;

        let t0 = Instant::now();
        let psol = pruned.solve(&solver).unwrap_or_else(|e| panic!("pruned solve: {e}"));
        pruned_best = pruned_best.min(t0.elapsed());
        pruned_obj = psol.objective;
    }
    let rel = (full_obj - pruned_obj).abs() / full_obj.abs().max(1e-12);
    assert!(
        rel <= 1e-6,
        "{name}: pruned optimum drifted {rel:.2e} relative from the full one"
    );
    AuditRow {
        name,
        constraints: built.gp.constraints().len(),
        prunable: outcome.prunable.len(),
        audit_ms: audit_best.as_secs_f64() * 1e3,
        full_ms: full_best.as_secs_f64() * 1e3,
        pruned_ms: pruned_best.as_secs_f64() * 1e3,
    }
}

/// The acceptance sweep: `explore_scaling`'s full case set at one worker
/// (smoke mode shrinks it), best of `iters`.
fn bench_sweep(smoke: bool, iters: usize) -> f64 {
    let cases: Vec<(MacroSpec, f64)> = if smoke {
        vec![(
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 4,
            },
            400.0,
        )]
    } else {
        vec![
            (
                MacroSpec::Mux {
                    topology: MuxTopology::StronglyMutexedPass,
                    width: 8,
                },
                450.0,
            ),
            (
                MacroSpec::ZeroDetect {
                    width: 16,
                    style: ZeroDetectStyle::Domino,
                },
                450.0,
            ),
            (MacroSpec::Incrementor { width: 13 }, 900.0),
        ]
    };
    let loads: &[f64] = if smoke { &[12.0, 20.0] } else { &[8.0, 16.0, 32.0] };
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let par = ParallelOptions::with_workers(1);
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        for (request, ps) in &cases {
            for &load in loads {
                let boundary = boundary_for(request, load);
                let _ = explore_parallel(
                    request,
                    &lib,
                    &boundary,
                    &DelaySpec::uniform(*ps),
                    &opts,
                    &par,
                );
            }
        }
        best = best.min(t0.elapsed());
    }
    best.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_gp.json".to_string());
    let iters = if smoke { 1 } else { 3 };

    // --- Kernel micro: sparse vs dense on real sizing GPs -------------
    let kernel_cases: Vec<(&'static str, MacroSpec, f64)> = if smoke {
        vec![(
            "mux4",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 4,
            },
            900.0,
        )]
    } else {
        vec![
            (
                "mux8_pass",
                MacroSpec::Mux {
                    topology: MuxTopology::StronglyMutexedPass,
                    width: 8,
                },
                900.0,
            ),
            (
                "zd16_domino",
                MacroSpec::ZeroDetect {
                    width: 16,
                    style: ZeroDetectStyle::Domino,
                },
                900.0,
            ),
            ("inc13", MacroSpec::Incrementor { width: 13 }, 2600.0),
            ("inc8_cla", MacroSpec::IncrementorCla { width: 8 }, 1500.0),
        ]
    };
    println!(
        "{:<12} {:>5} {:>6} {:>7} {:>10} {:>10} {:>8} {:>12}",
        "case", "dim", "cons", "steps", "sparse", "dense", "speedup", "steps/sec"
    );
    let mut kernel_rows = Vec::new();
    for (name, request, ps) in &kernel_cases {
        let built = sizing_gp(request, 20.0, &DelaySpec::uniform(*ps));
        let row = bench_kernel(name, &built, iters);
        println!(
            "{:<12} {:>5} {:>6} {:>7} {:>8.2}ms {:>8.2}ms {:>7.2}x {:>12.0}",
            row.name,
            row.dim,
            row.constraints,
            row.newton_steps,
            row.sparse_ms,
            row.dense_ms,
            row.dense_ms / row.sparse_ms.max(1e-9),
            row.steps_per_sec,
        );
        kernel_rows.push(row);
    }

    // --- Warm-start chaining ablation ---------------------------------
    let (chain_req, chain_ps) = if smoke {
        (
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 4,
            },
            500.0,
        )
    } else {
        (MacroSpec::Incrementor { width: 13 }, 2600.0)
    };
    let cold = bench_chaining(&chain_req, 20.0, chain_ps, false);
    let warm = bench_chaining(&chain_req, 20.0, chain_ps, true);
    println!(
        "\nwarm-start chaining (4-rung relaxation ladder on {}):",
        if smoke { "mux4" } else { "inc13" }
    );
    println!(
        "  without: {:>4} phase-1 + {:>4} phase-2 steps, {:>7.2}ms",
        cold.phase1_steps, cold.phase2_steps, cold.ms
    );
    println!(
        "  with:    {:>4} phase-1 + {:>4} phase-2 steps, {:>7.2}ms  ({:.2}x fewer steps)",
        warm.phase1_steps,
        warm.phase2_steps,
        warm.ms,
        (cold.phase1_steps + cold.phase2_steps) as f64
            / ((warm.phase1_steps + warm.phase2_steps) as f64).max(1.0),
    );

    // --- Audit: multi-corner dominance pruning -------------------------
    let audit_cases: Vec<(&'static str, MacroSpec, f64)> = if smoke {
        vec![(
            "mux4_stf",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 4,
            },
            1800.0,
        )]
    } else {
        vec![
            (
                "mux8_stf",
                MacroSpec::Mux {
                    topology: MuxTopology::StronglyMutexedPass,
                    width: 8,
                },
                1800.0,
            ),
            (
                "zd16_stf",
                MacroSpec::ZeroDetect {
                    width: 16,
                    style: ZeroDetectStyle::Domino,
                },
                1800.0,
            ),
            ("inc13_stf", MacroSpec::Incrementor { width: 13 }, 5200.0),
            ("inc8_cla_stf", MacroSpec::IncrementorCla { width: 8 }, 3000.0),
        ]
    };
    println!(
        "\naudit (slow/typical/fast corners):\n{:<14} {:>6} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "case", "cons", "prunable", "audit", "full", "pruned", "speedup"
    );
    let mut audit_rows = Vec::new();
    for (name, request, ps) in &audit_cases {
        let row = bench_audit(name, request, 20.0, *ps, iters);
        println!(
            "{:<14} {:>6} {:>8} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}x",
            row.name,
            row.constraints,
            row.prunable,
            row.audit_ms,
            row.full_ms,
            row.pruned_ms,
            row.full_ms / (row.audit_ms + row.pruned_ms).max(1e-9),
        );
        audit_rows.push(row);
    }
    let audit_full_ms: f64 = audit_rows.iter().map(|r| r.full_ms).sum();
    let audit_pruned_ms: f64 = audit_rows.iter().map(|r| r.audit_ms + r.pruned_ms).sum();
    println!(
        "  sweep: full {audit_full_ms:.2}ms vs audit+pruned {audit_pruned_ms:.2}ms \
         ({:.2}x)",
        audit_full_ms / audit_pruned_ms.max(1e-9)
    );

    // --- Acceptance sweep ----------------------------------------------
    let sweep_ms = bench_sweep(smoke, iters);
    if smoke {
        println!("\nexplore sweep (smoke subset, 1 worker): {sweep_ms:.1}ms");
    } else {
        println!(
            "\nexplore_scaling full sweep, 1 worker: {sweep_ms:.1}ms \
             (pre-PR baseline {PRE_PR_BASELINE_MS}ms, {:.2}x)",
            PRE_PR_BASELINE_MS / sweep_ms.max(1e-9)
        );
    }

    // --- Machine-readable record ---------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"gp_kernel/v1\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"kernel\": [");
    for (i, r) in kernel_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"dim\": {}, \"constraints\": {}, \
             \"newton_steps\": {}, \"sparse_ms\": {:.3}, \"dense_ms\": {:.3}, \
             \"dense_over_sparse\": {:.3}, \"steps_per_sec\": {:.0}}}{}",
            r.name,
            r.dim,
            r.constraints,
            r.newton_steps,
            r.sparse_ms,
            r.dense_ms,
            r.dense_ms / r.sparse_ms.max(1e-9),
            r.steps_per_sec,
            if i + 1 < kernel_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"warm_start_chaining\": {{\n    \"without\": {{\"phase1_steps\": {}, \"phase2_steps\": {}, \"ms\": {:.3}}},\n    \"with\": {{\"phase1_steps\": {}, \"phase2_steps\": {}, \"ms\": {:.3}}},\n    \"step_ratio\": {:.3}\n  }},",
        cold.phase1_steps,
        cold.phase2_steps,
        cold.ms,
        warm.phase1_steps,
        warm.phase2_steps,
        warm.ms,
        (cold.phase1_steps + cold.phase2_steps) as f64
            / ((warm.phase1_steps + warm.phase2_steps) as f64).max(1.0)
    );
    let _ = writeln!(json, "  \"audit\": [");
    for (i, r) in audit_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"constraints\": {}, \"prunable\": {}, \
             \"audit_ms\": {:.3}, \"full_ms\": {:.3}, \"pruned_ms\": {:.3}}}{}",
            r.name,
            r.constraints,
            r.prunable,
            r.audit_ms,
            r.full_ms,
            r.pruned_ms,
            if i + 1 < audit_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"audit_sweep\": {{\"full_ms\": {audit_full_ms:.3}, \
         \"audit_plus_pruned_ms\": {audit_pruned_ms:.3}, \"speedup\": {:.3}}},",
        audit_full_ms / audit_pruned_ms.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"explore_scaling_serial\": {{\n    \"pre_pr_baseline_ms\": {PRE_PR_BASELINE_MS},\n    \"measured_ms\": {sweep_ms:.1},\n    \"speedup\": {:.2},\n    \"full_sweep\": {}\n  }}",
        PRE_PR_BASELINE_MS / sweep_ms.max(1e-9),
        !smoke
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("write BENCH_gp.json: {e}"));
    println!("\nwrote {out_path}");
}
