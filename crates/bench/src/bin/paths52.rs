//! §5.2 experiment: exhaustive vs compacted path counts on the dynamic
//! CLA adder ("over 32,000 paths ... reduced the problem size to 120").

use smart_bench::paths52;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    println!("# Section 5.2 — path compaction on the dynamic CLA adder");
    println!("{:>6} {:>16} {:>10} {:>10}", "bits", "raw paths", "compacted", "ratio");
    for width in [8, 16, 32, 64] {
        let s = paths52(&lib, &opts, width);
        println!(
            "{:>6} {:>16} {:>10} {:>10.1}",
            s.width, s.raw, s.compacted, s.ratio
        );
    }
}
