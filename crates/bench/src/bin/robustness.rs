//! Robustness study: how stable are the §6.1 savings across instance
//! conditions? Sweeps output load and process corner for a fixed macro
//! set and reports the savings distribution — the evidence a methodology
//! paper's reviewers ask for ("does this only work at one operating
//! point?").
//!
//! Failures never abort the sweep: each run that errors is classified
//! through [`smart_core::FlowError::taxonomy`] and the per-row histogram
//! is printed alongside the savings statistics, so a single infeasible
//! corner shows up as data instead of killing the study.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use smart_bench::protocol_61;
use smart_chaos::FaultPlan;
use smart_core::{
    explore_parallel, explore_with, explore_with_parallel, size_circuit, variation_sweep,
    Checkpointer, DelaySpec, ParallelOptions, SizingCache, SizingOptions, VariationOptions,
};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::{CornerSet, ModelLibrary, Process};
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Network, Skew};
use smart_sta::Boundary;
use smart_trace::Trace;

fn stats(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let min = xs.first().copied().unwrap_or(f64::NAN);
    let max = xs.last().copied().unwrap_or(f64::NAN);
    (min, mean, max)
}

fn taxonomy_column(failures: &BTreeMap<&'static str, usize>) -> String {
    if failures.is_empty() {
        return "-".into();
    }
    failures
        .iter()
        .map(|(kind, n)| format!("{kind}\u{d7}{n}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_robustness.json".to_string());
    let opts = SizingOptions::default();
    let loads: &[f64] = if smoke {
        &[10.0, 25.0]
    } else {
        &[6.0, 10.0, 16.0, 25.0, 40.0, 60.0]
    };
    let mut corners: Vec<(&str, ModelLibrary)> = vec![
        ("slow", ModelLibrary::new(Process::slow_corner())),
        ("typical", ModelLibrary::reference()),
        ("fast", ModelLibrary::new(Process::fast_corner())),
    ];
    let mut specs: Vec<(&str, MacroSpec)> = vec![
        (
            "mux8 pass",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
        ),
        (
            "mux8 domino",
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
        ),
        ("inc13", MacroSpec::Incrementor { width: 13 }),
        (
            "zd16 domino",
            MacroSpec::ZeroDetect {
                width: 16,
                style: ZeroDetectStyle::Domino,
            },
        ),
    ];
    if smoke {
        corners.retain(|(name, _)| *name == "typical");
        specs.truncate(2);
    }

    println!("# Savings robustness across loads (6..60 width units) and corners\n");
    println!(
        "{:<14} {:<9} {:>8} {:>8} {:>8} {:>6}  failures",
        "macro", "corner", "min", "mean", "max", "runs"
    );
    let mut total_failures = 0usize;
    for (name, spec) in &specs {
        for (corner, lib) in &corners {
            let mut savings = Vec::new();
            let mut failures: BTreeMap<&'static str, usize> = BTreeMap::new();
            for &load in loads {
                match protocol_61(name, spec, load, lib, &opts) {
                    Ok(row) => savings.push(row.width_savings() * 100.0),
                    Err(e) => {
                        *failures.entry(e.taxonomy()).or_insert(0) += 1;
                    }
                }
            }
            total_failures += failures.values().sum::<usize>();
            let runs = savings.len();
            let taxonomy = taxonomy_column(&failures);
            if savings.is_empty() {
                println!(
                    "{name:<14} {corner:<9} {:>8} {:>8} {:>8} {runs:>6}  {taxonomy}",
                    "-", "-", "-"
                );
                continue;
            }
            let (min, mean, max) = stats(savings);
            println!(
                "{name:<14} {corner:<9} {min:>7.1}% {mean:>7.1}% {max:>7.1}% {runs:>6}  {taxonomy}"
            );
        }
    }
    println!(
        "\n(Savings should be positive and of similar magnitude everywhere:\n\
         the methodology's benefit is not an artifact of one load or corner.\n\
         {total_failures} failed run(s); failures are classified, never fatal.)"
    );

    parallel_section();
    lint_section();
    trace_section();
    let corner_rows = corner_yield_section(smoke);
    let chaos_rows = chaos_section(smoke);
    let serve_rows = serve_section(smoke);
    write_json(&out_path, smoke, &corner_rows, &chaos_rows, &serve_rows);
}

/// One serve configuration's replay of the scripted request mix.
struct ServeRow {
    label: &'static str,
    workers: usize,
    requests: usize,
    elapsed_ms: f64,
    hits: usize,
    misses: usize,
}

/// Throughput of the resident advisor (`smart-serve`): the same scripted
/// request mix is replayed against a cold daemon at 1 and 4 workers and
/// against a warm daemon restarted from the cold one's cache snapshot.
/// Responses must be byte-identical across all three — the warm restart
/// buys latency only, never different bytes (DESIGN.md §16).
fn serve_section(smoke: bool) -> Vec<ServeRow> {
    use smart_serve::{run_script, Advisor, ServeOptions};

    println!("\n# Serve throughput: resident advisor, cold vs warm restart\n");
    let macros: &[&str] = if smoke {
        &["mux4", "mux8:dom", "zd16:domino"]
    } else {
        &["mux4", "mux8:dom", "mux2:enc", "zd16:domino", "zd32", "inc8", "dec8", "penc4"]
    };
    let loads: &[f64] = if smoke { &[15.0] } else { &[10.0, 15.0, 25.0] };
    let mut script = String::new();
    let mut requests = 0usize;
    for (i, m) in macros.iter().enumerate() {
        for load in loads {
            let _ = writeln!(
                script,
                "{{\"op\":\"size\",\"id\":\"s{requests}\",\"macro\":\"{m}\",\"load\":{load},\"delay\":520}}"
            );
            requests += 1;
        }
        // Every third macro also goes through a batch fan-out.
        if i % 3 == 0 {
            let rows = macros
                .iter()
                .map(|m| format!("{{\"macro\":\"{m}\",\"load\":{},\"delay\":520}}", loads[0]))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(script, "{{\"op\":\"batch\",\"id\":\"b{i}\",\"requests\":[{rows}]}}");
            requests += 1;
        }
    }

    let advisor = |workers: usize| {
        Advisor::new(ServeOptions {
            parallel: Some(ParallelOptions::with_workers(workers)),
            ..ServeOptions::default()
        })
    };
    let replay = |a: &Advisor| {
        let mut out = Vec::new();
        run_script(a, &script, &mut out).unwrap_or_else(|e| panic!("serve script io: {e}"));
        String::from_utf8(out).unwrap_or_else(|e| panic!("serve replies must be utf-8: {e}"))
    };
    let timed = |label: &'static str, workers: usize, a: &Advisor| {
        let t0 = std::time::Instant::now();
        let replies = replay(a);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (hits, misses) = a.cache().stats();
        let row = ServeRow { label, workers, requests, elapsed_ms, hits, misses };
        println!(
            "{label:<14} {workers:>7} {requests:>9} {elapsed_ms:>10.1} {:>9.1} {hits:>6} {misses:>7}",
            1e3 * requests as f64 / elapsed_ms
        );
        (row, replies)
    };

    println!(
        "{:<14} {:>7} {:>9} {:>10} {:>9} {:>6} {:>7}",
        "config", "workers", "requests", "ms", "req/s", "hits", "misses"
    );
    let serial = advisor(1);
    let (row1, out1) = timed("cold-serial", 1, &serial);
    let cold = advisor(4);
    let (row4, out4) = timed("cold-pool", 4, &cold);
    let warm = advisor(4);
    let restored = warm
        .cache()
        .restore(&cold.cache().snapshot())
        .unwrap_or_else(|| panic!("own snapshot must restore"));
    assert!(restored > 0, "the cold run must have populated the cache");
    let (roww, outw) = timed("warm-restart", 4, &warm);

    assert_eq!(out1, out4, "serve replies must not depend on the worker count");
    assert_eq!(out4, outw, "a warm restart must replay byte-identically");
    println!(
        "\n(replies byte-identical across 1/4 workers and across the\n\
         snapshot/warm-restart; the warm daemon re-solves nothing it has\n\
         cached — cache effects are latency-only; DESIGN.md \u{a7}16.)"
    );
    vec![row1, row4, roww]
}

/// One macro's multi-corner solve plus its Monte-Carlo yield.
struct CornerYieldRow {
    name: &'static str,
    binding: String,
    /// `(corner, data ps)` in corner-set order.
    corners: Vec<(String, f64)>,
    samples: usize,
    passes: usize,
}

/// Multi-corner robust sizing + statistical variation: each macro is
/// sized once against the slow/typical/fast corner set, then the shipped
/// sizing is wobbled (`smart-prng`-seeded per-device width/threshold
/// perturbations) and re-measured through STA at every corner — the
/// yield-style pass rate of the robust solution. Deterministic for the
/// fixed seed at any `SMART_WORKERS` (DESIGN.md §14).
fn corner_yield_section(smoke: bool) -> Vec<CornerYieldRow> {
    println!("\n# Multi-corner robust sizing and variation yield\n");
    let lib = ModelLibrary::reference();
    let opts = SizingOptions {
        corners: Some(CornerSet::slow_typical_fast(lib.process())),
        ..Default::default()
    };
    let vopts = VariationOptions {
        samples: if smoke { 16 } else { 64 },
        ..VariationOptions::default()
    };
    // Per-macro budgets: each must be feasible at the *slow* corner,
    // which needs ~25-30% more headroom than the typical-only flow.
    let specs: &[(&'static str, MacroSpec, f64)] = &[
        (
            "mux4 pass",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 4,
            },
            450.0,
        ),
        (
            "mux4 domino",
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 4,
            },
            450.0,
        ),
        ("inc8", MacroSpec::Incrementor { width: 8 }, 2000.0),
    ];
    let specs = &specs[..if smoke { 2 } else { specs.len() }];

    println!(
        "{:<14} {:<9} {:>9} {:>9} {:>9} {:>9}",
        "macro", "binding", "slow", "typical", "fast", "yield"
    );
    let mut rows = Vec::new();
    for (name, spec, budget) in specs {
        let delay = DelaySpec::uniform(*budget);
        let circuit = spec.generate();
        let mut boundary = Boundary::default();
        for port in circuit.output_ports() {
            boundary.output_loads.insert(port.name.clone(), 15.0);
        }
        let outcome = match size_circuit(&circuit, &lib, &boundary, &delay, &opts) {
            Ok(o) => o,
            Err(e) => {
                println!("{name:<14} infeasible: {}", e.taxonomy());
                continue;
            }
        };
        let report = variation_sweep(
            &circuit,
            &lib,
            &boundary,
            &delay,
            &outcome.sizing,
            &opts,
            &vopts,
            &ParallelOptions::with_workers(4),
        )
        .unwrap_or_else(|e| panic!("variation sweep on a feasible sizing: {e}"));
        let by_name = |n: &str| {
            outcome
                .corner_delays
                .iter()
                .find(|c| c.corner == n)
                .map_or(f64::NAN, |c| c.data)
        };
        println!(
            "{name:<14} {:<9} {:>9.1} {:>9.1} {:>9.1} {:>8.0}%",
            outcome.binding_corner,
            by_name("slow"),
            by_name("typical"),
            by_name("fast"),
            report.yield_rate() * 100.0
        );
        rows.push(CornerYieldRow {
            name,
            binding: outcome.binding_corner.clone(),
            corners: outcome
                .corner_delays
                .iter()
                .map(|c| (c.corner.clone(), c.data))
                .collect(),
            samples: report.samples.len(),
            passes: report.passes,
        });
    }
    println!(
        "\n(one sizing feasible at every corner; the binding corner is the one\n\
         the GP actually paid for. Yield = fraction of seeded width/threshold\n\
         wobbles that still meet spec at all corners, without re-solving.)"
    );
    rows
}

/// One fault-rate point of the chaos sweep.
struct ChaosRow {
    rate: f64,
    seed: u64,
    total: usize,
    survived: usize,
    salvaged: usize,
    taxonomy: BTreeMap<&'static str, usize>,
}

/// Graceful-degradation study: the same healthy mux sweep under a
/// seeded [`FaultPlan`] at increasing fault rates. *Survival* is the
/// fraction of candidates that still size; *salvage* is the fraction of
/// the sweep a rerun recovers from the crashed run's checkpoint instead
/// of recomputing (the transient faults having cleared). Both runs of a
/// pair share one checkpoint file, exactly like a killed-and-restarted
/// process.
fn chaos_section(smoke: bool) -> Vec<ChaosRow> {
    println!("\n# Chaos: survival and salvage under seeded fault injection\n");
    let widths: &[usize] = if smoke { &[4] } else { &[4, 8] };
    let mut specs = Vec::new();
    for &w in widths {
        for t in MuxTopology::all() {
            if t.supports_width(w) {
                specs.push(MacroSpec::Mux { topology: t, width: w });
            }
        }
    }
    let lib = ModelLibrary::reference();
    let mut boundary = Boundary::default();
    for spec in &specs {
        for port in spec.generate().output_ports() {
            boundary.output_loads.insert(port.name.clone(), 15.0);
        }
    }
    let delay = DelaySpec::uniform(450.0);
    let workers = ParallelOptions::with_workers(4);
    let rates: &[f64] = if smoke { &[0.0, 0.5] } else { &[0.0, 0.1, 0.25, 0.5, 0.8] };

    println!(
        "{:<6} {:>6} {:>9} {:>10} {:>9} {:>10}  taxonomy",
        "rate", "total", "survived", "survival", "salvaged", "salvage"
    );
    let mut rows = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let seed = 0xC4A0_5000 + i as u64;
        let mut path = std::env::temp_dir();
        path.push(format!("smart-bench-chaos-{}-{i}.json", std::process::id()));
        std::fs::remove_file(&path).ok();

        // The "crashed" run: faults injected, checkpoint recording.
        let chaotic = SizingOptions {
            chaos: Some(Arc::new(FaultPlan::uniform(seed, rate))),
            checkpoint: Some(Arc::new(Checkpointer::new(&path))),
            ..Default::default()
        };
        let table = explore_with_parallel(
            specs.clone(),
            MacroSpec::generate,
            &lib,
            &boundary,
            &delay,
            &chaotic,
            &workers,
        );

        // The restart: no faults, same checkpoint file.
        let restart = SizingOptions {
            checkpoint: Some(Arc::new(Checkpointer::new(&path))),
            ..Default::default()
        };
        let resumed = explore_with_parallel(
            specs.clone(),
            MacroSpec::generate,
            &lib,
            &boundary,
            &delay,
            &restart,
            &workers,
        );
        std::fs::remove_file(&path).ok();
        assert_eq!(
            resumed.feasible_count(),
            specs.len(),
            "the fault-free restart must recover every candidate"
        );

        let row = ChaosRow {
            rate,
            seed,
            total: table.candidates.len(),
            survived: table.feasible_count(),
            salvaged: resumed.resumed,
            taxonomy: table.failure_taxonomy().into_iter().collect(),
        };
        println!(
            "{:<6} {:>6} {:>9} {:>9.0}% {:>9} {:>9.0}%  {}",
            row.rate,
            row.total,
            row.survived,
            100.0 * row.survived as f64 / row.total.max(1) as f64,
            row.salvaged,
            100.0 * row.salvaged as f64 / row.total.max(1) as f64,
            taxonomy_column(&row.taxonomy)
        );
        rows.push(row);
    }
    println!(
        "\n(every fault is seeded and classified — survival degrades smoothly\n\
         with the injected rate, and the checkpoint salvages the surviving\n\
         rows on restart instead of recomputing the sweep; DESIGN.md \u{a7}13.)"
    );
    rows
}

/// Machine-readable record of the corner/yield, chaos, and serve sweeps.
fn write_json(
    out_path: &str,
    smoke: bool,
    corner_rows: &[CornerYieldRow],
    rows: &[ChaosRow],
    serve_rows: &[ServeRow],
) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"robustness/v3\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"corner_yield\": [");
    for (i, r) in corner_rows.iter().enumerate() {
        let corners = r
            .corners
            .iter()
            .map(|(name, data)| format!("{{\"corner\": \"{name}\", \"data_ps\": {data:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"macro\": \"{}\", \"binding\": \"{}\", \"corners\": [{corners}], \
             \"samples\": {}, \"passes\": {}, \"yield\": {:.4}}}{}",
            r.name,
            r.binding,
            r.samples,
            r.passes,
            r.passes as f64 / r.samples.max(1) as f64,
            if i + 1 < corner_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"chaos\": [");
    for (i, r) in rows.iter().enumerate() {
        let taxonomy = r
            .taxonomy
            .iter()
            .map(|(tag, n)| format!("{{\"tag\": \"{tag}\", \"count\": {n}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"rate\": {:.2}, \"seed\": {}, \"total\": {}, \"survived\": {}, \
             \"survival_rate\": {:.4}, \"salvaged\": {}, \"salvage_rate\": {:.4}, \
             \"taxonomy\": [{taxonomy}]}}{}",
            r.rate,
            r.seed,
            r.total,
            r.survived,
            r.survived as f64 / r.total.max(1) as f64,
            r.salvaged,
            r.salvaged as f64 / r.total.max(1) as f64,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serve\": [");
    for (i, r) in serve_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"workers\": {}, \"requests\": {}, \
             \"elapsed_ms\": {:.1}, \"throughput_rps\": {:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"byte_identical\": true}}{}",
            r.label,
            r.workers,
            r.requests,
            r.elapsed_ms,
            1e3 * r.requests as f64 / r.elapsed_ms,
            r.hits,
            r.misses,
            if i + 1 < serve_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(out_path, json)
        .unwrap_or_else(|e| panic!("write BENCH_robustness.json: {e}"));
    println!("\nwrote {out_path}");
}

/// Robustness of the *parallel* exploration runtime: the serial table is
/// the reference; worker counts and a shared memoization cache must not
/// change a single row. Prints per-configuration agreement plus the
/// cache hit rate a repeated sweep achieves.
fn parallel_section() {
    println!("\n# Parallel exploration determinism (Fig.-1 sweep, mux8 request)\n");
    let lib = ModelLibrary::reference();
    let request = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 8,
    };
    let loads = [10.0, 25.0];
    let spec = DelaySpec::uniform(450.0);

    let sweep = |opts: &SizingOptions, workers: usize| -> Vec<String> {
        let mut rows = Vec::new();
        for &load in &loads {
            let mut boundary = Boundary::default();
            boundary.output_loads.insert("y".into(), load);
            let table = explore_parallel(
                &request,
                &lib,
                &boundary,
                &spec,
                opts,
                &ParallelOptions::with_workers(workers),
            );
            for c in &table.candidates {
                rows.push(match &c.result {
                    Ok(m) => format!("{}@{load}:{:016x}", c.spec, m.outcome.total_width.to_bits()),
                    Err(e) => format!("{}@{load}:{}", c.spec, e.taxonomy()),
                });
            }
        }
        rows
    };

    let opts = SizingOptions::default();
    let reference = sweep(&opts, 1);
    println!("{:<22} rows={:<3} status", "configuration", reference.len());
    println!("{:<22} rows={:<3} reference", "serial", reference.len());
    for workers in [2usize, 4, 8] {
        let rows = sweep(&opts, workers);
        println!(
            "{:<22} rows={:<3} {}",
            format!("{workers} workers"),
            rows.len(),
            if rows == reference { "identical" } else { "DIVERGED" }
        );
    }

    let cache = Arc::new(SizingCache::new());
    let cached = SizingOptions {
        cache: Some(Arc::clone(&cache)),
        ..Default::default()
    };
    let cold = sweep(&cached, 4);
    let warm = sweep(&cached, 4);
    let (hits, misses) = cache.stats();
    println!(
        "{:<22} rows={:<3} {}",
        "4 workers + cache",
        cold.len(),
        if cold == reference && warm == reference {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "\n(cache over both cached sweeps: {hits} hits / {misses} misses; a row\n\
         that ever diverges across these configurations is a determinism bug —\n\
         see DESIGN.md \u{a7}9 for the contract.)"
    );
}

/// Robustness of the observability layer itself: tracing a parallel
/// sweep must not perturb its rows, and the *stable* export must come
/// out byte-identical no matter how many workers ran the sweep — the
/// per-scope `(scope, seq)` merge, not wall-clock order, decides the
/// bytes.
fn trace_section() {
    println!("\n# Trace determinism (stable export across worker counts)\n");
    let lib = ModelLibrary::reference();
    let request = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    };
    let mut boundary = Boundary::default();
    boundary.output_loads.insert("y".into(), 15.0);
    let spec = DelaySpec::uniform(450.0);

    let export = |workers: usize| -> String {
        let opts = SizingOptions {
            trace: Trace::enabled(),
            cache: Some(Arc::new(SizingCache::new())),
            ..Default::default()
        };
        let table = explore_parallel(
            &request,
            &lib,
            &boundary,
            &spec,
            &opts,
            &ParallelOptions::with_workers(workers),
        );
        assert!(!table.candidates.is_empty());
        opts.trace.collect().to_json()
    };

    let reference = export(1);
    println!("{:<22} bytes={:<7} status", "configuration", reference.len());
    println!("{:<22} bytes={:<7} reference", "serial", reference.len());
    for workers in [2usize, 4, 8] {
        let json = export(workers);
        println!(
            "{:<22} bytes={:<7} {}",
            format!("{workers} workers"),
            json.len(),
            if json == reference { "byte-identical" } else { "DIVERGED" }
        );
    }
    println!(
        "\n(the stable export orders events by (scope, seq) and carries no\n\
         timestamps or worker counts; scheduling-dependent telemetry is\n\
         quarantined in unstable events — DESIGN.md \u{a7}11.)"
    );
}

/// An electrically illegal candidate: D1 → inverter → *extra inverter* →
/// D2, whose second-stage data input is monotone-falling during evaluate
/// (rule SL101).
fn broken_pipeline() -> Circuit {
    let mut c = Circuit::new("broken");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap_or_else(|e| panic!("fresh net: {e}"));
    let a = c.add_net("a").unwrap_or_else(|e| panic!("fresh net: {e}"));
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap_or_else(|e| panic!("fresh net: {e}"));
    let q = c.add_net("q").unwrap_or_else(|e| panic!("fresh net: {e}"));
    let qb = c.add_net("qb").unwrap_or_else(|e| panic!("fresh net: {e}"));
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap_or_else(|e| panic!("fresh net: {e}"));
    let y = c.add_net("y").unwrap_or_else(|e| panic!("fresh net: {e}"));
    let p = c.label("P1");
    let n = c.label("N1");
    for (path, a, y) in [("h1", dyn1, q), ("bad", q, qb), ("h2", dyn2, y)] {
        c.add(
            path,
            ComponentKind::Inverter { skew: Skew::Balanced },
            &[a, y],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap_or_else(|e| panic!("valid inverter: {e}"));
    }
    for (path, d, out) in [("d1", a, dyn1), ("d2", qb, dyn2)] {
        c.add(
            path,
            ComponentKind::Domino { network: Network::Input(0), clocked_eval: true },
            &[clk, d, out],
            &[
                (DeviceRole::Precharge, p),
                (DeviceRole::DataN, n),
                (DeviceRole::Evaluate, n),
            ],
        )
        .unwrap_or_else(|e| panic!("valid domino: {e}"));
    }
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("y", y);
    c.add_route_parasitics(0.5, 0.8);
    c
}

/// Robustness of the exploration *lint gate*: a sweep containing an
/// electrically illegal candidate keeps running, the bad row lands in
/// the failures column as `lint×1`, and no sizing effort is spent on it.
fn lint_section() {
    println!("\n# Lint-gate robustness (poisoned candidate in a mux4 sweep)\n");
    let lib = ModelLibrary::reference();
    let poison = MacroSpec::Mux { topology: MuxTopology::Tristate, width: 4 };
    let specs = vec![
        MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 },
        poison.clone(),
        MacroSpec::Mux { topology: MuxTopology::UnsplitDomino, width: 4 },
    ];
    let mut boundary = Boundary::default();
    boundary.output_loads.insert("y".into(), 15.0);
    let cache = Arc::new(SizingCache::new());
    let opts = SizingOptions {
        cache: Some(Arc::clone(&cache)),
        ..Default::default()
    };
    let table = explore_with(
        specs,
        |spec| if *spec == poison { broken_pipeline() } else { spec.generate() },
        &lib,
        &boundary,
        &DelaySpec::uniform(450.0),
        &opts,
    );
    let failures: BTreeMap<&'static str, usize> = table.failure_taxonomy().into_iter().collect();
    println!(
        "{:<22} rows={:<3} feasible={:<3} failures={}",
        "mux4 + poisoned row",
        table.candidates.len(),
        table.feasible_count(),
        taxonomy_column(&failures)
    );
    let (hits, misses) = cache.stats();
    println!(
        "\n(the lint row is rejected before sizing: the shared cache saw\n\
         {hits} hits / {misses} misses, all attributable to the clean rows;\n\
         Error-severity findings gate, warnings ride along as data.)"
    );
}
