//! Robustness study: how stable are the §6.1 savings across instance
//! conditions? Sweeps output load and process corner for a fixed macro
//! set and reports the savings distribution — the evidence a methodology
//! paper's reviewers ask for ("does this only work at one operating
//! point?").
//!
//! Failures never abort the sweep: each run that errors is classified
//! through [`smart_core::FlowError::taxonomy`] and the per-row histogram
//! is printed alongside the savings statistics, so a single infeasible
//! corner shows up as data instead of killing the study.

use std::collections::BTreeMap;
use std::sync::Arc;

use smart_bench::protocol_61;
use smart_core::{
    explore_parallel, DelaySpec, ParallelOptions, SizingCache, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::{ModelLibrary, Process};
use smart_sta::Boundary;

fn stats(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let min = xs.first().copied().unwrap_or(f64::NAN);
    let max = xs.last().copied().unwrap_or(f64::NAN);
    (min, mean, max)
}

fn taxonomy_column(failures: &BTreeMap<&'static str, usize>) -> String {
    if failures.is_empty() {
        return "-".into();
    }
    failures
        .iter()
        .map(|(kind, n)| format!("{kind}\u{d7}{n}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let opts = SizingOptions::default();
    let loads = [6.0, 10.0, 16.0, 25.0, 40.0, 60.0];
    let corners: [(&str, ModelLibrary); 3] = [
        ("slow", ModelLibrary::new(Process::slow_corner())),
        ("typical", ModelLibrary::reference()),
        ("fast", ModelLibrary::new(Process::fast_corner())),
    ];
    let specs: Vec<(&str, MacroSpec)> = vec![
        (
            "mux8 pass",
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
        ),
        (
            "mux8 domino",
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
        ),
        ("inc13", MacroSpec::Incrementor { width: 13 }),
        (
            "zd16 domino",
            MacroSpec::ZeroDetect {
                width: 16,
                style: ZeroDetectStyle::Domino,
            },
        ),
    ];

    println!("# Savings robustness across loads (6..60 width units) and corners\n");
    println!(
        "{:<14} {:<9} {:>8} {:>8} {:>8} {:>6}  {}",
        "macro", "corner", "min", "mean", "max", "runs", "failures"
    );
    let mut total_failures = 0usize;
    for (name, spec) in &specs {
        for (corner, lib) in &corners {
            let mut savings = Vec::new();
            let mut failures: BTreeMap<&'static str, usize> = BTreeMap::new();
            for &load in &loads {
                match protocol_61(name, spec, load, lib, &opts) {
                    Ok(row) => savings.push(row.width_savings() * 100.0),
                    Err(e) => {
                        *failures.entry(e.taxonomy()).or_insert(0) += 1;
                    }
                }
            }
            total_failures += failures.values().sum::<usize>();
            let runs = savings.len();
            let taxonomy = taxonomy_column(&failures);
            if savings.is_empty() {
                println!(
                    "{name:<14} {corner:<9} {:>8} {:>8} {:>8} {runs:>6}  {taxonomy}",
                    "-", "-", "-"
                );
                continue;
            }
            let (min, mean, max) = stats(savings);
            println!(
                "{name:<14} {corner:<9} {min:>7.1}% {mean:>7.1}% {max:>7.1}% {runs:>6}  {taxonomy}"
            );
        }
    }
    println!(
        "\n(Savings should be positive and of similar magnitude everywhere:\n\
         the methodology's benefit is not an artifact of one load or corner.\n\
         {total_failures} failed run(s); failures are classified, never fatal.)"
    );

    parallel_section();
}

/// Robustness of the *parallel* exploration runtime: the serial table is
/// the reference; worker counts and a shared memoization cache must not
/// change a single row. Prints per-configuration agreement plus the
/// cache hit rate a repeated sweep achieves.
fn parallel_section() {
    println!("\n# Parallel exploration determinism (Fig.-1 sweep, mux8 request)\n");
    let lib = ModelLibrary::reference();
    let request = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 8,
    };
    let loads = [10.0, 25.0];
    let spec = DelaySpec::uniform(450.0);

    let sweep = |opts: &SizingOptions, workers: usize| -> Vec<String> {
        let mut rows = Vec::new();
        for &load in &loads {
            let mut boundary = Boundary::default();
            boundary.output_loads.insert("y".into(), load);
            let table = explore_parallel(
                &request,
                &lib,
                &boundary,
                &spec,
                opts,
                &ParallelOptions::with_workers(workers),
            );
            for c in &table.candidates {
                rows.push(match &c.result {
                    Ok(m) => format!("{}@{load}:{:016x}", c.spec, m.outcome.total_width.to_bits()),
                    Err(e) => format!("{}@{load}:{}", c.spec, e.taxonomy()),
                });
            }
        }
        rows
    };

    let opts = SizingOptions::default();
    let reference = sweep(&opts, 1);
    println!("{:<22} rows={:<3} status", "configuration", reference.len());
    println!("{:<22} rows={:<3} reference", "serial", reference.len());
    for workers in [2usize, 4, 8] {
        let rows = sweep(&opts, workers);
        println!(
            "{:<22} rows={:<3} {}",
            format!("{workers} workers"),
            rows.len(),
            if rows == reference { "identical" } else { "DIVERGED" }
        );
    }

    let cache = Arc::new(SizingCache::new());
    let mut cached = SizingOptions::default();
    cached.cache = Some(Arc::clone(&cache));
    let cold = sweep(&cached, 4);
    let warm = sweep(&cached, 4);
    let (hits, misses) = cache.stats();
    println!(
        "{:<22} rows={:<3} {}",
        "4 workers + cache",
        cold.len(),
        if cold == reference && warm == reference {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "\n(cache over both cached sweeps: {hits} hits / {misses} misses; a row\n\
         that ever diverges across these configurations is a determinism bug —\n\
         see DESIGN.md \u{a7}9 for the contract.)"
    );
}
