//! Table 1: average transistor-width and clock-load savings per mux
//! topology (paper: 15/25/16/45/42 % width, 39/28 % clock).

use smart_bench::table1;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let lib = ModelLibrary::reference();
    let rows = table1(&lib, &SizingOptions::default());
    println!("# Table 1 — mux topologies: average savings over instances");
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "topology", "width sav.", "clock sav.", "instances"
    );
    for r in &rows {
        let clock = r
            .clock_savings
            .map(|c| format!("{:.1}%", c * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:<28} {:>11.1}% {:>12} {:>10}",
            r.topology,
            r.width_savings * 100.0,
            clock,
            r.instances
        );
    }
}
