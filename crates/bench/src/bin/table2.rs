//! Table 2: block-level power savings from applying SMART to the macros
//! of four functional blocks (paper: 41/22/19/7 %).

use smart_bench::table2;
use smart_core::SizingOptions;
use smart_models::ModelLibrary;

fn main() {
    let lib = ModelLibrary::reference();
    let reports = table2(&lib, &SizingOptions::default());
    println!("# Table 2 — power reduction on functional blocks");
    println!(
        "{:<36} {:>12} {:>12} {:>10}",
        "block", "power sav.", "width sav.", "resized"
    );
    for r in &reports {
        println!(
            "{:<36} {:>11.1}% {:>11.1}% {:>10}",
            r.name,
            r.power_savings() * 100.0,
            r.width_savings() * 100.0,
            r.resized
        );
    }
}
