//! Experiment harness: one function per table/figure of the paper's
//! evaluation section, shared by the `fig*`/`table*` binaries and the
//! timing benches. Every function is deterministic: randomized inputs
//! come from the re-exported [`Prng`], never from ambient entropy, so the
//! whole harness builds and runs offline.
//!
//! | paper result | function | binary |
//! |---|---|---|
//! | Fig. 5(a) incrementors | [`fig5a`] | `fig5a` |
//! | Fig. 5(b) zero detects | [`fig5b`] | `fig5b` |
//! | Fig. 5(c) decoders | [`fig5c`] | `fig5c` |
//! | Table 1 mux topologies | [`table1`] | `table1` |
//! | Fig. 6 adder area-delay | [`fig6`] | `fig6` |
//! | Fig. 7 comparator exploration | [`fig7`] | `fig7` |
//! | Table 2 block power | [`table2`] | `table2` |
//! | §5.2 path compaction | [`paths52`] | `paths52` |
//! | §6.4 full block | [`block64`] | `block64` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use smart_prng::Prng;

use smart_blocks::{evaluate_block, section64_block, table2_blocks, BlockReport};
use smart_core::{
    baseline_sizing, compaction_stats, measure_phase_delays, minimize_delay, size_circuit,
    BaselineMargins, DelaySpec, FlowError, SizingOptions,
};
use smart_macros::{ComparatorVariant, MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_power::{estimate, ActivityProfile};
use smart_sta::{max_delay, Boundary};

/// One row of a Fig.-5-style comparison: baseline ("original") vs SMART
/// total transistor width at identical measured delay.
#[derive(Debug, Clone)]
pub struct SavingsRow {
    /// Circuit label as the paper prints it (e.g. `"13bitinc"`).
    pub circuit: String,
    /// Baseline (hand-design model) total width.
    pub original_width: f64,
    /// SMART width at the same delay.
    pub smart_width: f64,
    /// Matched delay (ps).
    pub delay: f64,
    /// Baseline clock load (0 for static macros).
    pub original_clock: f64,
    /// SMART clock load.
    pub smart_clock: f64,
}

impl SavingsRow {
    /// SMART width normalized to the original (the Fig. 5 bar height).
    pub fn normalized(&self) -> f64 {
        self.smart_width / self.original_width
    }

    /// Width savings fraction.
    pub fn width_savings(&self) -> f64 {
        1.0 - self.normalized()
    }

    /// Clock-load savings fraction (`None` for unclocked macros).
    pub fn clock_savings(&self) -> Option<f64> {
        if self.original_clock > 0.0 {
            Some(1.0 - self.smart_clock / self.original_clock)
        } else {
            None
        }
    }
}

/// Runs the §6.1 protocol on one macro: baseline-size, measure with STA,
/// re-size with SMART to the same delay, report both widths.
///
/// # Errors
///
/// Propagates flow errors (an infeasible re-size is a harness bug: the
/// baseline point itself is feasible).
pub fn protocol_61(
    label: &str,
    spec: &MacroSpec,
    output_load: f64,
    lib: &ModelLibrary,
    opts: &SizingOptions,
) -> Result<SavingsRow, FlowError> {
    let circuit = spec.generate();
    let mut boundary = Boundary::default();
    for port in circuit.output_ports() {
        boundary
            .output_loads
            .insert(port.name.clone(), output_load);
    }
    let base = baseline_sizing(&circuit, lib, &boundary, &BaselineMargins::default());
    let delay = max_delay(&circuit, lib, &base, &boundary)?;
    let outcome = size_circuit(&circuit, lib, &boundary, &DelaySpec::uniform(delay), opts)?;
    Ok(SavingsRow {
        circuit: label.to_owned(),
        original_width: circuit.total_width(&base),
        smart_width: outcome.total_width,
        delay,
        original_clock: circuit.clock_load(&base),
        smart_clock: circuit.clock_load(&outcome.sizing),
    })
}

fn rows(
    cases: &[(&str, MacroSpec, f64)],
    lib: &ModelLibrary,
    opts: &SizingOptions,
) -> Vec<SavingsRow> {
    cases
        .iter()
        .map(|(label, spec, load)| {
            protocol_61(label, spec, *load, lib, opts)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
        })
        .collect()
}

/// Fig. 5(a): incrementors/decrementors of the paper's widths, two loads
/// for the repeated instances.
pub fn fig5a(lib: &ModelLibrary, opts: &SizingOptions) -> Vec<SavingsRow> {
    let inc = |w| MacroSpec::Incrementor { width: w };
    let dec = |w| MacroSpec::Decrementor { width: w };
    rows(
        &[
            ("3bitinc", inc(3), 10.0),
            ("3bitdec", dec(3), 10.0),
            ("13bitinc", inc(13), 12.0),
            ("13bitinc-b", inc(13), 24.0),
            ("27bitinc", inc(27), 14.0),
            ("39bitinc", inc(39), 14.0),
            ("47bitinc", inc(47), 16.0),
            ("48bitinc", inc(48), 16.0),
            ("64bitdec", dec(64), 18.0),
        ],
        lib,
        opts,
    )
}

/// Fig. 5(b): zero-detects of the paper's widths (repeated widths use the
/// two implementation styles, as different design instances would).
pub fn fig5b(lib: &ModelLibrary, opts: &SizingOptions) -> Vec<SavingsRow> {
    let zd = |w, style| MacroSpec::ZeroDetect { width: w, style };
    use ZeroDetectStyle::{Domino, Static};
    rows(
        &[
            ("6bit", zd(6, Static), 10.0),
            ("8bit", zd(8, Static), 10.0),
            ("8bit-dom", zd(8, Domino), 12.0),
            ("16bit", zd(16, Static), 12.0),
            ("16bit-dom", zd(16, Domino), 14.0),
            ("22bit", zd(22, Domino), 14.0),
            ("32bit", zd(32, Domino), 16.0),
            ("63bit", zd(63, Domino), 18.0),
        ],
        lib,
        opts,
    )
}

/// Fig. 5(c): decoders of the paper's sizes.
pub fn fig5c(lib: &ModelLibrary, opts: &SizingOptions) -> Vec<SavingsRow> {
    let d = |bits| MacroSpec::Decoder { in_bits: bits };
    rows(
        &[
            ("3to8", d(3), 8.0),
            ("3to8-b", d(3), 16.0),
            ("4to16", d(4), 8.0),
            ("4to16-b", d(4), 14.0),
            ("4to16-c", d(4), 22.0),
            ("6to64", d(6), 10.0),
            ("6to64-b", d(6), 18.0),
            ("7to128", d(7), 12.0),
        ],
        lib,
        opts,
    )
}

/// One Table-1 row: average width/clock savings across several instances
/// of a mux topology.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Topology name.
    pub topology: String,
    /// Average width savings fraction.
    pub width_savings: f64,
    /// Average clock-load savings fraction (`None` for unclocked).
    pub clock_savings: Option<f64>,
    /// Instances averaged.
    pub instances: usize,
}

/// Table 1: width/clock savings per mux topology, averaged over several
/// instances (widths and loads varied, as in the paper).
pub fn table1(lib: &ModelLibrary, opts: &SizingOptions) -> Vec<Table1Row> {
    // Pass/tri-state topologies appear on narrow muxes; domino topologies
    // are what designers reach for on wide ones (paper §4: partitioned
    // domino "is used when the size of the mux is large"), so their
    // instance populations differ.
    let narrow_set: &[(usize, f64)] = &[(4, 12.0), (8, 18.0), (4, 30.0), (8, 40.0)];
    let wide_set: &[(usize, f64)] = &[(8, 14.0), (12, 20.0), (16, 26.0), (12, 36.0)];
    let enc_set: &[(usize, f64)] = &[(2, 10.0), (2, 20.0), (2, 35.0)];
    let mut out = Vec::new();
    for topo in MuxTopology::all() {
        let set = if topo == MuxTopology::EncodedSelectPass {
            enc_set
        } else if topo.is_domino() {
            wide_set
        } else {
            narrow_set
        };
        let mut w_sav = Vec::new();
        let mut c_sav = Vec::new();
        for &(width, load) in set {
            if !topo.supports_width(width) {
                continue;
            }
            let spec = MacroSpec::Mux { topology: topo, width };
            let row = protocol_61(topo.name(), &spec, load, lib, opts)
                .unwrap_or_else(|e| panic!("{}: {e}", topo.name()));
            w_sav.push(row.width_savings());
            if let Some(cs) = row.clock_savings() {
                c_sav.push(cs);
            }
        }
        let n = w_sav.len();
        out.push(Table1Row {
            topology: topo.name().to_owned(),
            width_savings: w_sav.iter().sum::<f64>() / n as f64,
            clock_savings: if c_sav.is_empty() {
                None
            } else {
                Some(c_sav.iter().sum::<f64>() / c_sav.len() as f64)
            },
            instances: n,
        });
    }
    out
}

/// One point of the Fig.-6 area-delay curve.
#[derive(Debug, Clone, Copy)]
pub struct AreaDelayPoint {
    /// Delay spec normalized to the fastest achievable point.
    pub norm_delay: f64,
    /// Total width normalized to the width at the relaxed end.
    pub norm_area: f64,
    /// Absolute delay (ps).
    pub delay_ps: f64,
    /// Absolute width.
    pub width: f64,
}

/// Fig. 6: the area-delay tradeoff of the dynamic CLA adder. The paper's
/// x-axis points are 1.0, 1.074, 1.1716, 1.2707 (normalized delay); area
/// is normalized so the most relaxed point is lowest.
///
/// `width` lets callers shrink the adder for quick runs (the paper uses
/// 64 bits).
pub fn fig6(lib: &ModelLibrary, opts: &SizingOptions, width: usize) -> Vec<AreaDelayPoint> {
    let circuit = MacroSpec::ClaAdder { width }.generate();
    let mut boundary = Boundary::default();
    for port in circuit.output_ports() {
        boundary.output_loads.insert(port.name.clone(), 12.0);
    }
    let (t_star, _) = minimize_delay(&circuit, lib, &boundary, opts)
        .unwrap_or_else(|e| panic!("adder delay minimization: {e}"));
    // Anchor the sweep's "1.0" a practical margin above the absolute
    // achievable minimum: real designs do not sit on the vertical wall of
    // the tradeoff curve, and the paper's normalized-delay-1.0 point is a
    // shipping design point, not the theoretical minimum.
    let t0 = t_star * 1.22;
    let sweep = [1.0, 1.074, 1.1716, 1.2707];
    let mut pts = Vec::new();
    for &nd in &sweep {
        let spec = DelaySpec::uniform(t0 * nd);
        let outcome = size_circuit(&circuit, lib, &boundary, &spec, opts)
            .unwrap_or_else(|e| panic!("adder at {nd}: {e}"));
        pts.push((nd, spec.data, outcome.total_width));
    }
    let Some(&(_, _, w_ref)) = pts.last() else {
        unreachable!("the Fig. 6 sweep is non-empty by construction")
    };
    pts.into_iter()
        .map(|(nd, d, w)| AreaDelayPoint {
            norm_delay: nd,
            norm_area: w / w_ref,
            delay_ps: d,
            width: w,
        })
        .collect()
}

/// One Fig.-7 exploration entry for the 32-bit comparator.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Candidate description.
    pub name: String,
    /// Area (total width) normalized to the original hand design.
    pub norm_area: f64,
    /// Clock load normalized to the original hand design.
    pub norm_clock: f64,
    /// Evaluate delay normalized to the original (≈ 1.0: equal speed).
    pub norm_eval: f64,
    /// Precharge delay normalized to the original.
    pub norm_pre: f64,
}

/// Fig. 7: 32-bit comparator topology exploration. The original
/// (hand-sized Xorsum2/Nor4) is the reference; SMART re-sizes the same
/// topology and explores the two alternatives at the original's measured
/// delays.
pub fn fig7(lib: &ModelLibrary, opts: &SizingOptions) -> Vec<Fig7Row> {
    let load = 20.0;
    let original = ComparatorVariant::merced();
    let circuit = MacroSpec::Comparator {
        width: 32,
        variant: original,
    }
    .generate();
    let mut boundary = Boundary::default();
    boundary.output_loads.insert("eq".into(), load);
    let base = baseline_sizing(&circuit, lib, &boundary, &BaselineMargins::default());
    let (base_eval, base_pre) = measure_phase_delays(&circuit, lib, &base, &boundary, opts)
        .unwrap_or_else(|e| panic!("original comparator phases: {e}"));
    let base_width = circuit.total_width(&base);
    let base_clock = circuit.clock_load(&base);
    let spec = DelaySpec {
        data: base_eval,
        precharge: Some(base_pre.max(1.0)),
    };

    let mut out = vec![Fig7Row {
        name: format!("original ({})", original.name()),
        norm_area: 1.0,
        norm_clock: 1.0,
        norm_eval: 1.0,
        norm_pre: 1.0,
    }];
    for variant in ComparatorVariant::exploration_set() {
        let cand = MacroSpec::Comparator { width: 32, variant }.generate();
        let mut b = Boundary::default();
        b.output_loads.insert("eq".into(), load);
        match size_circuit(&cand, lib, &b, &spec, opts) {
            Ok(outcome) => {
                let (eval, pre) = measure_phase_delays(&cand, lib, &outcome.sizing, &b, opts)
                    .unwrap_or_else(|e| panic!("{}: phases: {e}", variant.name()));
                let tag = if variant == original {
                    format!("SMART resize ({})", variant.name())
                } else {
                    format!("SMART explore ({})", variant.name())
                };
                out.push(Fig7Row {
                    name: tag,
                    norm_area: cand.total_width(&outcome.sizing) / base_width,
                    norm_clock: cand.clock_load(&outcome.sizing) / base_clock,
                    norm_eval: eval / base_eval,
                    norm_pre: if base_pre > 0.0 { pre / base_pre } else { 1.0 },
                });
            }
            Err(e) => {
                out.push(Fig7Row {
                    name: format!("{} (infeasible: {e})", variant.name()),
                    norm_area: f64::NAN,
                    norm_clock: f64::NAN,
                    norm_eval: f64::NAN,
                    norm_pre: f64::NAN,
                });
            }
        }
    }
    out
}

/// Table 2: post-layout power savings on the four synthetic functional
/// blocks.
pub fn table2(lib: &ModelLibrary, opts: &SizingOptions) -> Vec<BlockReport> {
    table2_blocks()
        .iter()
        .map(|b| evaluate_block(b, lib, opts).unwrap_or_else(|e| panic!("{}: {e}", b.name)))
        .collect()
}

/// §6.4: the 13.8k-transistor block with 22% macro width / 36% macro
/// power.
pub fn block64(lib: &ModelLibrary, opts: &SizingOptions) -> BlockReport {
    evaluate_block(&section64_block(), lib, opts)
        .unwrap_or_else(|e| panic!("section 6.4 block: {e}"))
}

/// §5.2 path-compaction statistics of the dynamic CLA adder.
#[derive(Debug, Clone, Copy)]
pub struct PathStats {
    /// Adder width used.
    pub width: usize,
    /// Exhaustive topological path count.
    pub raw: u128,
    /// Constraint paths after compaction.
    pub compacted: usize,
    /// Reduction factor.
    pub ratio: f64,
}

/// §5.2: exhaustive vs compacted path counts on the dynamic adder.
pub fn paths52(lib: &ModelLibrary, opts: &SizingOptions, width: usize) -> PathStats {
    let circuit = MacroSpec::ClaAdder { width }.generate();
    let stats = compaction_stats(&circuit, lib, &Boundary::default(), opts)
        .unwrap_or_else(|e| panic!("adder compaction: {e}"));
    PathStats {
        width,
        raw: stats.raw_paths,
        compacted: stats.classes.len(),
        ratio: stats.ratio(),
    }
}

/// Quick power snapshot used by examples/tests.
pub fn power_of(circuit: &smart_netlist::Circuit, lib: &ModelLibrary, sizing: &smart_netlist::Sizing) -> f64 {
    estimate(circuit, lib, sizing, &ActivityProfile::default()).total()
}
