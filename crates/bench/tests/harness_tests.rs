//! Tests of the experiment harness itself: row math, determinism, and the
//! §6.1 protocol's invariants.

use smart_bench::{protocol_61, SavingsRow};
use smart_core::SizingOptions;
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;

#[test]
fn savings_row_math() {
    let row = SavingsRow {
        circuit: "t".into(),
        original_width: 200.0,
        smart_width: 150.0,
        delay: 100.0,
        original_clock: 40.0,
        smart_clock: 30.0,
    };
    assert!((row.normalized() - 0.75).abs() < 1e-12);
    assert!((row.width_savings() - 0.25).abs() < 1e-12);
    assert!((row.clock_savings().unwrap() - 0.25).abs() < 1e-12);

    let unclocked = SavingsRow {
        original_clock: 0.0,
        smart_clock: 0.0,
        ..row
    };
    assert!(unclocked.clock_savings().is_none());
}

#[test]
fn protocol_is_deterministic() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let spec = MacroSpec::Mux {
        topology: MuxTopology::UnsplitDomino,
        width: 4,
    };
    let a = protocol_61("x", &spec, 15.0, &lib, &opts).unwrap();
    let b = protocol_61("x", &spec, 15.0, &lib, &opts).unwrap();
    assert_eq!(a.original_width, b.original_width);
    assert_eq!(a.smart_width, b.smart_width);
    assert_eq!(a.delay, b.delay);
}

#[test]
fn heavier_load_slows_the_matched_delay() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    let spec = MacroSpec::Decoder { in_bits: 3 };
    let light = protocol_61("l", &spec, 6.0, &lib, &opts).unwrap();
    let heavy = protocol_61("h", &spec, 30.0, &lib, &opts).unwrap();
    assert!(heavy.delay > light.delay);
    assert!(heavy.original_width > light.original_width);
}

#[test]
fn smart_never_exceeds_original_width_in_the_protocol() {
    // The baseline point satisfies every constraint the GP solves under
    // (it is slope-signed-off and meets its own delay), so the optimum
    // can never be heavier.
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();
    for (spec, load) in [
        (
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
            25.0,
        ),
        (MacroSpec::Incrementor { width: 8 }, 10.0),
        (
            MacroSpec::ZeroDetect {
                width: 16,
                style: smart_macros::ZeroDetectStyle::Domino,
            },
            12.0,
        ),
    ] {
        let row = protocol_61("t", &spec, load, &lib, &opts).unwrap();
        assert!(
            row.smart_width <= row.original_width * 1.001,
            "{spec}: smart {} vs original {}",
            row.smart_width,
            row.original_width
        );
    }
}
