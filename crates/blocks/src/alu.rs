//! A real composed datapath block: an ALU slice assembled from database
//! macros via [`Circuit::instantiate`]. Unlike the share-based synthetic
//! blocks of the §6.4/Table 2 experiments, this is one flat netlist that
//! every analysis (simulation, STA, sizing, power) runs on directly.

// Like the `smart-macros` generators, this module builds a netlist whose
// structure is correct by construction: builder errors are contract
// panics (the documented `# Panics` surface), not recoverable states,
// and the exploration runtime contains them per-candidate with
// catch_unwind. The unwrap/expect deny gate is relaxed for exactly this
// module, not the crate.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;

use smart_macros::helpers::{inverter, pass_gate};
use smart_macros::{barrel_shifter, cla_adder, zero_detect, ShiftKind, ZeroDetectStyle};
use smart_netlist::{Circuit, NetId, NetKind, Skew};

/// Builds a `bits`-wide ALU slice:
///
/// ```text
///   a, b ──► domino CLA adder ──► sum ─┐
///   a, sh ─► barrel rotator   ──► rot ─┼─► per-bit 2:1 pass mux ──► r
///                                      │            ▲ op
///                                      └─► zero-detect(r) ──► zd_z
/// ```
///
/// Ports: `clk`, `a0..`, `b0..`, `sh0..` (log2 bits), `op` (0 = add,
/// 1 = rotate-left), `cin`; outputs `r0..` and `zd_z` (result == 0).
/// Route parasitics are applied.
///
/// # Panics
///
/// Panics unless `bits` is a power of two in `2..=64` (the rotator's
/// constraint).
pub fn alu_slice(bits: usize) -> Circuit {
    let abits = bits.trailing_zeros() as usize;
    let mut alu = Circuit::new(format!("alu{bits}"));

    let clk = alu.add_net_kind("clk", NetKind::Clock).unwrap();
    alu.expose_input("clk", clk);
    let bus = |alu: &mut Circuit, prefix: &str, n: usize| -> Vec<NetId> {
        (0..n)
            .map(|i| {
                let net = alu.add_net(format!("{prefix}{i}")).unwrap();
                alu.expose_input(format!("{prefix}{i}"), net);
                net
            })
            .collect()
    };
    let a = bus(&mut alu, "a", bits);
    let b = bus(&mut alu, "b", bits);
    let sh = bus(&mut alu, "sh", abits);
    let op = alu.add_net("op").unwrap();
    alu.expose_input("op", op);
    let cin = alu.add_net("cin").unwrap();
    alu.expose_input("cin", cin);

    // Adder instance.
    let adder = cla_adder(bits);
    let mut map: HashMap<String, NetId> = HashMap::new();
    map.insert("clk".into(), clk);
    map.insert("cin0".into(), cin);
    for i in 0..bits {
        map.insert(format!("a{i}"), a[i]);
        map.insert(format!("b{i}"), b[i]);
    }
    let map = alu.auto_port_map("add", &adder, map).unwrap();
    alu.instantiate("add", &adder, &map).unwrap();
    let sum: Vec<NetId> = (0..bits)
        .map(|i| alu.find_net(&format!("add_s{i}")).unwrap())
        .collect();

    // Rotator instance.
    let rot = barrel_shifter(bits, ShiftKind::RotateLeft);
    let mut map: HashMap<String, NetId> = HashMap::new();
    for (i, &net) in a.iter().enumerate() {
        map.insert(format!("a{i}"), net);
    }
    for (i, &net) in sh.iter().enumerate() {
        map.insert(format!("s{i}"), net);
    }
    let map = alu.auto_port_map("rot", &rot, map).unwrap();
    alu.instantiate("rot", &rot, &map).unwrap();
    let rotated: Vec<NetId> = (0..bits)
        .map(|i| alu.find_net(&format!("rot_y{i}")).unwrap())
        .collect();

    // Glue: per-bit 2:1 encoded-select pass mux with shared labels.
    let p1 = alu.label("G_P1");
    let n1 = alu.label("G_N1");
    let n2 = alu.label("G_N2");
    let p3 = alu.label("G_P3");
    let n3 = alu.label("G_N3");
    let p4 = alu.label("G_P4");
    let n4 = alu.label("G_N4");
    let opb = alu.add_net("opb").unwrap();
    inverter(&mut alu, "op_inv", op, opb, p4, n4, Skew::Balanced);
    let mut result = Vec::with_capacity(bits);
    for i in 0..bits {
        let s_in = alu.add_net(format!("sumb{i}")).unwrap();
        inverter(&mut alu, format!("sdrv{i}"), sum[i], s_in, p1, n1, Skew::Balanced);
        let r_in = alu.add_net(format!("rotb{i}")).unwrap();
        inverter(&mut alu, format!("rdrv{i}"), rotated[i], r_in, p1, n1, Skew::Balanced);
        let node = alu.add_net(format!("node{i}")).unwrap();
        pass_gate(&mut alu, format!("pg_s{i}"), s_in, opb, node, n2);
        pass_gate(&mut alu, format!("pg_r{i}"), r_in, op, node, n2);
        let r = alu.add_net(format!("r{i}")).unwrap();
        inverter(&mut alu, format!("outdrv{i}"), node, r, p3, n3, Skew::Balanced);
        alu.expose_output(format!("r{i}"), r);
        result.push(r);
    }

    // Zero detect on the result.
    let zd = zero_detect(bits, ZeroDetectStyle::Static);
    let mut map: HashMap<String, NetId> = HashMap::new();
    for (i, &r) in result.iter().enumerate() {
        map.insert(format!("a{i}"), r);
    }
    let map = alu.auto_port_map("zd", &zd, map).unwrap();
    alu.instantiate("zd", &zd, &map).unwrap();

    alu.add_route_parasitics(0.5, 0.8);
    alu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_lints_clean_and_scales() {
        let a4 = alu_slice(4);
        assert!(a4.lint().is_empty(), "{:?}", a4.lint());
        let a8 = alu_slice(8);
        assert!(a8.device_count() > a4.device_count());
        // Port shape.
        assert_eq!(
            a8.input_ports().count(),
            1 + 8 + 8 + 3 + 1 + 1,
            "clk + a + b + sh + op + cin"
        );
        // r bus + zero flag, plus the macro outputs auto_port_map keeps
        // observable (adder sum/cout, rotator bus): 9 + 9 + 8.
        assert_eq!(a8.output_ports().count(), 26);
    }

    #[test]
    fn instance_labels_are_namespaced() {
        let alu = alu_slice(4);
        assert!(alu.labels().lookup("add/G1N").is_some());
        assert!(alu.labels().lookup("rot/N20").is_some());
        assert!(alu.labels().lookup("zd/TP0").is_some());
        assert!(alu.labels().lookup("G_N2").is_some());
    }
}
