//! Synthetic functional blocks — the substrate for the paper's §6.4 and
//! Table 2 experiments.
//!
//! The paper applies SMART to the *macros inside* real functional blocks
//! (an instruction-alignment block, two bypass blocks, a fetch block) and
//! reports block-level width/power reductions. Those blocks are
//! proprietary; what the experiment actually needs from them is (a) a mix
//! of macro instances with per-instance loads and (b) a non-macro "random
//! logic" remainder that SMART does not touch, with a stated share of the
//! block's width and power. This crate builds exactly that: deterministic
//! synthetic blocks whose macro mixes mirror the paper's descriptions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alu;

pub use alu::alu_slice;

use smart_core::{
    baseline_sizing, size_circuit, BaselineMargins, DelaySpec, FlowError, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_netlist::Circuit;
use smart_power::{estimate, ActivityProfile};
use smart_sta::{max_delay, Boundary};

/// One macro instance inside a block: the spec plus its local loading.
#[derive(Debug, Clone)]
pub struct MacroInstance {
    /// What to generate.
    pub spec: MacroSpec,
    /// Capacitive load on every output port (width units).
    pub output_load: f64,
}

/// A synthetic functional block description.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Report name (`"Block1"`, ...).
    pub name: String,
    /// The macro population.
    pub instances: Vec<MacroInstance>,
    /// Fraction of total block *width* contributed by macros (the §6.4
    /// block states 22%).
    pub macro_width_share: f64,
    /// Fraction of total block *power* contributed by macros (the §6.4
    /// block states 36%).
    pub macro_power_share: f64,
}

/// Width/power totals of a block under one sizing regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTotals {
    /// Total transistor width (macros + glue).
    pub width: f64,
    /// Total power (macros + glue), normalized units.
    pub power: f64,
    /// Macro-only width.
    pub macro_width: f64,
    /// Macro-only power.
    pub macro_power: f64,
    /// Transistor count of the macro population.
    pub macro_devices: usize,
}

/// Before/after report of applying SMART to a block's macros (the §6.1
/// protocol per instance: baseline → measure → re-size to same delay).
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Block name.
    pub name: String,
    /// Totals with hand-design (baseline) macro sizing.
    pub baseline: BlockTotals,
    /// Totals with SMART macro sizing at identical per-instance delay.
    pub smart: BlockTotals,
    /// Number of macro instances successfully re-sized.
    pub resized: usize,
}

impl BlockReport {
    /// Block-level width reduction fraction.
    pub fn width_savings(&self) -> f64 {
        1.0 - self.smart.width / self.baseline.width
    }

    /// Block-level power reduction fraction (the Table 2 metric).
    pub fn power_savings(&self) -> f64 {
        1.0 - self.smart.power / self.baseline.power
    }

    /// Macro-only power reduction fraction.
    pub fn macro_power_savings(&self) -> f64 {
        1.0 - self.smart.macro_power / self.baseline.macro_power
    }
}

/// Evaluates a block: sizes every macro instance with the baseline
/// designer, re-sizes with SMART at the measured per-instance delay, and
/// aggregates block totals with the glue (non-macro) remainder held
/// fixed at the spec's shares.
///
/// # Errors
///
/// Propagates STA failures; instances whose SMART re-size is infeasible
/// keep their baseline sizing (the advisory-tool behaviour: never regress
/// a design) and are excluded from `resized`.
pub fn evaluate_block(
    spec: &BlockSpec,
    lib: &ModelLibrary,
    opts: &SizingOptions,
) -> Result<BlockReport, FlowError> {
    let margins = BaselineMargins::default();
    let activity = ActivityProfile::default();
    let mut base_w = 0.0;
    let mut base_p = 0.0;
    let mut smart_w = 0.0;
    let mut smart_p = 0.0;
    let mut devices = 0usize;
    let mut resized = 0usize;

    for inst in &spec.instances {
        let circuit: Circuit = inst.spec.generate();
        let mut boundary = Boundary::default();
        for port in circuit.output_ports() {
            boundary
                .output_loads
                .insert(port.name.clone(), inst.output_load);
        }
        let base = baseline_sizing(&circuit, lib, &boundary, &margins);
        let base_delay = max_delay(&circuit, lib, &base, &boundary)?;
        base_w += circuit.total_width(&base);
        base_p += estimate(&circuit, lib, &base, &activity).total();
        devices += circuit.device_count();

        match size_circuit(
            &circuit,
            lib,
            &boundary,
            &DelaySpec::uniform(base_delay),
            opts,
        ) {
            Ok(outcome) => {
                smart_w += outcome.total_width;
                smart_p += estimate(&circuit, lib, &outcome.sizing, &activity).total();
                resized += 1;
            }
            Err(FlowError::Gp(_)) | Err(FlowError::NoConvergence { .. }) => {
                smart_w += circuit.total_width(&base);
                smart_p += estimate(&circuit, lib, &base, &activity).total();
            }
            Err(e) => return Err(e),
        }
    }

    // Glue logic: fixed width/power implied by the macro shares.
    let share_w = spec.macro_width_share.clamp(1e-6, 1.0);
    let share_p = spec.macro_power_share.clamp(1e-6, 1.0);
    let glue_w = base_w * (1.0 - share_w) / share_w;
    let glue_p = base_p * (1.0 - share_p) / share_p;

    Ok(BlockReport {
        name: spec.name.clone(),
        baseline: BlockTotals {
            width: base_w + glue_w,
            power: base_p + glue_p,
            macro_width: base_w,
            macro_power: base_p,
            macro_devices: devices,
        },
        smart: BlockTotals {
            width: smart_w + glue_w,
            power: smart_p + glue_p,
            macro_width: smart_w,
            macro_power: smart_p,
            macro_devices: devices,
        },
        resized,
    })
}

/// Deterministic load jitter so instances of the same macro differ (the
/// paper sizes "multiple instances" per topology).
fn loads(seed: u64, base: f64, n: usize) -> Vec<f64> {
    let mut r = smart_prng::Prng::new(seed);
    (0..n).map(|_| base * r.f64_in(0.6, 1.8)).collect()
}

/// The §6.4 functional block: a datapath block whose macros account for
/// 22% of width and 36% of power, with a mixed macro population.
pub fn section64_block() -> BlockSpec {
    let mut instances = Vec::new();
    for (i, load) in loads(64, 18.0, 6).into_iter().enumerate() {
        instances.push(MacroInstance {
            spec: MacroSpec::Mux {
                topology: if i % 2 == 0 {
                    MuxTopology::UnsplitDomino
                } else {
                    MuxTopology::StronglyMutexedPass
                },
                width: 4 + 2 * (i % 3),
            },
            output_load: load,
        });
    }
    for load in loads(65, 14.0, 2) {
        instances.push(MacroInstance {
            spec: MacroSpec::Incrementor { width: 13 },
            output_load: load,
        });
    }
    instances.push(MacroInstance {
        spec: MacroSpec::ZeroDetect {
            width: 22,
            style: ZeroDetectStyle::Domino,
        },
        output_load: 16.0,
    });
    instances.push(MacroInstance {
        spec: MacroSpec::Decoder { in_bits: 4 },
        output_load: 10.0,
    });
    BlockSpec {
        name: "section-6.4 datapath block".into(),
        instances,
        macro_width_share: 0.22,
        macro_power_share: 0.36,
    }
}

/// The four Table 2 power-reduction blocks. Mixes follow the paper's
/// descriptions: Block1 = instruction alignment (domino mux heavy, macros
/// dominate its power), Blocks 2-3 = execution bypass networks (wide
/// pass/tri-state muxing, moderate macro share), Block4 = instruction
/// fetch (mostly random logic, small macro share).
pub fn table2_blocks() -> Vec<BlockSpec> {
    let block1 = BlockSpec {
        name: "Block1 (instruction alignment)".into(),
        instances: loads(1, 22.0, 8)
            .into_iter()
            .enumerate()
            .map(|(i, load)| MacroInstance {
                spec: MacroSpec::Mux {
                    topology: if i % 3 == 2 {
                        MuxTopology::PartitionedDomino
                    } else {
                        MuxTopology::UnsplitDomino
                    },
                    width: 8,
                },
                output_load: load,
            })
            .collect(),
        macro_width_share: 0.60,
        macro_power_share: 0.80,
    };
    let bypass = |name: &str, seed: u64, share_p: f64, share_w: f64| BlockSpec {
        name: name.into(),
        instances: loads(seed, 20.0, 6)
            .into_iter()
            .enumerate()
            .map(|(i, load)| MacroInstance {
                spec: MacroSpec::Mux {
                    topology: match i % 3 {
                        0 => MuxTopology::StronglyMutexedPass,
                        1 => MuxTopology::Tristate,
                        _ => MuxTopology::UnsplitDomino,
                    },
                    width: 4 + 4 * (i % 2),
                },
                output_load: load,
            })
            .collect(),
        macro_width_share: share_w,
        macro_power_share: share_p,
    };
    let block2 = bypass("Block2 (execution bypass A)", 2, 0.55, 0.45);
    let block3 = bypass("Block3 (execution bypass B)", 3, 0.48, 0.40);
    let block4 = BlockSpec {
        name: "Block4 (instruction fetch)".into(),
        instances: vec![
            MacroInstance {
                spec: MacroSpec::Incrementor { width: 27 },
                output_load: 12.0,
            },
            MacroInstance {
                spec: MacroSpec::ZeroDetect {
                    width: 16,
                    style: ZeroDetectStyle::Static,
                },
                output_load: 10.0,
            },
            MacroInstance {
                spec: MacroSpec::Decoder { in_bits: 3 },
                output_load: 8.0,
            },
        ],
        macro_width_share: 0.22,
        macro_power_share: 0.18,
    };
    vec![block1, block2, block3, block4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_specs_are_deterministic() {
        let a = section64_block();
        let b = section64_block();
        assert_eq!(a.instances.len(), b.instances.len());
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.output_load, y.output_load);
        }
    }

    #[test]
    fn table2_has_four_blocks_in_paper_order() {
        let blocks = table2_blocks();
        assert_eq!(blocks.len(), 4);
        assert!(blocks[0].name.contains("Block1"));
        assert!(blocks[3].name.contains("Block4"));
        // Block1 is the most macro-power-dominated, Block4 the least —
        // the ordering behind the paper's 41% ≥ ... ≥ 7% pattern.
        assert!(blocks[0].macro_power_share > blocks[1].macro_power_share);
        assert!(blocks[2].macro_power_share > blocks[3].macro_power_share);
    }

    #[test]
    fn evaluating_a_small_block_improves_it() {
        let spec = BlockSpec {
            name: "mini".into(),
            instances: vec![MacroInstance {
                spec: MacroSpec::Mux {
                    topology: MuxTopology::UnsplitDomino,
                    width: 4,
                },
                output_load: 15.0,
            }],
            macro_width_share: 0.5,
            macro_power_share: 0.5,
        };
        let lib = ModelLibrary::reference();
        let report = evaluate_block(&spec, &lib, &SizingOptions::default()).unwrap();
        assert_eq!(report.resized, 1);
        assert!(report.power_savings() > 0.0, "{report:?}");
        assert!(report.width_savings() > 0.0);
        // Block savings are diluted by the glue share.
        assert!(report.power_savings() < report.macro_power_savings());
    }
}
