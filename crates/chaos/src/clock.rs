//! A virtual-clock abstraction for budget and backoff logic.
//!
//! The flow's wall-clock budgets and the GP retry ladder's backoff are
//! *time policies*; testing a time policy against the real clock means
//! either real sleeps (slow suites) or racy tolerances (flaky suites).
//! [`Clock`] splits the policy from the time source: production uses
//! [`Clock::Real`] (monotonic `Instant`s, real `thread::sleep`), tests
//! use [`Clock::Virtual`] whose "now" is an atomic nanosecond counter
//! that only moves when someone calls [`VirtualClock::advance`] — or when
//! a [`Clock::sleep`] on the virtual clock advances it in lieu of
//! sleeping. A timeout test then runs in microseconds of real time while
//! covering hours of virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond counter standing in for the machine clock.
///
/// Shared via `Arc` by every party that needs a consistent "now"
/// (typically: the test, the flow budget, and the retry ladder).
/// Advancing is `fetch_add`-atomic, so concurrent advances never lose
/// time — though deterministic chaos suites advance only from the thread
/// under test.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds since the clock's epoch.
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Moves the clock forward by `d`. Saturates at `u64::MAX` ns
    /// (~584 years — far beyond any budget) instead of wrapping back to
    /// the epoch, which would un-expire every deadline.
    pub fn advance(&self, d: Duration) {
        let delta = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        // `fetch_update` with saturating add: `fetch_add` would wrap.
        let _ = self
            .nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(delta))
            });
    }
}

/// The time source a flow runs against: the machine clock, or a shared
/// [`VirtualClock`].
///
/// `Default` is [`Clock::Real`] — existing callers get exactly the
/// historical `Instant`-based behavior. Equality compares time *sources*:
/// real clocks are all one source; virtual clocks compare by `Arc`
/// identity (two independent virtual clocks tick independently, so they
/// are different sources even at the same reading).
#[derive(Clone, Debug, Default)]
pub enum Clock {
    /// `std::time::Instant` now, `std::thread::sleep` sleeps.
    #[default]
    Real,
    /// A shared virtual clock: `sleep` advances it instead of blocking.
    Virtual(Arc<VirtualClock>),
}

impl PartialEq for Clock {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Clock::Real, Clock::Real) => true,
            (Clock::Virtual(a), Clock::Virtual(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// A point in time on a specific [`Clock`] — the deadline type threaded
/// through the flow's budget checks. Comparing an instant from one clock
/// against another clock is a caller bug; [`Clock::has_passed`] treats
/// the mismatch conservatively (never expired) rather than panicking in
/// a budget check deep inside a solve.
#[derive(Clone, Copy, Debug)]
pub enum ClockInstant {
    /// A monotonic machine-clock instant.
    Real(Instant),
    /// Nanoseconds on a virtual clock.
    Virtual(u64),
}

impl ClockInstant {
    /// The underlying machine-clock instant, when this is a real one.
    /// Virtual deadlines have no `Instant` representation — layers that
    /// only understand `Instant` (the GP solver's per-Newton-step check)
    /// simply don't see virtual deadlines; the flow-level checkpoints
    /// enforce them instead.
    pub fn as_real(&self) -> Option<Instant> {
        match self {
            ClockInstant::Real(i) => Some(*i),
            ClockInstant::Virtual(_) => None,
        }
    }
}

impl Clock {
    /// A fresh, private virtual clock starting at t = 0.
    pub fn new_virtual() -> Self {
        Clock::Virtual(Arc::new(VirtualClock::new()))
    }

    /// The shared virtual clock behind this source, if any.
    pub fn virtual_clock(&self) -> Option<&Arc<VirtualClock>> {
        match self {
            Clock::Real => None,
            Clock::Virtual(v) => Some(v),
        }
    }

    /// The current reading.
    pub fn now(&self) -> ClockInstant {
        match self {
            Clock::Real => ClockInstant::Real(Instant::now()),
            Clock::Virtual(v) => ClockInstant::Virtual(v.now_nanos()),
        }
    }

    /// The instant `d` from now on this clock.
    pub fn deadline_after(&self, d: Duration) -> ClockInstant {
        match self {
            Clock::Real => ClockInstant::Real(Instant::now() + d),
            Clock::Virtual(v) => ClockInstant::Virtual(
                v.now_nanos()
                    .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            ),
        }
    }

    /// Whether `deadline` (taken from this clock) has passed. A deadline
    /// from a *different* clock kind reports `false` — see
    /// [`ClockInstant`].
    pub fn has_passed(&self, deadline: &ClockInstant) -> bool {
        match (self, deadline) {
            (Clock::Real, ClockInstant::Real(d)) => Instant::now() >= *d,
            (Clock::Virtual(v), ClockInstant::Virtual(d)) => v.now_nanos() >= *d,
            _ => false,
        }
    }

    /// Sleeps for `d`: a real `thread::sleep` on the real clock, an
    /// instantaneous [`VirtualClock::advance`] on a virtual one. This is
    /// the call that lets backoff tests consume zero real wall time.
    pub fn sleep(&self, d: Duration) {
        match self {
            Clock::Real => std::thread::sleep(d),
            Clock::Virtual(v) => v.advance(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_on_demand() {
        let clock = Clock::new_virtual();
        let t0 = clock.now();
        let deadline = clock.deadline_after(Duration::from_secs(3600));
        assert!(!clock.has_passed(&deadline));
        clock.sleep(Duration::from_secs(3599));
        assert!(!clock.has_passed(&deadline));
        clock.sleep(Duration::from_secs(1));
        assert!(clock.has_passed(&deadline));
        // An hour of virtual time, and t0 itself has "passed" too.
        assert!(clock.has_passed(&t0));
    }

    #[test]
    fn real_clock_deadlines_behave_like_instants() {
        let clock = Clock::Real;
        let past = ClockInstant::Real(Instant::now() - Duration::from_millis(1));
        assert!(clock.has_passed(&past));
        let future = clock.deadline_after(Duration::from_secs(3600));
        assert!(!clock.has_passed(&future));
        assert!(future.as_real().is_some());
        assert!(ClockInstant::Virtual(0).as_real().is_none());
    }

    #[test]
    fn mismatched_clock_kinds_never_expire() {
        let virt = Clock::new_virtual();
        let real_deadline = ClockInstant::Real(Instant::now() - Duration::from_secs(1));
        assert!(!virt.has_passed(&real_deadline));
        let virt_deadline = ClockInstant::Virtual(0);
        assert!(!Clock::Real.has_passed(&virt_deadline));
    }

    #[test]
    fn advance_saturates_instead_of_wrapping() {
        let v = VirtualClock::new();
        v.advance(Duration::from_nanos(u64::MAX - 5));
        v.advance(Duration::from_secs(1));
        assert_eq!(v.now_nanos(), u64::MAX);
        // Every finite deadline is now expired; none sprang back to life.
        let clock = Clock::Virtual(Arc::new(VirtualClock::new()));
        if let Clock::Virtual(inner) = &clock {
            inner.advance(Duration::MAX);
            assert_eq!(inner.now_nanos(), u64::MAX);
        }
    }

    #[test]
    fn clock_equality_is_source_identity() {
        let a = Clock::new_virtual();
        let b = Clock::new_virtual();
        assert_eq!(Clock::Real, Clock::Real);
        assert_eq!(a.clone(), a);
        assert_ne!(a, b, "independent virtual clocks are different sources");
        assert_ne!(a, Clock::Real);
    }
}
