//! `smart-chaos` — deterministic chaos engineering for the SMART flow.
//!
//! The exploration flow is fault-*isolated* (per-candidate panic
//! boundaries), fault-*classified* (the [`FlowError` taxonomy][taxonomy])
//! and budget-*cancellable* — but until this crate, those defenses were
//! exercised only by a handful of hand-written failure-path tests.
//! `smart-chaos` turns arbitrary fault timing into a *reproducible test
//! axis*:
//!
//! * a seeded [`FaultPlan`] decides, as a **pure function of the
//!   candidate identity** (never of call order, thread schedule or wall
//!   clock), which instrumented seam of the flow fails for which
//!   candidate — so a fixed seed produces byte-identical exploration
//!   outcomes across any `SMART_WORKERS` setting, and a failing chaos run
//!   is replayable from its seed alone;
//! * a virtual [`Clock`] stands in for `std::time` so retry backoff and
//!   wall-clock budgets can be tested by *advancing* time instead of
//!   *spending* it — chaos suites that exercise timeouts consume zero
//!   real wall time.
//!
//! The crate is deliberately mechanism-only: it knows nothing about
//! circuits, GPs or caches. The flow crates own the seams (they ask the
//! plan "does site S fire for the current candidate?" and act on the
//! answer); this crate owns determinism.
//!
//! [taxonomy]: https://docs.rs/smart-core (FlowError::taxonomy)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod plan;

pub use clock::{Clock, ClockInstant, VirtualClock};
pub use plan::{
    candidate_scope, current_candidate, CandidateGuard, FaultPlan, FaultSite, SOLO_CANDIDATE,
};
