//! Seeded fault plans: *which* seam fails for *which* candidate, decided
//! purely from `(seed, site, candidate)`.
//!
//! # Determinism contract
//!
//! Every decision ([`FaultPlan::fires`]) is a pure function of the plan
//! seed, the fault site and the candidate key. Nothing about call order,
//! thread scheduling, retry counts or wall time enters the hash — so a
//! parallel sweep under a fault plan makes exactly the same per-candidate
//! decisions as a serial one, and the chaos suite can *replay* a plan's
//! decisions (`failure_fault`) to compute the expected outcome table
//! without running the flow.
//!
//! # One failure per candidate
//!
//! Failure sites (everything except the cache-resilience sites) are
//! mutually exclusive per candidate: one uniform roll per candidate is
//! compared against the cumulative rate ladder, so at most one failure
//! site fires for a given candidate. That is what makes the central chaos
//! invariant checkable — *every injected failure surfaces as exactly one
//! classified taxonomy row* — without having to reason about which of two
//! stacked faults won the race to the error path. The cache-resilience
//! sites ([`FaultSite::CacheDrop`], [`FaultSite::CacheCorrupt`]) roll
//! independently because they must *not* produce a row: a dropped or
//! corrupted cache entry is recomputed, and the candidate's result is
//! byte-identical to the fault-free one.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use smart_prng::Prng;

/// An instrumented seam of the exploration flow where the plan may
/// inject a fault. The flow crates own the actual injection; this enum is
/// the shared vocabulary between the plan and the seams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The candidate's generator panics during elaboration
    /// (→ one `panic`-taxonomy row).
    CandidatePanic,
    /// A lint rule panics inside the exploration lint gate
    /// (→ one `panic`-taxonomy row; proves `LintGate` panics are
    /// contained, not sweep aborts).
    LintPanic,
    /// Every GP solve attempt of the candidate diverges numerically,
    /// exhausting the retry ladder (→ one `numerical` row).
    GpDiverge,
    /// Every GP solve attempt of the candidate is NaN-poisoned,
    /// exhausting the retry ladder (→ one `non-finite` row).
    GpNan,
    /// Static timing reports no reachable endpoints for the candidate
    /// (→ one `no-endpoints` row).
    StaNoEndpoints,
    /// The candidate observes a spurious cancellation before it starts
    /// (→ one `budget` row).
    SpuriousCancel,
    /// The pool worker that ran the candidate dies before reporting its
    /// slot (→ one `panic` row via the worker-lost recovery path).
    WorkerDeath,
    /// Simulated time advance: the clock jumps past the candidate's
    /// wall-clock budget before any work happens (→ one `budget` row when
    /// a wall-clock budget is configured; a no-op otherwise, since
    /// without a budget a time jump changes nothing).
    TimeSkew,
    /// The candidate's sizing-cache entry vanishes before its lookup
    /// (resilience site: recompute, byte-identical result, no row).
    CacheDrop,
    /// The candidate's sizing-cache entry is corrupted before its lookup;
    /// the checksum must catch it and recompute (resilience site: no
    /// row).
    CacheCorrupt,
}

impl FaultSite {
    /// Failure sites, in the fixed ladder order used by the
    /// one-roll-per-candidate selection. The order is part of the
    /// determinism contract: changing it changes which site a given
    /// `(seed, candidate)` lands on.
    pub const FAILURE_SITES: [FaultSite; 8] = [
        FaultSite::CandidatePanic,
        FaultSite::LintPanic,
        FaultSite::GpDiverge,
        FaultSite::GpNan,
        FaultSite::StaNoEndpoints,
        FaultSite::SpuriousCancel,
        FaultSite::WorkerDeath,
        FaultSite::TimeSkew,
    ];

    /// Independent resilience sites (no taxonomy row; the flow must
    /// absorb them with byte-identical results).
    pub const RESILIENCE_SITES: [FaultSite; 2] = [FaultSite::CacheDrop, FaultSite::CacheCorrupt];

    /// Every site, failure ladder first.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::CandidatePanic,
        FaultSite::LintPanic,
        FaultSite::GpDiverge,
        FaultSite::GpNan,
        FaultSite::StaNoEndpoints,
        FaultSite::SpuriousCancel,
        FaultSite::WorkerDeath,
        FaultSite::TimeSkew,
        FaultSite::CacheDrop,
        FaultSite::CacheCorrupt,
    ];

    /// Stable short name (bench histograms, trace events, reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CandidatePanic => "candidate-panic",
            FaultSite::LintPanic => "lint-panic",
            FaultSite::GpDiverge => "gp-diverge",
            FaultSite::GpNan => "gp-nan",
            FaultSite::StaNoEndpoints => "sta-no-endpoints",
            FaultSite::SpuriousCancel => "spurious-cancel",
            FaultSite::WorkerDeath => "worker-death",
            FaultSite::TimeSkew => "time-skew",
            FaultSite::CacheDrop => "cache-drop",
            FaultSite::CacheCorrupt => "cache-corrupt",
        }
    }

    /// The expected [`FlowError` taxonomy] tag of the row a failure site
    /// produces; `None` for resilience sites (no row). The chaos suite
    /// replays plans through this to compute expected outcome tables.
    ///
    /// [`FlowError` taxonomy]: FaultSite
    pub fn taxonomy(self) -> Option<&'static str> {
        match self {
            FaultSite::CandidatePanic | FaultSite::LintPanic | FaultSite::WorkerDeath => {
                Some("panic")
            }
            FaultSite::GpDiverge => Some("numerical"),
            FaultSite::GpNan => Some("non-finite"),
            FaultSite::StaNoEndpoints => Some("no-endpoints"),
            FaultSite::SpuriousCancel | FaultSite::TimeSkew => Some("budget"),
            FaultSite::CacheDrop | FaultSite::CacheCorrupt => None,
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::CandidatePanic => 0,
            FaultSite::LintPanic => 1,
            FaultSite::GpDiverge => 2,
            FaultSite::GpNan => 3,
            FaultSite::StaNoEndpoints => 4,
            FaultSite::SpuriousCancel => 5,
            FaultSite::WorkerDeath => 6,
            FaultSite::TimeSkew => 7,
            FaultSite::CacheDrop => 8,
            FaultSite::CacheCorrupt => 9,
        }
    }

    /// Per-site salt folded into the independent-roll hash so the
    /// resilience sites' decisions are uncorrelated with each other and
    /// with the failure ladder.
    fn salt(self) -> u64 {
        0x5EED_0000_0000_0000 ^ ((self.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

const SITES: usize = 10;

/// The candidate key used when a seam fires outside any candidate scope
/// (a direct `size_circuit` call, not part of a sweep).
pub const SOLO_CANDIDATE: u64 = u64::MAX;

/// A seeded, deterministic fault-injection plan.
///
/// Build one with [`FaultPlan::new`] and the `with_*` builders, hand it
/// to the flow (an `Arc` in the sizing options), and the instrumented
/// seams consult it per candidate. Decisions are pure; the atomic
/// injection counters only *observe* what manifested (a decision whose
/// seam is never reached — e.g. a GP fault on a candidate that the lint
/// gate rejected first — is not an injection).
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; SITES],
    injected: [AtomicU64; SITES],
}

impl FaultPlan {
    /// An inert plan (all rates zero) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Sets the injection rate of one site (probability in `[0, 1]` per
    /// candidate).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`, or if the failure-site rates
    /// would sum past 1 (they share a single roll, so their ladder cannot
    /// exceed unit probability).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be in [0, 1], got {rate}"
        );
        self.rates[site.index()] = rate;
        let ladder: f64 = FaultSite::FAILURE_SITES
            .iter()
            .map(|s| self.rates[s.index()])
            .sum();
        assert!(
            ladder <= 1.0 + 1e-12,
            "failure-site rates sum to {ladder} > 1; they share one roll per candidate"
        );
        self
    }

    /// Every failure site at `rate / 8` (so the ladder totals `rate`) and
    /// both cache-resilience sites at `rate` — the one-knob sweep the
    /// bench fault-rate study uses.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let mut plan = FaultPlan::new(seed);
        let per = rate / FaultSite::FAILURE_SITES.len() as f64;
        for site in FaultSite::FAILURE_SITES {
            plan = plan.with_rate(site, per);
        }
        for site in FaultSite::RESILIENCE_SITES {
            plan = plan.with_rate(site, rate);
        }
        plan
    }

    /// The plan's seed (reports, replay).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rate of `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// One uniform roll in `[0, 1)` for `(salt, candidate)` under this
    /// plan's seed. Seeding a fresh PRNG per decision keeps the decision
    /// a pure function of its inputs — no shared stream to race on.
    fn roll(&self, salt: u64, candidate: u64) -> f64 {
        let mix = self
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            ^ salt.rotate_left(17)
            ^ candidate.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        Prng::new(mix).f64()
    }

    /// The single failure site (if any) this plan assigns to `candidate`
    /// — the pure replay function the chaos suite uses to predict the
    /// outcome table. At most one failure site fires per candidate; see
    /// the module docs.
    pub fn failure_fault(&self, candidate: u64) -> Option<FaultSite> {
        let r = self.roll(0x1ADD_E500_0000_0000, candidate);
        let mut cum = 0.0;
        for site in FaultSite::FAILURE_SITES {
            cum += self.rates[site.index()];
            if r < cum {
                return Some(site);
            }
        }
        None
    }

    /// Whether `site` fires for `candidate`. Failure sites answer via the
    /// exclusive ladder; resilience sites roll independently.
    pub fn fires(&self, site: FaultSite, candidate: u64) -> bool {
        if FaultSite::RESILIENCE_SITES.contains(&site) {
            self.rates[site.index()] > 0.0
                && self.roll(site.salt(), candidate) < self.rates[site.index()]
        } else {
            self.failure_fault(candidate) == Some(site)
        }
    }

    /// [`FaultPlan::fires`] keyed on the thread's current candidate scope
    /// ([`candidate_scope`]), or [`SOLO_CANDIDATE`] outside any scope.
    /// This is what the deep seams (sizing, cache) call — they never see
    /// candidate indices directly.
    pub fn fires_here(&self, site: FaultSite) -> bool {
        self.fires(site, current_candidate().unwrap_or(SOLO_CANDIDATE))
    }

    /// Records that a fault actually manifested at `site` — called by the
    /// seam at the moment of injection, so the counters report what the
    /// flow really absorbed (a retried GP fault counts once per solve
    /// attempt ladder it poisons).
    pub fn record(&self, site: FaultSite) {
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Manifested-injection count of one site.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// `(site name, manifested count)` for every site with a nonzero
    /// count, in [`FaultSite::ALL`] order.
    pub fn injections(&self) -> Vec<(&'static str, u64)> {
        FaultSite::ALL
            .iter()
            .filter_map(|&s| {
                let n = self.injected(s);
                (n > 0).then(|| (s.name(), n))
            })
            .collect()
    }

    /// Total manifested injections across all sites.
    pub fn total_injected(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected(s)).sum()
    }
}

thread_local! {
    static CANDIDATE: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs `candidate` as the thread's current chaos candidate for the
/// lifetime of the returned guard (LIFO nesting, like a trace scope). The
/// exploration runtime wraps each candidate's work in one of these so
/// seams deep in the flow can ask [`FaultPlan::fires_here`] without
/// threading indices through every signature. The guard pops on drop —
/// including during panic unwinding, so an injected candidate panic
/// cannot leak its key onto the worker's next candidate.
pub fn candidate_scope(candidate: u64) -> CandidateGuard {
    CANDIDATE.with(|stack| stack.borrow_mut().push(candidate));
    CandidateGuard { _priv: () }
}

/// The thread's current chaos candidate key, if any.
pub fn current_candidate() -> Option<u64> {
    CANDIDATE.with(|stack| stack.borrow().last().copied())
}

/// RAII guard from [`candidate_scope`].
#[derive(Debug)]
pub struct CandidateGuard {
    _priv: (),
}

impl Drop for CandidateGuard {
    fn drop(&mut self) {
        CANDIDATE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = FaultPlan::uniform(7, 0.5);
        let b = FaultPlan::uniform(7, 0.5);
        let c = FaultPlan::uniform(8, 0.5);
        let mut diverged = false;
        for key in 0..200u64 {
            assert_eq!(a.failure_fault(key), b.failure_fault(key));
            for site in FaultSite::ALL {
                assert_eq!(a.fires(site, key), b.fires(site, key));
            }
            diverged |= a.failure_fault(key) != c.failure_fault(key);
        }
        assert!(diverged, "different seeds should pick different faults");
    }

    #[test]
    fn at_most_one_failure_site_fires_per_candidate() {
        let plan = FaultPlan::uniform(42, 0.9);
        for key in 0..500u64 {
            let firing: Vec<FaultSite> = FaultSite::FAILURE_SITES
                .into_iter()
                .filter(|&s| plan.fires(s, key))
                .collect();
            assert!(firing.len() <= 1, "candidate {key} got {firing:?}");
            assert_eq!(firing.first().copied(), plan.failure_fault(key));
        }
    }

    #[test]
    fn rates_are_respected_in_the_large() {
        let plan = FaultPlan::new(3).with_rate(FaultSite::GpDiverge, 0.25);
        let n = 4000u64;
        let hits = (0..n).filter(|&k| plan.fires(FaultSite::GpDiverge, k)).count();
        let frac = hits as f64 / n as f64;
        assert!(
            (0.2..0.3).contains(&frac),
            "expected ~0.25 hit rate, got {frac}"
        );
        // Inert plan never fires.
        let inert = FaultPlan::new(3);
        assert!((0..n).all(|k| inert.failure_fault(k).is_none()));
        assert!((0..n).all(|k| !inert.fires(FaultSite::CacheDrop, k)));
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn over_unit_failure_ladder_is_rejected() {
        let _ = FaultPlan::new(0)
            .with_rate(FaultSite::GpDiverge, 0.6)
            .with_rate(FaultSite::GpNan, 0.6);
    }

    #[test]
    fn candidate_scope_nests_and_unwinds() {
        assert_eq!(current_candidate(), None);
        {
            let _g1 = candidate_scope(3);
            assert_eq!(current_candidate(), Some(3));
            {
                let _g2 = candidate_scope(9);
                assert_eq!(current_candidate(), Some(9));
            }
            assert_eq!(current_candidate(), Some(3));
        }
        assert_eq!(current_candidate(), None);
        let result = std::panic::catch_unwind(|| {
            let _g = candidate_scope(5);
            panic!("contained");
        });
        assert!(result.is_err());
        assert_eq!(current_candidate(), None, "guard must pop during unwind");
    }

    #[test]
    fn counters_observe_manifested_injections() {
        let plan = FaultPlan::uniform(1, 0.4);
        assert_eq!(plan.total_injected(), 0);
        plan.record(FaultSite::GpDiverge);
        plan.record(FaultSite::GpDiverge);
        plan.record(FaultSite::CacheDrop);
        assert_eq!(plan.injected(FaultSite::GpDiverge), 2);
        assert_eq!(plan.total_injected(), 3);
        assert_eq!(
            plan.injections(),
            vec![("gp-diverge", 2), ("cache-drop", 1)]
        );
    }

    #[test]
    fn taxonomy_covers_every_failure_site() {
        for site in FaultSite::FAILURE_SITES {
            assert!(site.taxonomy().is_some(), "{} needs a taxonomy", site.name());
        }
        for site in FaultSite::RESILIENCE_SITES {
            assert!(site.taxonomy().is_none());
        }
    }
}
