//! The "original hand design" model — the baseline the paper's
//! experiments compare against (§6.1: extract macro, measure delay,
//! re-size with SMART to the same delay, report the recovered width).
//!
//! The paper's originals are proprietary hand designs produced under
//! schedule pressure (§2: "Tight schedule constraints limit design space
//! exploration, thus resulting in over-design"). We model that designer
//! deterministically: load-driven logical-effort sizing at a fixed target
//! stage effort, with per-family safety margins, each shared label sized
//! for its **worst-loaded instance** (a hand layout gives every slice the
//! same size, so the worst slice sets it). The margins below are fixed
//! once, repository-wide — they are the calibration knob documented in
//! DESIGN.md, not a per-experiment fit.

use std::collections::HashMap;

use smart_models::arcs::{drive, Edge};
use smart_models::ModelLibrary;
use smart_netlist::{Circuit, DeviceRole, LoadKind, NetId, Sizing};
use smart_sta::Boundary;

use crate::constraints::boundary_extra_loads;

/// Receiver-side capacitance of a net (gate + receiver junction + wire),
/// excluding the driver's own drain junction: logical-effort sizing treats
/// self-loading as parasitic delay, not as load the driver is sized for —
/// including it creates a feedback that inverts the taper.
fn receiver_cap(
    circuit: &Circuit,
    lib: &ModelLibrary,
    net: NetId,
    sizing: &Sizing,
    extra: &HashMap<NetId, f64>,
) -> f64 {
    let mut cap = circuit.net(net).wire_cap + extra.get(&net).copied().unwrap_or(0.0);
    for &(comp, pin) in circuit.loads_of(net) {
        let c = circuit.comp(comp);
        for load in c.kind.input_load(pin) {
            let w = sizing.width(c.label_of(load.role)) * load.factor;
            cap += match load.kind {
                LoadKind::Gate => w,
                LoadKind::Diffusion => w * lib.process().diff_factor,
            };
        }
    }
    cap
}

/// Per-family conservative sizing margins of the modeled hand designer.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMargins {
    /// Static CMOS gates.
    pub static_gate: f64,
    /// Pass-gate devices.
    pub pass: f64,
    /// Tri-state drivers.
    pub tristate: f64,
    /// Domino data pull-downs.
    pub domino_data: f64,
    /// Clocked devices (precharge, evaluate foot): hand designs size these
    /// generously for robustness, which is exactly the clock load SMART
    /// recovers in Table 1.
    pub clocked: f64,
    /// Target stage effort (electrical fanout) of the quick hand sizing.
    pub stage_effort: f64,
    /// Characteristic hand-library data-stack width for dynamic gates
    /// (their nodes are self-load dominated, so load-driven sizing does
    /// not apply; libraries fix device widths instead).
    pub domino_effort: f64,
    /// Edge-rate signoff limit (ps) the hand design must meet — keep equal
    /// to [`crate::SizingOptions::slope_max`] so baseline and SMART obey
    /// the same reliability rule.
    pub slope_max: f64,
}

impl Default for BaselineMargins {
    fn default() -> Self {
        BaselineMargins {
            static_gate: 1.30,
            pass: 1.20,
            tristate: 1.25,
            domino_data: 1.50,
            clocked: 1.70,
            stage_effort: 4.5,
            domino_effort: 2.2,
            slope_max: 120.0,
        }
    }
}

impl BaselineMargins {
    fn for_role(&self, role: DeviceRole) -> f64 {
        match role {
            DeviceRole::Precharge | DeviceRole::Evaluate => self.clocked,
            DeviceRole::DataN => self.domino_data,
            DeviceRole::PassN | DeviceRole::PassP | DeviceRole::PassInv => self.pass,
            DeviceRole::TriP | DeviceRole::TriN | DeviceRole::TriInv => self.tristate,
            _ => self.static_gate,
        }
    }
}

/// Produces the deterministic "hand designed" sizing of a circuit.
///
/// Iterative load-driven sizing: each drive label is set so its worst
/// instance reaches the target stage effort, times the family margin;
/// since loads depend on sizes, the fixpoint is approached with damped
/// iterations.
pub fn baseline_sizing(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    margins: &BaselineMargins,
) -> Sizing {
    let extra = boundary_extra_loads(circuit, boundary);
    let p = lib.process();
    let mut sizing = Sizing::uniform(circuit.labels(), p.w_min.max(1.5));
    if circuit.labels().is_empty() {
        return sizing;
    }
    // Pass 1: fanout-proportional sizing — the quick hand rule. Loads are
    // snapshot at the current sizing and each label is set for its worst
    // instance; per-pass growth is clamped so shared-label self-loading
    // (a carry gate driving its same-label twin) cannot run away, which a
    // free fixpoint does. Two passes let heavily loaded output stages pull
    // their predecessors up without letting chains inflate. Margins are
    // NOT applied here — inside the loop they would compound stage over
    // stage through the load feedback.
    for _ in 0..2 {
        // Target width per label = worst instance requirement.
        let mut target: HashMap<usize, f64> = HashMap::new();
        for (_, comp) in circuit.components() {
            if matches!(comp.kind, smart_netlist::ComponentKind::Domino { .. }) {
                // Dynamic gates: their node is dominated by self-loading,
                // so load-driven sizing is meaningless there. Hand domino
                // libraries use characteristic device widths instead
                // (`domino_effort` is that characteristic data width).
                let wd = margins.domino_effort;
                for spec in comp.kind.roles() {
                    let w = match spec.role {
                        DeviceRole::DataN => wd,
                        DeviceRole::Precharge => wd,
                        DeviceRole::Evaluate => 1.5 * wd,
                        _ => wd,
                    }
                    .clamp(p.w_min, p.w_max);
                    let t = target
                        .entry(comp.label_of(spec.role).index())
                        .or_insert(p.w_min);
                    *t = t.max(w);
                }
                continue;
            }
            let load = receiver_cap(circuit, lib, comp.output_net(), &sizing, &extra);
            for edge in [Edge::Rise, Edge::Fall] {
                for term in drive(&comp.kind, edge, p.p_mobility, p.pass_drive) {
                    let label = comp.label_of(term.role);
                    let w = (term.factor * load / margins.stage_effort)
                        .clamp(p.w_min, p.w_max);
                    let t = target.entry(label.index()).or_insert(p.w_min);
                    *t = t.max(w);
                }
            }
        }
        let mut next = Vec::with_capacity(sizing.len());
        for i in 0..sizing.len() {
            let cur = sizing.as_slice()[i];
            let want = target.get(&i).copied().unwrap_or(cur);
            next.push(want.min(cur * 2.5).clamp(p.w_min, p.w_max));
        }
        sizing = Sizing::from_widths(next);
    }
    // Pass 2: apply each label's family margin once (the designer's fixed
    // safety factor on top of the taper).
    let mut margin_of = vec![1.0f64; circuit.labels().len()];
    for (_, comp) in circuit.components() {
        for spec in comp.kind.roles() {
            let i = comp.label_of(spec.role).index();
            margin_of[i] = margin_of[i].max(margins.for_role(spec.role));
        }
    }
    let widths = sizing
        .as_slice()
        .iter()
        .zip(&margin_of)
        .map(|(&w, &m)| (w * m).clamp(p.w_min, p.w_max))
        .collect();
    let mut sizing = Sizing::from_widths(widths);

    // Pass 3: slope signoff. Hand designs must meet the project's edge-rate
    // rule (the same `slope_max` the SMART constraints enforce); upsize any
    // driver whose output transition is too slow. Iterated because
    // upsizing one stage loads its predecessor.
    let slope_max = margins.slope_max;
    for _ in 0..8 {
        let mut fixed = true;
        let mut next = sizing.clone();
        for (_, comp) in circuit.components() {
            let net = comp.output_net();
            if circuit.net(net).kind == smart_netlist::NetKind::Dynamic {
                continue; // same exemption the SMART constraints apply
            }
            let cap = lib.net_cap(circuit, net, &sizing)
                + extra.iter().find(|(n, _)| **n == net).map_or(0.0, |(_, &c)| c);
            let limit = slope_max * circuit.drivers_of(net).len().max(1) as f64;
            for edge in [Edge::Rise, Edge::Fall] {
                let slope = lib
                    .stage_timing(comp, edge, cap, p.slope_min, &sizing)
                    .slope;
                if slope > limit {
                    let ratio = ((slope - p.slope_min) / (limit - p.slope_min)).max(1.0);
                    // Grow the cheapest drive group first (fewest devices):
                    // a designer fixes a slow domino node by fattening the
                    // single foot/precharge, not the whole data stack.
                    let terms = drive(&comp.kind, edge, p.p_mobility, p.pass_drive);
                    let mult_of = |role| {
                        comp.kind
                            .roles()
                            .iter()
                            .filter(|r| r.role == role)
                            .map(|r| r.mult)
                            .sum::<usize>()
                    };
                    if let Some(term) = terms.iter().min_by_key(|t| mult_of(t.role)) {
                        let label = comp.label_of(term.role);
                        // The same clocked-device discipline SMART obeys:
                        // foot/precharge stay within 2x the data stack.
                        let cap_w = match term.role {
                            DeviceRole::Evaluate | DeviceRole::Precharge => {
                                2.0 * sizing.width(comp.label_of(DeviceRole::DataN))
                            }
                            _ => p.w_max,
                        };
                        let w = (sizing.width(label) * ratio)
                            .min(cap_w)
                            .clamp(p.w_min, p.w_max);
                        if w > next.width(label) * 1.001 {
                            next.set_width(label, w);
                            fixed = false;
                        } else if slope > limit * 1.02 {
                            // The cheap group saturated; spread to the rest.
                            for t in &terms {
                                let l = comp.label_of(t.role);
                                let w = (sizing.width(l) * ratio.sqrt())
                                    .clamp(p.w_min, p.w_max);
                                if w > next.width(l) * 1.001 {
                                    next.set_width(l, w);
                                    fixed = false;
                                }
                            }
                        }
                    }
                }
            }
        }
        sizing = next;
        if fixed {
            break;
        }
    }
    sizing
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_netlist::{ComponentKind, Skew};

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new("chain");
        let mut prev = c.add_net("in").unwrap();
        c.expose_input("in", prev);
        for i in 0..n {
            let next = c.add_net(format!("n{i}")).unwrap();
            let p = c.label(&format!("P{i}"));
            let nn = c.label(&format!("N{i}"));
            c.add(
                format!("u{i}"),
                ComponentKind::Inverter { skew: Skew::Balanced },
                &[prev, next],
                &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, nn)],
            )
            .unwrap();
            prev = next;
        }
        c.expose_output("out", prev);
        c
    }

    #[test]
    fn baseline_tapers_toward_the_load() {
        let mut c = chain(3);
        let out = c.find_net("n2").unwrap();
        c.set_wire_cap(out, 60.0); // heavy output load
        let lib = ModelLibrary::reference();
        let sizing = baseline_sizing(&c, &lib, &Boundary::default(), &BaselineMargins::default());
        // The last stage must be the largest (it sees the heavy load).
        let w_last = sizing.width(c.labels().lookup("N2").unwrap());
        let w_first = sizing.width(c.labels().lookup("N0").unwrap());
        assert!(
            w_last > 1.2 * w_first,
            "taper: first {w_first}, last {w_last}"
        );
    }

    #[test]
    fn pmos_sized_larger_than_nmos() {
        let mut c = chain(2);
        let out = c.find_net("n1").unwrap();
        c.set_wire_cap(out, 20.0);
        let lib = ModelLibrary::reference();
        let sizing = baseline_sizing(&c, &lib, &Boundary::default(), &BaselineMargins::default());
        let wp = sizing.width(c.labels().lookup("P1").unwrap());
        let wn = sizing.width(c.labels().lookup("N1").unwrap());
        assert!(wp > wn, "mobility compensation: P {wp} vs N {wn}");
    }

    #[test]
    fn margins_scale_the_result() {
        let mut c = chain(2);
        let out = c.find_net("n1").unwrap();
        c.set_wire_cap(out, 20.0);
        let lib = ModelLibrary::reference();
        let lean = BaselineMargins {
            static_gate: 1.0,
            ..Default::default()
        };
        let fat = BaselineMargins {
            static_gate: 1.6,
            ..Default::default()
        };
        let w_lean = c.total_width(&baseline_sizing(&c, &lib, &Boundary::default(), &lean));
        let w_fat = c.total_width(&baseline_sizing(&c, &lib, &Boundary::default(), &fat));
        assert!(w_fat > w_lean * 1.1, "{w_fat} vs {w_lean}");
    }
}
