//! Sizing memoization — reuse of GP solutions across sweep points.
//!
//! Multi-macro sweeps (the Table-2-style comparisons) size the *same
//! topology* many times: every sweep point re-explores the full
//! alternative set, and most candidates recur with identical instance
//! conditions. The cache keys a completed [`SizingOutcome`] on everything
//! that determines it —
//!
//! * the netlist's [`Circuit::structural_hash`] (devices, connectivity,
//!   labels, wire caps, ports),
//! * the process corner ([`smart_models::Process::fingerprint`] of the
//!   [`ModelLibrary`] — every model coefficient, so a cache shared across
//!   sweeps at different corners can never replay the wrong corner's
//!   solution),
//! * the quantized delay spec (ps budgets rounded to a 2⁻¹² ps grid, far
//!   below timing meaning, so float noise from spec arithmetic cannot
//!   split otherwise-identical entries),
//! * the boundary conditions (exact bit patterns, sorted by port name),
//! * a fingerprint of every [`SizingOptions`] knob that can change the
//!   solution (cost metric, iteration caps, tolerances, pins, OTB,
//!   dominance mode, relaxation ladder, warm start) — deliberately
//!   *excluding* the resource budget, which can only abort a solve, never
//!   steer a successful one.
//!
//! Only successful outcomes are stored: failures may be budget- or
//! timing-dependent and must be re-derived. Because the whole flow is
//! deterministic, a hit is byte-identical to the cold solve it replaces
//! for any inputs that map to the same key — which, given the spec
//! quantization, means specs equal after rounding to the 2⁻¹² ps grid
//! (sub-quantum spec differences are below any timing meaning by
//! construction). The cache-correctness test suite asserts the bitwise
//! replay.
//!
//! # Multi-client ownership
//!
//! The cache is built for *cross-request* sharing (the `smart-serve`
//! workload): the map is split into N shards keyed by a stable hash of the
//! [`CacheKey`], each behind its own lock, so concurrent sweeps contend
//! per shard rather than on one global mutex. [`SizingCache::bounded`]
//! adds an entry budget with least-recently-used eviction (per-shard
//! recency stamps), and [`SizingCache::snapshot`] / [`SizingCache::restore`]
//! persist the entries byte-stably (the checkpoint float-bit-pattern
//! encoding, entries sorted by key) so a warm restart replays exactly the
//! outcomes the previous process computed. Per-sweep hit/miss attribution
//! is the caller's job via [`CacheStats`] — the cache's own counters are
//! process-lifetime aggregates over *all* clients.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use smart_models::ModelLibrary;
use smart_netlist::{Circuit, StableHasher};
use smart_sta::Boundary;

use crate::sizing::SizingOutcome;
use crate::{CostMetric, DelaySpec, SizingOptions};

/// Cache key: every input that determines a sizing outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Circuit::structural_hash`] of the candidate netlist.
    pub structure: u64,
    /// [`smart_models::Process::fingerprint`] of the model library's
    /// process corner: every delay/slope/power coefficient feeds the GP
    /// and STA, so corners must never share entries.
    pub process: u64,
    /// Quantized data-phase budget.
    pub spec_data: u64,
    /// Quantized precharge budget (`u64::MAX` = unset, distinct from any
    /// quantized value by construction).
    pub spec_precharge: u64,
    /// Fingerprint of the boundary conditions.
    pub boundary: u64,
    /// Fingerprint of the outcome-relevant sizing options.
    pub options: u64,
}

/// Spec budgets land on a 2⁻¹² ps grid: coarse enough to absorb float
/// noise from spec arithmetic, ~5 orders of magnitude below any timing
/// budget's meaningful resolution.
fn quantize_ps(x: f64) -> u64 {
    // Specs are validated finite and positive before keys are built; the
    // saturating cast keeps a pathological value from wrapping.
    let q = (x * 4096.0).round();
    if q >= u64::MAX as f64 {
        u64::MAX - 1
    } else if q.is_finite() && q > 0.0 {
        q as u64
    } else {
        0
    }
}

pub(crate) fn boundary_fingerprint(boundary: &Boundary) -> u64 {
    let mut h = StableHasher::new();
    // HashMap iteration order is per-instance; sort by name so equal
    // boundaries built in different orders fingerprint equally.
    let mut loads: Vec<(&str, f64)> = boundary
        .output_loads
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    loads.sort_unstable_by(|a, b| a.0.cmp(b.0));
    h.write_usize(loads.len());
    for (name, v) in loads {
        h.write_str(name);
        h.write_f64_bits(v);
    }
    let mut times: Vec<(&str, (f64, f64))> = boundary
        .input_times
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    times.sort_unstable_by(|a, b| a.0.cmp(b.0));
    h.write_usize(times.len());
    for (name, (t, s)) in times {
        h.write_str(name);
        h.write_f64_bits(t);
        h.write_f64_bits(s);
    }
    match boundary.default_slope {
        Some(s) => {
            h.write_bool(true);
            h.write_f64_bits(s);
        }
        None => h.write_bool(false),
    }
    h.finish()
}

pub(crate) fn options_fingerprint(opts: &SizingOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(match opts.cost {
        CostMetric::Width => 0,
        CostMetric::Power => 1,
    });
    h.write_usize(opts.max_outer_iters);
    h.write_f64_bits(opts.timing_tolerance);
    h.write_f64_bits(opts.slope_max);
    let mut pinned: Vec<(&str, f64)> = opts
        .pinned
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    pinned.sort_unstable_by(|a, b| a.0.cmp(b.0));
    h.write_usize(pinned.len());
    for (name, w) in pinned {
        h.write_str(name);
        h.write_f64_bits(w);
    }
    h.write_usize(opts.path_limit);
    h.write_bool(opts.noise_constraints);
    h.write_bool(opts.otb);
    h.write_bool(opts.heuristic_dominance);
    h.write_usize(opts.gp_retries);
    h.write_usize(opts.relaxation.len());
    for &r in &opts.relaxation {
        h.write_f64_bits(r);
    }
    match &opts.warm_start {
        Some(s) => {
            h.write_bool(true);
            h.write_usize(s.len());
            for &w in s.as_slice() {
                h.write_f64_bits(w);
            }
        }
        None => h.write_bool(false),
    }
    // The corner set changes the GP's constraint family and the
    // feasibility test, so it is a first-class key dimension: `None`
    // (historical single-corner) and every distinct `Some(set)` — by
    // member names, coefficients and order — key separately. A
    // multi-corner solve can never replay a single-corner entry, nor
    // the reverse.
    match &opts.corners {
        Some(set) => {
            h.write_bool(true);
            h.write_u64(set.fingerprint());
        }
        None => h.write_bool(false),
    }
    // opts.budget intentionally excluded: budgets abort solves (which are
    // never cached), they cannot change a successful outcome.
    // opts.trace intentionally excluded: observability records what the
    // flow did, it never changes what the flow computes — keying on it
    // would needlessly split traced and untraced runs into disjoint
    // cache populations.
    // opts.lint likewise: the exploration lint gate rejects a candidate
    // before its first cache lookup, so gating can never steer an outcome
    // that reaches the cache.
    // opts.chaos, opts.budget.clock and opts.retry_backoff likewise:
    // faults and budget expiry abort candidates (aborts are never
    // cached), and backoff/clock choice only move *when* a solve runs,
    // never what it computes.
    // opts.checkpoint likewise: persistence replays rows, it never
    // changes how they are computed.
    // opts.cache_stats likewise: a statistics sink records what the flow
    // did, it never changes what the flow computes — keying on it would
    // split every sweep (each gets a fresh sink) into its own disjoint
    // cache population, defeating cross-sweep memoization entirely.
    // opts.audit likewise, exactly like trace: certificates only *abort*
    // candidates (aborts are never cached), and dominance pruning is
    // feasible-set-preserving — the prune-parity suite in CI pins the
    // pruned and unpruned optima together — so the audit gate must never
    // fork the cache key space.
    h.finish()
}

/// Builds the memoization key for one sizing invocation.
pub fn cache_key(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> CacheKey {
    CacheKey {
        structure: circuit.structural_hash(),
        process: lib.process().fingerprint(),
        spec_data: quantize_ps(spec.data),
        spec_precharge: spec.precharge.map_or(u64::MAX, quantize_ps),
        boundary: boundary_fingerprint(boundary),
        options: options_fingerprint(opts),
    }
}

/// Content checksum of a stored outcome: every field that `lookup` will
/// replay, hashed with the same [`StableHasher`] the key fingerprints
/// use. Verified on every read — the foundation for the service
/// snapshot/restore path, where entries will have crossed a serialization
/// boundary and "the map can't change under us" no longer holds.
fn outcome_checksum(outcome: &SizingOutcome) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(outcome.sizing.len());
    for &w in outcome.sizing.as_slice() {
        h.write_f64_bits(w);
    }
    h.write_f64_bits(outcome.measured_delay);
    h.write_f64_bits(outcome.measured_precharge);
    h.write_f64_bits(outcome.total_width);
    h.write_usize(outcome.iterations);
    h.write_usize(outcome.constraint_paths);
    h.write_u64((outcome.raw_paths >> 64) as u64);
    h.write_u64(outcome.raw_paths as u64);
    h.write_f64_bits(outcome.spec_relaxation);
    h.write_usize(outcome.gp_restarts);
    h.write_usize(outcome.corner_delays.len());
    for c in &outcome.corner_delays {
        h.write_str(&c.corner);
        h.write_f64_bits(c.data);
        h.write_f64_bits(c.precharge);
    }
    h.write_str(&outcome.binding_corner);
    h.finish()
}

/// Per-sweep hit/miss attribution sink, shared via `Arc` in
/// [`SizingOptions::cache_stats`].
///
/// The cache's own counters aggregate over *every* client for the cache's
/// whole lifetime; when two sweeps share one cache concurrently (the
/// `smart-serve` workload), deltas of those global counters misattribute
/// each sweep's traffic to the other. A `CacheStats` belongs to exactly
/// one sweep: the sizing flow records each of that sweep's own lookups
/// into it, so the numbers are exact no matter how many sibling sweeps
/// hammer the same cache. Excluded from the cache key fingerprint
/// (observability never changes what the flow computes).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CacheStats {
    /// A zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one lookup outcome.
    pub fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hits recorded into this sink.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses recorded into this sink.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A stored entry: the outcome, the checksum computed at insert time, and
/// the recency stamp LRU eviction orders by.
#[derive(Debug, Clone)]
struct Entry {
    checksum: u64,
    /// Shard-local recency: bumped from the owning shard's tick on every
    /// verified hit, so eviction drops the least-recently-replayed entry.
    stamp: u64,
    outcome: SizingOutcome,
}

/// One lock's worth of the cache: a map plus the monotonic recency tick
/// its entries are stamped from.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

impl Shard {
    fn next_stamp(&mut self) -> u64 {
        let t = self.tick;
        self.tick += 1;
        t
    }
}

/// A thread-safe memoization store for successful sizing outcomes, shared
/// via `Arc` in [`SizingOptions::cache`] — and, in the serve workload,
/// across many concurrent requests.
///
/// The map is split into shards keyed by a stable hash of the
/// [`CacheKey`]; each shard has its own lock, so concurrent sweeps
/// contend per shard instead of serializing on one mutex.
/// [`SizingCache::new`] keeps the historical single-shard, unbounded
/// configuration; [`SizingCache::bounded`] selects a shard count and an
/// entry budget enforced by least-recently-used eviction.
///
/// Every entry carries a content checksum computed at insert time and
/// verified on every read; an entry that fails verification is evicted
/// and the lookup reports a miss, so a corrupted entry costs one
/// recompute instead of replaying garbage into a sweep table. The same
/// checksum travels inside [`SizingCache::snapshot`], so a damaged
/// snapshot file restores as "no snapshot" rather than as wrong answers.
///
/// Hit/miss counters are monotonic over the cache's lifetime and
/// aggregate across all clients; per-sweep attribution uses a
/// [`CacheStats`] sink instead.
#[derive(Debug)]
pub struct SizingCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget (`None` = unbounded). The configured total
    /// budget is split evenly across shards, rounded up, so the cache
    /// never holds more than ~`budget + shards` entries.
    per_shard_budget: Option<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    poisoned: AtomicUsize,
    evicted: AtomicUsize,
}

impl Default for SizingCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable shard index of a key: the same [`StableHasher`] the key
/// fingerprints use, over all six dimensions, so the choice is
/// deterministic across runs and processes (snapshots restore into the
/// same shard layout they were taken from).
fn shard_of(key: &CacheKey, shards: usize) -> usize {
    let mut h = StableHasher::new();
    h.write_u64(key.structure);
    h.write_u64(key.process);
    h.write_u64(key.spec_data);
    h.write_u64(key.spec_precharge);
    h.write_u64(key.boundary);
    h.write_u64(key.options);
    (h.finish() % shards as u64) as usize
}

impl SizingCache {
    /// An empty cache: one shard, no entry budget — the historical
    /// single-sweep configuration.
    pub fn new() -> Self {
        Self::with_config(1, None)
    }

    /// An empty cache with `shards` independently locked shards and an
    /// optional total entry budget enforced by LRU eviction. `shards` is
    /// clamped to at least 1; a budget of 0 is treated as 1 per shard
    /// (a cache that can never hold an entry would silently disable
    /// memoization).
    pub fn bounded(shards: usize, budget: Option<usize>) -> Self {
        Self::with_config(shards, budget)
    }

    fn with_config(shards: usize, budget: Option<usize>) -> Self {
        let shards = shards.max(1);
        SizingCache {
            per_shard_budget: budget.map(|b| b.div_ceil(shards).max(1)),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            poisoned: AtomicUsize::new(0),
            evicted: AtomicUsize::new(0),
        }
    }

    /// The shard count this cache was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The total entry budget (`None` = unbounded). Reported as the
    /// per-shard budget times the shard count — the bound actually
    /// enforced.
    pub fn budget(&self) -> Option<usize> {
        self.per_shard_budget.map(|b| b * self.shards.len())
    }

    fn guard(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard> {
        // A poisoned mutex only means a panicking thread died mid-insert;
        // the map itself holds plain owned data and stays valid.
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> std::sync::MutexGuard<'_, Shard> {
        self.guard(shard_of(key, self.shards.len()))
    }

    /// Looks up `key`, counting the hit or miss. An entry whose stored
    /// checksum no longer matches its content is *poisoned*: it is
    /// evicted, counted, and the lookup reports a miss so the caller
    /// recomputes. A verified hit refreshes the entry's LRU stamp.
    pub fn lookup(&self, key: &CacheKey) -> Option<SizingOutcome> {
        let found = {
            let mut shard = self.shard_for(key);
            let stamp = shard.next_stamp();
            match shard.map.get_mut(key) {
                Some(entry) if outcome_checksum(&entry.outcome) == entry.checksum => {
                    entry.stamp = stamp;
                    Some(entry.outcome.clone())
                }
                Some(_) => {
                    shard.map.remove(key);
                    self.poisoned.fetch_add(1, Ordering::Relaxed);
                    smart_trace::counter("cache/poisoned", 1);
                    smart_trace::emit_with("cache/poisoned", || {
                        vec![("structure", format!("{:016x}", key.structure).into())]
                    });
                    None
                }
                None => None,
            }
        };
        let hit = found.is_some();
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        smart_trace::counter(if hit { "cache/hit" } else { "cache/miss" }, 1);
        smart_trace::emit_with("cache/lookup", || {
            vec![
                ("hit", hit.into()),
                ("structure", format!("{:016x}", key.structure).into()),
            ]
        });
        found
    }

    /// Stores a successful outcome under `key`, stamping its content
    /// checksum. Concurrent inserts of the same key are benign: the flow
    /// is deterministic, so both threads computed the same value. When
    /// the shard is over budget, least-recently-used entries are evicted
    /// (the fresh insert carries the newest stamp, so it always survives
    /// its own admission).
    pub fn insert(&self, key: CacheKey, outcome: SizingOutcome) {
        let checksum = outcome_checksum(&outcome);
        let mut shard = self.shard_for(&key);
        let stamp = shard.next_stamp();
        shard.map.insert(
            key,
            Entry {
                checksum,
                stamp,
                outcome,
            },
        );
        if let Some(budget) = self.per_shard_budget {
            while shard.map.len() > budget {
                let Some(victim) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                shard.map.remove(&victim);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                smart_trace::counter("cache/evicted", 1);
            }
        }
    }

    /// Drops the entry under `key`, reporting whether one existed. A
    /// chaos/test hook standing in for any lost entry (eviction race,
    /// failed restore); the flow must absorb it as a plain miss.
    pub fn remove(&self, key: &CacheKey) -> bool {
        self.shard_for(key).map.remove(key).is_some()
    }

    /// Flips a bit in the entry under `key` *without* updating its
    /// checksum, reporting whether an entry was there to damage. A
    /// chaos/test hook simulating storage corruption: the next lookup
    /// must detect the mismatch, evict, and recompute.
    pub fn corrupt(&self, key: &CacheKey) -> bool {
        match self.shard_for(key).map.get_mut(key) {
            Some(entry) => {
                // Lowest mantissa bit: the value stays finite (so nothing
                // downstream of a hypothetical undetected replay would
                // panic instead of misbehave), but the checksum — which
                // covers exact bit patterns — can no longer match.
                let bits = entry.outcome.measured_delay.to_bits() ^ 1;
                entry.outcome.measured_delay = f64::from_bits(bits);
                true
            }
            None => false,
        }
    }

    /// Entries currently stored (summed across shards; a racing insert
    /// may be counted or not, like any concurrent size query).
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.guard(i).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` counters, aggregated over every client
    /// that ever used this cache. For per-sweep attribution use
    /// [`CacheStats`].
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Lifetime count of entries evicted by checksum verification.
    pub fn poisoned(&self) -> usize {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Lifetime count of entries evicted by the LRU budget.
    pub fn evicted(&self) -> usize {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.guard(i).map.clear();
        }
    }

    /// Serializes every entry byte-stably: entries sorted by key (shard
    /// layout and recency stamps are *not* serialized — they are
    /// runtime-configuration, and a snapshot restored into a cache with a
    /// different shard count must still replay identically), every float
    /// as its 16-hex-digit `f64::to_bits` pattern (the checkpoint
    /// encoding), each entry carrying the content checksum that
    /// [`SizingCache::restore`] re-verifies. Snapshot → restore →
    /// snapshot is the identity on the bytes.
    pub fn snapshot(&self) -> String {
        let mut entries: Vec<(CacheKey, u64, SizingOutcome)> = Vec::new();
        for i in 0..self.shards.len() {
            let shard = self.guard(i);
            entries.extend(
                shard
                    .map
                    .iter()
                    .map(|(k, e)| (*k, e.checksum, e.outcome.clone())),
            );
        }
        entries.sort_unstable_by_key(|(k, _, _)| {
            (
                k.structure,
                k.process,
                k.spec_data,
                k.spec_precharge,
                k.boundary,
                k.options,
            )
        });
        let mut s = String::new();
        s.push_str("{\"version\":1,\"kind\":\"sizing-cache\",\"entries\":[");
        for (n, (key, checksum, outcome)) in entries.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"key\":[\"{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\"],\"sum\":\"{}\",",
                crate::persist::hex64(key.structure),
                crate::persist::hex64(key.process),
                crate::persist::hex64(key.spec_data),
                crate::persist::hex64(key.spec_precharge),
                crate::persist::hex64(key.boundary),
                crate::persist::hex64(key.options),
                crate::persist::hex64(*checksum),
            );
            crate::persist::render_outcome_fields(&mut s, outcome);
            s.push('}');
        }
        s.push_str("]}\n");
        s
    }

    /// Restores entries from a [`SizingCache::snapshot`] string into this
    /// cache, returning how many were loaded. All-or-nothing: any
    /// deviation from the canonical form — truncation, a hand edit, an
    /// entry whose stored checksum does not match its re-hashed content —
    /// rejects the whole snapshot as `None` ("no snapshot"), mirroring
    /// the checkpoint loader's policy, so damage can only ever cost warm
    /// starts, never correctness. Restored entries go through the normal
    /// insert path (budget eviction applies); counters are not touched.
    pub fn restore(&self, text: &str) -> Option<usize> {
        let mut p = crate::persist::Parser::new(text);
        p.lit("{\"version\":1,\"kind\":\"sizing-cache\",\"entries\":[")?;
        let mut entries = Vec::new();
        if !p.peek(']') {
            loop {
                p.lit("{\"key\":[")?;
                let mut dims = [0u64; 6];
                for (i, d) in dims.iter_mut().enumerate() {
                    if i > 0 {
                        p.lit(",")?;
                    }
                    p.lit("\"")?;
                    *d = p.hex_u64()?;
                    p.lit("\"")?;
                }
                p.lit("],\"sum\":\"")?;
                let sum = p.hex_u64()?;
                p.lit("\",")?;
                let outcome = crate::persist::parse_outcome_fields(&mut p)?;
                p.lit("}")?;
                // The checksum binds the snapshot bytes to the exact
                // outcome content; a mismatch means damage (or tampering)
                // and voids the whole file.
                if outcome_checksum(&outcome) != sum {
                    return None;
                }
                let key = CacheKey {
                    structure: dims[0],
                    process: dims[1],
                    spec_data: dims[2],
                    spec_precharge: dims[3],
                    boundary: dims[4],
                    options: dims[5],
                };
                entries.push((key, outcome));
                if !p.comma() {
                    break;
                }
            }
        }
        p.lit("]}")?;
        let n = entries.len();
        for (key, outcome) in entries {
            self.insert(key, outcome);
        }
        Some(n)
    }

    /// Writes a snapshot to `path` atomically (uniquely named temp file +
    /// rename, like the checkpointer).
    pub fn save_snapshot(&self, path: &Path) -> std::io::Result<()> {
        crate::persist::atomic_write(path, &self.snapshot())
    }

    /// Restores from a snapshot file; `None` for a missing, unreadable,
    /// or non-canonical file (all equally "no snapshot").
    pub fn load_snapshot(&self, path: &Path) -> Option<usize> {
        self.restore(&std::fs::read_to_string(path).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> Circuit {
        use smart_macros::{MacroSpec, MuxTopology};
        MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: 4,
        }
        .generate()
    }

    fn boundary(load: f64) -> Boundary {
        let mut b = Boundary::default();
        b.output_loads.insert("y".into(), load);
        b
    }

    fn lib() -> ModelLibrary {
        ModelLibrary::reference()
    }

    #[test]
    fn equal_inputs_equal_keys() {
        let c = circuit();
        let opts = SizingOptions::default();
        let k1 = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &opts);
        let k2 = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &opts);
        assert_eq!(k1, k2);
    }

    #[test]
    fn every_key_dimension_separates() {
        let c = circuit();
        let opts = SizingOptions::default();
        let base = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &opts);

        let other_spec = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(301.0), &opts);
        assert_ne!(base, other_spec, "spec must separate");

        let other_load = cache_key(&c, &lib(), &boundary(16.0), &DelaySpec::uniform(300.0), &opts);
        assert_ne!(base, other_load, "boundary must separate");

        let mut o2 = SizingOptions::default();
        o2.otb = false;
        let other_opts = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &o2);
        assert_ne!(base, other_opts, "options must separate");

        let precharge = cache_key(
            &c,
            &lib(),
            &boundary(15.0),
            &DelaySpec {
                data: 300.0,
                precharge: Some(300.0),
            },
            &opts,
        );
        assert_ne!(base, precharge, "explicit precharge must separate");
    }

    #[test]
    fn process_corners_never_share_keys() {
        use smart_models::Process;
        let c = circuit();
        let opts = SizingOptions::default();
        let b = boundary(15.0);
        let spec = DelaySpec::uniform(300.0);
        let typ = cache_key(&c, &ModelLibrary::reference(), &b, &spec, &opts);
        let slow = cache_key(&c, &ModelLibrary::new(Process::slow_corner()), &b, &spec, &opts);
        let fast = cache_key(&c, &ModelLibrary::new(Process::fast_corner()), &b, &spec, &opts);
        assert_ne!(typ, slow, "slow corner must separate from reference");
        assert_ne!(typ, fast, "fast corner must separate from reference");
        assert_ne!(slow, fast, "slow and fast corners must separate");
        // Equal corners built independently still share the key — the
        // fingerprint is over coefficient values, not library identity.
        let typ2 = cache_key(&c, &ModelLibrary::new(Process::reference()), &b, &spec, &opts);
        assert_eq!(typ, typ2);
    }

    #[test]
    fn budget_does_not_split_keys() {
        let c = circuit();
        let mut tight = SizingOptions::default();
        tight.budget.max_gp_iters = Some(1);
        let a = cache_key(
            &c,
            &lib(),
            &boundary(15.0),
            &DelaySpec::uniform(300.0),
            &SizingOptions::default(),
        );
        let b = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &tight);
        assert_eq!(a, b, "budgets abort, they never steer; keys must agree");
    }

    fn outcome(seed: f64) -> SizingOutcome {
        use crate::sizing::CornerDelay;
        use smart_netlist::Sizing;
        SizingOutcome {
            sizing: Sizing::from_widths(vec![seed, seed + 1.0, seed + 2.0]),
            measured_delay: 100.0 + seed,
            measured_precharge: 80.0,
            total_width: 3.0 * seed + 3.0,
            iterations: 2,
            constraint_paths: 9,
            raw_paths: 1u128 << 70,
            spec_relaxation: 0.0,
            gp_restarts: 0,
            corner_delays: vec![CornerDelay {
                corner: "typical".to_owned(),
                data: 100.0 + seed,
                precharge: 80.0,
            }],
            binding_corner: "typical".to_owned(),
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            structure: n,
            process: 1,
            spec_data: 2,
            spec_precharge: 3,
            boundary: 4,
            options: 5,
        }
    }

    #[test]
    fn sharded_cache_replays_like_single_shard() {
        for shards in [1, 4, 7] {
            let cache = SizingCache::bounded(shards, None);
            for n in 0..20 {
                cache.insert(key(n), outcome(n as f64 + 1.0));
            }
            assert_eq!(cache.len(), 20);
            for n in 0..20 {
                let got = cache.lookup(&key(n)).expect("inserted entry must hit");
                assert_eq!(
                    got.measured_delay.to_bits(),
                    outcome(n as f64 + 1.0).measured_delay.to_bits(),
                    "shards={shards} n={n}"
                );
            }
            assert!(cache.lookup(&key(999)).is_none());
            assert_eq!(cache.stats(), (20, 1));
        }
    }

    #[test]
    fn lru_eviction_keeps_the_recently_used_entry() {
        // One shard, budget 2: inserting a third entry must evict the
        // least recently *used* one, not the oldest-inserted one.
        let cache = SizingCache::bounded(1, Some(2));
        cache.insert(key(1), outcome(1.0));
        cache.insert(key(2), outcome(2.0));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), outcome(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted(), 1);
        assert!(cache.lookup(&key(1)).is_some(), "recently used must survive");
        assert!(cache.lookup(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&key(3)).is_some(), "fresh insert must survive");
    }

    #[test]
    fn budget_bounds_entries_across_shards() {
        let cache = SizingCache::bounded(4, Some(8));
        for n in 0..100 {
            cache.insert(key(n), outcome(n as f64 + 1.0));
        }
        // Per-shard budget is ceil(8/4)=2; at most 2 entries per shard.
        assert!(cache.len() <= 8, "len {} exceeds budget", cache.len());
        assert_eq!(cache.evicted(), 100 - cache.len());
    }

    #[test]
    fn snapshot_restore_roundtrip_is_byte_identical() {
        let cache = SizingCache::bounded(4, None);
        for n in 0..12 {
            cache.insert(key(n), outcome(n as f64 + 1.5));
        }
        let snap = cache.snapshot();
        // Restoring into a cache with a *different* shard layout must
        // reproduce both the entries and the snapshot bytes.
        let warm = SizingCache::bounded(2, None);
        assert_eq!(warm.restore(&snap), Some(12));
        assert_eq!(warm.snapshot(), snap, "snapshot → restore → snapshot must be identity");
        for n in 0..12 {
            let got = warm.lookup(&key(n)).expect("restored entry must hit");
            assert_eq!(
                got.sizing.as_slice(),
                outcome(n as f64 + 1.5).sizing.as_slice()
            );
        }
    }

    #[test]
    fn damaged_snapshots_restore_as_no_snapshot() {
        let cache = SizingCache::new();
        cache.insert(key(1), outcome(1.0));
        let snap = cache.snapshot();
        let cases: Vec<String> = vec![
            String::new(),
            "not a snapshot".to_owned(),
            snap[..snap.len() / 2].to_owned(),
            // Flip one hex digit of the checksum field: the content no
            // longer matches, the whole file must be rejected.
            {
                let i = snap.find("\"sum\":\"").expect("sum field") + 7;
                let mut bytes = snap.clone().into_bytes();
                bytes[i] = if bytes[i] == b'0' { b'1' } else { b'0' };
                String::from_utf8(bytes).expect("ascii")
            },
        ];
        for text in cases {
            let fresh = SizingCache::new();
            assert!(
                fresh.restore(&text).is_none(),
                "accepted damaged snapshot: {text:.60}"
            );
            assert!(fresh.is_empty(), "rejected snapshot must load nothing");
        }
    }

    #[test]
    fn boundary_insertion_order_is_irrelevant() {
        let c = circuit();
        let opts = SizingOptions::default();
        let mut b1 = Boundary::default();
        b1.output_loads.insert("y".into(), 10.0);
        b1.input_times.insert("a".into(), (0.0, 30.0));
        b1.input_times.insert("b".into(), (5.0, 40.0));
        let mut b2 = Boundary::default();
        b2.input_times.insert("b".into(), (5.0, 40.0));
        b2.input_times.insert("a".into(), (0.0, 30.0));
        b2.output_loads.insert("y".into(), 10.0);
        let spec = DelaySpec::uniform(300.0);
        assert_eq!(
            cache_key(&c, &lib(), &b1, &spec, &opts),
            cache_key(&c, &lib(), &b2, &spec, &opts)
        );
    }
}
