//! Sizing memoization — reuse of GP solutions across sweep points.
//!
//! Multi-macro sweeps (the Table-2-style comparisons) size the *same
//! topology* many times: every sweep point re-explores the full
//! alternative set, and most candidates recur with identical instance
//! conditions. The cache keys a completed [`SizingOutcome`] on everything
//! that determines it —
//!
//! * the netlist's [`Circuit::structural_hash`] (devices, connectivity,
//!   labels, wire caps, ports),
//! * the process corner ([`smart_models::Process::fingerprint`] of the
//!   [`ModelLibrary`] — every model coefficient, so a cache shared across
//!   sweeps at different corners can never replay the wrong corner's
//!   solution),
//! * the quantized delay spec (ps budgets rounded to a 2⁻¹² ps grid, far
//!   below timing meaning, so float noise from spec arithmetic cannot
//!   split otherwise-identical entries),
//! * the boundary conditions (exact bit patterns, sorted by port name),
//! * a fingerprint of every [`SizingOptions`] knob that can change the
//!   solution (cost metric, iteration caps, tolerances, pins, OTB,
//!   dominance mode, relaxation ladder, warm start) — deliberately
//!   *excluding* the resource budget, which can only abort a solve, never
//!   steer a successful one.
//!
//! Only successful outcomes are stored: failures may be budget- or
//! timing-dependent and must be re-derived. Because the whole flow is
//! deterministic, a hit is byte-identical to the cold solve it replaces
//! for any inputs that map to the same key — which, given the spec
//! quantization, means specs equal after rounding to the 2⁻¹² ps grid
//! (sub-quantum spec differences are below any timing meaning by
//! construction). The cache-correctness test suite asserts the bitwise
//! replay.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use smart_models::ModelLibrary;
use smart_netlist::{Circuit, StableHasher};
use smart_sta::Boundary;

use crate::sizing::SizingOutcome;
use crate::{CostMetric, DelaySpec, SizingOptions};

/// Cache key: every input that determines a sizing outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Circuit::structural_hash`] of the candidate netlist.
    pub structure: u64,
    /// [`smart_models::Process::fingerprint`] of the model library's
    /// process corner: every delay/slope/power coefficient feeds the GP
    /// and STA, so corners must never share entries.
    pub process: u64,
    /// Quantized data-phase budget.
    pub spec_data: u64,
    /// Quantized precharge budget (`u64::MAX` = unset, distinct from any
    /// quantized value by construction).
    pub spec_precharge: u64,
    /// Fingerprint of the boundary conditions.
    pub boundary: u64,
    /// Fingerprint of the outcome-relevant sizing options.
    pub options: u64,
}

/// Spec budgets land on a 2⁻¹² ps grid: coarse enough to absorb float
/// noise from spec arithmetic, ~5 orders of magnitude below any timing
/// budget's meaningful resolution.
fn quantize_ps(x: f64) -> u64 {
    // Specs are validated finite and positive before keys are built; the
    // saturating cast keeps a pathological value from wrapping.
    let q = (x * 4096.0).round();
    if q >= u64::MAX as f64 {
        u64::MAX - 1
    } else if q.is_finite() && q > 0.0 {
        q as u64
    } else {
        0
    }
}

pub(crate) fn boundary_fingerprint(boundary: &Boundary) -> u64 {
    let mut h = StableHasher::new();
    // HashMap iteration order is per-instance; sort by name so equal
    // boundaries built in different orders fingerprint equally.
    let mut loads: Vec<(&str, f64)> = boundary
        .output_loads
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    loads.sort_unstable_by(|a, b| a.0.cmp(b.0));
    h.write_usize(loads.len());
    for (name, v) in loads {
        h.write_str(name);
        h.write_f64_bits(v);
    }
    let mut times: Vec<(&str, (f64, f64))> = boundary
        .input_times
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    times.sort_unstable_by(|a, b| a.0.cmp(b.0));
    h.write_usize(times.len());
    for (name, (t, s)) in times {
        h.write_str(name);
        h.write_f64_bits(t);
        h.write_f64_bits(s);
    }
    match boundary.default_slope {
        Some(s) => {
            h.write_bool(true);
            h.write_f64_bits(s);
        }
        None => h.write_bool(false),
    }
    h.finish()
}

pub(crate) fn options_fingerprint(opts: &SizingOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(match opts.cost {
        CostMetric::Width => 0,
        CostMetric::Power => 1,
    });
    h.write_usize(opts.max_outer_iters);
    h.write_f64_bits(opts.timing_tolerance);
    h.write_f64_bits(opts.slope_max);
    let mut pinned: Vec<(&str, f64)> = opts
        .pinned
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    pinned.sort_unstable_by(|a, b| a.0.cmp(b.0));
    h.write_usize(pinned.len());
    for (name, w) in pinned {
        h.write_str(name);
        h.write_f64_bits(w);
    }
    h.write_usize(opts.path_limit);
    h.write_bool(opts.noise_constraints);
    h.write_bool(opts.otb);
    h.write_bool(opts.heuristic_dominance);
    h.write_usize(opts.gp_retries);
    h.write_usize(opts.relaxation.len());
    for &r in &opts.relaxation {
        h.write_f64_bits(r);
    }
    match &opts.warm_start {
        Some(s) => {
            h.write_bool(true);
            h.write_usize(s.len());
            for &w in s.as_slice() {
                h.write_f64_bits(w);
            }
        }
        None => h.write_bool(false),
    }
    // The corner set changes the GP's constraint family and the
    // feasibility test, so it is a first-class key dimension: `None`
    // (historical single-corner) and every distinct `Some(set)` — by
    // member names, coefficients and order — key separately. A
    // multi-corner solve can never replay a single-corner entry, nor
    // the reverse.
    match &opts.corners {
        Some(set) => {
            h.write_bool(true);
            h.write_u64(set.fingerprint());
        }
        None => h.write_bool(false),
    }
    // opts.budget intentionally excluded: budgets abort solves (which are
    // never cached), they cannot change a successful outcome.
    // opts.trace intentionally excluded: observability records what the
    // flow did, it never changes what the flow computes — keying on it
    // would needlessly split traced and untraced runs into disjoint
    // cache populations.
    // opts.lint likewise: the exploration lint gate rejects a candidate
    // before its first cache lookup, so gating can never steer an outcome
    // that reaches the cache.
    // opts.chaos, opts.budget.clock and opts.retry_backoff likewise:
    // faults and budget expiry abort candidates (aborts are never
    // cached), and backoff/clock choice only move *when* a solve runs,
    // never what it computes.
    // opts.checkpoint likewise: persistence replays rows, it never
    // changes how they are computed.
    // opts.audit likewise, exactly like trace: certificates only *abort*
    // candidates (aborts are never cached), and dominance pruning is
    // feasible-set-preserving — the prune-parity suite in CI pins the
    // pruned and unpruned optima together — so the audit gate must never
    // fork the cache key space.
    h.finish()
}

/// Builds the memoization key for one sizing invocation.
pub fn cache_key(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> CacheKey {
    CacheKey {
        structure: circuit.structural_hash(),
        process: lib.process().fingerprint(),
        spec_data: quantize_ps(spec.data),
        spec_precharge: spec.precharge.map_or(u64::MAX, quantize_ps),
        boundary: boundary_fingerprint(boundary),
        options: options_fingerprint(opts),
    }
}

/// Content checksum of a stored outcome: every field that `lookup` will
/// replay, hashed with the same [`StableHasher`] the key fingerprints
/// use. Verified on every read — the foundation for the service
/// snapshot/restore path, where entries will have crossed a serialization
/// boundary and "the map can't change under us" no longer holds.
fn outcome_checksum(outcome: &SizingOutcome) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(outcome.sizing.len());
    for &w in outcome.sizing.as_slice() {
        h.write_f64_bits(w);
    }
    h.write_f64_bits(outcome.measured_delay);
    h.write_f64_bits(outcome.measured_precharge);
    h.write_f64_bits(outcome.total_width);
    h.write_usize(outcome.iterations);
    h.write_usize(outcome.constraint_paths);
    h.write_u64((outcome.raw_paths >> 64) as u64);
    h.write_u64(outcome.raw_paths as u64);
    h.write_f64_bits(outcome.spec_relaxation);
    h.write_usize(outcome.gp_restarts);
    h.write_usize(outcome.corner_delays.len());
    for c in &outcome.corner_delays {
        h.write_str(&c.corner);
        h.write_f64_bits(c.data);
        h.write_f64_bits(c.precharge);
    }
    h.write_str(&outcome.binding_corner);
    h.finish()
}

/// A stored entry: the outcome plus the checksum computed at insert time.
#[derive(Debug, Clone)]
struct Entry {
    checksum: u64,
    outcome: SizingOutcome,
}

/// A thread-safe memoization store for successful sizing outcomes, shared
/// via `Arc` in [`SizingOptions::cache`].
///
/// Every entry carries a content checksum computed at insert time and
/// verified on every read; an entry that fails verification is evicted
/// and the lookup reports a miss, so a corrupted entry costs one
/// recompute instead of replaying garbage into a sweep table.
///
/// Hit/miss counters are monotonic over the cache's lifetime; exploration
/// snapshots them around a sweep to report per-sweep rates.
#[derive(Debug, Default)]
pub struct SizingCache {
    map: Mutex<HashMap<CacheKey, Entry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    poisoned: AtomicUsize,
}

impl SizingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Entry>> {
        // A poisoned mutex only means a panicking thread died mid-insert;
        // the map itself holds plain owned data and stays valid.
        match self.map.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up `key`, counting the hit or miss. An entry whose stored
    /// checksum no longer matches its content is *poisoned*: it is
    /// evicted, counted, and the lookup reports a miss so the caller
    /// recomputes.
    pub fn lookup(&self, key: &CacheKey) -> Option<SizingOutcome> {
        let found = {
            let mut map = self.guard();
            match map.get(key) {
                Some(entry) if outcome_checksum(&entry.outcome) == entry.checksum => {
                    Some(entry.outcome.clone())
                }
                Some(_) => {
                    map.remove(key);
                    self.poisoned.fetch_add(1, Ordering::Relaxed);
                    smart_trace::counter("cache/poisoned", 1);
                    smart_trace::emit_with("cache/poisoned", || {
                        vec![("structure", format!("{:016x}", key.structure).into())]
                    });
                    None
                }
                None => None,
            }
        };
        let hit = found.is_some();
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        smart_trace::counter(if hit { "cache/hit" } else { "cache/miss" }, 1);
        smart_trace::emit_with("cache/lookup", || {
            vec![
                ("hit", hit.into()),
                ("structure", format!("{:016x}", key.structure).into()),
            ]
        });
        found
    }

    /// Stores a successful outcome under `key`, stamping its content
    /// checksum. Concurrent inserts of the same key are benign: the flow
    /// is deterministic, so both threads computed the same value.
    pub fn insert(&self, key: CacheKey, outcome: SizingOutcome) {
        let checksum = outcome_checksum(&outcome);
        self.guard().insert(key, Entry { checksum, outcome });
    }

    /// Drops the entry under `key`, reporting whether one existed. A
    /// chaos/test hook standing in for any lost entry (eviction race,
    /// failed restore); the flow must absorb it as a plain miss.
    pub fn remove(&self, key: &CacheKey) -> bool {
        self.guard().remove(key).is_some()
    }

    /// Flips a bit in the entry under `key` *without* updating its
    /// checksum, reporting whether an entry was there to damage. A
    /// chaos/test hook simulating storage corruption: the next lookup
    /// must detect the mismatch, evict, and recompute.
    pub fn corrupt(&self, key: &CacheKey) -> bool {
        match self.guard().get_mut(key) {
            Some(entry) => {
                // Lowest mantissa bit: the value stays finite (so nothing
                // downstream of a hypothetical undetected replay would
                // panic instead of misbehave), but the checksum — which
                // covers exact bit patterns — can no longer match.
                let bits = entry.outcome.measured_delay.to_bits() ^ 1;
                entry.outcome.measured_delay = f64::from_bits(bits);
                true
            }
            None => false,
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Lifetime count of entries evicted by checksum verification.
    pub fn poisoned(&self) -> usize {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.guard().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> Circuit {
        use smart_macros::{MacroSpec, MuxTopology};
        MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: 4,
        }
        .generate()
    }

    fn boundary(load: f64) -> Boundary {
        let mut b = Boundary::default();
        b.output_loads.insert("y".into(), load);
        b
    }

    fn lib() -> ModelLibrary {
        ModelLibrary::reference()
    }

    #[test]
    fn equal_inputs_equal_keys() {
        let c = circuit();
        let opts = SizingOptions::default();
        let k1 = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &opts);
        let k2 = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &opts);
        assert_eq!(k1, k2);
    }

    #[test]
    fn every_key_dimension_separates() {
        let c = circuit();
        let opts = SizingOptions::default();
        let base = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &opts);

        let other_spec = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(301.0), &opts);
        assert_ne!(base, other_spec, "spec must separate");

        let other_load = cache_key(&c, &lib(), &boundary(16.0), &DelaySpec::uniform(300.0), &opts);
        assert_ne!(base, other_load, "boundary must separate");

        let mut o2 = SizingOptions::default();
        o2.otb = false;
        let other_opts = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &o2);
        assert_ne!(base, other_opts, "options must separate");

        let precharge = cache_key(
            &c,
            &lib(),
            &boundary(15.0),
            &DelaySpec {
                data: 300.0,
                precharge: Some(300.0),
            },
            &opts,
        );
        assert_ne!(base, precharge, "explicit precharge must separate");
    }

    #[test]
    fn process_corners_never_share_keys() {
        use smart_models::Process;
        let c = circuit();
        let opts = SizingOptions::default();
        let b = boundary(15.0);
        let spec = DelaySpec::uniform(300.0);
        let typ = cache_key(&c, &ModelLibrary::reference(), &b, &spec, &opts);
        let slow = cache_key(&c, &ModelLibrary::new(Process::slow_corner()), &b, &spec, &opts);
        let fast = cache_key(&c, &ModelLibrary::new(Process::fast_corner()), &b, &spec, &opts);
        assert_ne!(typ, slow, "slow corner must separate from reference");
        assert_ne!(typ, fast, "fast corner must separate from reference");
        assert_ne!(slow, fast, "slow and fast corners must separate");
        // Equal corners built independently still share the key — the
        // fingerprint is over coefficient values, not library identity.
        let typ2 = cache_key(&c, &ModelLibrary::new(Process::reference()), &b, &spec, &opts);
        assert_eq!(typ, typ2);
    }

    #[test]
    fn budget_does_not_split_keys() {
        let c = circuit();
        let mut tight = SizingOptions::default();
        tight.budget.max_gp_iters = Some(1);
        let a = cache_key(
            &c,
            &lib(),
            &boundary(15.0),
            &DelaySpec::uniform(300.0),
            &SizingOptions::default(),
        );
        let b = cache_key(&c, &lib(), &boundary(15.0), &DelaySpec::uniform(300.0), &tight);
        assert_eq!(a, b, "budgets abort, they never steer; keys must agree");
    }

    #[test]
    fn boundary_insertion_order_is_irrelevant() {
        let c = circuit();
        let opts = SizingOptions::default();
        let mut b1 = Boundary::default();
        b1.output_loads.insert("y".into(), 10.0);
        b1.input_times.insert("a".into(), (0.0, 30.0));
        b1.input_times.insert("b".into(), (5.0, 40.0));
        let mut b2 = Boundary::default();
        b2.input_times.insert("b".into(), (5.0, 40.0));
        b2.input_times.insert("a".into(), (0.0, 30.0));
        b2.output_loads.insert("y".into(), 10.0);
        let spec = DelaySpec::uniform(300.0);
        assert_eq!(
            cache_key(&c, &lib(), &b1, &spec, &opts),
            cache_key(&c, &lib(), &b2, &spec, &opts)
        );
    }
}
