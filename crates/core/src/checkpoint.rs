//! Sweep checkpoint/resume — salvage for interrupted explorations.
//!
//! An exploration sweep is a pure function of its inputs, evaluated one
//! candidate at a time; killing it an hour in used to discard every
//! completed row. The [`Checkpointer`] persists completed *successful*
//! rows periodically (every [`Checkpointer::with_interval`] completions,
//! atomically via write-to-temp + rename), keyed by a **sweep
//! fingerprint** — the [`StableHasher`] digest of everything that
//! determines the table: the candidate database (spec list, in order),
//! the delay spec, the boundary conditions, the process corner, and the
//! outcome-relevant sizing options. A resumed sweep with a matching
//! fingerprint replays the stored rows (re-deriving the cheap per-row
//! metrics from the stored widths) and computes only the missing
//! candidates; a stale fingerprint is ignored wholesale — a checkpoint
//! can never leak rows into a sweep it does not describe.
//!
//! Only successful rows are stored, mirroring the [`crate::SizingCache`]
//! policy: failures may be budget- or timing-dependent and must be
//! re-derived. Because the flow is deterministic, a resumed sweep is
//! byte-identical to an uninterrupted one — the chaos suite's invariant
//! (c).
//!
//! # File format
//!
//! Byte-stable JSON: rows sorted by candidate index, every `f64` encoded
//! as the 16-hex-digit big-endian bit pattern of `f64::to_bits` (decimal
//! formatting would round-trip imprecisely and is locale-adjacent;
//! bit patterns are exact and grep-able), `u128` path counts as 32 hex
//! digits. The loader accepts exactly the writer's canonical form;
//! anything else — truncated write, hand edit, non-finite width bits — is
//! treated as *no checkpoint*, never as an error that could take down the
//! sweep that tried to resume.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use smart_models::ModelLibrary;
use smart_netlist::StableHasher;
use smart_sta::Boundary;

use smart_macros::MacroSpec;

use crate::persist::{hex64, parse_outcome_fields, render_outcome_fields, Parser};
use crate::sizing::SizingOutcome;
use crate::{DelaySpec, SizingOptions};

/// The digest binding a checkpoint file to one exact sweep: candidate
/// database (order included — index is the row key), delay spec, boundary,
/// process corner, and the outcome-relevant options fingerprint (the same
/// one the sizing cache keys on, so anything excluded there — budgets,
/// tracing, chaos, the checkpointer itself — is excluded here for the
/// same reason: it cannot change a successful row).
pub fn sweep_fingerprint(
    specs: &[MacroSpec],
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(specs.len());
    for s in specs {
        h.write_str(&s.to_string());
    }
    h.write_u64(lib.process().fingerprint());
    h.write_f64_bits(spec.data);
    match spec.precharge {
        Some(p) => {
            h.write_bool(true);
            h.write_f64_bits(p);
        }
        None => h.write_bool(false),
    }
    h.write_u64(crate::cache::boundary_fingerprint(boundary));
    h.write_u64(crate::cache::options_fingerprint(opts));
    h.finish()
}

#[derive(Debug, Default)]
struct State {
    /// Fingerprint of the sweep this checkpointer is currently bound to
    /// (`None` before the first [`Checkpointer::begin`]).
    fingerprint: Option<u64>,
    rows: BTreeMap<usize, SizingOutcome>,
    /// Rows recorded since the last save.
    unsaved: usize,
}

/// A persistent store of completed sweep rows; share one via `Arc` in
/// [`SizingOptions::checkpoint`] and the [`crate::explore_with`] family
/// does the rest. One checkpointer serves one sweep at a time (it is
/// re-bound to each sweep's fingerprint as the sweep starts).
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    interval: usize,
    state: Mutex<State>,
}

impl Checkpointer {
    /// A checkpointer persisting to `path`, saving every 4 completed
    /// rows (and always at sweep end).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Checkpointer {
            path: path.into(),
            interval: 4,
            state: Mutex::new(State::default()),
        }
    }

    /// Sets the save cadence: persist after every `interval` newly
    /// completed rows (minimum 1). Smaller = less loss on a kill, more
    /// write traffic.
    #[must_use]
    pub fn with_interval(mut self, interval: usize) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Binds this checkpointer to a sweep: loads the file, keeps its rows
    /// if the stored fingerprint matches, and returns the rows available
    /// for resume (empty for a fresh, stale, or unreadable checkpoint).
    pub(crate) fn begin(&self, fingerprint: u64) -> BTreeMap<usize, SizingOutcome> {
        let loaded = match load_file(&self.path) {
            Some((fp, rows)) if fp == fingerprint => rows,
            _ => BTreeMap::new(),
        };
        let mut state = self.guard();
        state.fingerprint = Some(fingerprint);
        state.rows = loaded.clone();
        state.unsaved = 0;
        loaded
    }

    /// Records one completed successful row, saving when the cadence is
    /// due. A no-op before [`Checkpointer::begin`] (a direct
    /// `size_circuit` call has no sweep to checkpoint).
    pub(crate) fn record(&self, idx: usize, outcome: &SizingOutcome) {
        let mut state = self.guard();
        if state.fingerprint.is_none() {
            return;
        }
        if state.rows.insert(idx, outcome.clone()).is_none() {
            state.unsaved += 1;
            if state.unsaved >= self.interval {
                save_locked(&self.path, &mut state);
            }
        }
    }

    /// Persists any unsaved rows (called at sweep end; also useful before
    /// a planned shutdown).
    pub(crate) fn flush(&self) {
        let mut state = self.guard();
        if state.fingerprint.is_some() && state.unsaved > 0 {
            save_locked(&self.path, &mut state);
        }
    }

    /// Rows currently held (resumed + recorded) for the bound sweep.
    pub fn rows_held(&self) -> usize {
        self.guard().rows.len()
    }
}

/// Serializes and atomically replaces the checkpoint file (uniquely named
/// temp file + rename — see [`crate::persist::atomic_write`]; the old
/// fixed `*.tmp` name let two writers clobber each other's partial file).
/// A failed write (disk full, permissions) is swallowed: checkpointing is
/// salvage, and salvage must never be the thing that kills the sweep.
fn save_locked(path: &Path, state: &mut State) {
    let Some(fp) = state.fingerprint else { return };
    let json = render(fp, &state.rows);
    if crate::persist::atomic_write(path, &json).is_ok() {
        state.unsaved = 0;
    }
}

fn render(fingerprint: u64, rows: &BTreeMap<usize, SizingOutcome>) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"version\":2,\"fingerprint\":\"{}\",\"rows\":[", hex64(fingerprint));
    for (n, (idx, row)) in rows.iter().enumerate() {
        if n > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"idx\":{idx},");
        render_outcome_fields(&mut s, row);
        s.push('}');
    }
    s.push_str("]}\n");
    s
}

/// Parses a checkpoint file written by [`render`]. Any deviation from the
/// canonical form yields `None` — "no checkpoint", never a panic.
fn load_file(path: &Path) -> Option<(u64, BTreeMap<usize, SizingOutcome>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut p = Parser::new(&text);
    p.lit("{\"version\":2,\"fingerprint\":\"")?;
    let fingerprint = p.hex_u64()?;
    p.lit("\",\"rows\":[")?;
    let mut rows = BTreeMap::new();
    if !p.peek(']') {
        loop {
            let (idx, row) = parse_row(&mut p)?;
            // A duplicate index means the file was not written by us.
            if rows.insert(idx, row).is_some() {
                return None;
            }
            if !p.comma() {
                break;
            }
        }
    }
    p.lit("]}")?;
    Some((fingerprint, rows))
}

fn parse_row(p: &mut Parser<'_>) -> Option<(usize, SizingOutcome)> {
    p.lit("{\"idx\":")?;
    let idx = p.number()?;
    p.lit(",")?;
    let outcome = parse_outcome_fields(p)?;
    p.lit("}")?;
    Some((idx, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing::CornerDelay;
    use smart_netlist::Sizing;

    fn outcome(seed: f64, widths: usize) -> SizingOutcome {
        SizingOutcome {
            sizing: Sizing::from_widths((0..widths).map(|i| seed + i as f64).collect()),
            measured_delay: 123.456 + seed,
            measured_precharge: 78.9,
            total_width: 40.0 * seed,
            iterations: 3,
            constraint_paths: 12,
            raw_paths: 1u128 << 80,
            spec_relaxation: 0.05,
            gp_restarts: 1,
            corner_delays: vec![
                CornerDelay {
                    corner: "slow".to_owned(),
                    data: 130.0 + seed,
                    precharge: 90.1,
                },
                CornerDelay {
                    corner: "typical".to_owned(),
                    data: 123.456 + seed,
                    precharge: 78.9,
                },
            ],
            binding_corner: "slow".to_owned(),
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smart-ckpt-test-{}-{name}.json", std::process::id()));
        p
    }

    #[test]
    fn round_trips_byte_stably() {
        let mut rows = BTreeMap::new();
        rows.insert(0, outcome(1.5, 3));
        rows.insert(7, outcome(2.25, 5));
        let json = render(0xDEAD_BEEF_0000_0001, &rows);
        let path = tmp_path("roundtrip");
        std::fs::write(&path, &json).unwrap();
        let (fp, loaded) = load_file(&path).expect("canonical file must load");
        assert_eq!(fp, 0xDEAD_BEEF_0000_0001);
        assert_eq!(loaded.len(), 2);
        // Byte-stability: re-rendering the loaded rows reproduces the file.
        assert_eq!(render(fp, &loaded), json);
        let got = &loaded[&7];
        let want = &rows[&7];
        assert_eq!(got.measured_delay.to_bits(), want.measured_delay.to_bits());
        assert_eq!(got.sizing.as_slice(), want.sizing.as_slice());
        assert_eq!(got.raw_paths, want.raw_paths);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_or_foreign_files_read_as_no_checkpoint() {
        let path = tmp_path("damaged");
        for text in [
            "",
            // A pre-corner (version 1) file is a foreign format now: it
            // has no per-corner fields, so it must degrade to
            // "no checkpoint" rather than resurrect corner-less rows.
            "{\"version\":1,\"fingerprint\":\"0000000000000000\",\"rows\":[]}",
            "{\"version\":3,\"fingerprint\":\"0000000000000000\",\"rows\":[]}",
            "{\"version\":2,\"fingerprint\":\"00\",\"rows\":[]}",
            "not json at all",
            // Truncated mid-row.
            "{\"version\":2,\"fingerprint\":\"0000000000000000\",\"rows\":[{\"idx\":0,\"iters\":1",
            // Non-finite width bits (all-ones exponent): must be rejected
            // before reaching `Sizing::from_widths`.
            "{\"version\":2,\"fingerprint\":\"0000000000000000\",\"rows\":[{\"idx\":0,\
             \"iters\":1,\"paths\":1,\"restarts\":0,\
             \"raw_paths\":\"00000000000000000000000000000001\",\
             \"delay\":\"3ff0000000000000\",\"precharge\":\"3ff0000000000000\",\
             \"width\":\"3ff0000000000000\",\"relax\":\"0000000000000000\",\
             \"binding\":\"typical\",\"corners\":[{\"name\":\"typical\",\
             \"data\":\"3ff0000000000000\",\"pre\":\"3ff0000000000000\"}],\
             \"sizing\":[\"7ff0000000000000\"]}]}",
            // An empty corner list or blank binding name is not ours.
            "{\"version\":2,\"fingerprint\":\"0000000000000000\",\"rows\":[{\"idx\":0,\
             \"iters\":1,\"paths\":1,\"restarts\":0,\
             \"raw_paths\":\"00000000000000000000000000000001\",\
             \"delay\":\"3ff0000000000000\",\"precharge\":\"3ff0000000000000\",\
             \"width\":\"3ff0000000000000\",\"relax\":\"0000000000000000\",\
             \"binding\":\"typical\",\"corners\":[],\
             \"sizing\":[\"3ff0000000000000\"]}]}",
        ] {
            std::fs::write(&path, text).unwrap();
            assert!(load_file(&path).is_none(), "accepted: {text:.60}");
        }
        std::fs::remove_file(&path).ok();
        assert!(load_file(&path).is_none(), "missing file is no checkpoint");
    }

    #[test]
    fn begin_record_flush_resume_cycle() {
        let path = tmp_path("cycle");
        std::fs::remove_file(&path).ok();
        let ckpt = Checkpointer::new(&path).with_interval(2);
        let resumed = ckpt.begin(42);
        assert!(resumed.is_empty());
        ckpt.record(0, &outcome(1.5, 2));
        // Below the cadence: nothing on disk yet.
        assert!(load_file(&path).is_none());
        ckpt.record(1, &outcome(2.5, 2));
        // Cadence hit: saved.
        assert_eq!(load_file(&path).expect("saved").1.len(), 2);
        ckpt.record(2, &outcome(3.5, 2));
        ckpt.flush();
        assert_eq!(load_file(&path).expect("flushed").1.len(), 3);

        // Same fingerprint resumes all rows; a different one resumes none
        // (and the stale file is simply ignored, not deleted).
        let again = Checkpointer::new(&path);
        assert_eq!(again.begin(42).len(), 3);
        assert_eq!(again.rows_held(), 3);
        let stale = Checkpointer::new(&path);
        assert!(stale.begin(43).is_empty());
        std::fs::remove_file(&path).ok();
    }

    /// Regression (PR 9): the temp file used for the atomic replace must
    /// be unique per save attempt. The old fixed `*.tmp` name let two
    /// writers (two processes, or two serve requests sharing a target
    /// path) truncate each other's partial file between its write and its
    /// rename — publishing a torn checkpoint. With pid + counter in the
    /// name, concurrent saves each own their temp file.
    #[test]
    fn tmp_names_are_unique_per_save_attempt() {
        use crate::persist::unique_tmp;
        let target = Path::new("/some/dir/sweep.ckpt");
        let a = unique_tmp(target);
        let b = unique_tmp(target);
        assert_ne!(a, b, "two save attempts must never share a temp file");
        let pid = std::process::id().to_string();
        for t in [&a, &b] {
            let name = t.file_name().and_then(|n| n.to_str()).unwrap_or("");
            assert!(
                name.contains(&pid),
                "temp name '{name}' must embed the pid so concurrent \
                 processes cannot collide"
            );
            assert_eq!(t.parent(), target.parent(), "rename must stay on one filesystem");
        }
    }

    /// Regression (PR 9): two checkpointers hammering the same target path
    /// concurrently. Every save is an atomic whole-file replace, so after
    /// any interleaving the file on disk must be a *complete* checkpoint
    /// from one of the writers — a torn or truncated file (the fixed-tmp
    /// failure mode) reads back as "no checkpoint" and fails this test.
    #[test]
    fn two_writers_never_publish_a_torn_file() {
        let path = tmp_path("two-writers");
        std::fs::remove_file(&path).ok();
        let rounds = 40;
        std::thread::scope(|s| {
            for writer in 0u64..2 {
                let path = path.clone();
                s.spawn(move || {
                    let ckpt = Checkpointer::new(&path).with_interval(1);
                    ckpt.begin(1000 + writer);
                    for i in 0..rounds {
                        // Distinct row sets per writer so a torn mix of the
                        // two files cannot accidentally parse.
                        ckpt.record(i, &outcome(writer as f64 + 1.5, 4));
                    }
                    ckpt.flush();
                });
            }
        });
        let (fp, rows) = load_file(&path).expect("the surviving file must be a complete checkpoint");
        assert!(fp == 1000 || fp == 1001, "fingerprint must be one writer's, got {fp}");
        assert_eq!(rows.len(), rounds, "the published file must hold one writer's full row set");
        // No temp debris left behind (`with_extension` strips `.json`, so
        // match on the extension-less stem).
        let dir = path.parent().expect("temp dir");
        let stem = path.file_stem().and_then(|n| n.to_str()).expect("file stem");
        let published = path.file_name().and_then(|n| n.to_str()).expect("file name");
        let debris: Vec<String> = std::fs::read_dir(dir)
            .expect("read temp dir")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with(stem) && n != published)
            .collect();
        assert!(debris.is_empty(), "leftover temp files: {debris:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_recording_is_idempotent() {
        let path = tmp_path("dup");
        std::fs::remove_file(&path).ok();
        let ckpt = Checkpointer::new(&path).with_interval(1);
        ckpt.begin(7);
        ckpt.record(0, &outcome(1.5, 2));
        ckpt.record(0, &outcome(1.5, 2));
        assert_eq!(ckpt.rows_held(), 1);
        assert_eq!(load_file(&path).expect("saved").1.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
