//! Sweep checkpoint/resume — salvage for interrupted explorations.
//!
//! An exploration sweep is a pure function of its inputs, evaluated one
//! candidate at a time; killing it an hour in used to discard every
//! completed row. The [`Checkpointer`] persists completed *successful*
//! rows periodically (every [`Checkpointer::with_interval`] completions,
//! atomically via write-to-temp + rename), keyed by a **sweep
//! fingerprint** — the [`StableHasher`] digest of everything that
//! determines the table: the candidate database (spec list, in order),
//! the delay spec, the boundary conditions, the process corner, and the
//! outcome-relevant sizing options. A resumed sweep with a matching
//! fingerprint replays the stored rows (re-deriving the cheap per-row
//! metrics from the stored widths) and computes only the missing
//! candidates; a stale fingerprint is ignored wholesale — a checkpoint
//! can never leak rows into a sweep it does not describe.
//!
//! Only successful rows are stored, mirroring the [`crate::SizingCache`]
//! policy: failures may be budget- or timing-dependent and must be
//! re-derived. Because the flow is deterministic, a resumed sweep is
//! byte-identical to an uninterrupted one — the chaos suite's invariant
//! (c).
//!
//! # File format
//!
//! Byte-stable JSON: rows sorted by candidate index, every `f64` encoded
//! as the 16-hex-digit big-endian bit pattern of `f64::to_bits` (decimal
//! formatting would round-trip imprecisely and is locale-adjacent;
//! bit patterns are exact and grep-able), `u128` path counts as 32 hex
//! digits. The loader accepts exactly the writer's canonical form;
//! anything else — truncated write, hand edit, non-finite width bits — is
//! treated as *no checkpoint*, never as an error that could take down the
//! sweep that tried to resume.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use smart_models::ModelLibrary;
use smart_netlist::{Sizing, StableHasher};
use smart_sta::Boundary;

use smart_macros::MacroSpec;

use crate::sizing::{CornerDelay, SizingOutcome};
use crate::{DelaySpec, SizingOptions};

/// The digest binding a checkpoint file to one exact sweep: candidate
/// database (order included — index is the row key), delay spec, boundary,
/// process corner, and the outcome-relevant options fingerprint (the same
/// one the sizing cache keys on, so anything excluded there — budgets,
/// tracing, chaos, the checkpointer itself — is excluded here for the
/// same reason: it cannot change a successful row).
pub fn sweep_fingerprint(
    specs: &[MacroSpec],
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(specs.len());
    for s in specs {
        h.write_str(&s.to_string());
    }
    h.write_u64(lib.process().fingerprint());
    h.write_f64_bits(spec.data);
    match spec.precharge {
        Some(p) => {
            h.write_bool(true);
            h.write_f64_bits(p);
        }
        None => h.write_bool(false),
    }
    h.write_u64(crate::cache::boundary_fingerprint(boundary));
    h.write_u64(crate::cache::options_fingerprint(opts));
    h.finish()
}

#[derive(Debug, Default)]
struct State {
    /// Fingerprint of the sweep this checkpointer is currently bound to
    /// (`None` before the first [`Checkpointer::begin`]).
    fingerprint: Option<u64>,
    rows: BTreeMap<usize, SizingOutcome>,
    /// Rows recorded since the last save.
    unsaved: usize,
}

/// A persistent store of completed sweep rows; share one via `Arc` in
/// [`SizingOptions::checkpoint`] and the [`crate::explore_with`] family
/// does the rest. One checkpointer serves one sweep at a time (it is
/// re-bound to each sweep's fingerprint as the sweep starts).
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    interval: usize,
    state: Mutex<State>,
}

impl Checkpointer {
    /// A checkpointer persisting to `path`, saving every 4 completed
    /// rows (and always at sweep end).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Checkpointer {
            path: path.into(),
            interval: 4,
            state: Mutex::new(State::default()),
        }
    }

    /// Sets the save cadence: persist after every `interval` newly
    /// completed rows (minimum 1). Smaller = less loss on a kill, more
    /// write traffic.
    #[must_use]
    pub fn with_interval(mut self, interval: usize) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Binds this checkpointer to a sweep: loads the file, keeps its rows
    /// if the stored fingerprint matches, and returns the rows available
    /// for resume (empty for a fresh, stale, or unreadable checkpoint).
    pub(crate) fn begin(&self, fingerprint: u64) -> BTreeMap<usize, SizingOutcome> {
        let loaded = match load_file(&self.path) {
            Some((fp, rows)) if fp == fingerprint => rows,
            _ => BTreeMap::new(),
        };
        let mut state = self.guard();
        state.fingerprint = Some(fingerprint);
        state.rows = loaded.clone();
        state.unsaved = 0;
        loaded
    }

    /// Records one completed successful row, saving when the cadence is
    /// due. A no-op before [`Checkpointer::begin`] (a direct
    /// `size_circuit` call has no sweep to checkpoint).
    pub(crate) fn record(&self, idx: usize, outcome: &SizingOutcome) {
        let mut state = self.guard();
        if state.fingerprint.is_none() {
            return;
        }
        if state.rows.insert(idx, outcome.clone()).is_none() {
            state.unsaved += 1;
            if state.unsaved >= self.interval {
                save_locked(&self.path, &mut state);
            }
        }
    }

    /// Persists any unsaved rows (called at sweep end; also useful before
    /// a planned shutdown).
    pub(crate) fn flush(&self) {
        let mut state = self.guard();
        if state.fingerprint.is_some() && state.unsaved > 0 {
            save_locked(&self.path, &mut state);
        }
    }

    /// Rows currently held (resumed + recorded) for the bound sweep.
    pub fn rows_held(&self) -> usize {
        self.guard().rows.len()
    }
}

/// Serializes and atomically replaces the checkpoint file. A failed write
/// (disk full, permissions) is swallowed: checkpointing is salvage, and
/// salvage must never be the thing that kills the sweep. The temp file
/// lives next to the target so the rename stays within one filesystem.
fn save_locked(path: &Path, state: &mut State) {
    let Some(fp) = state.fingerprint else { return };
    let json = render(fp, &state.rows);
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, path).is_ok() {
        state.unsaved = 0;
    }
}

fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

fn render(fingerprint: u64, rows: &BTreeMap<usize, SizingOutcome>) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"version\":2,\"fingerprint\":\"{}\",\"rows\":[", hex64(fingerprint));
    for (n, (idx, row)) in rows.iter().enumerate() {
        if n > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"idx\":{idx},\"iters\":{},\"paths\":{},\"restarts\":{},\"raw_paths\":\"{:032x}\",\
             \"delay\":\"{}\",\"precharge\":\"{}\",\"width\":\"{}\",\"relax\":\"{}\",\
             \"binding\":\"{}\",\"corners\":[",
            row.iterations,
            row.constraint_paths,
            row.gp_restarts,
            row.raw_paths,
            hex64(row.measured_delay.to_bits()),
            hex64(row.measured_precharge.to_bits()),
            hex64(row.total_width.to_bits()),
            hex64(row.spec_relaxation.to_bits()),
            row.binding_corner,
        );
        for (k, c) in row.corner_delays.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            // Corner names are serialized verbatim; a name containing `"`
            // or `\` produces a non-canonical file that the loader rejects
            // wholesale ("no checkpoint") — such names never round-trip,
            // they can never corrupt a resume.
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"data\":\"{}\",\"pre\":\"{}\"}}",
                c.corner,
                hex64(c.data.to_bits()),
                hex64(c.precharge.to_bits()),
            );
        }
        s.push_str("],\"sizing\":[");
        for (k, &w) in row.sizing.as_slice().iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", hex64(w.to_bits()));
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

/// Parses a checkpoint file written by [`render`]. Any deviation from the
/// canonical form yields `None` — "no checkpoint", never a panic.
fn load_file(path: &Path) -> Option<(u64, BTreeMap<usize, SizingOutcome>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut p = Parser::new(&text);
    p.lit("{\"version\":2,\"fingerprint\":\"")?;
    let fingerprint = p.hex_u64()?;
    p.lit("\",\"rows\":[")?;
    let mut rows = BTreeMap::new();
    if !p.peek(']') {
        loop {
            let (idx, row) = parse_row(&mut p)?;
            // A duplicate index means the file was not written by us.
            if rows.insert(idx, row).is_some() {
                return None;
            }
            if !p.comma() {
                break;
            }
        }
    }
    p.lit("]}")?;
    Some((fingerprint, rows))
}

fn parse_row(p: &mut Parser<'_>) -> Option<(usize, SizingOutcome)> {
    p.lit("{\"idx\":")?;
    let idx = p.number()?;
    p.lit(",\"iters\":")?;
    let iterations = p.number()?;
    p.lit(",\"paths\":")?;
    let constraint_paths = p.number()?;
    p.lit(",\"restarts\":")?;
    let gp_restarts = p.number()?;
    p.lit(",\"raw_paths\":\"")?;
    let raw_paths = p.hex_u128()?;
    p.lit("\",\"delay\":\"")?;
    let measured_delay = p.hex_f64()?;
    p.lit("\",\"precharge\":\"")?;
    let measured_precharge = p.hex_f64()?;
    p.lit("\",\"width\":\"")?;
    let total_width = p.hex_f64()?;
    p.lit("\",\"relax\":\"")?;
    let spec_relaxation = p.hex_f64()?;
    p.lit("\",\"binding\":\"")?;
    let binding_corner = p.take_while(|c| c != '"').to_owned();
    p.lit("\",\"corners\":[")?;
    let mut corner_delays = Vec::new();
    if !p.peek(']') {
        loop {
            p.lit("{\"name\":\"")?;
            let name = p.take_while(|c| c != '"').to_owned();
            p.lit("\",\"data\":\"")?;
            let data = p.hex_f64()?;
            p.lit("\",\"pre\":\"")?;
            let pre = p.hex_f64()?;
            p.lit("\"}")?;
            if !(data.is_finite() && pre.is_finite()) || name.is_empty() {
                return None;
            }
            corner_delays.push(CornerDelay {
                corner: name,
                data,
                precharge: pre,
            });
            if !p.comma() {
                break;
            }
        }
    }
    p.lit("],\"sizing\":[")?;
    let mut widths = Vec::new();
    if !p.peek(']') {
        loop {
            p.lit("\"")?;
            let w = p.hex_f64()?;
            p.lit("\"")?;
            // `Sizing::from_widths` treats non-positive/non-finite widths
            // as a caller bug (panic); a damaged file must instead read as
            // "no checkpoint".
            if !(w.is_finite() && w > 0.0) {
                return None;
            }
            widths.push(w);
            if !p.comma() {
                break;
            }
        }
    }
    p.lit("]}")?;
    // Every live outcome carries at least one corner measurement and a
    // binding-corner name; a row without them is not ours.
    if widths.is_empty()
        || corner_delays.is_empty()
        || binding_corner.is_empty()
        || !(measured_delay.is_finite()
            && measured_precharge.is_finite()
            && total_width.is_finite()
            && spec_relaxation.is_finite())
    {
        return None;
    }
    Some((
        idx,
        SizingOutcome {
            sizing: Sizing::from_widths(widths),
            measured_delay,
            measured_precharge,
            total_width,
            iterations,
            constraint_paths,
            raw_paths,
            spec_relaxation,
            gp_restarts,
            corner_delays,
            binding_corner,
        },
    ))
}

/// A cursor over the canonical checkpoint text.
struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            rest: text.trim_end_matches('\n'),
        }
    }

    fn lit(&mut self, s: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(s)?;
        Some(())
    }

    fn peek(&self, c: char) -> bool {
        self.rest.starts_with(c)
    }

    fn comma(&mut self) -> bool {
        if let Some(r) = self.rest.strip_prefix(',') {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let end = self
            .rest
            .char_indices()
            .find(|&(_, c)| !pred(c))
            .map_or(self.rest.len(), |(i, _)| i);
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        tok
    }

    fn number(&mut self) -> Option<usize> {
        let tok = self.take_while(|c| c.is_ascii_digit());
        tok.parse().ok()
    }

    fn hex_u64(&mut self) -> Option<u64> {
        let tok = self.take_while(|c| c.is_ascii_hexdigit());
        (tok.len() == 16).then(|| u64::from_str_radix(tok, 16).ok())?
    }

    fn hex_u128(&mut self) -> Option<u128> {
        let tok = self.take_while(|c| c.is_ascii_hexdigit());
        (tok.len() == 32).then(|| u128::from_str_radix(tok, 16).ok())?
    }

    fn hex_f64(&mut self) -> Option<f64> {
        self.hex_u64().map(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(seed: f64, widths: usize) -> SizingOutcome {
        SizingOutcome {
            sizing: Sizing::from_widths((0..widths).map(|i| seed + i as f64).collect()),
            measured_delay: 123.456 + seed,
            measured_precharge: 78.9,
            total_width: 40.0 * seed,
            iterations: 3,
            constraint_paths: 12,
            raw_paths: 1u128 << 80,
            spec_relaxation: 0.05,
            gp_restarts: 1,
            corner_delays: vec![
                CornerDelay {
                    corner: "slow".to_owned(),
                    data: 130.0 + seed,
                    precharge: 90.1,
                },
                CornerDelay {
                    corner: "typical".to_owned(),
                    data: 123.456 + seed,
                    precharge: 78.9,
                },
            ],
            binding_corner: "slow".to_owned(),
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smart-ckpt-test-{}-{name}.json", std::process::id()));
        p
    }

    #[test]
    fn round_trips_byte_stably() {
        let mut rows = BTreeMap::new();
        rows.insert(0, outcome(1.5, 3));
        rows.insert(7, outcome(2.25, 5));
        let json = render(0xDEAD_BEEF_0000_0001, &rows);
        let path = tmp_path("roundtrip");
        std::fs::write(&path, &json).unwrap();
        let (fp, loaded) = load_file(&path).expect("canonical file must load");
        assert_eq!(fp, 0xDEAD_BEEF_0000_0001);
        assert_eq!(loaded.len(), 2);
        // Byte-stability: re-rendering the loaded rows reproduces the file.
        assert_eq!(render(fp, &loaded), json);
        let got = &loaded[&7];
        let want = &rows[&7];
        assert_eq!(got.measured_delay.to_bits(), want.measured_delay.to_bits());
        assert_eq!(got.sizing.as_slice(), want.sizing.as_slice());
        assert_eq!(got.raw_paths, want.raw_paths);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_or_foreign_files_read_as_no_checkpoint() {
        let path = tmp_path("damaged");
        for text in [
            "",
            // A pre-corner (version 1) file is a foreign format now: it
            // has no per-corner fields, so it must degrade to
            // "no checkpoint" rather than resurrect corner-less rows.
            "{\"version\":1,\"fingerprint\":\"0000000000000000\",\"rows\":[]}",
            "{\"version\":3,\"fingerprint\":\"0000000000000000\",\"rows\":[]}",
            "{\"version\":2,\"fingerprint\":\"00\",\"rows\":[]}",
            "not json at all",
            // Truncated mid-row.
            "{\"version\":2,\"fingerprint\":\"0000000000000000\",\"rows\":[{\"idx\":0,\"iters\":1",
            // Non-finite width bits (all-ones exponent): must be rejected
            // before reaching `Sizing::from_widths`.
            "{\"version\":2,\"fingerprint\":\"0000000000000000\",\"rows\":[{\"idx\":0,\
             \"iters\":1,\"paths\":1,\"restarts\":0,\
             \"raw_paths\":\"00000000000000000000000000000001\",\
             \"delay\":\"3ff0000000000000\",\"precharge\":\"3ff0000000000000\",\
             \"width\":\"3ff0000000000000\",\"relax\":\"0000000000000000\",\
             \"binding\":\"typical\",\"corners\":[{\"name\":\"typical\",\
             \"data\":\"3ff0000000000000\",\"pre\":\"3ff0000000000000\"}],\
             \"sizing\":[\"7ff0000000000000\"]}]}",
            // An empty corner list or blank binding name is not ours.
            "{\"version\":2,\"fingerprint\":\"0000000000000000\",\"rows\":[{\"idx\":0,\
             \"iters\":1,\"paths\":1,\"restarts\":0,\
             \"raw_paths\":\"00000000000000000000000000000001\",\
             \"delay\":\"3ff0000000000000\",\"precharge\":\"3ff0000000000000\",\
             \"width\":\"3ff0000000000000\",\"relax\":\"0000000000000000\",\
             \"binding\":\"typical\",\"corners\":[],\
             \"sizing\":[\"3ff0000000000000\"]}]}",
        ] {
            std::fs::write(&path, text).unwrap();
            assert!(load_file(&path).is_none(), "accepted: {text:.60}");
        }
        std::fs::remove_file(&path).ok();
        assert!(load_file(&path).is_none(), "missing file is no checkpoint");
    }

    #[test]
    fn begin_record_flush_resume_cycle() {
        let path = tmp_path("cycle");
        std::fs::remove_file(&path).ok();
        let ckpt = Checkpointer::new(&path).with_interval(2);
        let resumed = ckpt.begin(42);
        assert!(resumed.is_empty());
        ckpt.record(0, &outcome(1.5, 2));
        // Below the cadence: nothing on disk yet.
        assert!(load_file(&path).is_none());
        ckpt.record(1, &outcome(2.5, 2));
        // Cadence hit: saved.
        assert_eq!(load_file(&path).expect("saved").1.len(), 2);
        ckpt.record(2, &outcome(3.5, 2));
        ckpt.flush();
        assert_eq!(load_file(&path).expect("flushed").1.len(), 3);

        // Same fingerprint resumes all rows; a different one resumes none
        // (and the stale file is simply ignored, not deleted).
        let again = Checkpointer::new(&path);
        assert_eq!(again.begin(42).len(), 3);
        assert_eq!(again.rows_held(), 3);
        let stale = Checkpointer::new(&path);
        assert!(stale.begin(43).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_recording_is_idempotent() {
        let path = tmp_path("dup");
        std::fs::remove_file(&path).ok();
        let ckpt = Checkpointer::new(&path).with_interval(1);
        ckpt.begin(7);
        ckpt.record(0, &outcome(1.5, 2));
        ckpt.record(0, &outcome(1.5, 2));
        assert_eq!(ckpt.rows_held(), 1);
        assert_eq!(load_file(&path).expect("saved").1.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
