//! Path extraction and compaction — the paper's §5.2.
//!
//! A combinational macro can have an enormous number of topological paths
//! (the paper measures >32,000 on a 64-bit dynamic adder). Three reductions
//! collapse them to a small constraint set:
//!
//! 1. **Regularity**: label sharing makes many paths *symbolically
//!    identical* — same component kinds, same bound labels, same
//!    capacitance composition at every step — so they produce the same
//!    posynomial constraint and are merged.
//! 2. **Pin precedence**: all input pins of a gate share its worst-case
//!    pin-to-pin model, so per-pin path variants of one gate merge with
//!    the regularity rule (the fast-pin paths are exactly the merged
//!    ones).
//! 3. **Fanout dominance**: among merged-shape paths that differ only in
//!    capacitive load, a path whose load is pointwise ≥ another's
//!    *implies* the other's constraint (caps enter the models with
//!    positive sign), so dominated paths are dropped.
//!
//! The result is sound: every dropped path's delay is bounded by a kept
//! path's constraint.

use std::collections::{BTreeMap, HashMap};

use smart_models::arcs::ArcPhase;
use smart_models::ModelLibrary;
use smart_netlist::{Circuit, LabelId, NetId};
use smart_posy::{Posynomial, VarId};
use smart_sta::{paths::count_paths, TNode, TimingGraph};

use crate::{FlowError, SizingOptions};

/// Linear capacitance decomposition of a net: per-label width coefficients
/// plus a constant (wire + boundary load).
#[derive(Debug, Clone, PartialEq)]
pub struct CapVec {
    /// Width coefficient per label.
    pub coeffs: BTreeMap<LabelId, f64>,
    /// Constant part (width-equivalent units).
    pub constant: f64,
}

impl CapVec {
    /// Extracts the linear decomposition from a (linear) cap posynomial.
    ///
    /// # Panics
    ///
    /// Panics if the posynomial has a term that is not a constant or a
    /// single first-degree variable (net caps are linear by construction).
    pub fn from_posynomial(p: &Posynomial) -> Self {
        let mut coeffs: BTreeMap<LabelId, f64> = BTreeMap::new();
        let mut constant = 0.0;
        for m in p.terms() {
            let exps: Vec<_> = m.exponents().collect();
            match exps.as_slice() {
                [] => constant += m.coeff(),
                [(v, e)] if (*e - 1.0).abs() < 1e-9 => {
                    *coeffs.entry(LabelId::from_index(v.index())).or_insert(0.0) += m.coeff();
                }
                _ => panic!("net capacitance must be linear in label widths"),
            }
        }
        CapVec { coeffs, constant }
    }

    /// Pointwise dominance: `self ≥ other` in every coefficient and the
    /// constant.
    pub fn dominates(&self, other: &CapVec) -> bool {
        const EPS: f64 = 1e-9;
        if self.constant + EPS < other.constant {
            return false;
        }
        other.coeffs.iter().all(|(l, &c)| {
            self.coeffs.get(l).copied().unwrap_or(0.0) + EPS >= c
        })
    }

    /// Total numeric value at uniform unit widths (used for reporting).
    pub fn score(&self) -> f64 {
        self.constant + self.coeffs.values().sum::<f64>()
    }
}

/// Symbolic step identity: two arcs with equal descriptors contribute an
/// identical term to a path constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StepKey {
    kind_key: u64,
    labels: Vec<LabelId>,
    edge_fall: bool,
    phase_tag: u8,
    cap_sig: usize,
}

/// One compacted constraint path: the representative arc sequence.
#[derive(Debug, Clone)]
pub struct PathClass {
    /// Arc indices (into the compaction's [`TimingGraph`]) of the
    /// representative path, source to endpoint.
    pub arcs: Vec<usize>,
    /// Launch node (an input-port edge).
    pub source: TNode,
    /// Capture node (an endpoint edge).
    pub endpoint: TNode,
    /// Whether the path contains a precharge arc (and therefore gets the
    /// precharge budget).
    pub is_precharge: bool,
}

/// Result of path extraction + compaction over one circuit.
#[derive(Debug)]
pub struct Compaction {
    /// The timing graph the classes index into.
    pub graph: TimingGraph,
    /// Surviving constraint paths.
    pub classes: Vec<PathClass>,
    /// Exhaustive topological path count before any reduction (§5.2's
    /// "over 32,000 paths").
    pub raw_paths: u128,
    /// Class count after regularity merge but before fanout-dominance
    /// pruning.
    pub after_regularity: usize,
    /// Per-net capacitance decompositions (indexed by net).
    pub net_caps: Vec<CapVec>,
}

impl Compaction {
    /// Compaction ratio `raw / compacted` (∞-safe: returns raw when no
    /// classes survive, which only happens on endpoint-free circuits).
    pub fn ratio(&self) -> f64 {
        if self.classes.is_empty() {
            return self.raw_paths as f64;
        }
        self.raw_paths as f64 / self.classes.len() as f64
    }
}

fn hash_str(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Runs path extraction and compaction.
///
/// `extra_loads` maps net → additional boundary capacitance (from output
/// port loads). `vars` is the label→variable mapping of
/// [`smart_models::label_vars`].
///
/// # Errors
///
/// [`FlowError::TooManyPaths`] if the merged class count exceeds
/// `opts.path_limit` at any node, and [`FlowError::NoEndpoints`] if the
/// graph has no source-to-endpoint path at all.
pub fn compact(
    circuit: &Circuit,
    lib: &ModelLibrary,
    vars: &[VarId],
    extra_loads: &HashMap<NetId, f64>,
    opts: &SizingOptions,
) -> Result<Compaction, FlowError> {
    let graph = TimingGraph::extract(circuit);
    let order = graph
        .topo_order()
        .ok_or(FlowError::Sta(smart_sta::StaError::CombinationalLoop))?;
    let raw_paths = count_paths(&graph);

    // Pre-compute cap decompositions.
    let mut net_caps = Vec::with_capacity(circuit.net_count());
    for (id, _) in circuit.nets() {
        let mut posy = lib.net_cap_posy(circuit, id, vars);
        let extra = extra_loads.get(&id).copied().unwrap_or(0.0);
        if extra > 0.0 {
            posy += smart_posy::Monomial::new(extra);
        }
        net_caps.push(CapVec::from_posynomial(&posy));
    }

    // Intern cap signatures (exact coefficient maps).
    let mut cap_sig_ids: HashMap<String, usize> = HashMap::new();
    let mut cap_sig_of_net = vec![0usize; circuit.net_count()];
    for (i, cv) in net_caps.iter().enumerate() {
        let key = format!("{cv:?}");
        let next = cap_sig_ids.len();
        let id = *cap_sig_ids.entry(key).or_insert(next);
        cap_sig_of_net[i] = id;
    }

    // Arc descriptors.
    let arc_desc: Vec<StepKey> = graph
        .arcs
        .iter()
        .map(|arc| {
            let comp = circuit.comp(arc.comp);
            let mut labels: Vec<LabelId> = comp
                .label_bindings()
                .iter()
                .map(|&(_, l)| l)
                .collect();
            labels.sort_unstable();
            StepKey {
                kind_key: hash_str(&format!("{:?}", comp.kind)),
                labels,
                edge_fall: matches!(arc.to.edge, smart_models::arcs::Edge::Fall),
                phase_tag: match arc.phase {
                    ArcPhase::Data => 0,
                    ArcPhase::Precharge => 1,
                    ArcPhase::ClockedEvaluate => 2,
                },
                cap_sig: cap_sig_of_net[arc.to.net.index()],
            }
        })
        .collect();

    // Suffix sets per node, built in reverse topological order.
    #[derive(Clone)]
    struct Suffix {
        sig: Vec<u64>, // rolling per-step hashes of StepKey
        arcs: Vec<usize>,
        has_precharge: bool,
    }
    let mut step_hash: Vec<u64> = Vec::with_capacity(arc_desc.len());
    {
        let mut interner: HashMap<&StepKey, u64> = HashMap::new();
        for d in &arc_desc {
            let next = interner.len() as u64;
            let id = *interner.entry(d).or_insert(next);
            step_hash.push(id);
        }
    }

    let mut suffixes: Vec<Vec<Suffix>> = vec![Vec::new(); graph.node_count()];
    for node in order.iter().rev() {
        let i = node.index();
        if graph.fanout[i].is_empty() {
            suffixes[i] = vec![Suffix {
                sig: Vec::new(),
                arcs: Vec::new(),
                has_precharge: false,
            }];
            continue;
        }
        let mut merged: HashMap<Vec<u64>, Suffix> = HashMap::new();
        for &ai in &graph.fanout[i] {
            let to = graph.arcs[ai].to.index();
            let is_pre = graph.arcs[ai].phase == ArcPhase::Precharge;
            for s in &suffixes[to] {
                let mut sig = Vec::with_capacity(s.sig.len() + 1);
                sig.push(step_hash[ai]);
                sig.extend(&s.sig);
                merged.entry(sig).or_insert_with(|| {
                    let mut arcs = Vec::with_capacity(s.arcs.len() + 1);
                    arcs.push(ai);
                    arcs.extend(&s.arcs);
                    Suffix {
                        sig: Vec::new(), // filled below
                        arcs,
                        has_precharge: is_pre || s.has_precharge,
                    }
                });
            }
        }
        let mut out: Vec<Suffix> = merged
            .into_iter()
            .map(|(sig, mut s)| {
                s.sig = sig;
                s
            })
            .collect();
        out.sort_by(|a, b| a.sig.cmp(&b.sig));
        if out.len() > opts.path_limit {
            return Err(FlowError::TooManyPaths {
                classes: out.len(),
                limit: opts.path_limit,
            });
        }
        suffixes[i] = out;
    }

    // Collect full classes from source nodes, dedup across sources.
    let mut classes_by_sig: HashMap<Vec<u64>, PathClass> = HashMap::new();
    #[allow(clippy::needless_range_loop)] // i is a timing-node id, not a position
    for i in 0..graph.node_count() {
        if !graph.fanin[i].is_empty() || graph.fanout[i].is_empty() {
            continue;
        }
        let source = TNode::from_index(i);
        for s in &suffixes[i] {
            // An empty suffix is a degenerate zero-arc path; it cannot
            // constrain anything, so drop it rather than panic.
            let Some(&last_arc) = s.arcs.last() else {
                continue;
            };
            let endpoint = graph.arcs[last_arc].to;
            classes_by_sig
                .entry(s.sig.clone())
                .or_insert_with(|| PathClass {
                    arcs: s.arcs.clone(),
                    source,
                    endpoint,
                    is_precharge: s.has_precharge,
                });
        }
    }
    let mut classes: Vec<PathClass> = classes_by_sig.into_values().collect();
    classes.sort_by(|a, b| a.arcs.cmp(&b.arcs));
    let after_regularity = classes.len();
    if classes.is_empty() {
        return Err(FlowError::NoEndpoints);
    }

    // Fanout-dominance pruning: group by cap-free shape; within a group,
    // drop classes whose per-step caps are pointwise dominated.
    type ShapeKey = Vec<(u64, Vec<LabelId>, bool, u8)>;
    let shape_of = |class: &PathClass| -> ShapeKey {
        class
            .arcs
            .iter()
            .map(|&ai| {
                let d = &arc_desc[ai];
                (d.kind_key, d.labels.clone(), d.edge_fall, d.phase_tag)
            })
            .collect()
    };
    let mut groups: HashMap<ShapeKey, Vec<usize>> = HashMap::new();
    for (idx, class) in classes.iter().enumerate() {
        groups.entry(shape_of(class)).or_default().push(idx);
    }
    let mut keep = vec![true; classes.len()];
    if opts.heuristic_dominance {
        // Paper heuristic: within a shape group, keep only the class with
        // the largest total load (uniform-width score). The Fig.-4 outer
        // loop's STA re-measurement backstops any dropped-path optimism.
        for members in groups.values() {
            let score = |idx: usize| -> f64 {
                classes[idx]
                    .arcs
                    .iter()
                    .map(|&ai| net_caps[graph.arcs[ai].to.net.index()].score())
                    .sum()
            };
            // total_cmp: a NaN cap score (degenerate load) must not panic
            // the sweep; NaN ranks highest and the Fig.-4 STA feedback
            // loop corrects any resulting optimism.
            let Some(best) = members.iter().copied().max_by(|&a, &b| {
                score(a).total_cmp(&score(b))
            }) else {
                continue; // groups are non-empty by construction
            };
            for &m in members {
                if m != best {
                    keep[m] = false;
                }
            }
        }
    } else {
        // Sound mode: drop only classes pointwise-dominated at every step.
        for members in groups.values() {
            for &a in members {
                if !keep[a] {
                    continue;
                }
                for &b in members {
                    if a == b || !keep[b] {
                        continue;
                    }
                    // a dominates b if every step cap of a >= that of b.
                    let dom =
                        classes[a].arcs.iter().zip(&classes[b].arcs).all(|(&x, &y)| {
                            let cx = &net_caps[graph.arcs[x].to.net.index()];
                            let cy = &net_caps[graph.arcs[y].to.net.index()];
                            cx.dominates(cy)
                        });
                    if dom {
                        keep[b] = false;
                    }
                }
            }
        }
    }
    let classes: Vec<PathClass> = classes
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect();

    Ok(Compaction {
        graph,
        classes,
        raw_paths,
        after_regularity,
        net_caps,
    })
}
