//! Constraint generation — the "constraint generator" box of the paper's
//! Fig. 4: timing constraints on the compacted paths, slope constraints,
//! device-size bounds, noise rules and designer pins, all posynomial.

use std::collections::{HashMap, HashSet};

use smart_gp::{GpError, GpProblem};
use smart_models::arcs::Edge;
use smart_models::{label_vars, ModelLibrary};
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetId};
use smart_posy::{Monomial, Posynomial, VarId};
use smart_sta::Boundary;

use crate::compact::Compaction;
use crate::{CostMetric, DelaySpec, FlowError, SizingOptions};

/// Per-label coefficients of a cost objective.
fn width_weights(circuit: &Circuit) -> Vec<f64> {
    let mut w = vec![0.0; circuit.labels().len()];
    for (_, comp) in circuit.components() {
        for spec in comp.kind.roles() {
            w[comp.label_of(spec.role).index()] += spec.width_factor * spec.mult as f64;
        }
    }
    w
}

/// Power weights: width weighted by the switching activity of the net
/// charging each device's gate (clocked devices are the expensive ones —
/// the mechanism behind the paper's clock-load savings in Table 1).
fn power_weights(circuit: &Circuit, lib: &ModelLibrary) -> Vec<f64> {
    use smart_netlist::{LoadKind, NetKind};
    let mut w = vec![0.0; circuit.labels().len()];
    let act = |kind: NetKind| match kind {
        NetKind::Clock => 2.0,
        NetKind::Dynamic => 0.75,
        NetKind::Signal => lib.process().default_activity,
    };
    for (id, net) in circuit.nets() {
        let a = act(net.kind);
        for &(comp_id, pin) in circuit.loads_of(id) {
            let comp = circuit.comp(comp_id);
            for load in comp.kind.input_load(pin) {
                let f = match load.kind {
                    LoadKind::Gate => load.factor,
                    LoadKind::Diffusion => load.factor * lib.process().diff_factor,
                };
                w[comp.label_of(load.role).index()] += a * f;
            }
        }
    }
    // Driver junction capacitance switches with the driven net too.
    for (id, net) in circuit.nets() {
        let a = act(net.kind);
        for &comp_id in circuit.drivers_of(id) {
            let comp = circuit.comp(comp_id);
            for load in comp.kind.output_self_load() {
                w[comp.label_of(load.role).index()] +=
                    a * load.factor * lib.process().diff_factor;
            }
        }
    }
    w
}

/// Builds the cost objective posynomial.
pub fn cost_objective(
    circuit: &Circuit,
    lib: &ModelLibrary,
    vars: &[VarId],
    cost: CostMetric,
) -> Posynomial {
    let weights = match cost {
        CostMetric::Width => width_weights(circuit),
        CostMetric::Power => power_weights(circuit, lib),
    };
    let mut obj = Posynomial::zero();
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            obj += Monomial::new(w).pow(vars[i], 1.0);
        }
    }
    obj
}

/// Everything needed to solve one sizing GP: the problem plus the
/// label-variable mapping.
pub struct SizingGp {
    /// The assembled geometric program.
    pub gp: GpProblem,
    /// `vars[label.index()]` is the width variable of that label.
    pub vars: Vec<VarId>,
    /// Number of timing constraints emitted.
    pub timing_constraints: usize,
    /// Number of slope constraints emitted.
    pub slope_constraints: usize,
    /// Spec-independent halves of the timing constraints, kept so
    /// [`SizingGp::retarget`] can rescale them in place.
    timing: Vec<TimingEntry>,
}

/// One timing constraint's spec-independent part. The delay posynomial is
/// by far the most expensive piece of GP assembly (capacitance and stage
/// models evaluated along every compacted path), and retargeting only
/// changes the scalar budget it is divided by — so the Fig.-4 loop keeps
/// the undivided posynomial and re-divides instead of rebuilding.
struct TimingEntry {
    /// Index of the constraint inside [`SizingGp::gp`].
    index: usize,
    /// End-to-end path delay, *before* division by the budget.
    delay: Posynomial,
    /// Selects the precharge budget instead of the data budget.
    is_precharge: bool,
    /// Segments the class was cut into (non-OTB mode); each segment
    /// receives `budget / seg_count`.
    seg_count: usize,
}

impl SizingGp {
    /// Rescales every timing constraint to `spec` in place. The result is
    /// the problem [`build_sizing_gp`] would assemble at `spec`, bit for
    /// bit — only the budget divisor changed — at none of the
    /// model-evaluation cost. On a GP without retarget entries (the
    /// min-delay formulation bounds paths by a variable, not a spec) this
    /// is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates [`GpError::EmptyConstraint`]; unreachable in practice
    /// because every stored delay was nonzero at build time.
    pub fn retarget(&mut self, spec: &DelaySpec) -> Result<(), GpError> {
        for e in &self.timing {
            let budget = if e.is_precharge {
                spec.precharge_budget()
            } else {
                spec.data
            };
            let seg_budget = budget / e.seg_count as f64;
            self.gp
                .replace_le(e.index, &e.delay, &Monomial::new(seg_budget))?;
        }
        Ok(())
    }
}


/// Posynomial capacitance of `net` including boundary load.
fn cap_posy(
    circuit: &Circuit,
    lib: &ModelLibrary,
    vars: &[VarId],
    net: NetId,
    extra_loads: &HashMap<NetId, f64>,
) -> Posynomial {
    let mut p = lib.net_cap_posy(circuit, net, vars);
    if let Some(&e) = extra_loads.get(&net) {
        if e > 0.0 {
            p += Monomial::new(e);
        }
    }
    p
}

/// Assembles the sizing GP from a compaction.
///
/// Timing constraints follow the paper's taxonomy automatically, because
/// the timing graph already expands them: static gates contribute
/// rise+fall path variants (two constraints per path), pass/tri-state
/// control pins contribute all four edge pairs, domino gates contribute
/// separate precharge and evaluate paths. Paths are timed end-to-end
/// across domino stage boundaries, which is what gives the formulation
/// its automatic Opportunistic Time Borrowing (paper §5.3): a fast D1
/// stage donates its slack to the D2 stage sharing the path.
///
/// With a multi-corner [`SizingOptions::corners`] set, the whole
/// timing + slope constraint family is emitted once per corner over the
/// *same* width variables — max-over-corners as one posynomial constraint
/// per corner against the shared budget — so the GP's feasible region is
/// the intersection of every corner's. The cost objective, size bounds,
/// noise rules and pins are corner-invariant (width-space only) and are
/// emitted once, from the primary library. A singleton corner set emits
/// exactly the single-corner constraint sequence.
///
/// # Errors
///
/// [`FlowError::UnknownPin`] if a pinned label name is absent.
#[allow(clippy::too_many_arguments)]
pub fn build_sizing_gp(
    circuit: &Circuit,
    lib: &ModelLibrary,
    compaction: &Compaction,
    boundary: &Boundary,
    extra_loads: &HashMap<NetId, f64>,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<SizingGp, FlowError> {
    let (pool, vars) = label_vars(circuit);
    let mut gp = GpProblem::new(pool);
    gp.set_objective(cost_objective(circuit, lib, &vars, opts.cost));

    // Input boundary: arrival time and slope per source net. The default
    // slope floor derates with the corner being emitted.
    let input_time = |net: NetId, clib: &ModelLibrary| -> (f64, f64) {
        let default_slope = boundary.default_slope.unwrap_or(clib.process().slope_min);
        for port in circuit.input_ports() {
            if port.net == net {
                return boundary
                    .input_times
                    .get(&port.name)
                    .copied()
                    .unwrap_or((0.0, default_slope));
            }
        }
        (0.0, default_slope)
    };

    let corner_libs = crate::spec::resolve_corner_libs(lib, opts);
    let multi = corner_libs.len() > 1;
    let mut timing_constraints = 0;
    let mut timing = Vec::new();
    let mut slope_constraints = 0;
    // Per-arc posynomial caches. The same arc appears on many compacted
    // paths (classes share prefixes and fanout cones), but its R·C product
    // and output slope depend only on the arc itself — not on the path
    // reaching it — so each is built once per corner and cloned on every
    // revisit. The vectors are allocated once and re-`None`d between
    // corners (cache contents are corner-specific; the slots are not).
    let arc_count = compaction.graph.arcs.len();
    let mut arc_rc: Vec<Option<Posynomial>> = vec![None; arc_count];
    let mut arc_slope: Vec<Option<Posynomial>> = vec![None; arc_count];
    for (corner_idx, (cname, clib)) in corner_libs.iter().enumerate() {
        if corner_idx > 0 {
            for slot in arc_rc.iter_mut() {
                *slot = None;
            }
            for slot in arc_slope.iter_mut() {
                *slot = None;
            }
        }
        // Timing constraints. With OTB (default, the paper's formulation)
        // each compacted class yields ONE end-to-end constraint, so slack
        // borrows freely across domino stage boundaries. Without OTB the
        // class is cut at every dynamic node and each segment receives an
        // equal share of the budget — the conventional hard-boundary
        // discipline, kept for the ablation study.
        for (ci, class) in compaction.classes.iter().enumerate() {
            let budget = if class.is_precharge {
                spec.precharge_budget()
            } else {
                spec.data
            };
            let segments: Vec<&[usize]> = if opts.otb {
                vec![&class.arcs[..]]
            } else {
                let mut segs = Vec::new();
                let mut start = 0;
                for (k, &ai) in class.arcs.iter().enumerate() {
                    let to = compaction.graph.arcs[ai].to.net;
                    if circuit.net(to).kind == smart_netlist::NetKind::Dynamic {
                        segs.push(&class.arcs[start..=k]);
                        start = k + 1;
                    }
                }
                if start < class.arcs.len() {
                    segs.push(&class.arcs[start..]);
                }
                segs
            };
            let seg_count = segments.len();
            for (si, seg) in segments.into_iter().enumerate() {
                let (t0, s0) = input_time(class.source.net, clib);
                let mut delay = Posynomial::zero();
                if si == 0 && t0 > 0.0 {
                    delay += Monomial::new(t0);
                }
                let mut slope_prev = Posynomial::constant(s0.max(1e-3));
                for &ai in seg {
                    let arc = &compaction.graph.arcs[ai];
                    let comp = circuit.comp(arc.comp);
                    if arc_rc[ai].is_none() {
                        let cap = cap_posy(circuit, clib, &vars, arc.to.net, extra_loads);
                        let rc = clib.stage_rc_posy(comp, arc.to.edge, &cap, &vars);
                        arc_slope[ai] = Some(clib.stage_slope_from_rc(&rc));
                        arc_rc[ai] = Some(rc);
                    }
                    let (Some(rc), Some(slope)) = (arc_rc[ai].as_ref(), arc_slope[ai].as_ref())
                    else {
                        unreachable!("arc cache filled above");
                    };
                    delay += clib.stage_delay_from_rc(comp, rc, Some(&slope_prev));
                    slope_prev = slope.clone();
                }
                let seg_budget = budget / seg_count as f64;
                // Labels stay byte-identical to the historical single-
                // corner form unless the set actually has several members.
                let label = if multi {
                    format!(
                        "path{ci}.{si} {} -> {} ({}) @{cname}",
                        circuit.net(class.source.net).name,
                        circuit.net(class.endpoint.net).name,
                        if class.is_precharge { "pre" } else { "eval" }
                    )
                } else {
                    format!(
                        "path{ci}.{si} {} -> {} ({})",
                        circuit.net(class.source.net).name,
                        circuit.net(class.endpoint.net).name,
                        if class.is_precharge { "pre" } else { "eval" }
                    )
                };
                timing.push(TimingEntry {
                    index: gp.constraints().len(),
                    delay: delay.clone(),
                    is_precharge: class.is_precharge,
                    seg_count,
                });
                gp.add_le(label, delay, Monomial::new(seg_budget))?;
                timing_constraints += 1;
            }
        }

        // Slope (reliability) constraints, deduplicated by (component
        // labels, edge, cap composition) *within* each corner — the same
        // physical stage gets one edge-rate rule per corner, since its
        // slope posynomial carries corner coefficients.
        let mut seen: HashSet<String> = HashSet::new();
        for (ai, arc) in compaction.graph.arcs.iter().enumerate() {
            // Dynamic nodes are exempt from the static edge-rate rule:
            // their discharge slope is set by the stack the topology chose
            // (wide un-split dominos are inherently slow there — the
            // reason the partitioned topology exists) and is already
            // governed by the evaluate timing constraints plus the noise
            // rule.
            if circuit.net(arc.to.net).kind == smart_netlist::NetKind::Dynamic {
                continue;
            }
            let comp = circuit.comp(arc.comp);
            let key = format!(
                "{:?}|{:?}|{:?}|{:?}",
                comp.label_bindings(),
                comp.kind,
                arc.to.edge,
                compaction.net_caps[arc.to.net.index()]
            );
            if !seen.insert(key) {
                continue;
            }
            let slope = if let Some(s) = arc_slope[ai].as_ref() {
                s.clone()
            } else {
                let cap = cap_posy(circuit, clib, &vars, arc.to.net, extra_loads);
                clib.stage_slope_posy(comp, arc.to.edge, &cap, &vars)
            };
            // Shared (multi-driver) nets — pass-gate and tri-state buses —
            // carry the junction load of every off driver, which puts a
            // floor on their edge rate; projects exempt such nodes from
            // the single-driver rule, so the limit scales with driver
            // count.
            let drivers = circuit.drivers_of(arc.to.net).len().max(1) as f64;
            let label = if multi {
                format!("slope {} {:?} @{cname}", comp.path, arc.to.edge)
            } else {
                format!("slope {} {:?}", comp.path, arc.to.edge)
            };
            gp.add_le(label, slope, Monomial::new(opts.slope_max * drivers))?;
            slope_constraints += 1;
        }
    }

    // Device size bounds.
    for (label, _) in circuit.labels().iter() {
        let v = vars[label.index()];
        gp.add_lower_bound(v, lib.process().w_min);
        gp.add_upper_bound(v, lib.process().w_max);
    }

    // Dynamic-circuit methodology rules (emitted together under the noise
    // switch): (a) the precharge device keeps a minimum strength relative
    // to the data pull-down, so leakage through a wide network cannot
    // collapse the node; (b) clocked devices (precharge, evaluate foot)
    // stay within a fixed ratio of the data stack — the clock-load
    // discipline every domino methodology imposes, without which a width
    // objective trades N small data devices for one huge clocked one.
    if opts.noise_constraints {
        let mut seen_noise: HashSet<Vec<usize>> = HashSet::new();
        for (_, comp) in circuit.components() {
            if let ComponentKind::Domino {
                ref network,
                clocked_eval,
            } = comp.kind
            {
                let pre = comp.label_of(DeviceRole::Precharge);
                let data = comp.label_of(DeviceRole::DataN);
                let branches = network.top_branch_count();
                let key = vec![pre.index(), data.index(), clocked_eval as usize, branches];
                if !seen_noise.insert(key) {
                    continue;
                }
                // Leakage scales with the number of parallel pull-down
                // branches on the node, so the precharge strength floor
                // does too — the mechanism that makes very wide dynamic
                // nodes (Xorsum4, un-split muxes) expensive in practice.
                gp.add_le(
                    format!("noise {}", comp.path),
                    Posynomial::from(
                        Monomial::new(0.08 * branches as f64)
                            .pow(vars[data.index()], 1.0)
                            .pow(vars[pre.index()], -1.0),
                    ),
                    Monomial::one(),
                )?;
                gp.add_le(
                    format!("clk-ratio pre {}", comp.path),
                    Posynomial::from(
                        Monomial::new(1.0 / 2.0)
                            .pow(vars[pre.index()], 1.0)
                            .pow(vars[data.index()], -1.0),
                    ),
                    Monomial::one(),
                )?;
                if clocked_eval {
                    let foot = comp.label_of(DeviceRole::Evaluate);
                    gp.add_le(
                        format!("clk-ratio foot {}", comp.path),
                        Posynomial::from(
                            Monomial::new(1.0 / 2.0)
                                .pow(vars[foot.index()], 1.0)
                                .pow(vars[data.index()], -1.0),
                        ),
                        Monomial::one(),
                    )?;
                }
            }
        }
    }

    // Designer pins.
    for (name, &value) in &opts.pinned {
        let label = circuit
            .labels()
            .lookup(name)
            .ok_or_else(|| FlowError::UnknownPin { name: name.clone() })?;
        gp.pin(vars[label.index()], value);
    }

    Ok(SizingGp {
        gp,
        vars,
        timing_constraints,
        slope_constraints,
        timing,
    })
}

/// Builds a *delay-minimization* GP: an auxiliary variable `T` bounds all
/// paths and is itself minimized (used to find the fastest achievable
/// point of a topology, the left end of Fig. 6's curve).
///
/// # Errors
///
/// Same as [`build_sizing_gp`].
pub fn build_min_delay_gp(
    circuit: &Circuit,
    lib: &ModelLibrary,
    compaction: &Compaction,
    boundary: &Boundary,
    extra_loads: &HashMap<NetId, f64>,
    opts: &SizingOptions,
) -> Result<(SizingGp, VarId), FlowError> {
    // Assemble with a dummy budget, then rewrite: paths ≤ T. With a
    // multi-corner set, every corner's paths bound the same T — the
    // minimized delay is the worst corner's achievable delay.
    let (pool, vars) = label_vars(circuit);
    let mut gp = GpProblem::new(pool);
    let t_var = gp.pool_mut().var("__T");
    gp.set_objective(Posynomial::var(t_var));

    let input_time = |net: NetId, clib: &ModelLibrary| -> (f64, f64) {
        let default_slope = boundary.default_slope.unwrap_or(clib.process().slope_min);
        for port in circuit.input_ports() {
            if port.net == net {
                return boundary
                    .input_times
                    .get(&port.name)
                    .copied()
                    .unwrap_or((0.0, default_slope));
            }
        }
        (0.0, default_slope)
    };

    let corner_libs = crate::spec::resolve_corner_libs(lib, opts);
    let multi = corner_libs.len() > 1;
    let mut timing_constraints = 0;
    for (cname, clib) in &corner_libs {
        for (ci, class) in compaction.classes.iter().enumerate() {
            let (t0, s0) = input_time(class.source.net, clib);
            let mut delay = Posynomial::zero();
            if t0 > 0.0 {
                delay += Monomial::new(t0);
            }
            let mut slope_prev = Posynomial::constant(s0.max(1e-3));
            for &ai in &class.arcs {
                let arc = &compaction.graph.arcs[ai];
                let comp = circuit.comp(arc.comp);
                let cap = cap_posy(circuit, clib, &vars, arc.to.net, extra_loads);
                delay += clib.stage_delay_posy(comp, arc.to.edge, &cap, Some(&slope_prev), &vars);
                slope_prev = clib.stage_slope_posy(comp, arc.to.edge, &cap, &vars);
            }
            let label = if multi {
                format!("path{ci} <= T @{cname}")
            } else {
                format!("path{ci} <= T")
            };
            gp.add_le(label, delay, Monomial::var(t_var))?;
            timing_constraints += 1;
        }
    }
    for (label, _) in circuit.labels().iter() {
        let v = vars[label.index()];
        gp.add_lower_bound(v, lib.process().w_min);
        gp.add_upper_bound(v, lib.process().w_max);
    }
    gp.add_lower_bound(t_var, 1e-3);
    gp.add_upper_bound(t_var, 1e7);
    for (name, &value) in &opts.pinned {
        let label = circuit
            .labels()
            .lookup(name)
            .ok_or_else(|| FlowError::UnknownPin { name: name.clone() })?;
        gp.pin(vars[label.index()], value);
    }
    Ok((
        SizingGp {
            gp,
            vars,
            timing_constraints,
            slope_constraints: 0,
            timing: Vec::new(),
        },
        t_var,
    ))
}

/// Maps output-port boundary loads to nets.
pub fn boundary_extra_loads(circuit: &Circuit, boundary: &Boundary) -> HashMap<NetId, f64> {
    let mut m = HashMap::new();
    for port in circuit.output_ports() {
        if let Some(&l) = boundary.output_loads.get(&port.name) {
            *m.entry(port.net).or_insert(0.0) += l;
        }
    }
    m
}

/// Re-exported edge alias to keep `smart_models` out of caller signatures.
pub type PathEdge = Edge;
