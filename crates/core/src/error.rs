//! Error type of the SMART flow.

use std::error::Error;
use std::fmt;

use smart_gp::GpError;
use smart_sta::StaError;

/// Errors raised by the sizing/exploration flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The geometric program failed (infeasible spec, unbounded, or
    /// numerical trouble); carries the solver's diagnosis.
    Gp(GpError),
    /// Timing analysis failed (combinational loop, bad boundary).
    Sta(StaError),
    /// Path compaction still produced more classes than
    /// [`crate::SizingOptions::path_limit`] — the macro's labeling defeats
    /// regularity-based reduction.
    TooManyPaths {
        /// Compacted class count.
        classes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The Fig.-4 loop ran out of outer iterations without converging to
    /// the specified delay.
    NoConvergence {
        /// Last measured worst delay (ps).
        measured: f64,
        /// The specification it chased (ps).
        spec: f64,
    },
    /// The circuit has no timing endpoints (no output ports reachable).
    NoEndpoints,
    /// A pinned label name does not exist in the circuit.
    UnknownPin {
        /// The missing label name.
        name: String,
    },
    /// A candidate's generator or sizing pipeline panicked; the panic was
    /// contained at the exploration boundary so the sweep could continue.
    /// One pathological topology becomes one failed table row, never a
    /// dead sweep.
    Internal {
        /// Display form of the candidate that panicked.
        candidate: String,
        /// The captured panic payload, when it was a string.
        panic_msg: String,
    },
    /// The candidate violated `Error`-severity electrical rules and the
    /// exploration lint gate ([`crate::LintGate::Errors`]) rejected it
    /// before any sizing work was spent on it.
    Lint {
        /// Display form of the rejected candidate.
        candidate: String,
        /// Number of `Error`-severity findings.
        errors: usize,
        /// Rendered `Error`-severity findings, in the lint report's
        /// canonical order.
        findings: Vec<String>,
    },
    /// The pre-solve static audit ([`crate::AuditGate`]) proved the
    /// constructed GP infeasible before any Newton work: a constraint
    /// subset whose interval images cannot intersect. Carries the
    /// machine-checkable certificate's constraint labels so the designer
    /// sees *which* requirements conflict, not just that the solver gave
    /// up.
    InfeasibleCertificate {
        /// Labels of the certifying constraint subset, in the
        /// certificate's canonical (label-sorted) order.
        constraints: Vec<String>,
        /// Human-readable contradiction summary from the analyzer.
        detail: String,
    },
    /// A flow budget ([`crate::FlowBudget`]) expired: the wall clock ran
    /// out, the GP burned its Newton-step allowance, or the exploration hit
    /// its candidate cap.
    BudgetExceeded {
        /// Which budget fired (`"wall-clock"`, `"newton-steps"`,
        /// `"candidates"`).
        what: &'static str,
        /// Human-readable detail (stage, counts).
        detail: String,
    },
    /// The request itself was malformed — parameters outside the domain
    /// the flow is defined on (a partitioned mux narrower than 3 inputs,
    /// a comparator width with no legal grouping, an unparseable serve
    /// request). Reported as a typed row so tools and the serve protocol
    /// render it like any other taxonomy entry, never as a panic.
    InvalidRequest {
        /// What was requested (`"tune-partition"`, `"serve-request"`, …).
        what: &'static str,
        /// Human-readable explanation of the domain violation.
        detail: String,
    },
    /// Every candidate of a sweep failed, so there is no winner to
    /// return. Carries the sweep's failure-taxonomy histogram so the
    /// caller sees *why* the sweep came up empty, not just that it did.
    NoFeasibleCandidate {
        /// Candidates evaluated.
        total: usize,
        /// `(taxonomy tag, count)` of the failed rows, sorted by tag.
        taxonomy: Vec<(&'static str, usize)>,
    },
}

impl FlowError {
    /// Short stable failure-taxonomy tag for reports and sweep tables
    /// (`infeasible`, `unbounded`, `numerical`, `non-finite`, `budget`,
    /// `panic`, `lint`, `sta`, `paths`, `no-convergence`, `no-endpoints`,
    /// `pin`, `invalid-request`, `no-feasible`).
    pub fn taxonomy(&self) -> &'static str {
        match self {
            FlowError::Gp(GpError::Infeasible { .. }) => "infeasible",
            FlowError::Gp(GpError::Unbounded) => "unbounded",
            FlowError::Gp(GpError::NonFinite { .. }) => "non-finite",
            FlowError::Gp(GpError::BudgetExceeded { .. }) => "budget",
            FlowError::Gp(_) => "numerical",
            FlowError::Sta(_) => "sta",
            FlowError::TooManyPaths { .. } => "paths",
            FlowError::NoConvergence { .. } => "no-convergence",
            FlowError::NoEndpoints => "no-endpoints",
            FlowError::UnknownPin { .. } => "pin",
            FlowError::Internal { .. } => "panic",
            FlowError::Lint { .. } => "lint",
            FlowError::InfeasibleCertificate { .. } => "infeasible",
            FlowError::BudgetExceeded { .. } => "budget",
            FlowError::InvalidRequest { .. } => "invalid-request",
            FlowError::NoFeasibleCandidate { .. } => "no-feasible",
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Gp(e) => write!(f, "sizing optimization failed: {e}"),
            FlowError::Sta(e) => write!(f, "timing analysis failed: {e}"),
            FlowError::TooManyPaths { classes, limit } => write!(
                f,
                "path compaction left {classes} constraint paths (limit {limit})"
            ),
            FlowError::NoConvergence { measured, spec } => write!(
                f,
                "sizing loop did not converge: measured {measured:.1} ps vs spec {spec:.1} ps"
            ),
            FlowError::NoEndpoints => write!(f, "circuit has no reachable timing endpoints"),
            FlowError::UnknownPin { name } => {
                write!(f, "pinned label '{name}' does not exist in this circuit")
            }
            FlowError::Internal {
                candidate,
                panic_msg,
            } => write!(
                f,
                "candidate '{candidate}' panicked (contained): {panic_msg}"
            ),
            FlowError::Lint {
                candidate,
                errors,
                findings,
            } => {
                write!(
                    f,
                    "candidate '{candidate}' rejected by lint: {errors} error finding(s)"
                )?;
                if let Some(first) = findings.first() {
                    write!(f, " ({first}")?;
                    if findings.len() > 1 {
                        write!(f, "; +{} more", findings.len() - 1)?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            FlowError::InfeasibleCertificate {
                constraints,
                detail,
            } => {
                write!(f, "spec certified infeasible before solving: {detail}")?;
                if !constraints.is_empty() {
                    write!(f, " [certificate: {}]", constraints.join(", "))?;
                }
                Ok(())
            }
            FlowError::BudgetExceeded { what, detail } => {
                write!(f, "{what} budget exceeded: {detail}")
            }
            FlowError::InvalidRequest { what, detail } => {
                write!(f, "invalid {what} request: {detail}")
            }
            FlowError::NoFeasibleCandidate { total, taxonomy } => {
                write!(f, "no feasible candidate among {total}")?;
                if !taxonomy.is_empty() {
                    write!(f, " (")?;
                    for (i, (tag, n)) in taxonomy.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{tag}\u{d7}{n}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Gp(e) => Some(e),
            FlowError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for FlowError {
    fn from(e: GpError) -> Self {
        FlowError::Gp(e)
    }
}

impl From<StaError> for FlowError {
    fn from(e: StaError) -> Self {
        match e {
            // An unmeasurable macro (no reachable output arrival) is a
            // property of the candidate, not an STA machinery failure —
            // keep it on its own taxonomy row so sweep tables separate
            // "broken topology" from "timing analysis broke".
            StaError::NoEndpoints => FlowError::NoEndpoints,
            other => FlowError::Sta(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FlowError::from(GpError::Unbounded);
        assert!(e.to_string().contains("unbounded"));
        assert!(e.source().is_some());
        let e = FlowError::TooManyPaths {
            classes: 50_000,
            limit: 20_000,
        };
        assert!(e.to_string().contains("50000"));
    }
}
