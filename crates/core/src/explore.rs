//! Topology exploration — the paper's Fig. 1 flow: elaborate every
//! database alternative for the requested function, size each under the
//! instance constraints, and compare on the cost metric, letting the tool
//! pick the best or the designer inspect the whole table (the Fig. 7
//! experiment is exactly one run of this).
//!
//! The sweep is *fault-isolated*: each candidate's elaboration and sizing
//! run inside a panic boundary, so one pathological topology (a generator
//! that panics, a GP that diverges) becomes one [`FlowError::Internal`]
//! table row instead of killing the whole exploration. Candidate-count
//! budgets ([`crate::FlowBudget::max_candidates`]) are also enforced here.
//!
//! The sweep is also *candidate-parallel*: every candidate's work is a
//! pure function of its index (same spec list, same read-only library /
//! boundary / options), so [`explore_parallel`] fans candidates across the
//! [`crate::pool`] worker pool and reassembles the table in index order —
//! byte-identical to the serial table, a property the differential test
//! suite (`tests/parallel_equivalence.rs`) enforces. The plain [`explore`]
//! / [`explore_with`] entry points read [`ParallelOptions::from_env`], so
//! `SMART_WORKERS=4` parallelizes every existing caller unchanged.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use smart_chaos::FaultSite;
use smart_models::ModelLibrary;
use smart_netlist::Circuit;
use smart_power::{estimate, ActivityProfile, PowerReport};
use smart_sta::Boundary;

use smart_macros::MacroSpec;

use crate::pool::{run_indexed, ParallelOptions};
use crate::sizing::{size_circuit, SizingOutcome};
use crate::spec::LintGate;
use crate::{DelaySpec, FlowError, SizingOptions};

/// Quality metrics of one sized candidate.
#[derive(Debug)]
pub struct CandidateMetrics {
    /// The sizing outcome (widths, measured delay, iteration counts).
    pub outcome: SizingOutcome,
    /// Total gate width on clock nets — the paper's clock-load metric.
    pub clock_load: f64,
    /// Switching-power estimate.
    pub power: PowerReport,
    /// Transistor count of the topology.
    pub devices: usize,
}

/// One explored candidate: the spec, its circuit, and either metrics or
/// the failure that disqualified it (e.g. the topology cannot meet the
/// delay).
#[derive(Debug)]
pub struct Candidate {
    /// The macro spec of this alternative.
    pub spec: MacroSpec,
    /// The elaborated circuit; `None` when elaboration itself failed
    /// (panicked generator) or the candidate budget excluded it.
    pub circuit: Option<Circuit>,
    /// Sized metrics, or why sizing failed.
    pub result: Result<CandidateMetrics, FlowError>,
}

/// The full exploration table.
#[derive(Debug)]
pub struct Exploration {
    /// All candidates in database order (requested topology first).
    pub candidates: Vec<Candidate>,
    /// Sizing-cache hits attributable to this sweep (`0` without a
    /// cache), recorded by a per-sweep [`crate::CacheStats`] sink the
    /// engine threads through every candidate's options. Attribution is
    /// *exact* even when concurrent sweeps share one `Arc<SizingCache>`
    /// (the serve workload): each sweep counts only its own lookups,
    /// never a sibling's.
    ///
    /// [`crate::variation_sweep`] re-measures never count here: a
    /// variation sweep performs zero sizing-cache lookups by
    /// construction (it bypasses the sizer entirely), so these numbers
    /// stay comparable across runs regardless of how many Monte-Carlo
    /// samples were drawn afterwards — the cache-correctness suite pins
    /// the zero-traffic property.
    pub cache_hits: usize,
    /// Sizing-cache misses attributable to this sweep (`0` without a
    /// cache). Same exact per-sweep attribution as
    /// [`Exploration::cache_hits`].
    pub cache_misses: usize,
    /// Rows replayed from a sweep checkpoint
    /// ([`crate::SizingOptions::checkpoint`]) instead of recomputed —
    /// `0` without a checkpoint or when the fingerprint did not match.
    pub resumed: usize,
}

impl Exploration {
    /// The feasible candidate with the lowest total width (the default
    /// area/power proxy the paper reports). Uses a total order, so a rogue
    /// NaN metric cannot panic the comparison — it simply ranks last.
    pub fn best_by_width(&self) -> Option<&Candidate> {
        best_by(&self.candidates, |m| m.outcome.total_width)
    }

    /// The feasible candidate with the lowest total power.
    pub fn best_by_power(&self) -> Option<&Candidate> {
        best_by(&self.candidates, |m| m.power.total())
    }

    /// Number of candidates that met the constraints.
    pub fn feasible_count(&self) -> usize {
        self.candidates.iter().filter(|c| c.result.is_ok()).count()
    }

    /// Failure-taxonomy histogram of the non-feasible rows:
    /// `(tag, count)` pairs sorted by tag — the robustness report column.
    pub fn failure_taxonomy(&self) -> Vec<(&'static str, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for c in &self.candidates {
            if let Err(e) = &c.result {
                *counts.entry(e.taxonomy()).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// The explicit account of how degraded this sweep was: what
    /// survived, what was lost to which failure class, what was salvaged
    /// from a checkpoint. A sweep that lost candidates *salvages* the
    /// survivors instead of returning nothing — this report is the honest
    /// label on that partial result.
    pub fn degradation(&self) -> DegradationReport {
        DegradationReport {
            total: self.candidates.len(),
            feasible: self.feasible_count(),
            failed: self.candidates.len() - self.feasible_count(),
            resumed: self.resumed,
            taxonomy: self.failure_taxonomy(),
        }
    }
}

/// Summary of a sweep's partial-failure state — see
/// [`Exploration::degradation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationReport {
    /// Rows in the table (one per alternative, always).
    pub total: usize,
    /// Rows that produced a sized, feasible candidate.
    pub feasible: usize,
    /// Rows disqualified by a classified failure.
    pub failed: usize,
    /// Rows replayed from a checkpoint instead of recomputed.
    pub resumed: usize,
    /// `(taxonomy tag, count)` of the failed rows, sorted by tag.
    pub taxonomy: Vec<(&'static str, usize)>,
}

impl DegradationReport {
    /// Whether the sweep degraded at all (any failed row).
    pub fn is_degraded(&self) -> bool {
        self.failed > 0
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} candidates survived ({} resumed from checkpoint)",
            self.feasible, self.total, self.resumed
        )?;
        if self.failed > 0 {
            write!(f, "; lost {}:", self.failed)?;
            for (tag, n) in &self.taxonomy {
                write!(f, " {tag}\u{d7}{n}")?;
            }
        }
        Ok(())
    }
}

/// Minimum over the feasible candidates on `key`, NaN-tolerant
/// (`f64::total_cmp` ranks NaN above every real value). Ties break toward
/// the lower candidate index *explicitly*: database order is a designer
/// preference (requested topology first), and the winner must not depend
/// on iterator internals — the differential harness compares winners by
/// index across worker counts.
fn best_by(candidates: &[Candidate], key: impl Fn(&CandidateMetrics) -> f64) -> Option<&Candidate> {
    candidates
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.result.as_ref().ok().map(|m| (i, c, key(m))))
        .min_by(|(ia, _, a), (ib, _, b)| a.total_cmp(b).then(ia.cmp(ib)))
        .map(|(_, c, _)| c)
}

/// Sizes one elaborated circuit and collects its metrics.
pub fn size_and_measure(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<CandidateMetrics, FlowError> {
    let outcome = size_circuit(circuit, lib, boundary, spec, opts)?;
    let clock_load = circuit.clock_load(&outcome.sizing);
    let power = estimate(circuit, lib, &outcome.sizing, &ActivityProfile::default());
    Ok(CandidateMetrics {
        clock_load,
        power,
        devices: circuit.device_count(),
        outcome,
    })
}

/// The exploration lint gate: electrically illegal candidates are
/// rejected *before* any GP solve or cache lookup, so no sizing effort —
/// not even a memoization probe — is spent on them. Pure function of the
/// candidate circuit, so it cannot perturb the parallel determinism
/// contract (DESIGN.md §9).
fn lint_gate(circuit: &Circuit, alt: &MacroSpec, opts: &SizingOptions) -> Result<(), FlowError> {
    if opts.lint == LintGate::Off {
        return Ok(());
    }
    // Chaos seam: a panic *inside a lint rule*. It unwinds into the same
    // per-candidate boundary as a generator panic, so the row classifies
    // as `FlowError::Internal` and the sweep continues — the containment
    // the chaos suite pins. (With the gate off this seam never runs, so
    // the fault does not manifest and records no injection.)
    if let Some(plan) = opts.chaos.as_deref() {
        if plan.fires_here(FaultSite::LintPanic) {
            plan.record(FaultSite::LintPanic);
            smart_trace::emit("chaos/inject", &[("site", FaultSite::LintPanic.name().into())]);
            panic!("chaos: injected lint-rule panic");
        }
    }
    let report = smart_lint::lint_circuit(circuit);
    smart_trace::emit_with("lint/gate", || {
        vec![
            ("findings", report.findings.len().into()),
            ("errors", report.errors().into()),
            ("rejected", report.has_errors().into()),
        ]
    });
    if report.has_errors() {
        return Err(FlowError::Lint {
            candidate: alt.to_string(),
            errors: report.errors(),
            findings: report
                .findings
                .iter()
                .filter(|f| f.severity == smart_lint::Severity::Error)
                .map(|f| f.to_string())
                .collect(),
        });
    }
    Ok(())
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Whether the chaos plan kills the pool worker *after* it computed
/// candidate `idx` but *before* it could report the row (or record it to
/// the checkpoint — a dead worker persists nothing). Consulted both here
/// and at slot assembly; the decision is pure, so both sites agree.
fn chaos_worker_death(opts: &SizingOptions, idx: usize) -> bool {
    opts.chaos
        .as_deref()
        .is_some_and(|plan| plan.fires(FaultSite::WorkerDeath, idx as u64))
}

/// The complete, self-contained evaluation of candidate `idx`: budget
/// gates, checkpoint replay, elaboration boundary, sizing boundary.
/// Everything a row depends on is in the arguments — no sweep-global
/// mutable state — which is what lets the parallel sweep run candidates
/// on any worker and still match the serial table byte for byte.
#[allow(clippy::too_many_arguments)]
fn run_candidate<F>(
    idx: usize,
    sweep: u64,
    alt: &MacroSpec,
    generate: &F,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    resumed: Option<&BTreeMap<usize, SizingOutcome>>,
    replayed: &AtomicUsize,
) -> Candidate
where
    F: Fn(&MacroSpec) -> Circuit,
{
    // The candidate scope: a stable identity `(sweep, index)` that every
    // deeper layer (sizing, cache, GP, STA) records into via the
    // thread-local context — a candidate runs wholly on one worker. The
    // scope's identity, not the worker, orders the merged trace, which is
    // what keeps the export byte-stable across `SMART_WORKERS` settings.
    let scope = opts.trace.scope("candidate", sweep, idx as u64);
    let guard = scope.enter();
    // The chaos scope mirrors it: deep seams (sizing, cache, GP retry)
    // learn the candidate identity from the thread-local, so fault
    // decisions key on the candidate — never on the worker or call order.
    let _chaos = smart_chaos::candidate_scope(idx as u64);
    if scope.is_enabled() {
        scope.begin(
            "candidate",
            &[("index", idx.into()), ("spec", alt.to_string().into())],
        );
    }
    let row = run_candidate_inner(idx, alt, generate, lib, boundary, spec, opts, resumed, replayed);
    // Persist the completed row (successful rows only — failures may be
    // budget-dependent and are recomputed on resume). A chaos-killed
    // worker dies before reporting, so it must also die before
    // persisting.
    if let (Some(ckpt), Ok(m)) = (opts.checkpoint.as_deref(), &row.result) {
        if !chaos_worker_death(opts, idx) {
            ckpt.record(idx, &m.outcome);
        }
    }
    drop(guard);
    if scope.is_enabled() {
        let fields: Vec<(&'static str, smart_trace::Value)> = match &row.result {
            Ok(m) => vec![
                ("outcome", "ok".into()),
                ("delay_ps", m.outcome.measured_delay.into()),
                ("width", m.outcome.total_width.into()),
                ("iterations", m.outcome.iterations.into()),
            ],
            Err(e) => vec![("outcome", e.taxonomy().into())],
        };
        scope.end("candidate", &fields);
    }
    row
}

/// The traced body of [`run_candidate`]: budget gates, checkpoint
/// replay, elaboration boundary, sizing boundary.
#[allow(clippy::too_many_arguments)]
fn run_candidate_inner<F>(
    idx: usize,
    alt: &MacroSpec,
    generate: &F,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    resumed: Option<&BTreeMap<usize, SizingOutcome>>,
    replayed: &AtomicUsize,
) -> Candidate
where
    F: Fn(&MacroSpec) -> Circuit,
{
    if let Some(cap) = opts.budget.max_candidates {
        if idx >= cap {
            return Candidate {
                spec: alt.clone(),
                circuit: None,
                result: Err(FlowError::BudgetExceeded {
                    what: "candidates",
                    detail: format!("candidate {} beyond cap {cap}", idx + 1),
                }),
            };
        }
    }
    // A sweep-wide cancellation (shared token tripped before this
    // candidate started) skips elaboration entirely; the row mirrors the
    // candidate-cap row above. A token that trips *mid*-candidate is
    // caught by the flow/GP-level checks inside `size_and_measure`.
    if opts.budget.is_cancelled() {
        return Candidate {
            spec: alt.clone(),
            circuit: None,
            result: Err(FlowError::BudgetExceeded {
                what: "cancelled",
                detail: format!("sweep cancelled before candidate {}", idx + 1),
            }),
        };
    }
    // Chaos seam: spurious cancellation — this candidate alone observes a
    // tripped token that never fired. Must classify exactly like a real
    // pre-candidate cancellation (a budget row), without touching the
    // shared token (which would cancel innocent candidates).
    if let Some(plan) = opts.chaos.as_deref() {
        if plan.fires(FaultSite::SpuriousCancel, idx as u64) {
            plan.record(FaultSite::SpuriousCancel);
            smart_trace::emit("chaos/inject", &[
                ("site", FaultSite::SpuriousCancel.name().into()),
            ]);
            return Candidate {
                spec: alt.clone(),
                circuit: None,
                result: Err(FlowError::BudgetExceeded {
                    what: "cancelled",
                    detail: format!("chaos: spurious cancellation before candidate {}", idx + 1),
                }),
            };
        }
    }
    // Checkpoint replay: a row completed by an earlier interrupted run of
    // this exact sweep (fingerprint-matched) skips sizing entirely; only
    // the cheap deterministic metrics are re-derived from the stored
    // widths. Placed after the budget gates so a capped or cancelled
    // sweep renders identically whether or not a checkpoint exists.
    if let Some(outcome) = resumed.and_then(|rows| rows.get(&idx)) {
        replayed.fetch_add(1, Ordering::Relaxed);
        smart_trace::emit("candidate/resumed", &[("index", idx.into())]);
        let circuit = match catch_unwind(AssertUnwindSafe(|| generate(alt))) {
            Ok(c) => c,
            Err(payload) => {
                return Candidate {
                    result: Err(FlowError::Internal {
                        candidate: alt.to_string(),
                        panic_msg: panic_message(payload),
                    }),
                    spec: alt.clone(),
                    circuit: None,
                };
            }
        };
        let metrics = CandidateMetrics {
            clock_load: circuit.clock_load(&outcome.sizing),
            power: estimate(&circuit, lib, &outcome.sizing, &ActivityProfile::default()),
            devices: circuit.device_count(),
            outcome: outcome.clone(),
        };
        return Candidate {
            spec: alt.clone(),
            circuit: Some(circuit),
            result: Ok(metrics),
        };
    }
    // Elaboration boundary: a panicking generator yields an error row.
    // The chaos candidate-panic seam sits inside the boundary, so an
    // injected panic exercises exactly the containment path a real
    // pathological generator would.
    let circuit = match catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = opts.chaos.as_deref() {
            if plan.fires(FaultSite::CandidatePanic, idx as u64) {
                plan.record(FaultSite::CandidatePanic);
                smart_trace::emit("chaos/inject", &[
                    ("site", FaultSite::CandidatePanic.name().into()),
                ]);
                panic!("chaos: injected candidate panic at elaboration");
            }
        }
        generate(alt)
    })) {
        Ok(c) => c,
        Err(payload) => {
            return Candidate {
                result: Err(FlowError::Internal {
                    candidate: alt.to_string(),
                    panic_msg: panic_message(payload),
                }),
                spec: alt.clone(),
                circuit: None,
            };
        }
    };
    // Sizing boundary: a panic anywhere in lint / compaction / GP / STA /
    // power for this candidate is contained the same way. The lint gate
    // runs first, inside the boundary, so an illegal candidate is a typed
    // `FlowError::Lint` row and zero sizing work (no GP iterations, no
    // cache lookups) is spent on it.
    let result = match catch_unwind(AssertUnwindSafe(|| {
        lint_gate(&circuit, alt, opts)
            .and_then(|()| size_and_measure(&circuit, lib, boundary, spec, opts))
    })) {
        Ok(r) => r,
        Err(payload) => Err(FlowError::Internal {
            candidate: alt.to_string(),
            panic_msg: panic_message(payload),
        }),
    };
    Candidate {
        spec: alt.clone(),
        circuit: Some(circuit),
        result,
    }
}

/// Runs the Fig.-1 exploration: every database alternative of `request`
/// is elaborated, sized under the same instance constraints and measured.
///
/// Never panics on a bad candidate and never returns early: the table
/// always has one row per alternative, failed rows carrying the typed
/// error that disqualified them.
///
/// Parallelism comes from the environment ([`ParallelOptions::from_env`]:
/// `SMART_WORKERS` / `SMART_CHUNK`); use [`explore_parallel`] to set it
/// explicitly.
pub fn explore(
    request: &MacroSpec,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Exploration {
    explore_parallel(request, lib, boundary, spec, opts, &env_parallel(opts))
}

/// Resolves environment parallelism for the `from_env` exploration entry
/// points, recording any set-but-unusable knob (garbage or `0`) into the
/// options' trace as a `pool/env-fallback` event — a misconfigured
/// `SMART_WORKERS` must be visible, not silently serial.
fn env_parallel(opts: &SizingOptions) -> ParallelOptions {
    let (par, fallbacks) = ParallelOptions::from_env_lookup(|n| std::env::var(n).ok());
    if opts.trace.is_enabled() && !fallbacks.is_empty() {
        let scope = opts.trace.scope("pool", opts.trace.next_id(), 0);
        let _g = scope.enter();
        for f in &fallbacks {
            f.emit();
        }
    }
    par
}

/// [`explore`] with explicit parallelism. The result is byte-identical
/// for every `par` (see DESIGN.md §9 for the determinism contract).
pub fn explore_parallel(
    request: &MacroSpec,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    par: &ParallelOptions,
) -> Exploration {
    // Requested topology first, then the alternatives.
    let mut alts = request.alternatives();
    if let Some(pos) = alts.iter().position(|s| s == request) {
        alts.swap(0, pos);
    }
    explore_with_parallel(alts, MacroSpec::generate, lib, boundary, spec, opts, par)
}

/// The exploration engine behind [`explore`], with an injectable
/// elaborator. Designer databases with custom generators (paper §3(i))
/// plug in here; tests use it to inject pathological candidates and prove
/// the sweep survives them.
///
/// Parallelism comes from the environment ([`ParallelOptions::from_env`]);
/// use [`explore_with_parallel`] to set it explicitly. The generator must
/// be `Sync` because workers share it — generators are pure spec→netlist
/// elaborators, so this is no burden in practice.
pub fn explore_with<F>(
    specs: Vec<MacroSpec>,
    generate: F,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Exploration
where
    F: Fn(&MacroSpec) -> Circuit + Sync,
{
    let par = env_parallel(opts);
    explore_with_parallel(specs, generate, lib, boundary, spec, opts, &par)
}

/// [`explore_with`] with explicit parallelism: candidates fan out across
/// the worker pool and the table is reassembled in candidate-index order,
/// byte-identical to the serial sweep.
#[allow(clippy::too_many_arguments)]
pub fn explore_with_parallel<F>(
    specs: Vec<MacroSpec>,
    generate: F,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    par: &ParallelOptions,
) -> Exploration
where
    F: Fn(&MacroSpec) -> Circuit + Sync,
{
    // Sweep ids come from the collector's serial id source, allocated
    // here — before any worker runs — so candidate scope identities are
    // unique and the merged trace is deterministic (DESIGN.md §9 extended
    // to observability).
    let sweep_id = opts.trace.next_id();
    let sweep = opts.trace.scope("sweep", sweep_id, 0);
    sweep.begin("sweep", &[("candidates", specs.len().into())]);
    // Worker count legitimately differs run to run; keep it out of the
    // byte-stable export.
    sweep.emit_unstable("sweep/pool", &[("workers", par.workers.into())]);
    // Per-sweep cache attribution: a fresh sink owned by this sweep alone,
    // injected into the options every candidate sizes under. Deltas of the
    // cache's global counters would absorb concurrent sibling sweeps'
    // traffic (the bug this replaced); the sink counts exactly this
    // sweep's lookups. A caller-provided sink is preserved — it then
    // aggregates this sweep into whatever scope the caller is measuring.
    let sweep_stats;
    let opts = if opts.cache.is_some() && opts.cache_stats.is_none() {
        sweep_stats = SizingOptions {
            cache_stats: Some(std::sync::Arc::new(crate::CacheStats::new())),
            ..opts.clone()
        };
        &sweep_stats
    } else {
        opts
    };
    // Bind the checkpointer (if any) to this sweep's fingerprint and pull
    // in whatever a previous interrupted run of the *same* sweep saved.
    let ckpt = opts.checkpoint.as_deref().map(|c| {
        let fingerprint = crate::checkpoint::sweep_fingerprint(&specs, lib, boundary, spec, opts);
        let rows = c.begin(fingerprint);
        sweep.emit("sweep/checkpoint", &[
            ("resumable_rows", rows.len().into()),
            ("fingerprint", format!("{fingerprint:016x}").into()),
        ]);
        (c, rows)
    });
    let resumed_rows = ckpt.as_ref().map(|(_, rows)| rows);
    let replayed = AtomicUsize::new(0);
    let rows = run_indexed(specs.len(), par, |i| {
        run_candidate(
            i, sweep_id, &specs[i], &generate, lib, boundary, spec, opts, resumed_rows, &replayed,
        )
    });
    let candidates = rows
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            // Chaos seam: worker death — the row was computed but its
            // worker dies before reporting the slot, exactly what a real
            // pool-thread kill produces (a `None` slot). Recorded here, on
            // the assembling thread, so injection counters are updated
            // once regardless of worker count.
            let slot = match (slot, opts.chaos.as_deref()) {
                (Some(row), Some(plan)) if plan.fires(FaultSite::WorkerDeath, i as u64) => {
                    plan.record(FaultSite::WorkerDeath);
                    sweep.emit("chaos/inject", &[
                        ("site", FaultSite::WorkerDeath.name().into()),
                        ("index", i.into()),
                    ]);
                    drop(row);
                    None
                }
                (slot, _) => slot,
            };
            // `run_candidate` already contains every panic inside the row,
            // so an empty slot means the pool worker itself was killed —
            // keep the one-row-per-alternative invariant regardless.
            slot.unwrap_or_else(|| Candidate {
                spec: specs[i].clone(),
                circuit: None,
                result: Err(FlowError::Internal {
                    candidate: specs[i].to_string(),
                    panic_msg: "exploration worker lost".to_owned(),
                }),
            })
        })
        .collect();
    if let Some((c, _)) = &ckpt {
        c.flush();
    }
    let exploration = Exploration {
        candidates,
        cache_hits: opts.cache_stats.as_deref().map_or(0, crate::CacheStats::hits),
        cache_misses: opts.cache_stats.as_deref().map_or(0, crate::CacheStats::misses),
        resumed: replayed.load(Ordering::Relaxed),
    };
    sweep.end(
        "sweep",
        &[
            ("feasible", exploration.feasible_count().into()),
            ("cache_hits", exploration.cache_hits.into()),
            ("cache_misses", exploration.cache_misses.into()),
            ("resumed", exploration.resumed.into()),
        ],
    );
    exploration
}
