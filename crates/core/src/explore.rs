//! Topology exploration — the paper's Fig. 1 flow: elaborate every
//! database alternative for the requested function, size each under the
//! instance constraints, and compare on the cost metric, letting the tool
//! pick the best or the designer inspect the whole table (the Fig. 7
//! experiment is exactly one run of this).

use smart_models::ModelLibrary;
use smart_netlist::Circuit;
use smart_power::{estimate, ActivityProfile, PowerReport};
use smart_sta::Boundary;

use smart_macros::MacroSpec;

use crate::sizing::{size_circuit, SizingOutcome};
use crate::{DelaySpec, FlowError, SizingOptions};

/// Quality metrics of one sized candidate.
#[derive(Debug)]
pub struct CandidateMetrics {
    /// The sizing outcome (widths, measured delay, iteration counts).
    pub outcome: SizingOutcome,
    /// Total gate width on clock nets — the paper's clock-load metric.
    pub clock_load: f64,
    /// Switching-power estimate.
    pub power: PowerReport,
    /// Transistor count of the topology.
    pub devices: usize,
}

/// One explored candidate: the spec, its circuit, and either metrics or
/// the failure that disqualified it (e.g. the topology cannot meet the
/// delay).
#[derive(Debug)]
pub struct Candidate {
    /// The macro spec of this alternative.
    pub spec: MacroSpec,
    /// The elaborated circuit.
    pub circuit: Circuit,
    /// Sized metrics, or why sizing failed.
    pub result: Result<CandidateMetrics, FlowError>,
}

/// The full exploration table.
#[derive(Debug)]
pub struct Exploration {
    /// All candidates in database order (requested topology first).
    pub candidates: Vec<Candidate>,
}

impl Exploration {
    /// The feasible candidate with the lowest total width (the default
    /// area/power proxy the paper reports).
    pub fn best_by_width(&self) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.result.is_ok())
            .min_by(|a, b| {
                let wa = a.result.as_ref().unwrap().outcome.total_width;
                let wb = b.result.as_ref().unwrap().outcome.total_width;
                wa.partial_cmp(&wb).expect("widths are finite")
            })
    }

    /// The feasible candidate with the lowest total power.
    pub fn best_by_power(&self) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.result.is_ok())
            .min_by(|a, b| {
                let pa = a.result.as_ref().unwrap().power.total();
                let pb = b.result.as_ref().unwrap().power.total();
                pa.partial_cmp(&pb).expect("powers are finite")
            })
    }

    /// Number of candidates that met the constraints.
    pub fn feasible_count(&self) -> usize {
        self.candidates.iter().filter(|c| c.result.is_ok()).count()
    }
}

/// Sizes one elaborated circuit and collects its metrics.
pub fn size_and_measure(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<CandidateMetrics, FlowError> {
    let outcome = size_circuit(circuit, lib, boundary, spec, opts)?;
    let clock_load = circuit.clock_load(&outcome.sizing);
    let power = estimate(circuit, lib, &outcome.sizing, &ActivityProfile::default());
    Ok(CandidateMetrics {
        clock_load,
        power,
        devices: circuit.device_count(),
        outcome,
    })
}

/// Runs the Fig.-1 exploration: every database alternative of `request`
/// is elaborated, sized under the same instance constraints and measured.
pub fn explore(
    request: &MacroSpec,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Exploration {
    let mut candidates = Vec::new();
    // Requested topology first, then the alternatives.
    let mut alts = request.alternatives();
    if let Some(pos) = alts.iter().position(|s| s == request) {
        alts.swap(0, pos);
    }
    for alt in alts {
        let circuit = alt.generate();
        let result = size_and_measure(&circuit, lib, boundary, spec, opts);
        candidates.push(Candidate {
            spec: alt,
            circuit,
            result,
        });
    }
    Exploration { candidates }
}
