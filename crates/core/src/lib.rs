//! SMART — Smart Macro Design Advisor.
//!
//! The primary contribution of Nemani & Tiwari, *"Macro-Driven Circuit
//! Design Methodology for High-Performance Datapaths"* (DAC 2000): an
//! advisory flow that takes a datapath macro instance with its local
//! constraints (delays, slopes, loads), sizes every candidate topology
//! from the design database with a posynomial/geometric-programming
//! engine, and compares the sized solutions on a designer-chosen cost
//! metric.
//!
//! Pipeline (paper Figs. 1 & 4):
//!
//! 1. [`fn@compact`] — path extraction + compaction: regularity merging,
//!    worst-pin modeling and fanout dominance collapse the exhaustive path
//!    set (e.g. >32,000 on a 64-bit dynamic adder, §5.2) to a small sound
//!    constraint set.
//! 2. [`constraints`] — posynomial timing / slope / size / noise
//!    constraint generation over the label-width variables, with designer
//!    pins; domino paths are timed end-to-end across stage boundaries,
//!    giving automatic Opportunistic Time Borrowing.
//! 3. [`size_circuit`] — the GP-solve → STA-verify → retarget loop.
//! 4. [`explore`] — Fig.-1 topology exploration over database
//!    alternatives, reporting width / power / clock load per candidate.
//! 5. [`baseline_sizing`] — the deterministic "hand designed original"
//!    model that the reproduction's experiments compare against (see
//!    DESIGN.md's substitution table).
//!
//! # Quickstart
//!
//! ```
//! use smart_core::{size_circuit, DelaySpec, SizingOptions};
//! use smart_macros::{MacroSpec, MuxTopology};
//! use smart_models::ModelLibrary;
//! use smart_sta::Boundary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = MacroSpec::Mux {
//!     topology: MuxTopology::StronglyMutexedPass,
//!     width: 4,
//! }
//! .generate();
//! let lib = ModelLibrary::reference();
//! let mut boundary = Boundary::default();
//! boundary.output_loads.insert("y".into(), 20.0);
//!
//! let outcome = size_circuit(
//!     &circuit,
//!     &lib,
//!     &boundary,
//!     &DelaySpec::uniform(220.0),
//!     &SizingOptions::default(),
//! )?;
//! assert!(outcome.measured_delay <= 220.0 * 1.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
pub mod cache;
pub mod checkpoint;
pub mod compact;
pub mod constraints;
mod error;
mod explore;
mod noise;
mod persist;
pub mod pool;
mod report;
mod sizing;
mod spec;
pub mod tune;
mod variation;

pub use baseline::{baseline_sizing, BaselineMargins};
pub use cache::{cache_key, CacheKey, CacheStats, SizingCache};
pub use checkpoint::{sweep_fingerprint, Checkpointer};
pub use compact::{compact, CapVec, Compaction, PathClass};
pub use error::FlowError;
pub use explore::{
    explore, explore_parallel, explore_with, explore_with_parallel, size_and_measure, Candidate,
    CandidateMetrics, DegradationReport, Exploration,
};
pub use noise::{analyze_noise, DynamicNodeNoise, NoiseReport};
pub use pool::{run_indexed, EnvFallback, ParallelOptions};
pub use report::{exploration_report, sizing_report};
pub use sizing::{
    compaction_stats, measure_phase_delays, minimize_delay, size_circuit, CornerDelay,
    SizingOutcome,
};
pub use sizing::audit_circuit;
pub use spec::{AuditGate, CostMetric, DelaySpec, FlowBudget, LintGate, SizingOptions};
pub use variation::{variation_sweep, VariationOptions, VariationReport, VariationSample};
pub use tune::{tune_comparator_grouping, tune_partition_point, TuneCandidate, TuneSweep};
