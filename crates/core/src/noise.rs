//! Dynamic-node noise analysis — the advisory report behind the paper's
//! §2 requirement that "the designer should be allowed to control
//! transistor sizes of portions of the macro ... to improve the noise
//! immunity of the circuit based on the local operating conditions".
//!
//! For every dynamic node the report computes:
//!
//! * **leakage ratio** — total off-path pull-down width over precharge
//!   width (each parallel branch leaks; the precharge must hold the node);
//! * **charge-sharing exposure** — internal stack capacitance that can
//!   redistribute onto the node when a partial path turns on, as a
//!   fraction of the node's total capacitance;
//! * **coupling exposure** — the node's capacitance relative to the
//!   weakest restoring drive (big floating nodes with weak keepers are
//!   aggressor-coupling victims).
//!
//! The flow's GP enforces a leakage floor (`constraints.rs`); this module
//! is the *observability* side: where the margins are, so the designer
//! can pin sizes before re-running, which `SizingOptions::pinned` then
//! honors.

use smart_models::ModelLibrary;
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Sizing};

/// Noise metrics of one dynamic node.
#[derive(Debug, Clone)]
pub struct DynamicNodeNoise {
    /// Instance path of the domino gate owning the node.
    pub gate: String,
    /// Net name of the dynamic node.
    pub node: String,
    /// Σ(data width × parallel branches) / precharge width.
    pub leakage_ratio: f64,
    /// Internal stack junction capacitance / total node capacitance.
    pub charge_sharing: f64,
    /// Node capacitance per unit of precharge width (restoring drive).
    pub cap_per_drive: f64,
}

impl DynamicNodeNoise {
    /// Whether the node violates the given leakage-ratio limit.
    pub fn leaky(&self, limit: f64) -> bool {
        self.leakage_ratio > limit
    }
}

/// Noise report over a sized circuit.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    /// One entry per dynamic node, worst leakage first.
    pub nodes: Vec<DynamicNodeNoise>,
}

impl NoiseReport {
    /// Nodes exceeding `limit` leakage ratio.
    pub fn violations(&self, limit: f64) -> impl Iterator<Item = &DynamicNodeNoise> {
        self.nodes.iter().filter(move |n| n.leaky(limit))
    }

    /// The worst node, if any dynamic nodes exist.
    pub fn worst(&self) -> Option<&DynamicNodeNoise> {
        self.nodes.first()
    }
}

/// Analyzes every dynamic node of `circuit` under `sizing`.
pub fn analyze_noise(circuit: &Circuit, lib: &ModelLibrary, sizing: &Sizing) -> NoiseReport {
    let mut nodes = Vec::new();
    for (_, comp) in circuit.components() {
        let ComponentKind::Domino { ref network, .. } = comp.kind else {
            continue;
        };
        let out = comp.output_net();
        if circuit.net(out).kind != NetKind::Dynamic {
            continue;
        }
        let w_pre = sizing.width(comp.label_of(DeviceRole::Precharge));
        let w_data = sizing.width(comp.label_of(DeviceRole::DataN));
        let branches = network.top_branch_count() as f64;
        let devices = network.device_count() as f64;
        let node_cap = lib.net_cap(circuit, out, sizing);
        // Junction cap of stack devices NOT on the node (the charge-
        // sharing reservoir): every device below the top row.
        let internal_devices = (devices - branches).max(0.0);
        let internal_cap = internal_devices * w_data * lib.process().diff_factor;
        nodes.push(DynamicNodeNoise {
            gate: comp.path.clone(),
            node: circuit.net(out).name.clone(),
            leakage_ratio: branches * w_data / w_pre,
            charge_sharing: internal_cap / (internal_cap + node_cap),
            cap_per_drive: node_cap / w_pre,
        });
    }
    nodes.sort_by(|a, b| b.leakage_ratio.total_cmp(&a.leakage_ratio));
    NoiseReport { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{size_circuit, DelaySpec, SizingOptions};
    use smart_macros::{MacroSpec, MuxTopology};
    use smart_sta::Boundary;

    fn sized_mux(width: usize) -> (smart_netlist::Circuit, Sizing) {
        let circuit = MacroSpec::Mux {
            topology: MuxTopology::UnsplitDomino,
            width,
        }
        .generate();
        let lib = ModelLibrary::reference();
        let mut boundary = Boundary::default();
        boundary.output_loads.insert("y".into(), 15.0);
        let out = size_circuit(
            &circuit,
            &lib,
            &boundary,
            &DelaySpec::uniform(320.0),
            &SizingOptions::default(),
        )
        .unwrap();
        (circuit, out.sizing)
    }

    #[test]
    fn wider_muxes_are_leakier() {
        let lib = ModelLibrary::reference();
        let (c4, s4) = sized_mux(4);
        let (c12, s12) = sized_mux(12);
        let r4 = analyze_noise(&c4, &lib, &s4);
        let r12 = analyze_noise(&c12, &lib, &s12);
        assert_eq!(r4.nodes.len(), 1);
        assert_eq!(r12.nodes.len(), 1);
        assert!(
            r12.worst().unwrap().leakage_ratio > r4.worst().unwrap().leakage_ratio,
            "12-way: {} vs 4-way: {}",
            r12.worst().unwrap().leakage_ratio,
            r4.worst().unwrap().leakage_ratio
        );
        // The GP's leakage floor keeps the ratio bounded.
        assert!(r12.worst().unwrap().leakage_ratio <= 1.0 / 0.08 + 1e-6);
    }

    #[test]
    fn static_circuits_have_no_dynamic_nodes() {
        let circuit = MacroSpec::Decoder { in_bits: 3 }.generate();
        let lib = ModelLibrary::reference();
        let sizing = Sizing::uniform(circuit.labels(), 2.0);
        let report = analyze_noise(&circuit, &lib, &sizing);
        assert!(report.nodes.is_empty());
        assert!(report.worst().is_none());
    }

    #[test]
    fn pinning_the_precharge_reduces_leakage_ratio() {
        let circuit = MacroSpec::Mux {
            topology: MuxTopology::UnsplitDomino,
            width: 8,
        }
        .generate();
        let lib = ModelLibrary::reference();
        let mut boundary = Boundary::default();
        boundary.output_loads.insert("y".into(), 15.0);
        let base = size_circuit(
            &circuit,
            &lib,
            &boundary,
            &DelaySpec::uniform(320.0),
            &SizingOptions::default(),
        )
        .unwrap();
        let base_ratio = analyze_noise(&circuit, &lib, &base.sizing)
            .worst()
            .unwrap()
            .leakage_ratio;
        // Designer pins a beefier precharge after reading the report.
        let mut opts = SizingOptions::default();
        let w_pre = base.sizing.width(circuit.labels().lookup("P1").unwrap());
        opts.pinned.insert("P1".into(), w_pre * 2.0);
        let pinned = size_circuit(
            &circuit,
            &lib,
            &boundary,
            &DelaySpec::uniform(320.0),
            &opts,
        )
        .unwrap();
        let pinned_ratio = analyze_noise(&circuit, &lib, &pinned.sizing)
            .worst()
            .unwrap()
            .leakage_ratio;
        assert!(
            pinned_ratio < base_ratio,
            "pinned {pinned_ratio} vs base {base_ratio}"
        );
    }

    #[test]
    fn charge_sharing_is_a_fraction() {
        let lib = ModelLibrary::reference();
        let (c, s) = sized_mux(8);
        let report = analyze_noise(&c, &lib, &s);
        for n in &report.nodes {
            assert!((0.0..1.0).contains(&n.charge_sharing), "{n:?}");
            assert!(n.cap_per_drive > 0.0);
        }
        // Violations iterator honors the limit.
        let all: Vec<_> = report.violations(0.0).collect();
        assert_eq!(all.len(), report.nodes.len());
        let none: Vec<_> = report.violations(1e9).collect();
        assert!(none.is_empty());
    }
}
