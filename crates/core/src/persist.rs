//! Shared byte-stable persistence primitives for the flow's on-disk
//! artifacts — sweep checkpoints ([`crate::Checkpointer`]) and sizing-cache
//! snapshots ([`crate::SizingCache::snapshot`]).
//!
//! Both formats follow the same discipline: every `f64` is encoded as the
//! 16-hex-digit big-endian bit pattern of `f64::to_bits` (decimal
//! formatting would round-trip imprecisely and is locale-adjacent; bit
//! patterns are exact and grep-able), `u128` path counts as 32 hex digits,
//! and the loader accepts exactly the writer's canonical form — anything
//! else (truncated write, hand edit, non-finite width bits) degrades to
//! "no data", never to an error that could take down the flow that tried
//! to read it. Keeping one renderer/parser pair here guarantees a
//! checkpoint row and a cache entry serialize a [`SizingOutcome`]
//! identically, so the byte-stability tests of either format cover both.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use smart_netlist::Sizing;

use crate::sizing::{CornerDelay, SizingOutcome};

/// Canonical 16-hex-digit rendering of a `u64` (and, via `to_bits`, of an
/// `f64` bit pattern).
pub(crate) fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Process-wide counter distinguishing concurrent writers *within* one
/// process; the pid distinguishes writers *across* processes. Together
/// they make every in-flight temp file name unique, so two writers racing
/// on the same target path (two serve requests, two processes resuming
/// the same sweep) can never truncate or rename each other's partial file
/// — each rename atomically publishes a complete file.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The unique temp path for one atomic-write attempt. Lives next to the
/// target so the rename stays within one filesystem.
pub(crate) fn unique_tmp(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!("tmp.{}.{n}", std::process::id()))
}

/// Atomically replaces `path` with `contents` via a uniquely named temp
/// file + rename; a failed attempt cleans up its temp file and reports the
/// error (callers decide whether persistence failure is fatal — for
/// checkpoints it never is).
pub(crate) fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = unique_tmp(path);
    match std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Renders the canonical field sequence of one [`SizingOutcome`]:
/// `"iters":… ,"paths":… ,"restarts":… ,"raw_paths":… ,"delay":… ,
/// "precharge":… ,"width":… ,"relax":… ,"binding":… ,"corners":[…],
/// "sizing":[…]` — no surrounding braces, so callers can prepend their own
/// key fields (`"idx"` for checkpoints, `"key"` for cache snapshots).
pub(crate) fn render_outcome_fields(s: &mut String, row: &SizingOutcome) {
    let _ = write!(
        s,
        "\"iters\":{},\"paths\":{},\"restarts\":{},\"raw_paths\":\"{:032x}\",\
         \"delay\":\"{}\",\"precharge\":\"{}\",\"width\":\"{}\",\"relax\":\"{}\",\
         \"binding\":\"{}\",\"corners\":[",
        row.iterations,
        row.constraint_paths,
        row.gp_restarts,
        row.raw_paths,
        hex64(row.measured_delay.to_bits()),
        hex64(row.measured_precharge.to_bits()),
        hex64(row.total_width.to_bits()),
        hex64(row.spec_relaxation.to_bits()),
        row.binding_corner,
    );
    for (k, c) in row.corner_delays.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        // Corner names are serialized verbatim; a name containing `"`
        // or `\` produces a non-canonical file that the loader rejects
        // wholesale ("no data") — such names never round-trip, they can
        // never corrupt a restore.
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"data\":\"{}\",\"pre\":\"{}\"}}",
            c.corner,
            hex64(c.data.to_bits()),
            hex64(c.precharge.to_bits()),
        );
    }
    s.push_str("],\"sizing\":[");
    for (k, &w) in row.sizing.as_slice().iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", hex64(w.to_bits()));
    }
    s.push(']');
}

/// Parses the field sequence written by [`render_outcome_fields`],
/// validating everything a live outcome guarantees (finite measurements,
/// positive finite widths, at least one corner, a binding-corner name).
/// Any deviation yields `None` — "no data", never a panic.
pub(crate) fn parse_outcome_fields(p: &mut Parser<'_>) -> Option<SizingOutcome> {
    p.lit("\"iters\":")?;
    let iterations = p.number()?;
    p.lit(",\"paths\":")?;
    let constraint_paths = p.number()?;
    p.lit(",\"restarts\":")?;
    let gp_restarts = p.number()?;
    p.lit(",\"raw_paths\":\"")?;
    let raw_paths = p.hex_u128()?;
    p.lit("\",\"delay\":\"")?;
    let measured_delay = p.hex_f64()?;
    p.lit("\",\"precharge\":\"")?;
    let measured_precharge = p.hex_f64()?;
    p.lit("\",\"width\":\"")?;
    let total_width = p.hex_f64()?;
    p.lit("\",\"relax\":\"")?;
    let spec_relaxation = p.hex_f64()?;
    p.lit("\",\"binding\":\"")?;
    let binding_corner = p.take_while(|c| c != '"').to_owned();
    p.lit("\",\"corners\":[")?;
    let mut corner_delays = Vec::new();
    if !p.peek(']') {
        loop {
            p.lit("{\"name\":\"")?;
            let name = p.take_while(|c| c != '"').to_owned();
            p.lit("\",\"data\":\"")?;
            let data = p.hex_f64()?;
            p.lit("\",\"pre\":\"")?;
            let pre = p.hex_f64()?;
            p.lit("\"}")?;
            if !(data.is_finite() && pre.is_finite()) || name.is_empty() {
                return None;
            }
            corner_delays.push(CornerDelay {
                corner: name,
                data,
                precharge: pre,
            });
            if !p.comma() {
                break;
            }
        }
    }
    p.lit("],\"sizing\":[")?;
    let mut widths = Vec::new();
    if !p.peek(']') {
        loop {
            p.lit("\"")?;
            let w = p.hex_f64()?;
            p.lit("\"")?;
            // `Sizing::from_widths` treats non-positive/non-finite widths
            // as a caller bug (panic); a damaged file must instead read as
            // "no data".
            if !(w.is_finite() && w > 0.0) {
                return None;
            }
            widths.push(w);
            if !p.comma() {
                break;
            }
        }
    }
    p.lit("]")?;
    // Every live outcome carries at least one corner measurement and a
    // binding-corner name; a row without them is not ours.
    if widths.is_empty()
        || corner_delays.is_empty()
        || binding_corner.is_empty()
        || !(measured_delay.is_finite()
            && measured_precharge.is_finite()
            && total_width.is_finite()
            && spec_relaxation.is_finite())
    {
        return None;
    }
    Some(SizingOutcome {
        sizing: Sizing::from_widths(widths),
        measured_delay,
        measured_precharge,
        total_width,
        iterations,
        constraint_paths,
        raw_paths,
        spec_relaxation,
        gp_restarts,
        corner_delays,
        binding_corner,
    })
}

/// A cursor over canonical persisted text.
pub(crate) struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser {
            rest: text.trim_end_matches('\n'),
        }
    }

    pub(crate) fn lit(&mut self, s: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(s)?;
        Some(())
    }

    pub(crate) fn peek(&self, c: char) -> bool {
        self.rest.starts_with(c)
    }

    pub(crate) fn comma(&mut self) -> bool {
        if let Some(r) = self.rest.strip_prefix(',') {
            self.rest = r;
            true
        } else {
            false
        }
    }

    pub(crate) fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let end = self
            .rest
            .char_indices()
            .find(|&(_, c)| !pred(c))
            .map_or(self.rest.len(), |(i, _)| i);
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        tok
    }

    pub(crate) fn number(&mut self) -> Option<usize> {
        let tok = self.take_while(|c| c.is_ascii_digit());
        tok.parse().ok()
    }

    pub(crate) fn hex_u64(&mut self) -> Option<u64> {
        let tok = self.take_while(|c| c.is_ascii_hexdigit());
        (tok.len() == 16).then(|| u64::from_str_radix(tok, 16).ok())?
    }

    pub(crate) fn hex_u128(&mut self) -> Option<u128> {
        let tok = self.take_while(|c| c.is_ascii_hexdigit());
        (tok.len() == 32).then(|| u128::from_str_radix(tok, 16).ok())?
    }

    pub(crate) fn hex_f64(&mut self) -> Option<f64> {
        self.hex_u64().map(f64::from_bits)
    }
}
