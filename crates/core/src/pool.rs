//! A zero-dependency scoped worker pool for candidate-parallel sweeps.
//!
//! The Fig.-4 SMART loop sizes every candidate topology independently, so
//! the exploration sweep is embarrassingly parallel — but parallelism must
//! not change results. The pool therefore has exactly one job shape:
//! evaluate `job(i)` for `i in 0..n` and return the results **in index
//! order**, regardless of which worker ran which index or when it
//! finished. Determinism falls out of three properties:
//!
//! 1. every job's inputs are index-determined (workers share only
//!    read-only references plus one atomic claim counter);
//! 2. results are written into a pre-sized slot table by index, never
//!    appended in completion order;
//! 3. a panicking job yields `None` in its own slot — the same containment
//!    a serial run gets from its own `catch_unwind` — and can never poison
//!    a sibling.
//!
//! Workers claim indices in `chunk`-sized batches from a shared atomic
//! counter (dynamic self-scheduling), so a single slow candidate — one
//! giant GP — does not strand the work behind it the way static
//! striping would.
//!
//! Threads come from [`std::thread::scope`]: no channels, no external
//! crates, workers joined before the function returns.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallelism knobs for [`crate::explore`] / [`crate::explore_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Worker threads to fan candidates across. `0` and `1` both mean
    /// serial in-place execution (no threads are spawned); the pool never
    /// spawns more workers than there are jobs.
    pub workers: usize,
    /// Indices a worker claims per visit to the shared counter. `1` (the
    /// default) is right for exploration, where one candidate is a whole
    /// GP/STA run and claim overhead is noise; raise it only for very
    /// cheap jobs.
    pub chunk: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            workers: 1,
            chunk: 1,
        }
    }
}

impl ParallelOptions {
    /// Serial execution (the historical behavior).
    pub fn serial() -> Self {
        Self::default()
    }

    /// `workers` threads with single-index claiming.
    pub fn with_workers(workers: usize) -> Self {
        ParallelOptions { workers, chunk: 1 }
    }

    /// Reads `SMART_WORKERS` (worker count) and `SMART_CHUNK` (claim
    /// batch) from the environment; unset values use serial defaults.
    /// This is how `explore`/`explore_with` pick up parallelism without an
    /// API change — CI runs the whole test suite under both
    /// `SMART_WORKERS=1` and `SMART_WORKERS=4`.
    ///
    /// A value that is *set but unusable* — unparsable garbage, or `0`
    /// (which the pool would silently clamp) — falls back to the default
    /// like before, but no longer silently: each fallback is recorded as
    /// a `pool/env-fallback` trace event when a trace scope is current.
    /// Use [`ParallelOptions::from_env_lookup`] to also obtain the
    /// fallback list programmatically.
    pub fn from_env() -> Self {
        let (opts, fallbacks) = Self::from_env_lookup(|name| std::env::var(name).ok());
        for f in &fallbacks {
            f.emit();
        }
        opts
    }

    /// The pure core of [`ParallelOptions::from_env`], with an injectable
    /// variable lookup (tests pass a closure over a map instead of racing
    /// on the process environment). Returns the resolved options together
    /// with every fallback that was applied to a set-but-unusable value.
    pub fn from_env_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> (Self, Vec<EnvFallback>) {
        let mut fallbacks = Vec::new();
        let mut parse = |name: &'static str, default: usize| -> usize {
            let Some(raw) = lookup(name) else {
                return default; // unset is the normal case, not a fallback
            };
            match raw.trim().parse::<usize>() {
                Ok(v) if v >= 1 => v,
                // 0 would be silently clamped to serial by the pool;
                // garbage would silently mean "serial". Both are a user
                // *setting the knob and being ignored* — record it.
                _ => {
                    fallbacks.push(EnvFallback { name, raw, default });
                    default
                }
            }
        };
        let opts = ParallelOptions {
            workers: parse("SMART_WORKERS", 1),
            chunk: parse("SMART_CHUNK", 1),
        };
        (opts, fallbacks)
    }

    /// Workers actually used for `n` jobs (≥ 1, ≤ `n`).
    pub fn effective_workers(&self, n: usize) -> usize {
        self.workers.max(1).min(n.max(1))
    }
}

/// One environment knob that was set to an unusable value (garbage or
/// `0`) and fell back to its default — produced by
/// [`ParallelOptions::from_env_lookup`] so the fallback is observable
/// instead of silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFallback {
    /// The environment variable (`"SMART_WORKERS"` / `"SMART_CHUNK"`).
    pub name: &'static str,
    /// The raw value that failed to parse (or parsed to 0).
    pub raw: String,
    /// The default that was used instead.
    pub default: usize,
}

impl EnvFallback {
    /// Records this fallback as a `pool/env-fallback` trace event in the
    /// current trace scope (no-op when no scope is current).
    pub fn emit(&self) {
        smart_trace::emit_with("pool/env-fallback", || {
            vec![
                ("var", self.name.into()),
                ("raw", self.raw.as_str().into()),
                ("fallback", self.default.into()),
            ]
        });
    }
}

/// Evaluates `job(i)` for every `i in 0..n` across the configured workers
/// and returns the results indexed by `i`.
///
/// A slot is `None` only if its job panicked (the payload is swallowed —
/// callers that need the message must `catch_unwind` inside `job`, as the
/// exploration runtime does) or if a pool worker died, which the
/// per-slot accounting converts into the same per-index `None` rather
/// than a lost sweep.
pub fn run_indexed<T, F>(n: usize, par: &ParallelOptions, job: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.effective_workers(n);
    // Clamp to `n`: a chunk larger than the job count (e.g. a huge
    // SMART_CHUNK from the environment) buys nothing, and an extreme one
    // would wrap the claim counter's `fetch_add` past `usize::MAX`,
    // letting indices be claimed twice.
    let chunk = par.chunk.clamp(1, n.max(1));
    if workers <= 1 {
        // Serial reference path: same containment, same slot semantics,
        // strictly ascending order.
        return (0..n)
            .map(|i| catch_unwind(AssertUnwindSafe(|| job(i))).ok())
            .collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let job = &job;
    let next_ref = &next;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut batch: Vec<(usize, Option<T>)> = Vec::new();
                loop {
                    let start = next_ref.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        batch.push((i, catch_unwind(AssertUnwindSafe(|| job(i))).ok()));
                    }
                }
                batch
            }));
        }
        for handle in handles {
            // A worker can only fail to join if the runtime killed it;
            // its claimed-but-unreported indices stay `None`, which the
            // caller treats like a contained panic.
            if let Ok(batch) = handle.join() {
                for (i, result) in batch {
                    slots[i] = result;
                }
            }
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order_and_value() {
        let job = |i: usize| i * i;
        let serial = run_indexed(37, &ParallelOptions::serial(), job);
        for workers in [2, 4, 8] {
            let par = run_indexed(37, &ParallelOptions::with_workers(workers), job);
            assert_eq!(serial, par, "workers={workers}");
        }
        assert_eq!(serial[6], Some(36));
    }

    #[test]
    fn chunked_claiming_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        for chunk in [1, 3, 16, 100] {
            let calls = AtomicUsize::new(0);
            let out = run_indexed(
                50,
                &ParallelOptions { workers: 4, chunk },
                |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i
                },
            );
            assert_eq!(calls.load(Ordering::Relaxed), 50, "chunk={chunk}");
            assert_eq!(out, (0..50).map(Some).collect::<Vec<_>>(), "chunk={chunk}");
        }
    }

    #[test]
    fn panicking_job_yields_none_in_its_own_slot_only() {
        for workers in [1, 4] {
            let out = run_indexed(9, &ParallelOptions::with_workers(workers), |i| {
                if i == 4 {
                    panic!("job 4 is broken");
                }
                i + 1
            });
            for (i, slot) in out.iter().enumerate() {
                if i == 4 {
                    assert!(slot.is_none(), "workers={workers}");
                } else {
                    assert_eq!(*slot, Some(i + 1), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn pathological_chunk_never_claims_an_index_twice() {
        // A huge SMART_CHUNK (e.g. usize::MAX) must not wrap the claim
        // counter and re-execute indices: each job must run exactly once.
        use std::sync::atomic::AtomicUsize;
        for chunk in [usize::MAX, usize::MAX / 2, 1 << 63] {
            let calls = AtomicUsize::new(0);
            let out = run_indexed(23, &ParallelOptions { workers: 4, chunk }, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(calls.load(Ordering::Relaxed), 23, "chunk={chunk}");
            assert_eq!(out, (0..23).map(Some).collect::<Vec<_>>(), "chunk={chunk}");
        }
    }

    #[test]
    fn zero_jobs_and_zero_workers_are_fine() {
        let empty: Vec<Option<usize>> = run_indexed(0, &ParallelOptions::with_workers(8), |i| i);
        assert!(empty.is_empty());
        let degenerate = run_indexed(3, &ParallelOptions { workers: 0, chunk: 0 }, |i| i);
        assert_eq!(degenerate, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn env_lookup_accepts_valid_values_without_fallbacks() {
        let (opts, fb) = ParallelOptions::from_env_lookup(|name| match name {
            "SMART_WORKERS" => Some("4".into()),
            "SMART_CHUNK" => Some(" 2 ".into()),
            _ => None,
        });
        assert_eq!(opts, ParallelOptions { workers: 4, chunk: 2 });
        assert!(fb.is_empty());
    }

    #[test]
    fn env_lookup_unset_is_a_silent_default() {
        let (opts, fb) = ParallelOptions::from_env_lookup(|_| None);
        assert_eq!(opts, ParallelOptions::serial());
        assert!(fb.is_empty());
    }

    #[test]
    fn env_lookup_records_garbage_and_zero_as_fallbacks() {
        let (opts, fb) = ParallelOptions::from_env_lookup(|name| match name {
            "SMART_WORKERS" => Some("many".into()),
            "SMART_CHUNK" => Some("0".into()),
            _ => None,
        });
        assert_eq!(opts, ParallelOptions { workers: 1, chunk: 1 });
        assert_eq!(
            fb,
            vec![
                EnvFallback {
                    name: "SMART_WORKERS",
                    raw: "many".into(),
                    default: 1
                },
                EnvFallback {
                    name: "SMART_CHUNK",
                    raw: "0".into(),
                    default: 1
                },
            ]
        );
    }

    #[test]
    fn env_fallback_emits_into_the_current_scope() {
        let t = smart_trace::Trace::enabled();
        {
            let s = t.scope("pool", 0, 0);
            let _g = s.enter();
            EnvFallback {
                name: "SMART_WORKERS",
                raw: "-3".into(),
                default: 1,
            }
            .emit();
        }
        let report = t.collect();
        assert_eq!(report.events_named("pool/env-fallback").count(), 1);
    }

    #[test]
    fn effective_workers_never_exceeds_jobs() {
        let p = ParallelOptions::with_workers(8);
        assert_eq!(p.effective_workers(3), 3);
        assert_eq!(p.effective_workers(0), 1);
        assert_eq!(ParallelOptions::serial().effective_workers(100), 1);
    }
}
