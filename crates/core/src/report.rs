//! Designer-facing sizing report: the advisory output a SMART user reads
//! after a run — per-label widths, the measured timing, the critical path
//! walk, and which constraints are binding.

use std::fmt::Write as _;

use smart_models::ModelLibrary;
use smart_netlist::Circuit;
use smart_sta::{analyze, Boundary};

use crate::{Exploration, FlowError, SizingOutcome};

/// Renders a plain-text advisory report for a completed sizing run.
///
/// Sections: summary (delay/width/paths), label table (sorted by width,
/// with each label's share of the total), and the critical path with
/// per-stage arrival times — the view a designer uses to decide whether to
/// accept the solution or pin and re-run (paper Fig. 1's "designer can
/// further tune the design if needed").
///
/// # Errors
///
/// Propagates STA failures (the circuit was already analyzable during
/// sizing, so this only fails if inputs changed since).
pub fn sizing_report(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    outcome: &SizingOutcome,
) -> Result<String, FlowError> {
    let mut out = String::new();
    let _ = writeln!(out, "== SMART sizing report: {} ==", circuit.name());
    let _ = writeln!(
        out,
        "delay     : {:.1} ps data/evaluate, {:.1} ps precharge",
        outcome.measured_delay, outcome.measured_precharge
    );
    let _ = writeln!(
        out,
        "width     : {:.1} total over {} transistors ({} components)",
        outcome.total_width,
        circuit.device_count(),
        circuit.component_count()
    );
    let _ = writeln!(
        out,
        "paths     : {} raw -> {} constraints; {} outer iteration(s)",
        outcome.raw_paths, outcome.constraint_paths, outcome.iterations
    );
    let _ = writeln!(
        out,
        "clock load: {:.1}",
        circuit.clock_load(&outcome.sizing)
    );

    // Label table sorted by width contribution.
    let mut rows: Vec<(String, f64, f64)> = circuit
        .labels()
        .iter()
        .map(|(label, name)| {
            let w = outcome.sizing.width(label);
            // Total width contributed by devices bound to this label.
            let contrib: f64 = circuit
                .components()
                .map(|(_, comp)| {
                    comp.kind
                        .roles()
                        .iter()
                        .filter(|r| comp.label_of(r.role) == label)
                        .map(|r| w * r.width_factor * r.mult as f64)
                        .sum::<f64>()
                })
                .sum();
            (name.to_owned(), w, contrib)
        })
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    let _ = writeln!(out, "\n{:<16} {:>9} {:>12} {:>7}", "label", "width", "total width", "share");
    for (name, w, contrib) in &rows {
        let _ = writeln!(
            out,
            "{:<16} {:>9.2} {:>12.1} {:>6.1}%",
            name,
            w,
            contrib,
            100.0 * contrib / outcome.total_width
        );
    }

    // Critical path walk.
    let report = analyze(circuit, lib, &outcome.sizing, boundary)?;
    if let Some((node, arrival)) = report.worst_over(circuit.output_ports().map(|p| p.net)) {
        let _ = writeln!(
            out,
            "\ncritical path ({:.1} ps to {}):",
            arrival.time,
            circuit.net(node.net).name
        );
        for step in report.path_to(circuit, node) {
            let _ = writeln!(
                out,
                "  {:>8.1} ps  {:?} of {}  -> {}",
                step.time,
                step.node.edge,
                step.comp_path,
                circuit.net(step.node.net).name
            );
        }
    }
    Ok(out)
}

/// Renders the Fig.-1 exploration table as a designer-facing summary:
/// one row per candidate in database order (width / power / delay for
/// feasible rows, the failure taxonomy tag otherwise), the best-by-width
/// and best-by-power winners, and the sweep's sizing-cache statistics.
pub fn exploration_report(table: &Exploration) -> String {
    let mut out = String::new();
    let best_w = table.best_by_width().map(|c| c as *const _);
    let best_p = table.best_by_power().map(|c| c as *const _);
    let _ = writeln!(
        out,
        "== SMART exploration: {} candidate(s), {} feasible ==",
        table.candidates.len(),
        table.feasible_count()
    );
    let _ = writeln!(
        out,
        "{:<4} {:<34} {:>9} {:>9} {:>9}  notes",
        "#", "candidate", "width", "power", "delay"
    );
    for (i, c) in table.candidates.iter().enumerate() {
        let mut notes = Vec::new();
        if best_w == Some(c as *const _) {
            notes.push("best width");
        }
        if best_p == Some(c as *const _) {
            notes.push("best power");
        }
        match &c.result {
            Ok(m) => {
                let _ = writeln!(
                    out,
                    "{i:<4} {:<34} {:>9.1} {:>9.1} {:>7.1}ps  {}",
                    c.spec.to_string(),
                    m.outcome.total_width,
                    m.power.total(),
                    m.outcome.measured_delay,
                    notes.join(", ")
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "{i:<4} {:<34} {:>9} {:>9} {:>9}  {}",
                    c.spec.to_string(),
                    "-",
                    "-",
                    "-",
                    e.taxonomy()
                );
            }
        }
    }
    if !table.failure_taxonomy().is_empty() {
        let _ = writeln!(out, "failures  : {:?}", table.failure_taxonomy());
    }
    if table.cache_hits + table.cache_misses > 0 {
        let _ = writeln!(
            out,
            "cache     : {} hit(s), {} miss(es) this sweep",
            table.cache_hits, table.cache_misses
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{size_circuit, DelaySpec, SizingOptions};
    use smart_macros::{MacroSpec, MuxTopology};

    #[test]
    fn report_contains_every_section() {
        let circuit = MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: 4,
        }
        .generate();
        let lib = ModelLibrary::reference();
        let mut boundary = Boundary::default();
        boundary.output_loads.insert("y".into(), 15.0);
        let outcome = size_circuit(
            &circuit,
            &lib,
            &boundary,
            &DelaySpec::uniform(300.0),
            &SizingOptions::default(),
        )
        .unwrap();
        let text = sizing_report(&circuit, &lib, &boundary, &outcome).unwrap();
        assert!(text.contains("SMART sizing report"));
        assert!(text.contains("critical path"));
        for (_, name) in circuit.labels().iter() {
            assert!(text.contains(name), "label {name} missing from report");
        }
        // Shares sum to ~100%.
        let total: f64 = text
            .lines()
            .filter_map(|l| l.trim_end().strip_suffix('%'))
            .filter_map(|l| l.split_whitespace().last())
            .filter_map(|v| v.parse::<f64>().ok())
            .sum();
        assert!((total - 100.0).abs() < 1.0, "shares sum to {total}");
    }

    #[test]
    fn exploration_report_lists_rows_winners_and_cache_stats() {
        use std::sync::Arc;
        let request = MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: 4,
        };
        let lib = ModelLibrary::reference();
        let mut boundary = Boundary::default();
        boundary.output_loads.insert("y".into(), 15.0);
        let mut opts = SizingOptions::default();
        opts.cache = Some(Arc::new(crate::SizingCache::new()));
        let table = crate::explore_parallel(
            &request,
            &lib,
            &boundary,
            &DelaySpec::uniform(400.0),
            &opts,
            &crate::ParallelOptions::serial(),
        );
        let text = exploration_report(&table);
        assert!(text.contains("SMART exploration"));
        assert!(text.contains("best width"), "{text}");
        assert!(text.contains("cache     :"), "{text}");
        for c in &table.candidates {
            assert!(text.contains(&c.spec.to_string()), "{text}");
        }
    }
}
