//! The SMART sizing loop — the paper's Fig. 4: constraint generation →
//! GP solve → netlist update → static timing verification → delay-spec
//! retargeting, iterated to convergence.
//!
//! The loop is wrapped in a *resilience ladder* so an exploration sweep
//! degrades gracefully instead of unwinding:
//!
//! * numerical GP failures are retried from a deterministically perturbed
//!   starting point ([`SizingOptions::gp_retries`]);
//! * infeasible / non-converging specs optionally walk a relaxation
//!   schedule ([`SizingOptions::relaxation`]), recording the achieved rung
//!   in [`SizingOutcome::spec_relaxation`];
//! * every stage observes the [`crate::FlowBudget`] (wall clock checked
//!   between outer iterations and cooperatively inside the GP solver).

use smart_chaos::{ClockInstant, FaultSite};
use smart_gp::{GpError, GpProblem, GpSolution, SolverOptions};
use smart_models::ModelLibrary;
use smart_netlist::{Circuit, Sizing};
use smart_sta::{analyze, Boundary};

use crate::compact::{compact, Compaction};
use crate::constraints::{boundary_extra_loads, build_min_delay_gp, build_sizing_gp};
use crate::{DelaySpec, FlowError, SizingOptions};

/// One corner's STA measurement of a sized circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerDelay {
    /// Corner name (from the [`smart_models::CornerSet`] member, or
    /// `"typical"` for the historical single-corner flow).
    pub corner: String,
    /// Worst data/evaluate delay at this corner (ps).
    pub data: f64,
    /// Worst precharge completion at this corner (ps).
    pub precharge: f64,
}

/// Outcome of one sizing run. `Clone` so the memoization cache
/// ([`crate::SizingCache`]) can hand out copies of a stored outcome.
#[derive(Debug, Clone)]
pub struct SizingOutcome {
    /// The optimized widths.
    pub sizing: Sizing,
    /// STA-measured worst data/evaluate delay at the solution, maximized
    /// over the corner set (ps). Single-corner runs measure one corner,
    /// so this is exactly that corner's delay.
    pub measured_delay: f64,
    /// STA-measured worst precharge completion over the corner set (ps),
    /// for domino macros.
    pub measured_precharge: f64,
    /// Total transistor width at the solution.
    pub total_width: f64,
    /// Fig.-4 outer iterations used.
    pub iterations: usize,
    /// Constraint paths after compaction.
    pub constraint_paths: usize,
    /// Exhaustive path count before compaction (§5.2 numerator).
    pub raw_paths: u128,
    /// Relative spec relaxation that was needed (`0.0` = the requested
    /// spec was met; `0.05` = the +5% rung of the ladder succeeded). The
    /// achieved spec is `requested.relaxed(spec_relaxation)`.
    pub spec_relaxation: f64,
    /// GP solves that had to be restarted from a perturbed point after a
    /// numerical failure.
    pub gp_restarts: usize,
    /// Per-corner STA measurement of the accepted solution, in corner-set
    /// order (singleton `[("typical", ...)]` for single-corner runs).
    pub corner_delays: Vec<CornerDelay>,
    /// Name of the *binding* corner: the member whose data-phase delay is
    /// worst at the solution (ties break toward the earlier member). The
    /// corner that actually constrains the sizing.
    pub binding_corner: String,
}

/// Measures worst delays with the same models the GP used.
pub(crate) fn measure(
    circuit: &Circuit,
    lib: &ModelLibrary,
    sizing: &Sizing,
    boundary: &Boundary,
    compaction: &Compaction,
) -> Result<(f64, f64), FlowError> {
    let report = analyze(circuit, lib, sizing, boundary)?;
    let mut data = 0.0f64;
    let mut pre = 0.0f64;
    let mut data_reached = false;
    for class in &compaction.classes {
        if let Some(a) = report.arrival(class.endpoint.net, class.endpoint.edge) {
            if class.is_precharge {
                pre = pre.max(a.time);
            } else {
                data = data.max(a.time);
                data_reached = true;
            }
        }
    }
    if !data_reached {
        // No data/evaluate endpoint has an arrival: the macro is
        // unmeasurable (severed net, floating driver). Historically this
        // fell through as (0.0, 0.0), which trivially "met" any spec and
        // made the broken candidate win every delay comparison.
        return Err(FlowError::NoEndpoints);
    }
    Ok((data, pre))
}

/// Splitmix64 step — the deterministic jitter source for GP restart
/// perturbation (no external PRNG dependency; reproducible runs).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A multiplicatively jittered copy of `x0`: each coordinate is scaled by
/// `exp(u)`, `u ∈ [-0.6, 0.6]`, widening with the attempt number so
/// successive restarts explore progressively different basins. Positive in,
/// positive out — the GP only needs a positive anchor, not a feasible one.
fn perturbed_start(x0: &[f64], attempt: usize) -> Vec<f64> {
    let mut state = 0xA076_1D64_78BD_642Fu64 ^ (attempt as u64).wrapping_mul(0x10B7);
    let spread = 0.35 * attempt as f64;
    x0.iter()
        .map(|&w| {
            let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            w * ((u - 0.5) * 2.0 * spread).exp()
        })
        .collect()
}

/// Converts a solver budget trip into the flow-level budget error.
fn budget_flow_error(stage: &'static str, budget: &'static str, spent: usize) -> FlowError {
    FlowError::BudgetExceeded {
        what: budget,
        detail: format!("GP {stage} spent {spent} Newton steps"),
    }
}

/// Chaos seam: a GP solve poisoned by the fault plan. A firing GP fault
/// is *persistent for the candidate* — every restart of the retry ladder
/// fails the same way — so one injected fault exhausts the ladder into
/// exactly one classified row instead of being silently healed by a
/// retry (which would make the invariant "one fault ⇒ one row"
/// untestable).
fn chaos_gp_fault(opts: &SizingOptions) -> Option<GpError> {
    let plan = opts.chaos.as_deref()?;
    if plan.fires_here(FaultSite::GpDiverge) {
        plan.record(FaultSite::GpDiverge);
        smart_trace::emit("chaos/inject", &[("site", FaultSite::GpDiverge.name().into())]);
        Some(GpError::Numerical {
            stage: "chaos",
            detail: "injected Newton divergence (persists across restarts)".into(),
        })
    } else if plan.fires_here(FaultSite::GpNan) {
        plan.record(FaultSite::GpNan);
        smart_trace::emit("chaos/inject", &[("site", FaultSite::GpNan.name().into())]);
        Some(GpError::NonFinite {
            stage: "chaos",
            detail: "injected NaN poisoning (persists across restarts)".into(),
        })
    } else {
        None
    }
}

/// One GP solve under the flow budget, with the numerical-failure retry
/// ladder: `opts.gp_retries` restarts from perturbed starting points,
/// separated by bounded exponential backoff on the budget clock when
/// [`SizingOptions::retry_backoff`] is nonzero.
/// Returns the solution and the number of restarts consumed.
fn solve_with_retries(
    gp: &GpProblem,
    initial: Vec<f64>,
    opts: &SizingOptions,
    deadline: Option<ClockInstant>,
) -> Result<(GpSolution, usize), FlowError> {
    let solver_opts = |x0: Vec<f64>| SolverOptions {
        initial_x: Some(x0),
        // The solver's per-Newton-step check only understands real
        // instants; virtual deadlines are enforced at this ladder's own
        // checkpoints (and the outer loop's) instead.
        deadline: deadline.and_then(|d| d.as_real()),
        max_total_newton: opts.budget.max_gp_iters,
        cancel: opts.budget.cancel.clone(),
        ..Default::default()
    };
    let injected = chaos_gp_fault(opts);
    let mut attempt = 0usize;
    // The common no-retry path takes ownership of `initial` outright; the
    // original anchor is cloned back out only if a retry actually fires.
    let mut current = solver_opts(initial);
    let mut anchor: Option<Vec<f64>> = None;
    loop {
        let solved = match &injected {
            Some(fault) => Err(fault.clone()),
            None => gp.solve(&current),
        };
        match solved {
            Ok(sol) => return Ok((sol, attempt)),
            Err(GpError::BudgetExceeded {
                stage,
                budget,
                spent_newton,
            }) => return Err(budget_flow_error(stage, budget, spent_newton)),
            Err(e @ (GpError::Numerical { .. } | GpError::NonFinite { .. }))
                if attempt < opts.gp_retries =>
            {
                // Numerical stall: re-anchor at a jittered point and try
                // again. Infeasible/unbounded outcomes are *answers*, not
                // stalls, so they propagate immediately. Every perturbation
                // is taken off the original anchor (the last good iterate
                // under warm-start chaining), with the jitter widening per
                // attempt — not off the previous failed perturbation.
                attempt += 1;
                smart_trace::emit_with("gp/retry", || {
                    vec![("attempt", attempt.into()), ("error", e.to_string().into())]
                });
                backoff_before_retry(opts, deadline, attempt)?;
                let anchor = anchor
                    .get_or_insert_with(|| current.initial_x.clone().unwrap_or_default());
                current.initial_x = Some(perturbed_start(anchor, attempt));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Bounded exponential backoff between GP restarts: attempt *k* waits
/// `retry_backoff · 2^(k-1)`, capped at 64× the base, on the budget
/// clock — a real sleep in production, an instantaneous advance under a
/// virtual clock. The wait is budget-accounted: if it crosses the
/// wall-clock deadline the ladder stops here with a budget row rather
/// than starting a solve it cannot finish.
fn backoff_before_retry(
    opts: &SizingOptions,
    deadline: Option<ClockInstant>,
    attempt: usize,
) -> Result<(), FlowError> {
    if opts.retry_backoff.is_zero() {
        return Ok(());
    }
    let shift = u32::try_from(attempt.saturating_sub(1)).unwrap_or(6).min(6);
    let wait = opts.retry_backoff.saturating_mul(1u32 << shift);
    opts.budget.clock.sleep(wait);
    smart_trace::emit_with("gp/backoff", || {
        vec![
            ("attempt", attempt.into()),
            (
                "wait_us",
                u64::try_from(wait.as_micros()).unwrap_or(u64::MAX).into(),
            ),
        ]
    });
    if let Some(d) = &deadline {
        if opts.budget.clock.has_passed(d) {
            return Err(FlowError::BudgetExceeded {
                what: "wall-clock",
                detail: format!("retry backoff after GP attempt {attempt} exhausted the budget"),
            });
        }
    }
    Ok(())
}

/// Whether a failure may be answered by walking the relaxation ladder
/// (the spec was the problem, not the machinery). A static infeasibility
/// certificate is relaxable by design: the next rung re-audits the
/// retargeted GP in microseconds, so a rung whose certificate survives
/// the relaxed spec is skipped without a single Newton step or retry
/// restart — the ladder stops burning solves on structurally doomed
/// rungs.
fn relaxable(e: &FlowError) -> bool {
    matches!(
        e,
        FlowError::Gp(GpError::Infeasible { .. })
            | FlowError::NoConvergence { .. }
            | FlowError::InfeasibleCertificate { .. }
    )
}

/// Pre-solve static audit of a constructed GP ([`crate::AuditGate`]).
///
/// * `Off` — no analysis, returns `None`.
/// * `Certificates` (default) — interval bound propagation; a proved
///   contradiction aborts the rung as
///   [`FlowError::InfeasibleCertificate`] before any Newton work.
/// * `Prune` — certificates plus dominance pruning: returns a copy of
///   the problem with proven-redundant constraints dropped for this
///   solve (the assembled [`crate::constraints::SizingGp`] keeps its
///   full constraint list, so in-place retargeting is unaffected).
fn run_audit(gp: &GpProblem, what: &str, opts: &SizingOptions) -> Result<Option<GpProblem>, FlowError> {
    if !opts.audit.enabled() {
        return Ok(None);
    }
    let outcome = smart_audit::audit_problem(gp, what, &smart_audit::AuditConfig::default());
    smart_trace::emit_with("audit/bounds", || {
        vec![
            ("problem", what.to_owned().into()),
            ("tightened", outcome.tightened.into()),
            ("rounds", outcome.rounds.into()),
            (
                "bounded",
                outcome.bounds.iter().filter(|b| b.is_bounded()).count().into(),
            ),
        ]
    });
    if let Some(cert) = outcome.certificate {
        smart_trace::emit_with("audit/certificate", || {
            vec![
                ("problem", what.to_owned().into()),
                ("constraints", cert.labels.len().into()),
                ("detail", cert.detail.clone().into()),
            ]
        });
        return Err(FlowError::InfeasibleCertificate {
            constraints: cert.labels,
            detail: cert.detail,
        });
    }
    if opts.audit == crate::AuditGate::Prune && !outcome.prunable.is_empty() {
        smart_trace::emit_with("audit/prune", || {
            vec![
                ("problem", what.to_owned().into()),
                ("pruned", outcome.prunable.len().into()),
                ("total", gp.constraints().len().into()),
            ]
        });
        return Ok(Some(gp.without_constraints(&outcome.prunable)));
    }
    Ok(None)
}

/// Sizes `circuit` to meet `spec` under `boundary`, minimizing the
/// configured cost — the full Fig.-4 loop plus the resilience ladder.
///
/// # Errors
///
/// * [`FlowError::Gp`] — the spec is unachievable (infeasible) at every
///   relaxation rung, or the solver failed beyond the retry budget.
/// * [`FlowError::NoConvergence`] — STA kept disagreeing with the
///   constraint view beyond the outer iteration budget at every rung.
/// * [`FlowError::BudgetExceeded`] — the flow budget expired mid-run.
/// * Propagates compaction and STA errors.
pub fn size_circuit(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<SizingOutcome, FlowError> {
    let deadline = opts.budget.wall_clock.map(|d| opts.budget.clock.deadline_after(d));
    validate_spec(spec)?;
    check_cancelled(opts, "sizing entry")?;
    chaos_time_skew(opts)?;

    // Memoization: identical (structure, corner, spec, boundary, options)
    // inputs produce identical outcomes — the flow is deterministic — so a
    // hit replays the stored result without touching GP or STA. Only
    // successful outcomes are cached (failures can be budget-dependent).
    let memo = opts
        .cache
        .as_ref()
        .map(|cache| (cache, crate::cache::cache_key(circuit, lib, boundary, spec, opts)));
    if let Some((cache, key)) = &memo {
        // Chaos resilience seams: the plan may vaporize or corrupt this
        // candidate's cache entry just before the lookup. Both must be
        // absorbed — a drop misses and recomputes, a corruption is caught
        // by the checksum, evicted and recomputed — leaving the outcome
        // byte-identical to the fault-free run (no taxonomy row).
        if let Some(plan) = opts.chaos.as_deref() {
            if plan.fires_here(FaultSite::CacheDrop) && cache.remove(key) {
                plan.record(FaultSite::CacheDrop);
                smart_trace::emit("chaos/inject", &[("site", FaultSite::CacheDrop.name().into())]);
            }
            if plan.fires_here(FaultSite::CacheCorrupt) && cache.corrupt(key) {
                plan.record(FaultSite::CacheCorrupt);
                smart_trace::emit("chaos/inject", &[
                    ("site", FaultSite::CacheCorrupt.name().into()),
                ]);
            }
        }
        let found = cache.lookup(key);
        // Per-sweep attribution: the cache's own counters aggregate over
        // every concurrent client, so the sweep-owned sink is the only
        // exact record of *this* flow's traffic.
        if let Some(stats) = opts.cache_stats.as_deref() {
            stats.record(found.is_some());
        }
        if let Some(outcome) = found {
            return Ok(outcome);
        }
    }

    let prepared = prepare(circuit, lib, boundary, opts)?;

    let mut last_err = None;
    // Warm-start chain in GP variable space: each rung inherits the last
    // iterate of the failed rung below it, so the ladder refines one
    // trajectory instead of re-solving from mid-range at every rung.
    let mut chain: Option<Vec<f64>> = None;
    for &rel in [0.0].iter().chain(opts.relaxation.iter()) {
        let target = spec.relaxed(rel);
        smart_trace::begin("size/rung", &[("relaxation", rel.into())]);
        match size_to_spec(
            circuit, lib, boundary, &target, opts, &prepared, deadline, &mut chain,
        ) {
            Ok(mut outcome) => {
                smart_trace::end("size/rung", &[("outcome", "ok".into())]);
                outcome.spec_relaxation = rel;
                if let Some((cache, key)) = &memo {
                    cache.insert(*key, outcome.clone());
                }
                return Ok(outcome);
            }
            Err(e) if relaxable(&e) => {
                smart_trace::end("size/rung", &[("outcome", e.taxonomy().into())]);
                last_err = Some(e);
            }
            Err(e) => {
                smart_trace::end("size/rung", &[("outcome", e.taxonomy().into())]);
                return Err(e);
            }
        }
    }
    // The rung-0 attempt always ran, so an error is recorded.
    Err(last_err.unwrap_or(FlowError::NoEndpoints))
}

/// Chaos seam: simulated time advance. When the plan fires this site and
/// a wall-clock budget is configured, the candidate behaves as if the
/// clock jumped past its whole budget before any work happened — an
/// immediate budget row. Without a wall-clock budget a time jump changes
/// nothing, so the seam is a no-op (and records no injection).
fn chaos_time_skew(opts: &SizingOptions) -> Result<(), FlowError> {
    if let (Some(plan), Some(_)) = (opts.chaos.as_deref(), opts.budget.wall_clock) {
        if plan.fires_here(FaultSite::TimeSkew) {
            plan.record(FaultSite::TimeSkew);
            smart_trace::emit("chaos/inject", &[("site", FaultSite::TimeSkew.name().into())]);
            return Err(FlowError::BudgetExceeded {
                what: "wall-clock",
                detail: "chaos: simulated time advance expired the budget at sizing entry".into(),
            });
        }
    }
    Ok(())
}

/// STA measurement at every corner of the resolved set: returns the
/// per-corner delays plus the worst data delay, worst precharge and the
/// binding corner's index (worst data; ties break toward the earlier
/// member). Each corner is measured with its own library against the
/// shared, corner-invariant path classification; the `size/corner` trace
/// event records each measurement.
fn measure_corners(
    circuit: &Circuit,
    corner_libs: &[(String, ModelLibrary)],
    sizing: &Sizing,
    boundary: &Boundary,
    compaction: &Compaction,
    opts: &SizingOptions,
) -> Result<(Vec<CornerDelay>, f64, f64, usize), FlowError> {
    let mut delays = Vec::with_capacity(corner_libs.len());
    let mut worst_data = 0.0f64;
    let mut worst_pre = 0.0f64;
    let mut binding = 0usize;
    for (k, (cname, clib)) in corner_libs.iter().enumerate() {
        let (d, p) = chaos_measure(circuit, clib, sizing, boundary, compaction, opts)?;
        if d > worst_data {
            worst_data = d;
            binding = k;
        }
        worst_pre = worst_pre.max(p);
        smart_trace::emit_with("size/corner", || {
            vec![
                ("corner", cname.clone().into()),
                ("data_ps", d.into()),
                ("precharge_ps", p.into()),
            ]
        });
        delays.push(CornerDelay {
            corner: cname.clone(),
            data: d,
            precharge: p,
        });
    }
    Ok((delays, worst_data, worst_pre, binding))
}

/// Chaos seam: timing measurement with an injectable `NoEndpoints`. The
/// flow's own [`measure`] raises the same error for genuinely
/// unmeasurable macros; the injection proves the sweep classifies it
/// identically when it appears out of nowhere on a healthy candidate.
fn chaos_measure(
    circuit: &Circuit,
    lib: &ModelLibrary,
    sizing: &Sizing,
    boundary: &Boundary,
    compaction: &Compaction,
    opts: &SizingOptions,
) -> Result<(f64, f64), FlowError> {
    if let Some(plan) = opts.chaos.as_deref() {
        if plan.fires_here(FaultSite::StaNoEndpoints) {
            plan.record(FaultSite::StaNoEndpoints);
            smart_trace::emit("chaos/inject", &[
                ("site", FaultSite::StaNoEndpoints.name().into()),
            ]);
            return Err(FlowError::NoEndpoints);
        }
    }
    measure(circuit, lib, sizing, boundary, compaction)
}

/// Cooperative cancellation check at flow-level checkpoints (the GP's
/// Newton loop has its own per-step check via [`SolverOptions::cancel`]).
fn check_cancelled(opts: &SizingOptions, at: &str) -> Result<(), FlowError> {
    if opts.budget.is_cancelled() {
        return Err(FlowError::BudgetExceeded {
            what: "cancelled",
            detail: format!("cancellation token fired at {at}"),
        });
    }
    Ok(())
}

/// The delay spec enters the GP as constraint coefficients, so a
/// non-finite or non-positive budget would be a posynomial constructor
/// panic downstream — reject it at flow entry instead.
fn validate_spec(spec: &DelaySpec) -> Result<(), FlowError> {
    let mut phases = vec![("data", spec.data)];
    if let Some(p) = spec.precharge {
        phases.push(("precharge", p));
    }
    for (phase, t) in phases {
        if !(t.is_finite() && t > 0.0) {
            return Err(FlowError::Gp(smart_gp::GpError::NonFinite {
                stage: "spec",
                detail: format!("{phase} delay budget is {t}; need finite > 0"),
            }));
        }
    }
    Ok(())
}

/// Shared per-circuit preparation: boundary loads + path compaction.
struct Prepared {
    extra: std::collections::HashMap<smart_netlist::NetId, f64>,
    compaction: Compaction,
}

fn prepare(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<Prepared, FlowError> {
    // Reject non-finite boundary conditions here, before they can reach
    // the posynomial layer (where a NaN coefficient is a constructor
    // panic, not a typed error).
    for (name, &load) in &boundary.output_loads {
        if !load.is_finite() {
            return Err(FlowError::Sta(smart_sta::StaError::NonFiniteBoundary {
                name: name.clone(),
                value: load,
            }));
        }
    }
    for (name, &(t, s)) in &boundary.input_times {
        if !(t.is_finite() && s.is_finite()) {
            return Err(FlowError::Sta(smart_sta::StaError::NonFiniteBoundary {
                name: name.clone(),
                value: if t.is_finite() { s } else { t },
            }));
        }
    }
    let (_, vars) = smart_models::label_vars(circuit);
    let extra = boundary_extra_loads(circuit, boundary);
    let compaction = compact(circuit, lib, &vars, &extra, opts)?;
    smart_trace::emit_with("size/compact", || {
        vec![
            ("classes", compaction.classes.len().into()),
            (
                "raw_paths",
                u64::try_from(compaction.raw_paths).unwrap_or(u64::MAX).into(),
            ),
        ]
    });
    Ok(Prepared { extra, compaction })
}

/// One rung of the ladder: the classic Fig.-4 loop against a fixed target.
///
/// `chain` carries the warm-start iterate in GP variable space: outer
/// iteration k+1 starts from iteration k's solution instead of mid-range
/// widths, and the last iterate survives a failed rung so the next rung
/// of the relaxation ladder inherits it. It is an out-parameter (not a
/// return) precisely so the error path hands the iterate up the ladder.
#[allow(clippy::too_many_arguments)]
fn size_to_spec(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    prepared: &Prepared,
    deadline: Option<ClockInstant>,
    chain: &mut Option<Vec<f64>>,
) -> Result<SizingOutcome, FlowError> {
    let compaction = &prepared.compaction;
    let extra = &prepared.extra;
    // The corners this rung must satisfy; `None` resolves to a singleton
    // clone of `lib`, making the single-corner flow a one-iteration case
    // of every corner loop below.
    let corner_libs = crate::spec::resolve_corner_libs(lib, opts);
    let mut working_spec = spec.clone();
    let mut last = (f64::INFINITY, f64::INFINITY);
    let mut restarts = 0usize;
    let mut gp_state: Option<crate::constraints::SizingGp> = None;
    for iter in 1..=opts.max_outer_iters {
        if let Some(d) = &deadline {
            if opts.budget.clock.has_passed(d) {
                return Err(FlowError::BudgetExceeded {
                    what: "wall-clock",
                    detail: format!("sizing loop reached outer iteration {iter}"),
                });
            }
        }
        check_cancelled(opts, "outer iteration")?;
        // Assemble the GP once per rung; retargeting only rescales the
        // timing-constraint budgets, and `SizingGp::retarget` reproduces
        // bit for bit what a rebuild at `working_spec` would assemble, so
        // later iterations skip the (expensive) model re-evaluation.
        if let Some(b) = gp_state.as_mut() {
            b.retarget(&working_spec)?;
        } else {
            gp_state = Some(build_sizing_gp(
                circuit,
                lib,
                compaction,
                boundary,
                extra,
                &working_spec,
                opts,
            )?);
        }
        let Some(built) = gp_state.as_ref() else {
            unreachable!("sizing GP assembled above")
        };
        // Warm start, in priority order: the chained iterate from the
        // previous outer iteration or relaxation rung (already in GP
        // variable space), else the caller's previous sizing mapped
        // through `built.vars` (the designer's re-run loop), else
        // mid-range widths — each keeps phase I anchored inside the size
        // box on large macros.
        let initial = chain.take().unwrap_or_else(|| {
            let w0 = (lib.process().w_min * lib.process().w_max).sqrt();
            let mut x0 = vec![w0; built.gp.dim()];
            match &opts.warm_start {
                Some(prev) if prev.len() == circuit.labels().len() => {
                    for (i, &w) in prev.as_slice().iter().enumerate() {
                        x0[built.vars[i].index()] = w;
                    }
                    smart_trace::emit_with("size/warm-start", || {
                        vec![("source", "caller".into()), ("used", true.into())]
                    });
                }
                Some(prev) => {
                    // A mismatched warm start is ignored, but loudly: the
                    // caller handed widths for a different labelling.
                    let (got, want) = (prev.len(), circuit.labels().len());
                    smart_trace::emit_with("size/warm-start", || {
                        vec![
                            ("source", "caller".into()),
                            ("used", false.into()),
                            (
                                "reason",
                                format!("{got} widths for {want} labels").into(),
                            ),
                        ]
                    });
                }
                None => {}
            }
            x0
        });
        // Static audit of the (re)targeted GP before Newton: certified
        // infeasibility aborts the rung here — no solve, no retry burn —
        // and under `AuditGate::Prune` the solver sees the reduced system
        // while `gp_state` keeps the full one for in-place retargeting.
        let pruned = run_audit(&built.gp, "sizing", opts)?;
        let (sol, used) =
            solve_with_retries(pruned.as_ref().unwrap_or(&built.gp), initial, opts, deadline)?;
        restarts += used;
        let sizing = Sizing::from_widths(
            (0..circuit.labels().len())
                .map(|i| sol.x[built.vars[i].index()])
                .collect(),
        );
        // Chain this solution: the next outer iteration (or the next
        // relaxation rung, if this one fails) starts from it.
        *chain = Some(sol.x);
        // Verify at every corner; feasibility requires every member
        // within tolerance, and the retarget below is driven by the worst
        // overshoot over the set (the binding corner).
        let (corner_delays, data, pre, binding) =
            measure_corners(circuit, &corner_libs, &sizing, boundary, compaction, opts)?;
        last = (data, pre);
        smart_trace::emit("size/iteration", &[
            ("iter", iter.into()),
            ("data_ps", data.into()),
            ("precharge_ps", pre.into()),
            ("restarts", used.into()),
        ]);
        let data_ok = data <= spec.data * (1.0 + opts.timing_tolerance);
        let pre_ok = pre <= spec.precharge_budget() * (1.0 + opts.timing_tolerance);
        if data_ok && pre_ok {
            return Ok(SizingOutcome {
                total_width: circuit.total_width(&sizing),
                sizing,
                measured_delay: data,
                measured_precharge: pre,
                iterations: iter,
                constraint_paths: compaction.classes.len(),
                raw_paths: compaction.raw_paths,
                spec_relaxation: 0.0,
                gp_restarts: restarts,
                binding_corner: corner_libs[binding].0.clone(),
                corner_delays,
            });
        }
        // Retarget: shrink the constraint budgets by the measured
        // overshoot ("new delay specification" box of Fig. 4). `data` /
        // `pre` are worst-over-corners, so the shared budget tightens by
        // the binding corner's overshoot and every corner's constraints
        // (which divide the same budget) tighten with it.
        if !data_ok && data > 0.0 {
            working_spec.data *= (spec.data / data).min(0.98);
        }
        if !pre_ok && pre > 0.0 {
            let budget = working_spec.precharge_budget();
            working_spec.precharge = Some(budget * (spec.precharge_budget() / pre).min(0.98));
        }
    }
    Err(FlowError::NoConvergence {
        measured: last.0,
        spec: spec.data,
    })
}

/// Finds the fastest achievable delay of a topology (minimum-`T` GP) and
/// the sizing that achieves it. The returned delay is STA-verified.
///
/// # Errors
///
/// Propagates GP/STA/compaction errors and budget expiry.
pub fn minimize_delay(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<(f64, SizingOutcome), FlowError> {
    let deadline = opts.budget.wall_clock.map(|d| opts.budget.clock.deadline_after(d));
    let prepared = prepare(circuit, lib, boundary, opts)?;
    let compaction = &prepared.compaction;
    let (built, t_var) =
        build_min_delay_gp(circuit, lib, compaction, boundary, &prepared.extra, opts)?;
    // Warm start: mid-range widths with the delay variable at its upper
    // bound — strictly feasible, so phase I exits immediately instead of
    // climbing from T = 1 through a wall of violated path constraints.
    let w0 = (lib.process().w_min * lib.process().w_max).sqrt();
    let mut x0 = vec![w0; built.gp.dim()];
    x0[t_var.index()] = 1e6;
    let pruned = run_audit(&built.gp, "min-delay", opts)?;
    let (sol, restarts) =
        solve_with_retries(pruned.as_ref().unwrap_or(&built.gp), x0, opts, deadline)?;
    let sizing = Sizing::from_widths(
        (0..circuit.labels().len())
            .map(|i| sol.x[built.vars[i].index()])
            .collect(),
    );
    let t_star = sol.x[t_var.index()];
    let corner_libs = crate::spec::resolve_corner_libs(lib, opts);
    let (corner_delays, data, pre, binding) =
        measure_corners(circuit, &corner_libs, &sizing, boundary, compaction, opts)?;
    Ok((
        t_star,
        SizingOutcome {
            total_width: circuit.total_width(&sizing),
            sizing,
            measured_delay: data,
            measured_precharge: pre,
            iterations: 1,
            constraint_paths: compaction.classes.len(),
            raw_paths: compaction.raw_paths,
            spec_relaxation: 0.0,
            gp_restarts: restarts,
            binding_corner: corner_libs[binding].0.clone(),
            corner_delays,
        },
    ))
}

/// Builds the sizing GP for `circuit` exactly as [`size_circuit`] would
/// at the requested spec and runs the full `smart-audit` static analysis
/// over it — without solving anything. `name` titles the report
/// (typically the macro's display form). This is the entry behind the
/// CLI `audit` subcommand and `examples/audit.rs`: same constraint
/// assembly, same analyses, no Newton work.
///
/// # Errors
///
/// Propagates spec validation, compaction, and constraint-assembly
/// errors; an infeasibility certificate is *not* an error here (it is
/// the audit's finding, returned in the outcome).
pub fn audit_circuit(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    name: &str,
) -> Result<smart_audit::AuditOutcome, FlowError> {
    validate_spec(spec)?;
    let prepared = prepare(circuit, lib, boundary, opts)?;
    let built = build_sizing_gp(
        circuit,
        lib,
        &prepared.compaction,
        boundary,
        &prepared.extra,
        spec,
        opts,
    )?;
    Ok(smart_audit::audit_problem(
        &built.gp,
        name,
        &smart_audit::AuditConfig::default(),
    ))
}

/// Measures the worst evaluate/data delay and the worst precharge-path
/// completion of a sized circuit, using the same path classification the
/// constraint generator uses (a precharge path is one containing a
/// precharge arc, timed end-to-end through any static reset logic after
/// the dynamic node).
///
/// # Errors
///
/// Propagates compaction/STA errors.
pub fn measure_phase_delays(
    circuit: &Circuit,
    lib: &ModelLibrary,
    sizing: &Sizing,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<(f64, f64), FlowError> {
    let prepared = prepare(circuit, lib, boundary, opts)?;
    measure(circuit, lib, sizing, boundary, &prepared.compaction)
}

/// Convenience: runs compaction alone and reports the §5.2 statistics.
///
/// # Errors
///
/// Propagates compaction errors.
pub fn compaction_stats(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<Compaction, FlowError> {
    let prepared = prepare(circuit, lib, boundary, opts)?;
    Ok(prepared.compaction)
}
