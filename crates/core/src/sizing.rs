//! The SMART sizing loop — the paper's Fig. 4: constraint generation →
//! GP solve → netlist update → static timing verification → delay-spec
//! retargeting, iterated to convergence.

use smart_models::ModelLibrary;
use smart_netlist::{Circuit, Sizing};
use smart_sta::{analyze, Boundary};

use crate::compact::{compact, Compaction};
use crate::constraints::{boundary_extra_loads, build_min_delay_gp, build_sizing_gp};
use crate::{DelaySpec, FlowError, SizingOptions};

/// Outcome of one sizing run.
#[derive(Debug)]
pub struct SizingOutcome {
    /// The optimized widths.
    pub sizing: Sizing,
    /// STA-measured worst data/evaluate delay at the solution (ps).
    pub measured_delay: f64,
    /// STA-measured worst precharge completion (ps), for domino macros.
    pub measured_precharge: f64,
    /// Total transistor width at the solution.
    pub total_width: f64,
    /// Fig.-4 outer iterations used.
    pub iterations: usize,
    /// Constraint paths after compaction.
    pub constraint_paths: usize,
    /// Exhaustive path count before compaction (§5.2 numerator).
    pub raw_paths: u128,
}

/// Measures worst delays with the same models the GP used.
pub(crate) fn measure(
    circuit: &Circuit,
    lib: &ModelLibrary,
    sizing: &Sizing,
    boundary: &Boundary,
    compaction: &Compaction,
) -> Result<(f64, f64), FlowError> {
    let report = analyze(circuit, lib, sizing, boundary)?;
    let mut data = 0.0f64;
    let mut pre = 0.0f64;
    for class in &compaction.classes {
        if let Some(a) = report.arrival(class.endpoint.net, class.endpoint.edge) {
            if class.is_precharge {
                pre = pre.max(a.time);
            } else {
                data = data.max(a.time);
            }
        }
    }
    Ok((data, pre))
}

/// Sizes `circuit` to meet `spec` under `boundary`, minimizing the
/// configured cost — the full Fig.-4 loop.
///
/// # Errors
///
/// * [`FlowError::Gp`] — the spec is unachievable (infeasible) or the
///   solver failed.
/// * [`FlowError::NoConvergence`] — STA kept disagreeing with the
///   constraint view beyond the outer iteration budget.
/// * Propagates compaction and STA errors.
pub fn size_circuit(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<SizingOutcome, FlowError> {
    let (_, vars) = smart_models::label_vars(circuit);
    let extra = boundary_extra_loads(circuit, boundary);
    let compaction = compact(circuit, lib, &vars, &extra, opts)?;

    let mut working_spec = spec.clone();
    let mut last = (f64::INFINITY, f64::INFINITY);
    for iter in 1..=opts.max_outer_iters {
        let built = build_sizing_gp(
            circuit,
            lib,
            &compaction,
            boundary,
            &extra,
            &working_spec,
            opts,
        )?;
        // Warm start: the caller's previous sizing if provided (the
        // designer's re-run loop), else mid-range widths — either keeps
        // phase I anchored inside the size box on large macros.
        let w0 = (lib.process().w_min * lib.process().w_max).sqrt();
        let initial = match &opts.warm_start {
            Some(prev) if prev.len() == circuit.labels().len() => {
                prev.as_slice().to_vec()
            }
            _ => vec![w0; built.gp.dim()],
        };
        let sol = built.gp.solve(&smart_gp::SolverOptions {
            initial_x: Some(initial),
            ..Default::default()
        })?;
        let sizing = Sizing::from_widths(
            (0..circuit.labels().len())
                .map(|i| sol.x[built.vars[i].index()])
                .collect(),
        );
        let (data, pre) = measure(circuit, lib, &sizing, boundary, &compaction)?;
        last = (data, pre);
        let data_ok = data <= spec.data * (1.0 + opts.timing_tolerance);
        let pre_ok = pre <= spec.precharge_budget() * (1.0 + opts.timing_tolerance);
        if data_ok && pre_ok {
            return Ok(SizingOutcome {
                total_width: circuit.total_width(&sizing),
                sizing,
                measured_delay: data,
                measured_precharge: pre,
                iterations: iter,
                constraint_paths: compaction.classes.len(),
                raw_paths: compaction.raw_paths,
            });
        }
        // Retarget: shrink the constraint budgets by the measured
        // overshoot ("new delay specification" box of Fig. 4).
        if !data_ok && data > 0.0 {
            working_spec.data *= (spec.data / data).min(0.98);
        }
        if !pre_ok && pre > 0.0 {
            let budget = working_spec.precharge_budget();
            working_spec.precharge = Some(budget * (spec.precharge_budget() / pre).min(0.98));
        }
    }
    Err(FlowError::NoConvergence {
        measured: last.0,
        spec: spec.data,
    })
}

/// Finds the fastest achievable delay of a topology (minimum-`T` GP) and
/// the sizing that achieves it. The returned delay is STA-verified.
///
/// # Errors
///
/// Propagates GP/STA/compaction errors.
pub fn minimize_delay(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<(f64, SizingOutcome), FlowError> {
    let (_, vars) = smart_models::label_vars(circuit);
    let extra = boundary_extra_loads(circuit, boundary);
    let compaction = compact(circuit, lib, &vars, &extra, opts)?;
    let (built, t_var) = build_min_delay_gp(circuit, lib, &compaction, boundary, &extra, opts)?;
    // Warm start: mid-range widths with the delay variable at its upper
    // bound — strictly feasible, so phase I exits immediately instead of
    // climbing from T = 1 through a wall of violated path constraints.
    let w0 = (lib.process().w_min * lib.process().w_max).sqrt();
    let mut x0 = vec![w0; built.gp.dim()];
    x0[t_var.index()] = 1e6;
    let sol = built.gp.solve(&smart_gp::SolverOptions {
        initial_x: Some(x0),
        ..Default::default()
    })?;
    let sizing = Sizing::from_widths(
        (0..circuit.labels().len())
            .map(|i| sol.x[built.vars[i].index()])
            .collect(),
    );
    let t_star = sol.x[t_var.index()];
    let (data, pre) = measure(circuit, lib, &sizing, boundary, &compaction)?;
    Ok((
        t_star,
        SizingOutcome {
            total_width: circuit.total_width(&sizing),
            sizing,
            measured_delay: data,
            measured_precharge: pre,
            iterations: 1,
            constraint_paths: compaction.classes.len(),
            raw_paths: compaction.raw_paths,
        },
    ))
}

/// Measures the worst evaluate/data delay and the worst precharge-path
/// completion of a sized circuit, using the same path classification the
/// constraint generator uses (a precharge path is one containing a
/// precharge arc, timed end-to-end through any static reset logic after
/// the dynamic node).
///
/// # Errors
///
/// Propagates compaction/STA errors.
pub fn measure_phase_delays(
    circuit: &Circuit,
    lib: &ModelLibrary,
    sizing: &Sizing,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<(f64, f64), FlowError> {
    let (_, vars) = smart_models::label_vars(circuit);
    let extra = boundary_extra_loads(circuit, boundary);
    let compaction = compact(circuit, lib, &vars, &extra, opts)?;
    measure(circuit, lib, sizing, boundary, &compaction)
}

/// Convenience: runs compaction alone and reports the §5.2 statistics.
///
/// # Errors
///
/// Propagates compaction errors.
pub fn compaction_stats(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    opts: &SizingOptions,
) -> Result<Compaction, FlowError> {
    let (_, vars) = smart_models::label_vars(circuit);
    let extra = boundary_extra_loads(circuit, boundary);
    compact(circuit, lib, &vars, &extra, opts)
}
