//! Design constraints and flow options: "a macro instance with its local
//! constraints like delays, slopes and loads" (paper §3).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use smart_chaos::{Clock, FaultPlan};
use smart_gp::CancelToken;
use smart_models::CornerSet;
use smart_netlist::Sizing;
use smart_trace::Trace;

use crate::cache::{CacheStats, SizingCache};
use crate::checkpoint::Checkpointer;

/// Cost metric the sizer minimizes after the timing constraints are met
/// (paper Fig. 1: "specified cost function (area, power)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostMetric {
    /// Total transistor width (area proxy; also the paper's reporting
    /// metric in Figs. 5-6 and Table 1).
    #[default]
    Width,
    /// Activity-weighted switched capacitance (power proxy): clocked
    /// device widths count extra because clock nets toggle every cycle.
    Power,
}

/// The timing target of one macro instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySpec {
    /// Budget for data/evaluate paths, input to output (ps).
    pub data: f64,
    /// Budget for domino precharge paths (ps); `None` applies the data
    /// budget to precharge as well.
    pub precharge: Option<f64>,
}

impl DelaySpec {
    /// A uniform budget for all path phases.
    pub fn uniform(ps: f64) -> Self {
        DelaySpec {
            data: ps,
            precharge: None,
        }
    }

    /// The precharge budget (defaults to the data budget).
    pub fn precharge_budget(&self) -> f64 {
        self.precharge.unwrap_or(self.data)
    }

    /// This spec with every phase budget relaxed by the fraction `rel`
    /// (`0.05` ⇒ +5%). Used by the sizing flow's relaxation ladder.
    #[must_use]
    pub fn relaxed(&self, rel: f64) -> Self {
        DelaySpec {
            data: self.data * (1.0 + rel),
            precharge: self.precharge.map(|p| p * (1.0 + rel)),
        }
    }
}

/// Resource budgets for one flow invocation, threaded from
/// [`SizingOptions`] down into the GP solver's iteration loop (cooperative
/// cancellation) and across the exploration sweep. `None` everywhere —
/// the default — means unlimited, preserving historical behavior.
#[derive(Debug, Clone, Default)]
pub struct FlowBudget {
    /// Wall-clock allowance for one `size_circuit` run (spec retargeting,
    /// retries and the relaxation ladder all share it). Checked between
    /// Fig.-4 outer iterations and at every GP Newton step, so a runaway
    /// candidate times out with [`crate::FlowError::BudgetExceeded`]
    /// instead of hanging the sweep.
    pub wall_clock: Option<Duration>,
    /// Cap on total GP Newton steps per solve (phase I + phase II).
    pub max_gp_iters: Option<usize>,
    /// Cap on candidates sized by one [`crate::explore`] sweep; candidates
    /// beyond it still appear in the table, as budget-exceeded error rows.
    pub max_candidates: Option<usize>,
    /// Shared cooperative cancellation token. Unlike the per-candidate
    /// `wall_clock`, one token is held by every candidate of a sweep (and
    /// every GP Newton loop inside them), so a single
    /// [`CancelToken::cancel`] — or the token's own deadline — stops all
    /// in-flight work promptly with budget-exceeded rows. Mid-flight
    /// cancellation is inherently timing-dependent; the determinism
    /// contract of parallel exploration (DESIGN.md §9) only covers tokens
    /// that are stable for the whole sweep (never cancelled, or cancelled
    /// before it starts).
    pub cancel: Option<Arc<CancelToken>>,
    /// The time source the wall-clock budget and the GP retry backoff run
    /// against. [`Clock::Real`] (the default) is the historical
    /// `Instant`-based behavior; a [`Clock::Virtual`] lets tests cover
    /// hours of budget/backoff time in microseconds. Virtual deadlines
    /// are enforced at the flow's own checkpoints (outer iterations, the
    /// retry ladder, backoff sleeps); the GP solver's per-Newton-step
    /// deadline check only understands real instants and simply does not
    /// see virtual ones.
    pub clock: Clock,
}

impl FlowBudget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        FlowBudget::default()
    }

    /// Whether the shared cancellation token (if any) has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }
}

impl PartialEq for FlowBudget {
    /// Tokens compare by identity (same shared token), limits by value.
    fn eq(&self, other: &Self) -> bool {
        self.wall_clock == other.wall_clock
            && self.max_gp_iters == other.max_gp_iters
            && self.max_candidates == other.max_candidates
            && self.clock == other.clock
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

/// How the exploration sweep applies the `smart-lint` electrical-rule
/// engine to candidates before sizing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LintGate {
    /// Candidates with `Error`-severity findings are rejected before any
    /// GP solve, as [`crate::FlowError::Lint`] rows (the default — an
    /// electrically illegal topology must not consume sizing effort or
    /// be reported as a viable alternative).
    #[default]
    Errors,
    /// No lint gating; every candidate proceeds to sizing. For ablation
    /// and for intentionally-illegal experiments.
    Off,
}

/// How the sizing flow applies the `smart-audit` pre-solve static
/// analyzer to each constructed GP before Newton starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AuditGate {
    /// Run interval bound propagation and abort with
    /// [`crate::FlowError::InfeasibleCertificate`] when the analyzer
    /// proves the GP infeasible (the default — a certified-infeasible
    /// spec must not burn Newton iterations, retry-ladder restarts, or
    /// cache slots).
    #[default]
    Certificates,
    /// Certificates plus dominance pruning: constraints proven redundant
    /// (term-wise dominated by another active constraint) are dropped
    /// from the solved system. Opt-in; the prune-parity differential
    /// suite in CI is the evidence it is safe to promote.
    Prune,
    /// No pre-solve analysis; every GP goes straight to Newton. For
    /// ablation and for measuring what the audit saves.
    Off,
}

impl AuditGate {
    /// Whether this gate runs the analyzer at all.
    pub(crate) fn enabled(self) -> bool {
        !matches!(self, AuditGate::Off)
    }
}

/// Options controlling one sizing run.
#[derive(Debug, Clone)]
pub struct SizingOptions {
    /// Cost to minimize.
    pub cost: CostMetric,
    /// Maximum Fig.-4 outer iterations (GP solve → STA → retarget).
    pub max_outer_iters: usize,
    /// Acceptable overshoot of measured vs specified delay (relative).
    pub timing_tolerance: f64,
    /// Maximum output transition time (ps) enforced on every stage
    /// (paper: slopes are "important for timing and reliability").
    pub slope_max: f64,
    /// Designer-pinned label widths by label *name* (paper §2: "the
    /// designer should be allowed to control transistor sizes of portions
    /// of the macro").
    pub pinned: HashMap<String, f64>,
    /// Cap on compacted constraint paths; exceeded ⇒ error, signalling a
    /// macro whose labeling defeats compaction.
    pub path_limit: usize,
    /// Enforce the dynamic-node noise rule (precharge keeps a minimum
    /// strength relative to the data pull-down).
    pub noise_constraints: bool,
    /// Opportunistic Time Borrowing (paper §5.3). `true` (the paper's
    /// formulation) times each path end-to-end across domino stage
    /// boundaries, so a fast stage donates slack to the next. `false`
    /// cuts every path at dynamic-node boundaries and gives each segment
    /// an equal share of the budget — the conventional per-stage
    /// discipline, kept for ablation.
    pub otb: bool,
    /// Optional warm start for the GP (e.g. the previous sizing when
    /// re-running after a small spec or pin change — the designer's
    /// iterate-and-tune loop of Fig. 1). Ignored if its label count does
    /// not match the circuit.
    pub warm_start: Option<Sizing>,
    /// Fanout-dominance mode. `true` (the paper's §5.2 heuristic: "We
    /// heuristically decide the dominance based on the fanout") keeps one
    /// worst-total-load representative per path shape — maximal reduction,
    /// and any optimism is caught by the Fig.-4 STA feedback loop.
    /// `false` keeps the provably sufficient Pareto set (sound without the
    /// outer loop, at a larger constraint count).
    pub heuristic_dominance: bool,
    /// Retries of a GP solve that failed *numerically* (not infeasibly):
    /// each retry perturbs the starting point deterministically to escape
    /// the bad barrier trajectory. `0` disables retries.
    pub gp_retries: usize,
    /// Base delay of the bounded exponential backoff between GP restarts:
    /// attempt *k* waits `retry_backoff · 2^(k-1)` (capped at 64× the
    /// base) on [`FlowBudget::clock`] before re-solving, and the wait is
    /// budget-accounted — if it pushes past the wall-clock deadline the
    /// ladder stops with a budget row instead of burning a doomed solve.
    /// `Duration::ZERO` (the default) restarts immediately, the
    /// historical behavior.
    pub retry_backoff: Duration,
    /// Delay-spec relaxation ladder walked when the spec is infeasible or
    /// the Fig.-4 loop cannot converge: each entry is a relative widening
    /// (e.g. `[0.02, 0.05, 0.10]` for +2%, +5%, +10%). The achieved rung is
    /// reported in [`crate::SizingOutcome::spec_relaxation`] so exploration
    /// can still rank "almost feasible" candidates. Empty (the default)
    /// keeps strict-spec behavior.
    pub relaxation: Vec<f64>,
    /// Resource budgets (wall clock, GP iterations, candidate count).
    pub budget: FlowBudget,
    /// Optional sizing memoization cache, shared across runs (and across
    /// the threads of a parallel sweep) via `Arc`. When set,
    /// [`crate::size_circuit`] first looks up the (structural hash,
    /// quantized spec, boundary, options) key and returns the cached
    /// [`crate::SizingOutcome`] on a hit — repeated topologies across
    /// sweep points skip the whole GP/STA loop. `None` (the default)
    /// disables memoization.
    pub cache: Option<Arc<SizingCache>>,
    /// Per-sweep cache-statistics sink: when set, every cache lookup this
    /// options value performs is also recorded here, so a sweep sharing
    /// its cache with concurrent siblings (the serve workload) still gets
    /// *exact* hit/miss attribution — deltas of the cache's global
    /// counters would absorb the siblings' traffic. The exploration
    /// engine injects a fresh sink per sweep automatically; set it
    /// directly only when attributing direct [`crate::size_circuit`]
    /// calls. Excluded from the sizing-cache fingerprint exactly like
    /// `trace`: observability must never change what the cache replays.
    pub cache_stats: Option<Arc<CacheStats>>,
    /// Lint gating of exploration candidates (default: reject on
    /// `Error`-severity findings before sizing). Applies to the
    /// [`crate::explore`] family only; direct [`crate::size_circuit`]
    /// calls are not gated.
    pub lint: LintGate,
    /// Pre-solve static analysis of each constructed GP (`smart-audit`):
    /// infeasibility certificates by default, dominance pruning opt-in,
    /// or fully off for ablation. Excluded from the sizing-cache
    /// fingerprint exactly like `trace`: certificates only ever *abort*
    /// candidates (aborts are never cached), and pruning is
    /// feasible-set-preserving (the CI prune-parity suite pins it), so
    /// the gate must never fork the cache key space.
    pub audit: AuditGate,
    /// Structured tracing collector for the explore → size → GP → STA
    /// flow (`smart-trace`). The default reads the `SMART_TRACE`
    /// environment knob ([`Trace::from_env`]) and is otherwise disabled —
    /// a disabled trace records nothing and costs one branch per probe.
    /// Excluded from the sizing-cache fingerprint: observability must
    /// never change what the cache replays.
    pub trace: Trace,
    /// Seeded deterministic fault-injection plan (`smart-chaos`). When
    /// set, every instrumented seam of the flow consults the plan for the
    /// current candidate and injects the planned fault. `None` (the
    /// default) is the production configuration: the seams cost one
    /// `Option` branch each. Excluded from the sizing-cache fingerprint:
    /// faults abort candidates, they never steer a successful outcome.
    pub chaos: Option<Arc<FaultPlan>>,
    /// Process corners the sizing must satisfy simultaneously. `None`
    /// (the default) is the historical single-corner flow: constraints
    /// and measurements use only the [`smart_models::ModelLibrary`]
    /// passed to the entry point, bit-identically to pre-corner builds.
    /// `Some(set)` emits every timing/slope constraint once per member
    /// into the same GP (shared width variables — max-over-corners) and
    /// requires the STA-verified solution to meet spec at every member;
    /// the binding corner is reported in
    /// [`crate::SizingOutcome::binding_corner`]. A singleton set whose
    /// member equals the passed library's process produces bit-identical
    /// results to `None` (the corner-parity suite pins this), but keys
    /// caches and checkpoints separately — a multi-corner solve never
    /// replays a single-corner entry and vice versa.
    pub corners: Option<CornerSet>,
    /// Sweep checkpoint store for [`crate::explore`] runs: completed
    /// candidate rows are periodically serialized (byte-stable JSON keyed
    /// by the sweep fingerprint) so an interrupted sweep resumes only the
    /// missing candidates. `None` (the default) disables checkpointing.
    /// Direct [`crate::size_circuit`] calls ignore it. Excluded from the
    /// sizing-cache fingerprint and from the checkpoint's own sweep
    /// fingerprint: persistence must never change what is computed.
    pub checkpoint: Option<Arc<Checkpointer>>,
}

/// Resolves the effective corner list of one sizing run: the configured
/// [`SizingOptions::corners`] members, or — with `corners: None` — a
/// singleton "typical" entry holding a clone of the passed library, which
/// makes the historical single-corner flow literally a one-iteration case
/// of the corner loop (so the two code paths cannot diverge). Returns
/// `(name, library)` pairs in emission order; the first entry is the
/// primary corner.
pub(crate) fn resolve_corner_libs(
    lib: &smart_models::ModelLibrary,
    opts: &SizingOptions,
) -> Vec<(String, smart_models::ModelLibrary)> {
    match &opts.corners {
        Some(set) => set
            .corners()
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    smart_models::ModelLibrary::new(c.process.clone()),
                )
            })
            .collect(),
        None => vec![("typical".to_owned(), lib.clone())],
    }
}

impl Default for SizingOptions {
    fn default() -> Self {
        SizingOptions {
            cost: CostMetric::Width,
            max_outer_iters: 12,
            timing_tolerance: 0.01,
            slope_max: 120.0,
            pinned: HashMap::new(),
            path_limit: 20_000,
            noise_constraints: true,
            warm_start: None,
            otb: true,
            heuristic_dominance: true,
            gp_retries: 2,
            retry_backoff: Duration::ZERO,
            relaxation: Vec::new(),
            budget: FlowBudget::default(),
            cache: None,
            cache_stats: None,
            lint: LintGate::default(),
            audit: AuditGate::default(),
            trace: Trace::from_env(),
            corners: None,
            chaos: None,
            checkpoint: None,
        }
    }
}
