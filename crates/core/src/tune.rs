//! The topology optimizer — SMART's third component (paper §3(iii):
//! "automatically tune a topology for a specific macro instance starting
//! from a general topology"; listed as under development in the paper,
//! implemented here as structural parameter tuning).
//!
//! Given a parameterized general topology, the tuner sweeps its
//! structural knobs (partition point of a split domino mux, Xorsum group
//! size of a comparator), sizes every candidate under the instance
//! constraints with the ordinary flow, and returns the sweep with the
//! winner — the same size-then-compare discipline as Fig. 1, applied
//! *within* one topology family.

use smart_models::ModelLibrary;
use smart_netlist::Circuit;
use smart_sta::Boundary;

use smart_macros::{comparator, mux, ComparatorVariant};

use crate::explore::{size_and_measure, CandidateMetrics};
use crate::{DelaySpec, FlowError, SizingOptions};

/// One structural candidate of a tuning sweep.
#[derive(Debug)]
pub struct TuneCandidate {
    /// Human-readable knob setting (e.g. `"split m=3"`).
    pub setting: String,
    /// The elaborated circuit.
    pub circuit: Circuit,
    /// Sized metrics or the failure that disqualified the setting.
    pub result: Result<CandidateMetrics, FlowError>,
}

/// A completed tuning sweep.
#[derive(Debug)]
pub struct TuneSweep {
    /// All candidates in knob order.
    pub candidates: Vec<TuneCandidate>,
}

impl TuneSweep {
    /// The feasible setting with the least total width. NaN-tolerant: a
    /// rogue non-finite metric ranks last instead of panicking the sweep.
    pub fn best_by_width(&self) -> Option<&TuneCandidate> {
        self.best_by(|m| m.outcome.total_width)
    }

    /// The feasible setting with the least clock load.
    pub fn best_by_clock(&self) -> Option<&TuneCandidate> {
        self.best_by(|m| m.clock_load)
    }

    fn best_by(&self, key: impl Fn(&CandidateMetrics) -> f64) -> Option<&TuneCandidate> {
        self.candidates
            .iter()
            .filter_map(|c| c.result.as_ref().ok().map(|m| (c, key(m))))
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(c, _)| c)
    }

    /// Number of feasible settings.
    pub fn feasible_count(&self) -> usize {
        self.candidates.iter().filter(|c| c.result.is_ok()).count()
    }
}

fn run_sweep(
    candidates: Vec<(String, Circuit)>,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> TuneSweep {
    TuneSweep {
        candidates: candidates
            .into_iter()
            .map(|(setting, mut circuit)| {
                circuit.add_route_parasitics(0.5, 0.8);
                let result = size_and_measure(&circuit, lib, boundary, spec, opts);
                TuneCandidate {
                    setting,
                    circuit,
                    result,
                }
            })
            .collect(),
    }
}

/// Tunes the partition point `m` of an `width`-input partitioned domino
/// mux (paper §4 Fig. 2(f): "A good choice of m is m = floor(n/2)") —
/// the tuner checks that advice against the instance's actual
/// constraints.
pub fn tune_partition_point(
    width: usize,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> TuneSweep {
    assert!(width >= 3, "partitioned mux needs at least 3 inputs");
    let candidates = (1..width)
        .map(|m| {
            (
                format!("split m={m}"),
                mux::partitioned_domino(width, m),
            )
        })
        .collect();
    run_sweep(candidates, lib, boundary, spec, opts)
}

/// Tunes the Xorsum group size of a `width`-bit D1-D2 comparator over all
/// divisors of `width` up to 8 bits per gate.
pub fn tune_comparator_grouping(
    width: usize,
    d2_fanin: usize,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> TuneSweep {
    let candidates = (1..=8usize)
        .filter(|k| width.is_multiple_of(*k))
        .map(|k| {
            (
                format!("xorsum k={k}"),
                comparator(width, ComparatorVariant { xorsum: k, d2_fanin }),
            )
        })
        .collect();
    run_sweep(candidates, lib, boundary, spec, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundary() -> Boundary {
        let mut b = Boundary::default();
        b.output_loads.insert("y".into(), 20.0);
        b
    }

    #[test]
    fn partition_sweep_covers_all_splits_and_picks_a_winner() {
        let lib = ModelLibrary::reference();
        let sweep = tune_partition_point(
            6,
            &lib,
            &boundary(),
            &DelaySpec::uniform(380.0),
            &SizingOptions::default(),
        );
        assert_eq!(sweep.candidates.len(), 5, "m in 1..6");
        assert!(sweep.feasible_count() >= 3);
        let best = sweep.best_by_width().expect("winner");
        let best_w = best.result.as_ref().unwrap().outcome.total_width;
        for c in &sweep.candidates {
            if let Ok(m) = &c.result {
                assert!(m.outcome.total_width + 1e-9 >= best_w);
            }
        }
    }

    #[test]
    fn balanced_split_is_near_optimal() {
        // The paper's rule of thumb: m = floor(n/2) is a good choice. The
        // tuner's winner should be within 15% of the balanced split.
        let lib = ModelLibrary::reference();
        let sweep = tune_partition_point(
            8,
            &lib,
            &boundary(),
            &DelaySpec::uniform(380.0),
            &SizingOptions::default(),
        );
        let balanced = sweep
            .candidates
            .iter()
            .find(|c| c.setting == "split m=4")
            .unwrap()
            .result
            .as_ref()
            .expect("balanced split feasible")
            .outcome
            .total_width;
        let best = sweep
            .best_by_width()
            .unwrap()
            .result
            .as_ref()
            .unwrap()
            .outcome
            .total_width;
        assert!(
            balanced <= best * 1.15,
            "balanced {balanced} vs best {best}"
        );
    }

    #[test]
    fn comparator_grouping_sweep_runs() {
        let lib = ModelLibrary::reference();
        let mut b = Boundary::default();
        b.output_loads.insert("eq".into(), 15.0);
        let sweep = tune_comparator_grouping(
            16,
            4,
            &lib,
            &b,
            &DelaySpec::uniform(420.0),
            &SizingOptions::default(),
        );
        // Divisors of 16 up to 8: 1, 2, 4, 8.
        assert_eq!(sweep.candidates.len(), 4);
        assert!(sweep.feasible_count() >= 2);
        assert!(sweep.best_by_clock().is_some());
    }
}
