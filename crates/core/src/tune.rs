//! The topology optimizer — SMART's third component (paper §3(iii):
//! "automatically tune a topology for a specific macro instance starting
//! from a general topology"; listed as under development in the paper,
//! implemented here as structural parameter tuning).
//!
//! Given a parameterized general topology, the tuner sweeps its
//! structural knobs (partition point of a split domino mux, Xorsum group
//! size of a comparator), sizes every candidate under the instance
//! constraints with the ordinary flow, and returns the sweep with the
//! winner — the same size-then-compare discipline as Fig. 1, applied
//! *within* one topology family.
//!
//! Like every other flow entry point, the tuner never panics on bad
//! input: a request outside the knob domain is a typed
//! [`FlowError::InvalidRequest`], an all-infeasible sweep surfaces as
//! [`FlowError::NoFeasibleCandidate`] from the winner accessors — both
//! plain taxonomy rows a caller (CLI, serve daemon) can render.

use std::collections::BTreeMap;

use smart_models::ModelLibrary;
use smart_netlist::Circuit;
use smart_sta::Boundary;

use smart_macros::{comparator, mux, ComparatorVariant};

use crate::explore::{size_and_measure, CandidateMetrics};
use crate::{DelaySpec, FlowError, SizingOptions};

/// One structural candidate of a tuning sweep.
#[derive(Debug)]
pub struct TuneCandidate {
    /// Human-readable knob setting (e.g. `"split m=3"`).
    pub setting: String,
    /// The elaborated circuit.
    pub circuit: Circuit,
    /// Sized metrics or the failure that disqualified the setting.
    pub result: Result<CandidateMetrics, FlowError>,
}

/// A completed tuning sweep.
#[derive(Debug)]
pub struct TuneSweep {
    /// All candidates in knob order.
    pub candidates: Vec<TuneCandidate>,
}

impl TuneSweep {
    /// The feasible setting with the least total width. NaN-tolerant: a
    /// rogue non-finite metric ranks last instead of panicking the sweep.
    /// `None` when every setting failed; use [`TuneSweep::winner_by_width`]
    /// for the typed-error form.
    pub fn best_by_width(&self) -> Option<&TuneCandidate> {
        self.best_by(|m| m.outcome.total_width)
    }

    /// The feasible setting with the least clock load. `None` when every
    /// setting failed; use [`TuneSweep::winner_by_clock`] for the
    /// typed-error form.
    pub fn best_by_clock(&self) -> Option<&TuneCandidate> {
        self.best_by(|m| m.clock_load)
    }

    /// [`TuneSweep::best_by_width`] as a typed result: an all-infeasible
    /// sweep is a [`FlowError::NoFeasibleCandidate`] row carrying the
    /// failure-taxonomy histogram, never a panic or a bare `None`.
    pub fn winner_by_width(&self) -> Result<&TuneCandidate, FlowError> {
        self.best_by_width().ok_or_else(|| self.no_feasible())
    }

    /// [`TuneSweep::best_by_clock`] as a typed result.
    pub fn winner_by_clock(&self) -> Result<&TuneCandidate, FlowError> {
        self.best_by_clock().ok_or_else(|| self.no_feasible())
    }

    fn no_feasible(&self) -> FlowError {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for c in &self.candidates {
            if let Err(e) = &c.result {
                *counts.entry(e.taxonomy()).or_insert(0) += 1;
            }
        }
        FlowError::NoFeasibleCandidate {
            total: self.candidates.len(),
            taxonomy: counts.into_iter().collect(),
        }
    }

    fn best_by(&self, key: impl Fn(&CandidateMetrics) -> f64) -> Option<&TuneCandidate> {
        self.candidates
            .iter()
            .filter_map(|c| c.result.as_ref().ok().map(|m| (c, key(m))))
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(c, _)| c)
    }

    /// Number of feasible settings.
    pub fn feasible_count(&self) -> usize {
        self.candidates.iter().filter(|c| c.result.is_ok()).count()
    }
}

fn run_sweep(
    candidates: Vec<(String, Circuit)>,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> TuneSweep {
    TuneSweep {
        candidates: candidates
            .into_iter()
            .map(|(setting, mut circuit)| {
                circuit.add_route_parasitics(0.5, 0.8);
                let result = size_and_measure(&circuit, lib, boundary, spec, opts);
                TuneCandidate {
                    setting,
                    circuit,
                    result,
                }
            })
            .collect(),
    }
}

/// Tunes the partition point `m` of an `width`-input partitioned domino
/// mux (paper §4 Fig. 2(f): "A good choice of m is m = floor(n/2)") —
/// the tuner checks that advice against the instance's actual
/// constraints.
///
/// # Errors
///
/// [`FlowError::InvalidRequest`] when `width < 3`: a partitioned mux
/// needs at least one input on each side of the split, so narrower
/// requests have no knob domain to sweep.
pub fn tune_partition_point(
    width: usize,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<TuneSweep, FlowError> {
    if width < 3 {
        return Err(FlowError::InvalidRequest {
            what: "tune-partition",
            detail: format!("partitioned mux needs at least 3 inputs, got {width}"),
        });
    }
    let candidates = (1..width)
        .map(|m| {
            (
                format!("split m={m}"),
                mux::partitioned_domino(width, m),
            )
        })
        .collect();
    Ok(run_sweep(candidates, lib, boundary, spec, opts))
}

/// Tunes the Xorsum group size of a `width`-bit D1-D2 comparator over all
/// divisors of `width` up to 8 bits per gate.
///
/// # Errors
///
/// [`FlowError::InvalidRequest`] when the knob domain is empty (`width`
/// of 0 has no divisors) or `d2_fanin` is 0 (a D2 stage must merge at
/// least one group).
pub fn tune_comparator_grouping(
    width: usize,
    d2_fanin: usize,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
) -> Result<TuneSweep, FlowError> {
    if d2_fanin == 0 {
        return Err(FlowError::InvalidRequest {
            what: "tune-comparator",
            detail: "d2_fanin must be at least 1".to_owned(),
        });
    }
    // 0 is a multiple of every k, so the divisor filter alone would let a
    // zero-width request through to the elaborator (which asserts).
    if width == 0 {
        return Err(FlowError::InvalidRequest {
            what: "tune-comparator",
            detail: "comparator width must be at least 1".to_owned(),
        });
    }
    let candidates: Vec<(String, Circuit)> = (1..=8usize)
        .filter(|k| width.is_multiple_of(*k))
        .map(|k| {
            (
                format!("xorsum k={k}"),
                comparator(width, ComparatorVariant { xorsum: k, d2_fanin }),
            )
        })
        .collect();
    if candidates.is_empty() {
        return Err(FlowError::InvalidRequest {
            what: "tune-comparator",
            detail: format!("width {width} admits no xorsum grouping in 1..=8"),
        });
    }
    Ok(run_sweep(candidates, lib, boundary, spec, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundary() -> Boundary {
        let mut b = Boundary::default();
        b.output_loads.insert("y".into(), 20.0);
        b
    }

    #[test]
    fn partition_sweep_covers_all_splits_and_picks_a_winner() {
        let lib = ModelLibrary::reference();
        let sweep = match tune_partition_point(
            6,
            &lib,
            &boundary(),
            &DelaySpec::uniform(380.0),
            &SizingOptions::default(),
        ) {
            Ok(s) => s,
            Err(e) => panic!("width 6 is in the knob domain: {e}"),
        };
        assert_eq!(sweep.candidates.len(), 5, "m in 1..6");
        assert!(sweep.feasible_count() >= 3);
        let best_w = match sweep.winner_by_width().map(|c| &c.result) {
            Ok(Ok(m)) => m.outcome.total_width,
            other => panic!("feasible sweep must have a winner, got {other:?}"),
        };
        for c in &sweep.candidates {
            if let Ok(m) = &c.result {
                assert!(m.outcome.total_width + 1e-9 >= best_w);
            }
        }
    }

    #[test]
    fn balanced_split_is_near_optimal() {
        // The paper's rule of thumb: m = floor(n/2) is a good choice. The
        // tuner's winner should be within 15% of the balanced split.
        let lib = ModelLibrary::reference();
        let Ok(sweep) = tune_partition_point(
            8,
            &lib,
            &boundary(),
            &DelaySpec::uniform(380.0),
            &SizingOptions::default(),
        ) else {
            panic!("width 8 is in the knob domain");
        };
        let balanced = match sweep
            .candidates
            .iter()
            .find(|c| c.setting == "split m=4")
            .map(|c| &c.result)
        {
            Some(Ok(m)) => m.outcome.total_width,
            other => panic!("balanced split must be present and feasible, got {other:?}"),
        };
        let best = match sweep.winner_by_width().map(|c| &c.result) {
            Ok(Ok(m)) => m.outcome.total_width,
            other => panic!("sweep with feasible rows must have a winner, got {other:?}"),
        };
        assert!(
            balanced <= best * 1.15,
            "balanced {balanced} vs best {best}"
        );
    }

    #[test]
    fn comparator_grouping_sweep_runs() {
        let lib = ModelLibrary::reference();
        let mut b = Boundary::default();
        b.output_loads.insert("eq".into(), 15.0);
        let Ok(sweep) = tune_comparator_grouping(
            16,
            4,
            &lib,
            &b,
            &DelaySpec::uniform(420.0),
            &SizingOptions::default(),
        ) else {
            panic!("width 16 admits groupings 1/2/4/8");
        };
        // Divisors of 16 up to 8: 1, 2, 4, 8.
        assert_eq!(sweep.candidates.len(), 4);
        assert!(sweep.feasible_count() >= 2);
        assert!(sweep.winner_by_clock().is_ok());
    }

    /// Regression (PR 9): a too-narrow partition request used to die on an
    /// `assert!` inside the tuner; it must instead return the typed
    /// `invalid-request` taxonomy row every other flow surface uses.
    #[test]
    fn too_narrow_partition_is_a_typed_error_not_a_panic() {
        let lib = ModelLibrary::reference();
        for width in [0, 1, 2] {
            let err = match tune_partition_point(
                width,
                &lib,
                &boundary(),
                &DelaySpec::uniform(380.0),
                &SizingOptions::default(),
            ) {
                Err(e) => e,
                Ok(_) => panic!("width {width} must be rejected"),
            };
            assert_eq!(err.taxonomy(), "invalid-request");
            assert!(err.to_string().contains("at least 3 inputs"), "{err}");
        }
    }

    /// Regression (PR 9): an empty comparator knob domain must also be a
    /// typed error (width 0 divides nothing; a zero D2 fanin is not a
    /// comparator).
    #[test]
    fn empty_comparator_domain_is_a_typed_error() {
        let lib = ModelLibrary::reference();
        let b = boundary();
        let spec = DelaySpec::uniform(420.0);
        let opts = SizingOptions::default();
        for (w, f) in [(0, 4), (16, 0)] {
            let err = match tune_comparator_grouping(w, f, &lib, &b, &spec, &opts) {
                Err(e) => e,
                Ok(_) => panic!("({w},{f}) must be rejected"),
            };
            assert_eq!(err.taxonomy(), "invalid-request");
        }
    }

    /// Regression (PR 9): an all-infeasible sweep used to panic callers
    /// via `.expect("winner")`; the typed winner accessor now reports
    /// `no-feasible` with the sweep's taxonomy histogram instead.
    #[test]
    fn infeasible_sweep_reports_no_feasible_winner() {
        let lib = ModelLibrary::reference();
        // 1 ps is physically unmeetable: every split fails to size.
        let Ok(sweep) = tune_partition_point(
            4,
            &lib,
            &boundary(),
            &DelaySpec::uniform(1.0),
            &SizingOptions::default(),
        ) else {
            panic!("width 4 is in the knob domain");
        };
        assert_eq!(sweep.feasible_count(), 0);
        let err = match sweep.winner_by_width() {
            Err(e) => e,
            Ok(c) => panic!("no winner can exist, got {}", c.setting),
        };
        assert_eq!(err.taxonomy(), "no-feasible");
        match err {
            FlowError::NoFeasibleCandidate { total, taxonomy } => {
                assert_eq!(total, 3, "m in 1..4");
                let counted: usize = taxonomy.iter().map(|(_, n)| n).sum();
                assert_eq!(counted, 3, "every failed row must be classified");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
