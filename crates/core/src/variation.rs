//! Statistical variation sweeps — yield-style robustness of one sizing.
//!
//! Corner analysis covers the *systematic* process axes; this module
//! covers the *random* ones: per-device width and threshold variation
//! around a finished sizing. Each sample perturbs every label width by a
//! bounded multiplicative factor (the threshold component is folded into
//! the same factor — a threshold shift is a drive-strength shift, which
//! the width-linear models express as effective width) and re-measures
//! the perturbed circuit through STA **at every corner of the run's
//! corner set**. No GP re-solve: the question is whether the sizing the
//! solver shipped still meets spec when silicon wobbles, not whether a
//! different sizing would.
//!
//! Determinism contract: sample `i`'s perturbation stream is a pure
//! function of `(seed, i)` ([`smart_prng::Prng`] seeded per sample), and
//! samples fan across the worker pool with index-ordered reassembly — so
//! the report is byte-identical for a fixed seed at any `SMART_WORKERS`
//! setting. The differential suite pins this.
//!
//! Cache/checkpoint isolation: a variation sweep measures, it never
//! sizes, so it performs **zero** sizing-cache lookups and records
//! nothing to any checkpointer — re-measures must not pollute
//! [`crate::Exploration`]'s per-sweep cache statistics or a resumable
//! sweep's row store. The implementation touches neither by construction
//! (it calls the STA layer directly), and the cache-correctness suite
//! asserts the zero-traffic property.

use smart_models::ModelLibrary;
use smart_netlist::{Circuit, Sizing};
use smart_prng::Prng;
use smart_sta::Boundary;

use crate::pool::{run_indexed, ParallelOptions};
use crate::sizing::measure;
use crate::{DelaySpec, FlowError, SizingOptions};

/// Knobs of one variation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationOptions {
    /// Master seed; sample `i` derives its own generator from
    /// `(seed, i)`, so two sweeps with equal seeds are byte-identical.
    pub seed: u64,
    /// Monte-Carlo samples to draw.
    pub samples: usize,
    /// Relative 3σ-style bound of the per-device *width* variation
    /// (`0.05` ⇒ each width scaled by `exp(u)`, `u ∈ [-0.05, 0.05]`).
    pub width_spread: f64,
    /// Relative bound of the *threshold* variation, expressed as its
    /// drive-strength (effective-width) equivalent and combined with the
    /// width term per device.
    pub threshold_spread: f64,
}

impl Default for VariationOptions {
    fn default() -> Self {
        VariationOptions {
            seed: 0x5EED_CAFE_D00D_0001,
            samples: 64,
            width_spread: 0.05,
            threshold_spread: 0.03,
        }
    }
}

/// One sample's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationSample {
    /// Sample index (the seed derivation key).
    pub index: usize,
    /// Worst data delay over the corner set (ps).
    pub data: f64,
    /// Worst precharge completion over the corner set (ps).
    pub precharge: f64,
    /// Whether every corner met the spec within the run's tolerance.
    pub pass: bool,
}

/// Aggregate result of a variation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationReport {
    /// Every sample in index order.
    pub samples: Vec<VariationSample>,
    /// Samples that met spec at every corner.
    pub passes: usize,
    /// Worst data delay seen across all samples and corners (ps).
    pub worst_data: f64,
    /// Worst precharge completion seen across all samples and corners.
    pub worst_precharge: f64,
}

impl VariationReport {
    /// Pass fraction in `[0, 1]` — the yield-style figure of merit.
    pub fn yield_rate(&self) -> f64 {
        if self.samples.is_empty() {
            1.0
        } else {
            self.passes as f64 / self.samples.len() as f64
        }
    }
}

/// The per-sample width multipliers: a pure function of
/// `(opts.seed, index)`. Each label draws one width factor and one
/// threshold-equivalent factor, multiplied into a single effective-width
/// scale and clamped to the process size box.
fn sample_widths(
    base: &Sizing,
    vopts: &VariationOptions,
    index: usize,
    w_min: f64,
    w_max: f64,
) -> Sizing {
    // Golden-ratio stride decorrelates per-sample streams while keeping
    // the derivation pure — no shared generator state across samples, so
    // worker scheduling cannot reorder draws.
    let mut rng = Prng::new(
        vopts
            .seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let widths = base
        .as_slice()
        .iter()
        .map(|&w| {
            let u_w = rng.f64_in(-vopts.width_spread, vopts.width_spread);
            let u_t = rng.f64_in(-vopts.threshold_spread, vopts.threshold_spread);
            (w * (u_w + u_t).exp()).clamp(w_min, w_max)
        })
        .collect();
    Sizing::from_widths(widths)
}

/// Runs a variation sweep over `sizing` (typically a
/// [`crate::SizingOutcome::sizing`] fresh from the solver): `samples`
/// perturbed copies, each re-measured through STA at every corner of
/// `opts.corners` (or the single passed library when `None`), pass =
/// every corner within `opts.timing_tolerance` of `spec`.
///
/// Deterministic for a fixed `vopts.seed` at any worker count; performs
/// no sizing-cache traffic and no checkpoint writes.
///
/// # Errors
///
/// Propagates compaction/STA errors from the unperturbed preparation or
/// any sample measurement (a perturbed width stays inside the process
/// box, so measurement failures indicate a genuinely broken circuit, not
/// a bad draw).
#[allow(clippy::too_many_arguments)]
pub fn variation_sweep(
    circuit: &Circuit,
    lib: &ModelLibrary,
    boundary: &Boundary,
    spec: &DelaySpec,
    sizing: &Sizing,
    opts: &SizingOptions,
    vopts: &VariationOptions,
    par: &ParallelOptions,
) -> Result<VariationReport, FlowError> {
    let compaction = crate::compaction_stats(circuit, lib, boundary, opts)?;
    let corner_libs = crate::spec::resolve_corner_libs(lib, opts);
    let (w_min, w_max) = (lib.process().w_min, lib.process().w_max);
    let data_limit = spec.data * (1.0 + opts.timing_tolerance);
    let pre_limit = spec.precharge_budget() * (1.0 + opts.timing_tolerance);
    smart_trace::emit_with("variation/sweep", || {
        vec![
            ("samples", vopts.samples.into()),
            ("corners", corner_libs.len().into()),
        ]
    });
    let slots = run_indexed(vopts.samples, par, |i| -> Result<VariationSample, FlowError> {
        let perturbed = sample_widths(sizing, vopts, i, w_min, w_max);
        let mut worst_data = 0.0f64;
        let mut worst_pre = 0.0f64;
        for (_, clib) in &corner_libs {
            let (d, p) = measure(circuit, clib, &perturbed, boundary, &compaction)?;
            worst_data = worst_data.max(d);
            worst_pre = worst_pre.max(p);
        }
        Ok(VariationSample {
            index: i,
            data: worst_data,
            precharge: worst_pre,
            pass: worst_data <= data_limit && worst_pre <= pre_limit,
        })
    });
    let mut samples = Vec::with_capacity(vopts.samples);
    for slot in slots {
        // A lost pool worker would leave a `None` slot; variation sweeps
        // have no per-sample salvage story (the report is an aggregate),
        // so surface it as the internal error it is.
        let sample = slot.ok_or(FlowError::NoEndpoints).and_then(|r| r)?;
        samples.push(sample);
    }
    let passes = samples.iter().filter(|s| s.pass).count();
    let worst_data = samples.iter().map(|s| s.data).fold(0.0f64, f64::max);
    let worst_precharge = samples.iter().map(|s| s.precharge).fold(0.0f64, f64::max);
    Ok(VariationReport {
        samples,
        passes,
        worst_data,
        worst_precharge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{size_circuit, ParallelOptions};
    use smart_macros::{MacroSpec, MuxTopology};

    fn setup() -> (Circuit, ModelLibrary, Boundary, DelaySpec, SizingOptions) {
        let circuit = MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: 4,
        }
        .generate();
        let lib = ModelLibrary::reference();
        let mut boundary = Boundary::default();
        boundary.output_loads.insert("y".into(), 15.0);
        (circuit, lib, boundary, DelaySpec::uniform(320.0), SizingOptions::default())
    }

    #[test]
    fn fixed_seed_is_deterministic_across_worker_counts() {
        let (circuit, lib, boundary, spec, opts) = setup();
        let out = size_circuit(&circuit, &lib, &boundary, &spec, &opts).unwrap();
        let vopts = VariationOptions {
            samples: 12,
            ..VariationOptions::default()
        };
        let serial = variation_sweep(
            &circuit, &lib, &boundary, &spec, &out.sizing, &opts, &vopts,
            &ParallelOptions::serial(),
        )
        .unwrap();
        let parallel = variation_sweep(
            &circuit, &lib, &boundary, &spec, &out.sizing, &opts, &vopts,
            &ParallelOptions { workers: 4, chunk: 1 },
        )
        .unwrap();
        assert_eq!(serial, parallel);
        for (a, b) in serial.samples.iter().zip(&parallel.samples) {
            assert_eq!(a.data.to_bits(), b.data.to_bits());
        }
        // And a different seed actually changes the draw.
        let reseeded = variation_sweep(
            &circuit, &lib, &boundary, &spec, &out.sizing, &opts,
            &VariationOptions { seed: 99, samples: 12, ..VariationOptions::default() },
            &ParallelOptions::serial(),
        )
        .unwrap();
        assert_ne!(serial, reseeded);
    }

    #[test]
    fn zero_spread_passes_everywhere_and_reproduces_the_measurement() {
        let (circuit, lib, boundary, spec, opts) = setup();
        let out = size_circuit(&circuit, &lib, &boundary, &spec, &opts).unwrap();
        let vopts = VariationOptions {
            samples: 4,
            width_spread: 0.0,
            threshold_spread: 0.0,
            ..VariationOptions::default()
        };
        let report = variation_sweep(
            &circuit, &lib, &boundary, &spec, &out.sizing, &opts, &vopts,
            &ParallelOptions::serial(),
        )
        .unwrap();
        assert_eq!(report.passes, 4);
        assert!((report.yield_rate() - 1.0).abs() < 1e-12);
        // exp(0) = 1 exactly: the unperturbed sample re-measures the
        // solver's own verification bit for bit.
        assert_eq!(report.worst_data.to_bits(), out.measured_delay.to_bits());
    }

    #[test]
    fn huge_spread_fails_samples() {
        let (circuit, lib, boundary, _spec, opts) = setup();
        // Size against a spec tight enough to leave little margin.
        let (min_t, _) = crate::minimize_delay(&circuit, &lib, &boundary, &opts).unwrap();
        let tight = DelaySpec::uniform(min_t * 1.02);
        let out = size_circuit(&circuit, &lib, &boundary, &tight, &opts).unwrap();
        let vopts = VariationOptions {
            samples: 24,
            width_spread: 0.6,
            threshold_spread: 0.4,
            ..VariationOptions::default()
        };
        let report = variation_sweep(
            &circuit, &lib, &boundary, &tight, &out.sizing, &opts, &vopts,
            &ParallelOptions::serial(),
        )
        .unwrap();
        assert!(
            report.passes < report.samples.len(),
            "60% width wobble on a margin-free sizing must fail samples \
             (yield {})",
            report.yield_rate()
        );
    }
}
