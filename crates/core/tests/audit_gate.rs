//! The audit gate's cost contract: a spec the static analyzer certifies
//! infeasible must abort *before* the solver — zero GP Newton steps,
//! zero retry restarts, zero cache insertions — and the certificate must
//! re-verify by plain interval evaluation, independent of the flow that
//! produced it. Plus the relaxation-ladder short-circuit: rungs whose
//! certificate survives the relaxed spec are skipped without burning a
//! solve, and the first genuinely feasible rung still succeeds.

use std::sync::Arc;

use smart_core::{
    audit_circuit, compact, constraints::build_sizing_gp, constraints::boundary_extra_loads,
    size_circuit, AuditGate, DelaySpec, FlowError, SizingCache, SizingOptions,
};
use smart_macros::MacroSpec;
use smart_models::{label_vars, ModelLibrary};
use smart_sta::Boundary;

fn incrementor() -> smart_netlist::Circuit {
    MacroSpec::Incrementor { width: 8 }.generate()
}

fn boundary() -> Boundary {
    let mut b = Boundary::default();
    b.output_loads.insert("y7".into(), 10.0);
    b
}

/// 5 ps is below a single gate's intrinsic delay: the constraint
/// constants alone exceed the budget, which the interval analysis proves
/// without a solve.
fn impossible() -> DelaySpec {
    DelaySpec::uniform(5.0)
}

#[test]
fn certificate_aborts_with_zero_newton_steps_and_zero_cache_traffic() {
    let circuit = incrementor();
    let lib = ModelLibrary::reference();
    let boundary = boundary();
    let cache = Arc::new(SizingCache::new());
    let mut opts = SizingOptions {
        cache: Some(Arc::clone(&cache)),
        ..Default::default()
    };
    // A zero-iteration GP budget is the tripwire: if the flow had reached
    // the solver at all, the solve would have died as `BudgetExceeded`,
    // not as a certificate.
    opts.budget.max_gp_iters = Some(0);

    let err = size_circuit(&circuit, &lib, &boundary, &impossible(), &opts).unwrap_err();
    assert!(
        matches!(err, FlowError::InfeasibleCertificate { ref constraints, .. }
            if !constraints.is_empty()),
        "expected a certificate, got {err:?}"
    );
    assert_eq!(err.taxonomy(), "infeasible");

    // Cache traffic: exactly the one unavoidable entry probe (a miss),
    // no hit, no stored entry, nothing poisoned — a certified candidate
    // never pollutes the memoization store.
    let (hits, misses) = cache.stats();
    assert_eq!(hits, 0, "a certified-infeasible run must never hit");
    assert_eq!(misses, 1, "exactly the entry lookup probe");
    assert!(cache.is_empty(), "aborts must never be inserted");
    assert_eq!(cache.poisoned(), 0);

    // Control: with the gate off the same zero-iteration budget *is*
    // tripped — proof the default gate spared real Newton work.
    let off = SizingOptions {
        audit: AuditGate::Off,
        ..Default::default()
    };
    let mut off = off;
    off.budget.max_gp_iters = Some(0);
    let err = size_circuit(&circuit, &lib, &boundary, &impossible(), &off).unwrap_err();
    assert!(
        matches!(err, FlowError::BudgetExceeded { .. }),
        "with the audit off the solver must start (and trip the 0-step \
         budget), got {err:?}"
    );
}

#[test]
fn certificate_re_verifies_by_interval_evaluation() {
    let circuit = incrementor();
    let lib = ModelLibrary::reference();
    let boundary = boundary();
    let opts = SizingOptions::default();

    // Assemble the exact GP the flow would solve, by the same public
    // pieces the flow uses.
    let (_, vars) = label_vars(&circuit);
    let extra = boundary_extra_loads(&circuit, &boundary);
    let compaction = compact(&circuit, &lib, &vars, &extra, &opts).expect("compaction");
    let built = build_sizing_gp(
        &circuit,
        &lib,
        &compaction,
        &boundary,
        &extra,
        &impossible(),
        &opts,
    )
    .expect("constraint assembly");

    let outcome =
        smart_audit::audit_problem(&built.gp, "inc8", &smart_audit::AuditConfig::default());
    let cert = outcome.certificate.expect("5 ps must certify");
    // The certificate is machine-checkable: re-running the interval
    // propagation restricted to the cited constraints re-derives the
    // contradiction. No solver, no flow — just the certificate and the
    // problem.
    assert!(
        cert.verify(&built.gp),
        "certificate must re-verify by interval evaluation over its own \
         constraint subset: {}",
        cert.detail
    );
    assert!(!cert.labels.is_empty());

    // And the no-solve entry point reports the same verdict on the same
    // constraints as the in-flow gate.
    let via_entry = audit_circuit(&circuit, &lib, &boundary, &impossible(), &opts, "inc8")
        .expect("audit entry");
    let entry_cert = via_entry.certificate.expect("same verdict");
    assert_eq!(entry_cert.labels, cert.labels);
    let flow_err =
        size_circuit(&circuit, &lib, &boundary, &impossible(), &opts).unwrap_err();
    match flow_err {
        FlowError::InfeasibleCertificate { constraints, .. } => {
            assert_eq!(constraints, cert.labels, "flow surfaces the same certificate");
        }
        other => panic!("expected certificate, got {other:?}"),
    }
}

#[test]
fn relaxation_ladder_skips_certified_rungs_without_restarts() {
    let circuit = incrementor();
    let lib = ModelLibrary::reference();
    let boundary = boundary();
    // Rung 0 (5 ps) and rung +100% (10 ps) both carry certificates; the
    // final rung (5 × 400 = 2000 ps) is comfortably feasible for the
    // ripple chain. The ladder must walk straight through the certified
    // rungs — re-auditing the retargeted GP costs microseconds — and
    // solve only the last one.
    let opts = SizingOptions {
        relaxation: vec![1.0, 399.0],
        ..Default::default()
    };
    let out = size_circuit(&circuit, &lib, &boundary, &impossible(), &opts)
        .expect("the 2000 ps rung is feasible");
    assert_eq!(out.spec_relaxation, 399.0, "only the last rung succeeds");
    // Regression pin: certified rungs must not burn retry restarts. Any
    // nonzero count here means a doomed rung reached the solver and died
    // numerically instead of being short-circuited by its certificate.
    assert_eq!(out.gp_restarts, 0, "certified rungs must cost zero restarts");
    assert!(out.measured_delay <= 2000.0 * (1.0 + opts.timing_tolerance));

    // Ladder exhaustion: when every rung certifies, the error is the
    // certificate (relaxable, recorded), not a solver failure.
    let hopeless = SizingOptions {
        relaxation: vec![0.5, 1.0],
        ..Default::default()
    };
    let err = size_circuit(&circuit, &lib, &boundary, &impossible(), &hopeless).unwrap_err();
    assert!(
        matches!(err, FlowError::InfeasibleCertificate { .. }),
        "an all-certified ladder reports the certificate, got {err:?}"
    );
}
