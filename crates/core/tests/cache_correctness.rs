//! Cache-correctness suite for the sizing memoization layer: a memoized
//! result must be bitwise-identical to the cold solve it replaces,
//! distinct inputs must never alias, and a cache shared across the
//! threads of a parallel sweep must leave the exploration table
//! byte-identical to the cache-free serial run.

use std::sync::Arc;

use smart_core::{
    cache_key, explore_with_parallel, size_circuit, variation_sweep, DelaySpec, ParallelOptions,
    SizingCache, SizingOptions, SizingOutcome, VariationOptions,
};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_sta::Boundary;

fn mux(topology: MuxTopology) -> MacroSpec {
    MacroSpec::Mux { topology, width: 4 }
}

fn boundary(load: f64) -> Boundary {
    let mut b = Boundary::default();
    b.output_loads.insert("y".into(), load);
    b
}

fn with_cache(cache: &Arc<SizingCache>) -> SizingOptions {
    let mut opts = SizingOptions::default();
    opts.cache = Some(Arc::clone(cache));
    opts
}

/// Field-by-field bitwise equality of two outcomes (f64 compared on bit
/// patterns, so `-0.0 != 0.0` and NaN payloads count — the cache must
/// replay the cold solve exactly, not approximately).
fn assert_bitwise_equal(a: &SizingOutcome, b: &SizingOutcome, what: &str) {
    assert_eq!(a.sizing.len(), b.sizing.len(), "{what}: width count");
    for (i, (x, y)) in a
        .sizing
        .as_slice()
        .iter()
        .zip(b.sizing.as_slice())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: width[{i}]");
    }
    assert_eq!(
        a.measured_delay.to_bits(),
        b.measured_delay.to_bits(),
        "{what}: measured_delay"
    );
    assert_eq!(
        a.measured_precharge.to_bits(),
        b.measured_precharge.to_bits(),
        "{what}: measured_precharge"
    );
    assert_eq!(
        a.total_width.to_bits(),
        b.total_width.to_bits(),
        "{what}: total_width"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.constraint_paths, b.constraint_paths, "{what}: constraint_paths");
    assert_eq!(a.raw_paths, b.raw_paths, "{what}: raw_paths");
    assert_eq!(
        a.spec_relaxation.to_bits(),
        b.spec_relaxation.to_bits(),
        "{what}: spec_relaxation"
    );
    assert_eq!(a.gp_restarts, b.gp_restarts, "{what}: gp_restarts");
    assert_eq!(a.binding_corner, b.binding_corner, "{what}: binding_corner");
    assert_eq!(
        a.corner_delays.len(),
        b.corner_delays.len(),
        "{what}: corner count"
    );
    for (x, y) in a.corner_delays.iter().zip(&b.corner_delays) {
        assert_eq!(x.corner, y.corner, "{what}: corner name");
        assert_eq!(
            x.data.to_bits(),
            y.data.to_bits(),
            "{what}: corner {} data",
            x.corner
        );
        assert_eq!(
            x.precharge.to_bits(),
            y.precharge.to_bits(),
            "{what}: corner {} precharge",
            x.corner
        );
    }
}

#[test]
fn memoized_outcome_is_bitwise_identical_to_cold_solve() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let b = boundary(15.0);
    let spec = DelaySpec::uniform(400.0);

    let cold = size_circuit(&circuit, &lib, &b, &spec, &SizingOptions::default())
        .expect("cold solve");

    let cache = Arc::new(SizingCache::new());
    let opts = with_cache(&cache);
    let first = size_circuit(&circuit, &lib, &b, &spec, &opts).expect("miss + solve");
    let second = size_circuit(&circuit, &lib, &b, &spec, &opts).expect("hit");

    assert_bitwise_equal(&cold, &first, "cold vs populating run");
    assert_bitwise_equal(&cold, &second, "cold vs memoized run");
    assert_eq!(cache.stats(), (1, 1), "one miss then one hit");
    assert_eq!(cache.len(), 1);
}

#[test]
fn distinct_specs_boundaries_and_topologies_never_alias() {
    let lib = ModelLibrary::reference();
    let cache = Arc::new(SizingCache::new());
    let opts = with_cache(&cache);

    // Three deliberately-close configurations: same topology at two
    // specs, and a second topology at the first spec.
    let pass = mux(MuxTopology::StronglyMutexedPass).generate();
    let tri = mux(MuxTopology::Tristate).generate();
    let runs: [(&smart_netlist::Circuit, f64, f64); 4] = [
        (&pass, 400.0, 15.0),
        (&pass, 401.0, 15.0), // spec differs by 1 ps
        (&pass, 400.0, 16.0), // load differs by 1 unit
        (&tri, 400.0, 15.0),  // topology differs
    ];
    let mut outcomes = Vec::new();
    for (circuit, ps, load) in runs {
        let out = size_circuit(&circuit, &lib, &boundary(load), &DelaySpec::uniform(ps), &opts)
            .expect("feasible");
        outcomes.push((circuit, ps, load, out));
    }
    assert_eq!(cache.stats().1, 4, "four distinct keys, four misses");
    assert_eq!(cache.len(), 4, "no entry aliased another");

    // Replaying each run hits its own entry and replays its own outcome.
    for (circuit, ps, load, cold) in &outcomes {
        let replay =
            size_circuit(circuit, &lib, &boundary(*load), &DelaySpec::uniform(*ps), &opts)
                .expect("hit");
        assert_bitwise_equal(cold, &replay, &format!("replay ps={ps} load={load}"));
    }
    assert_eq!(cache.stats(), (4, 4));
}

#[test]
fn cache_keys_distinguish_options_that_steer_the_solution() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let b = boundary(15.0);
    let spec = DelaySpec::uniform(400.0);
    let lib = ModelLibrary::reference();
    let base = SizingOptions::default();
    let mut other = SizingOptions::default();
    other.cost = smart_core::CostMetric::Power;
    assert_ne!(
        cache_key(&circuit, &lib, &b, &spec, &base),
        cache_key(&circuit, &lib, &b, &spec, &other),
        "cost metric steers the GP objective and must split keys"
    );

    // The cache handle itself is not part of the key: two option sets
    // differing only in `cache` must collide (that is what makes a shared
    // cache useful across callers with their own option clones).
    let mut with_handle = SizingOptions::default();
    with_handle.cache = Some(Arc::new(SizingCache::new()));
    assert_eq!(
        cache_key(&circuit, &lib, &b, &spec, &base),
        cache_key(&circuit, &lib, &b, &spec, &with_handle),
    );
}

#[test]
fn shared_cache_across_process_corners_never_replays_the_wrong_corner() {
    use smart_models::Process;
    // One cache, two sweeps at different corners over the same topology,
    // spec and boundary: the corner dimension of the key must force a
    // fresh solve (a replay would carry the other corner's widths).
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let b = boundary(15.0);
    let spec = DelaySpec::uniform(400.0);
    let typ = ModelLibrary::reference();
    let slow = ModelLibrary::new(Process::slow_corner());

    assert_ne!(
        cache_key(&circuit, &typ, &b, &spec, &SizingOptions::default()),
        cache_key(&circuit, &slow, &b, &spec, &SizingOptions::default()),
        "corners must key separately"
    );

    let cache = Arc::new(SizingCache::new());
    let opts = with_cache(&cache);
    let typ_cold = size_circuit(&circuit, &typ, &b, &spec, &opts).expect("typical solve");
    let slow_cold = size_circuit(&circuit, &slow, &b, &spec, &opts).expect("slow solve");
    assert_eq!(cache.stats(), (0, 2), "second corner must miss, not hit");
    assert_eq!(cache.len(), 2, "each corner holds its own entry");
    assert_ne!(
        typ_cold.total_width.to_bits(),
        slow_cold.total_width.to_bits(),
        "fixture: corners must actually size differently for this test to bite"
    );

    // Replaying each corner hits its own entry and replays its own solve.
    let typ_warm = size_circuit(&circuit, &typ, &b, &spec, &opts).expect("typical hit");
    let slow_warm = size_circuit(&circuit, &slow, &b, &spec, &opts).expect("slow hit");
    assert_eq!(cache.stats(), (2, 2));
    assert_bitwise_equal(&typ_cold, &typ_warm, "typical corner replay");
    assert_bitwise_equal(&slow_cold, &slow_warm, "slow corner replay");
}

#[test]
fn exploration_reports_sweep_attributed_cache_stats() {
    // Distinct feasible topologies so every candidate runs the sizer.
    let specs = vec![
        mux(MuxTopology::StronglyMutexedPass),
        mux(MuxTopology::Tristate),
        mux(MuxTopology::WeaklyMutexedPass),
    ];
    let lib = ModelLibrary::reference();
    let b = boundary(15.0);
    let delay = DelaySpec::uniform(400.0);
    let cache = Arc::new(SizingCache::new());
    let opts = with_cache(&cache);

    let first = explore_with_parallel(
        specs.clone(),
        MacroSpec::generate,
        &lib,
        &b,
        &delay,
        &opts,
        &ParallelOptions::serial(),
    );
    assert_eq!(first.feasible_count(), specs.len(), "fixture must be feasible");
    assert_eq!(first.cache_hits, 0, "cold sweep has no hits");
    assert_eq!(first.cache_misses, specs.len());

    let second = explore_with_parallel(
        specs.clone(),
        MacroSpec::generate,
        &lib,
        &b,
        &delay,
        &opts,
        &ParallelOptions::serial(),
    );
    assert_eq!(second.cache_hits, specs.len(), "warm sweep replays every row");
    assert_eq!(second.cache_misses, 0);

    // The memoized table carries the same outcomes as the cold one.
    for (a, c) in first.candidates.iter().zip(&second.candidates) {
        let (a, c) = (a.result.as_ref().expect("ok"), c.result.as_ref().expect("ok"));
        assert_bitwise_equal(&a.outcome, &c.outcome, "cold vs warm sweep row");
    }
}

#[test]
fn shared_cache_under_parallel_sweep_preserves_the_serial_table() {
    // The strongest interaction case: 4 workers populating one cache
    // concurrently, then a warm parallel sweep running from hits — both
    // must carry outcomes bitwise-equal to the cache-free serial sweep.
    let specs = vec![
        mux(MuxTopology::StronglyMutexedPass),
        mux(MuxTopology::Tristate),
        mux(MuxTopology::WeaklyMutexedPass),
        mux(MuxTopology::StronglyMutexedPass), // duplicate: may hit a
                                               // sibling's insert mid-sweep
    ];
    let lib = ModelLibrary::reference();
    let b = boundary(15.0);
    let delay = DelaySpec::uniform(400.0);

    let reference = explore_with_parallel(
        specs.clone(),
        MacroSpec::generate,
        &lib,
        &b,
        &delay,
        &SizingOptions::default(),
        &ParallelOptions::serial(),
    );

    let cache = Arc::new(SizingCache::new());
    let opts = with_cache(&cache);
    for round in 0..2 {
        let table = explore_with_parallel(
            specs.clone(),
            MacroSpec::generate,
            &lib,
            &b,
            &delay,
            &opts,
            &ParallelOptions::with_workers(4),
        );
        assert_eq!(table.candidates.len(), reference.candidates.len());
        for (i, (r, t)) in reference.candidates.iter().zip(&table.candidates).enumerate() {
            assert_eq!(r.spec, t.spec, "round {round} row {i}");
            let (r, t) = (
                r.result.as_ref().expect("reference ok"),
                t.result.as_ref().expect("cached ok"),
            );
            assert_bitwise_equal(&r.outcome, &t.outcome, &format!("round {round} row {i}"));
            assert_eq!(r.devices, t.devices, "round {round} row {i}: devices");
            assert_eq!(
                r.clock_load.to_bits(),
                t.clock_load.to_bits(),
                "round {round} row {i}: clock load"
            );
            assert_eq!(
                r.power.total().to_bits(),
                t.power.total().to_bits(),
                "round {round} row {i}: power"
            );
        }
    }
    // After two sweeps of 4 candidates over 3 distinct keys, the cache
    // holds exactly the distinct keys and every lookup was accounted.
    assert_eq!(cache.len(), 3);
    let (hits, misses) = cache.stats();
    assert_eq!(hits + misses, 8, "every candidate consulted the cache once");
    assert!(hits >= 4, "warm sweep alone contributes 4 hits (got {hits})");
}

#[test]
fn boundary_fingerprint_is_insertion_order_invariant_over_32_shuffles() {
    // The boundary fingerprint feeds the cache key through two HashMaps
    // whose iteration order is per-instance; the key must depend only on
    // the boundary's *contents*. Property-check it: one reference
    // boundary, 32 Fisher–Yates shuffles of the insertion order, every
    // resulting cache key identical.
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let spec = DelaySpec::uniform(400.0);
    let opts = SizingOptions::default();

    let loads: Vec<(String, f64)> = (0..12).map(|i| (format!("y{i}"), 10.0 + i as f64)).collect();
    let times: Vec<(String, (f64, f64))> = (0..12)
        .map(|i| (format!("a{i}"), (5.0 * i as f64, 30.0 + i as f64)))
        .collect();

    let build = |load_order: &[usize], time_order: &[usize]| {
        let mut b = Boundary::default();
        for &i in load_order {
            b.output_loads.insert(loads[i].0.clone(), loads[i].1);
        }
        for &i in time_order {
            b.input_times.insert(times[i].0.clone(), times[i].1);
        }
        cache_key(&circuit, &lib, &b, &spec, &opts)
    };

    let reference = build(&(0..12).collect::<Vec<_>>(), &(0..12).collect::<Vec<_>>());
    let mut rng = smart_prng::Prng::new(0xB0DA_71E5);
    for shuffle in 0..32 {
        let mut lo: Vec<usize> = (0..12).collect();
        let mut to: Vec<usize> = (0..12).collect();
        for v in [&mut lo, &mut to] {
            for i in (1..v.len()).rev() {
                v.swap(i, rng.usize_in(0, i));
            }
        }
        let shuffled = build(&lo, &to);
        assert_eq!(
            reference, shuffled,
            "shuffle {shuffle}: cache key moved with boundary insertion order \
             (loads {lo:?}, times {to:?})"
        );
    }

    // Guard: the fingerprint still sees the *values* — perturbing one
    // load must move the key.
    let mut perturbed = Boundary::default();
    for (name, v) in &loads {
        perturbed.output_loads.insert(name.clone(), *v);
    }
    for (name, v) in &times {
        perturbed.input_times.insert(name.clone(), *v);
    }
    *perturbed.output_loads.get_mut("y3").expect("y3") += 0.5;
    assert_ne!(
        reference,
        cache_key(&circuit, &lib, &perturbed, &spec, &opts),
        "changed load must change the key"
    );
}

#[test]
fn variation_sweep_performs_zero_sizing_cache_traffic() {
    // A variation sweep re-measures a finished sizing; it must never
    // count as sizing-cache traffic, or Exploration's per-sweep stats
    // (and any hit-rate dashboards built on them) drift with the number
    // of Monte-Carlo samples.
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let b = boundary(15.0);
    let spec = DelaySpec::uniform(400.0);

    let cache = Arc::new(SizingCache::new());
    let opts = with_cache(&cache);
    let out = size_circuit(&circuit, &lib, &b, &spec, &opts).expect("solve");
    let before = cache.stats();
    assert_eq!(before, (0, 1), "the solve itself must miss exactly once");

    let report = variation_sweep(
        &circuit,
        &lib,
        &b,
        &spec,
        &out.sizing,
        &opts, // cache *present* in the options — the sweep must ignore it
        &VariationOptions {
            samples: 16,
            ..VariationOptions::default()
        },
        &ParallelOptions::with_workers(2),
    )
    .expect("variation sweep");
    assert_eq!(report.samples.len(), 16);
    assert_eq!(
        cache.stats(),
        before,
        "variation re-measures must not touch the sizing cache"
    );
    assert_eq!(cache.len(), 1, "no new entries either");
}
