//! The chaos suite: deterministic fault injection against the
//! exploration flow, pinning the three tentpole invariants.
//!
//! (a) **Worker invariance** — for a fixed fault-plan seed, the
//!     exploration table is byte-identical at every worker count.
//! (b) **Taxonomy accounting** — every injected fault surfaces as
//!     exactly one classified taxonomy row (no silent loss), and every
//!     surviving candidate's row is byte-identical to its fault-free
//!     row (no wrong winners).
//! (c) **Interrupt/resume** — a sweep interrupted by a budget and then
//!     resumed from its checkpoint is byte-identical to an
//!     uninterrupted sweep.
//!
//! Plus the satellite regressions: zero-wall-time retry backoff on the
//! virtual clock, checksum-caught cache poisoning, and lint-rule panic
//! containment.

use std::sync::Arc;
use std::time::Duration;

use smart_chaos::{Clock, FaultPlan, FaultSite};
use smart_core::{
    cache_key, explore_with, explore_with_parallel, size_circuit, Candidate, Checkpointer,
    DelaySpec, Exploration, FlowError, ParallelOptions, SizingCache, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::{CornerSet, ModelLibrary};
use smart_sta::Boundary;

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Canonical lossless rendering of one candidate row (bit patterns for
/// every float, `Debug` for errors).
fn render_row(i: usize, c: &Candidate) -> String {
    let mut out = format!("[{i}] spec={}", c.spec);
    match &c.circuit {
        Some(circ) => out.push_str(&format!(" circuit={:016x}", circ.structural_hash())),
        None => out.push_str(" circuit=none"),
    }
    match &c.result {
        Ok(m) => {
            out.push_str(&format!(
                " ok delay={} pre={} width={} iters={} restarts={} clk={} pdyn={} pclk={} dev={} widths=",
                bits(m.outcome.measured_delay),
                bits(m.outcome.measured_precharge),
                bits(m.outcome.total_width),
                m.outcome.iterations,
                m.outcome.gp_restarts,
                bits(m.clock_load),
                bits(m.power.dynamic),
                bits(m.power.clock),
                m.devices,
            ));
            out.push_str(&format!(" binding={} corners=", m.outcome.binding_corner));
            for cd in &m.outcome.corner_delays {
                out.push_str(&format!("{}:{}:{};", cd.corner, bits(cd.data), bits(cd.precharge)));
            }
            out.push_str(" widths=");
            for w in m.outcome.sizing.as_slice() {
                out.push_str(&bits(*w));
                out.push(',');
            }
        }
        Err(e) => out.push_str(&format!(" err={e:?}")),
    }
    out
}

/// Canonical table render. Deliberately excludes cache hit/miss stats:
/// under cache-corruption faults the *attribution* of lookups can blur
/// across worker counts (documented on `Exploration::cache_hits`); the
/// candidate rows, taxonomy and winners may not.
fn render(table: &Exploration) -> String {
    let mut out = String::new();
    for (i, c) in table.candidates.iter().enumerate() {
        out.push_str(&render_row(i, c));
        out.push('\n');
    }
    out.push_str(&format!("taxonomy={:?}\n", table.failure_taxonomy()));
    out.push_str(&format!("feasible={}\n", table.feasible_count()));
    out.push_str(&format!(
        "best_width={:?} best_power={:?}\n",
        table.best_by_width().map(|c| index_of(table, c)),
        table.best_by_power().map(|c| index_of(table, c)),
    ));
    out
}

fn index_of(table: &Exploration, c: &Candidate) -> usize {
    table
        .candidates
        .iter()
        .position(|x| std::ptr::eq(x, c))
        .expect("winner comes from the table")
}

/// A healthy width-4 mux family (all pass lint, all sizeable) — the
/// candidate database every chaos sweep runs over. Chaos must be the
/// *only* source of failure rows.
fn mux_specs(n: usize) -> Vec<MacroSpec> {
    let topos: Vec<MuxTopology> = MuxTopology::all()
        .into_iter()
        .filter(|t| t.supports_width(4))
        .collect();
    (0..n)
        .map(|i| MacroSpec::Mux {
            topology: topos[i % topos.len()],
            width: 4,
        })
        .collect()
}

fn boundary_for(specs: &[MacroSpec], load: f64) -> Boundary {
    let mut b = Boundary::default();
    for spec in specs {
        for port in spec.generate().output_ports() {
            b.output_loads.insert(port.name.clone(), load);
        }
    }
    b
}

fn sweep(specs: &[MacroSpec], opts: &SizingOptions, workers: usize) -> Exploration {
    explore_with_parallel(
        specs.to_vec(),
        MacroSpec::generate,
        &ModelLibrary::reference(),
        &boundary_for(specs, 12.0),
        &DelaySpec::uniform(400.0),
        opts,
        &ParallelOptions::with_workers(workers),
    )
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smart-chaos-test-{}-{name}.json", std::process::id()));
    p
}

/// Invariant (a): a fixed fault-plan seed gives a byte-identical table at
/// every worker count — fault decisions key on candidate identity, never
/// on scheduling.
#[test]
fn fixed_seed_chaos_is_worker_count_invariant() {
    let specs = mux_specs(8);
    let mut opts = SizingOptions::default();
    // A wall-clock budget (far away, real clock) so TimeSkew faults can
    // manifest as budget rows.
    opts.budget.wall_clock = Some(Duration::from_secs(3600));
    opts.chaos = Some(Arc::new(FaultPlan::uniform(0xC0FFEE, 0.8)));
    let reference = render(&sweep(&specs, &opts, 1));
    for workers in [2, 4] {
        let parallel = render(&sweep(&specs, &opts, workers));
        assert_eq!(
            reference, parallel,
            "chaos table at {workers} workers diverged from serial"
        );
    }
    // The plan must actually have hit something, or the invariant is
    // vacuous at this seed/rate.
    assert!(reference.contains("err="), "no faults manifested:\n{reference}");
}

/// Invariant (b): replaying the plan's pure decisions predicts the table
/// — each injected fault is exactly one row of the right taxonomy class,
/// and fault-free candidates render byte-identically to a chaos-free run.
#[test]
fn every_injected_fault_is_one_classified_row_and_survivors_are_untouched() {
    let specs = mux_specs(10);
    let mut base = SizingOptions::default();
    base.budget.wall_clock = Some(Duration::from_secs(3600));

    let clean = sweep(&specs, &base, 2);

    let plan = Arc::new(FaultPlan::uniform(0xBAD5EED, 0.9));
    let mut opts = base.clone();
    opts.chaos = Some(plan.clone());
    let chaotic = sweep(&specs, &opts, 2);

    let mut faulted = 0usize;
    for (i, (chaos_row, clean_row)) in
        chaotic.candidates.iter().zip(&clean.candidates).enumerate()
    {
        match plan.failure_fault(i as u64) {
            Some(site) => {
                faulted += 1;
                let err = chaos_row
                    .result
                    .as_ref()
                    .expect_err(&format!("candidate {i}: {} must fail", site.name()));
                assert_eq!(
                    err.taxonomy(),
                    site.taxonomy().expect("failure sites classify"),
                    "candidate {i}: {} produced the wrong row class: {err:?}",
                    site.name()
                );
            }
            None => {
                assert_eq!(
                    render_row(i, chaos_row),
                    render_row(i, clean_row),
                    "candidate {i} survived but its row changed"
                );
            }
        }
    }
    assert!(faulted >= 3, "rate 0.9 over 10 candidates hit only {faulted}");
    assert_eq!(
        chaotic.feasible_count(),
        specs.len() - faulted,
        "fault count and row count must balance — no silent loss"
    );
    // Manifestation accounting: every planned failure fault was injected
    // exactly once (healthy candidates reach every seam).
    for site in FaultSite::FAILURE_SITES {
        let planned = (0..specs.len())
            .filter(|&i| plan.failure_fault(i as u64) == Some(site))
            .count() as u64;
        assert_eq!(
            plan.injected(site),
            planned,
            "{}: planned vs manifested mismatch",
            site.name()
        );
    }
}

/// Cache-resilience faults (entry drop, checksum-caught corruption) must
/// be absorbed: the table is byte-identical to the fault-free one — no
/// taxonomy row, no steered winner.
#[test]
fn cache_faults_are_absorbed_with_byte_identical_results() {
    // Duplicated specs so the cache actually gets hits to disrupt.
    let mut specs = mux_specs(4);
    specs.extend(mux_specs(4));
    let mut clean_opts = SizingOptions::default();
    clean_opts.cache = Some(Arc::new(SizingCache::new()));
    let clean = render(&sweep(&specs, &clean_opts, 2));

    let plan = Arc::new(
        FaultPlan::new(7)
            .with_rate(FaultSite::CacheDrop, 1.0)
            .with_rate(FaultSite::CacheCorrupt, 1.0),
    );
    let cache = Arc::new(SizingCache::new());
    let mut opts = SizingOptions::default();
    opts.cache = Some(cache.clone());
    opts.chaos = Some(plan.clone());
    let chaotic = sweep(&specs, &opts, 2);

    assert_eq!(render(&chaotic), clean, "cache faults leaked into results");
    assert_eq!(chaotic.feasible_count(), specs.len());
    assert!(
        plan.injected(FaultSite::CacheDrop) + plan.injected(FaultSite::CacheCorrupt) > 0,
        "no cache fault ever manifested — vacuous test"
    );
}

/// Invariant (c): interrupt (candidate-budget exhaustion) + resume from
/// checkpoint == one uninterrupted sweep, byte for byte; the resumed run
/// recomputes only what the checkpoint is missing.
#[test]
fn interrupted_then_resumed_sweep_is_byte_identical_to_uninterrupted() {
    let specs = mux_specs(6);
    let uninterrupted = render(&sweep(&specs, &SizingOptions::default(), 2));

    let path = tmp_path("resume");
    std::fs::remove_file(&path).ok();
    let ckpt = Arc::new(Checkpointer::new(&path).with_interval(1));

    // Phase 1: the budget expires after 3 candidates — the "kill".
    let mut interrupted_opts = SizingOptions::default();
    interrupted_opts.checkpoint = Some(ckpt.clone());
    interrupted_opts.budget.max_candidates = Some(3);
    let interrupted = sweep(&specs, &interrupted_opts, 2);
    assert_eq!(interrupted.resumed, 0);
    assert_eq!(interrupted.feasible_count(), 3);
    assert!(interrupted.degradation().is_degraded());

    // Phase 2: same sweep, budget lifted, same checkpoint file (a fresh
    // Checkpointer instance, as a restarted process would have).
    let mut resumed_opts = SizingOptions::default();
    resumed_opts.checkpoint = Some(Arc::new(Checkpointer::new(&path).with_interval(1)));
    let resumed = sweep(&specs, &resumed_opts, 2);
    assert_eq!(
        resumed.resumed, 3,
        "exactly the checkpointed rows must be replayed"
    );
    assert_eq!(
        render(&resumed),
        uninterrupted,
        "resumed sweep diverged from the uninterrupted one"
    );

    // And a third run resumes *everything*, still byte-identical.
    let mut again_opts = SizingOptions::default();
    again_opts.checkpoint = Some(Arc::new(Checkpointer::new(&path).with_interval(1)));
    let again = sweep(&specs, &again_opts, 2);
    std::fs::remove_file(&path).ok();
    assert_eq!(again.resumed, specs.len());
    assert_eq!(render(&again), uninterrupted);
}

/// A stale checkpoint (different sweep fingerprint) must be ignored
/// wholesale — no cross-sweep row leakage.
#[test]
fn stale_checkpoint_fingerprint_resumes_nothing() {
    let path = tmp_path("stale");
    std::fs::remove_file(&path).ok();
    let specs = mux_specs(4);
    let mut opts = SizingOptions::default();
    opts.checkpoint = Some(Arc::new(Checkpointer::new(&path).with_interval(1)));
    let first = sweep(&specs, &opts, 2);
    assert_eq!(first.resumed, 0);
    assert_eq!(first.feasible_count(), 4);

    // Same database, different delay spec ⇒ different fingerprint.
    let second = explore_with(
        specs.clone(),
        MacroSpec::generate,
        &ModelLibrary::reference(),
        &boundary_for(&specs, 12.0),
        &DelaySpec::uniform(500.0),
        &opts,
    );
    std::fs::remove_file(&path).ok();
    assert_eq!(second.resumed, 0, "stale checkpoint rows leaked in");
    assert_eq!(second.feasible_count(), 4);
}

/// Satellite: the retry ladder's exponential backoff runs on the budget
/// clock — a virtual clock covers seconds of backoff in zero real wall
/// time, and the waits are exactly 1s + 2s + 4s for three retries.
#[test]
fn retry_backoff_consumes_zero_real_wall_time() {
    let spec = MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 };
    let circuit = spec.generate();
    let boundary = boundary_for(std::slice::from_ref(&spec), 15.0);
    let clock = Clock::new_virtual();
    let mut opts = SizingOptions::default();
    opts.budget.clock = clock.clone();
    opts.retry_backoff = Duration::from_secs(1);
    opts.gp_retries = 3;
    // A persistent GP divergence forces the full ladder.
    opts.chaos = Some(Arc::new(FaultPlan::new(1).with_rate(FaultSite::GpDiverge, 1.0)));

    let wall_start = std::time::Instant::now();
    let err = size_circuit(
        &circuit,
        &ModelLibrary::reference(),
        &boundary,
        &DelaySpec::uniform(400.0),
        &opts,
    )
    .unwrap_err();
    let wall = wall_start.elapsed();

    assert_eq!(err.taxonomy(), "numerical", "ladder must exhaust into the fault: {err:?}");
    let virt = clock.virtual_clock().expect("virtual").now_nanos();
    assert_eq!(
        virt,
        7_000_000_000,
        "three backoffs must advance exactly 1+2+4 virtual seconds"
    );
    // 7 s of backoff happened; essentially none of it on the real clock.
    // (Generous bound: the assertion is about sleeping, not solver speed.)
    assert!(wall < Duration::from_secs(2), "backoff slept for real: {wall:?}");
}

/// Satellite: backoff is budget-accounted — a wait that crosses the
/// wall-clock deadline stops the ladder with a budget row instead of
/// starting a doomed solve.
#[test]
fn backoff_is_budget_accounted() {
    let spec = MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 };
    let circuit = spec.generate();
    let boundary = boundary_for(std::slice::from_ref(&spec), 15.0);
    let mut opts = SizingOptions::default();
    opts.budget.clock = Clock::new_virtual();
    opts.budget.wall_clock = Some(Duration::from_secs(2));
    opts.retry_backoff = Duration::from_secs(1);
    opts.gp_retries = 5;
    opts.chaos = Some(Arc::new(FaultPlan::new(2).with_rate(FaultSite::GpDiverge, 1.0)));

    let err = size_circuit(
        &circuit,
        &ModelLibrary::reference(),
        &boundary,
        &DelaySpec::uniform(400.0),
        &opts,
    )
    .unwrap_err();
    // Backoffs land at t = 1s, then t = 3s > 2s budget: the second wait
    // trips the deadline.
    match &err {
        FlowError::BudgetExceeded { what, detail } => {
            assert_eq!(*what, "wall-clock");
            assert!(detail.contains("backoff"), "wrong budget site: {detail}");
        }
        other => panic!("expected a budget row, got {other:?}"),
    }
}

/// Satellite: a corrupted cache entry is caught by the checksum on read,
/// evicted, recomputed — and the recomputed outcome is byte-identical.
#[test]
fn poisoned_cache_entry_is_evicted_and_recomputed() {
    let spec = MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 };
    let circuit = spec.generate();
    let boundary = boundary_for(std::slice::from_ref(&spec), 15.0);
    let delay = DelaySpec::uniform(400.0);
    let lib = ModelLibrary::reference();
    let cache = Arc::new(SizingCache::new());
    let mut opts = SizingOptions::default();
    opts.cache = Some(cache.clone());

    let first = size_circuit(&circuit, &lib, &boundary, &delay, &opts).expect("sizes");
    let key = cache_key(&circuit, &lib, &boundary, &delay, &opts);
    assert!(cache.corrupt(&key), "entry must exist to corrupt");

    let second = size_circuit(&circuit, &lib, &boundary, &delay, &opts).expect("recomputes");
    assert_eq!(cache.poisoned(), 1, "corruption must be detected exactly once");
    assert_eq!(
        first.measured_delay.to_bits(),
        second.measured_delay.to_bits(),
        "recomputed outcome must match the original bitwise"
    );
    assert_eq!(first.sizing.as_slice(), second.sizing.as_slice());

    // The recompute re-inserted a healthy entry: third call is a hit.
    let (hits_before, _) = cache.stats();
    let third = size_circuit(&circuit, &lib, &boundary, &delay, &opts).expect("hits");
    assert_eq!(cache.stats().0, hits_before + 1);
    assert_eq!(third.total_width.to_bits(), first.total_width.to_bits());
}

/// Satellite: a panic *inside a lint rule* is contained at the candidate
/// boundary as a `FlowError::Internal` row (taxonomy "panic") — the
/// sweep keeps its one-row-per-alternative shape and healthy siblings
/// are unaffected.
#[test]
fn lint_rule_panics_are_contained_as_internal_rows() {
    let specs = mux_specs(3);
    let mut opts = SizingOptions::default();
    opts.chaos = Some(Arc::new(FaultPlan::new(3).with_rate(FaultSite::LintPanic, 1.0)));
    let table = sweep(&specs, &opts, 2);
    assert_eq!(table.candidates.len(), specs.len(), "sweep must not abort");
    for (i, c) in table.candidates.iter().enumerate() {
        match &c.result {
            Err(FlowError::Internal { panic_msg, .. }) => {
                assert!(
                    panic_msg.contains("lint-rule panic"),
                    "candidate {i}: wrong panic: {panic_msg}"
                );
            }
            other => panic!("candidate {i}: expected a contained Internal row, got {other:?}"),
        }
        assert_eq!(c.result.as_ref().unwrap_err().taxonomy(), "panic");
    }
    // With the gate off the seam never runs: no injections, clean sweep.
    let plan = Arc::new(FaultPlan::new(3).with_rate(FaultSite::LintPanic, 1.0));
    let mut off = SizingOptions::default();
    off.lint = smart_core::LintGate::Off;
    off.chaos = Some(plan.clone());
    let clean = sweep(&specs, &off, 2);
    assert_eq!(clean.feasible_count(), specs.len());
    assert_eq!(plan.injected(FaultSite::LintPanic), 0);
}

/// Cross-fingerprint separation: a sizing-cache entry and a checkpoint
/// written under one `CornerSet` must never replay under another (or
/// under the default corner-less options) — a warm multi-corner entry
/// replayed into a single-corner run would ship the wrong widths with a
/// "hit" in the stats.
#[test]
fn corner_sets_split_cache_and_checkpoint_fingerprints() {
    let circuit = mux_specs(1)[0].generate();
    let lib = ModelLibrary::reference();
    let b = boundary_for(&mux_specs(1), 12.0);
    let spec = DelaySpec::uniform(400.0);

    let mut multi = SizingOptions::default();
    multi.corners = Some(CornerSet::slow_typical_fast(lib.process()));
    let mut slow_only = SizingOptions::default();
    slow_only.corners = Some(CornerSet::new(vec![
        CornerSet::slow_typical_fast(lib.process()).corners()[0].clone(),
    ]));
    let plain = SizingOptions::default();

    // Key-level separation, pairwise.
    let keys = [
        cache_key(&circuit, &lib, &b, &spec, &plain),
        cache_key(&circuit, &lib, &b, &spec, &multi),
        cache_key(&circuit, &lib, &b, &spec, &slow_only),
    ];
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(keys[i], keys[j], "option sets {i} and {j} alias one key");
        }
    }

    // Cache-level separation: one shared cache, three solves, zero hits.
    let cache = Arc::new(SizingCache::new());
    for opts in [&plain, &multi, &slow_only] {
        let mut o = opts.clone();
        o.cache = Some(cache.clone());
        size_circuit(&circuit, &lib, &b, &spec, &o).expect("feasible");
    }
    assert_eq!(
        cache.stats(),
        (0, 3),
        "a corner-set variant replayed another's entry"
    );
    assert_eq!(cache.len(), 3);

    // Checkpoint-level separation: rows written under the multi-corner
    // sweep must resume nothing under either other option set, and
    // everything under their own.
    let specs = mux_specs(4);
    let path = tmp_path("corner-sep");
    std::fs::remove_file(&path).ok();
    let with_ckpt = |corners: &Option<CornerSet>| {
        let mut o = SizingOptions::default();
        o.corners = corners.clone();
        o.checkpoint = Some(Arc::new(Checkpointer::new(&path).with_interval(1)));
        o
    };
    let written = sweep(&specs, &with_ckpt(&multi.corners), 2);
    assert_eq!(written.resumed, 0);
    assert_eq!(written.feasible_count(), specs.len());

    // Sanity first: the writer's own fingerprint replays every row.
    let own = sweep(&specs, &with_ckpt(&multi.corners), 2);
    assert_eq!(own.resumed, specs.len(), "own rows must all replay");

    // Foreign fingerprints reject the file wholesale (each of these
    // sweeps then overwrites it with its own rows, which is why the
    // own-replay check ran first).
    let foreign = sweep(&specs, &with_ckpt(&None), 2);
    assert_eq!(foreign.resumed, 0, "corner-less run resumed corner rows");
    let other = sweep(&specs, &with_ckpt(&slow_only.corners), 2);
    std::fs::remove_file(&path).ok();
    assert_eq!(other.resumed, 0, "slow-only run resumed corner-less rows");
}

/// Invariant (c) under corners **and** chaos at once: a multi-corner
/// sweep interrupted mid-flight and resumed from its checkpoint, with
/// cache faults firing throughout, is byte-identical to the clean
/// uninterrupted multi-corner sweep (corner tables included — `render`
/// covers them).
#[test]
fn multi_corner_interrupted_resume_is_byte_identical_under_injected_faults() {
    // Duplicated specs so the sizing cache sees hits — the only state
    // the cache faults can disrupt.
    let mut specs = mux_specs(3);
    specs.extend(mux_specs(3));
    let corners = Some(CornerSet::slow_typical_fast(
        ModelLibrary::reference().process(),
    ));

    let mut clean_opts = SizingOptions::default();
    clean_opts.corners = corners.clone();
    let clean = render(&sweep(&specs, &clean_opts, 2));

    let path = tmp_path("corner-chaos-resume");
    std::fs::remove_file(&path).ok();
    let plan = Arc::new(
        FaultPlan::new(23)
            .with_rate(FaultSite::CacheDrop, 1.0)
            .with_rate(FaultSite::CacheCorrupt, 1.0),
    );

    // Phase 1: interrupt after 5 candidates (the last two of which are
    // duplicates, i.e. cache hits for the faults to hit), faults live.
    let mut interrupted_opts = SizingOptions::default();
    interrupted_opts.corners = corners.clone();
    interrupted_opts.cache = Some(Arc::new(SizingCache::new()));
    interrupted_opts.chaos = Some(plan.clone());
    interrupted_opts.checkpoint = Some(Arc::new(Checkpointer::new(&path).with_interval(1)));
    interrupted_opts.budget.max_candidates = Some(5);
    let interrupted = sweep(&specs, &interrupted_opts, 2);
    assert_eq!(interrupted.feasible_count(), 5);

    // Phase 2: fresh process-equivalent resume, faults still live.
    let mut resumed_opts = SizingOptions::default();
    resumed_opts.corners = corners;
    resumed_opts.cache = Some(Arc::new(SizingCache::new()));
    resumed_opts.chaos = Some(plan.clone());
    resumed_opts.checkpoint = Some(Arc::new(Checkpointer::new(&path).with_interval(1)));
    let resumed = sweep(&specs, &resumed_opts, 2);
    std::fs::remove_file(&path).ok();
    assert_eq!(
        resumed.resumed, 5,
        "the five checkpointed multi-corner rows must replay"
    );
    assert_eq!(
        render(&resumed),
        clean,
        "multi-corner interrupt/resume under faults diverged"
    );
    assert!(
        plan.injected(FaultSite::CacheDrop) + plan.injected(FaultSite::CacheCorrupt) > 0,
        "no fault ever manifested — vacuous test"
    );
}
