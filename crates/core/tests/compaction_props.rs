//! Property tests on the flow: across random macro instances and specs,
//! compaction accounting holds, the sizer's self-report agrees with an
//! independent STA run, and the heuristic dominance mode is bounded by
//! the sound Pareto mode.

use proptest::prelude::*;
use smart_core::{compaction_stats, size_circuit, DelaySpec, SizingOptions};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_sta::{max_delay, Boundary};

/// A pool of cheap, diverse macro instances.
fn arb_spec() -> impl Strategy<Value = MacroSpec> {
    prop_oneof![
        (2usize..=10).prop_map(|w| MacroSpec::Incrementor { width: w }),
        (2usize..=10).prop_map(|w| MacroSpec::Decrementor { width: w }),
        (2usize..=16).prop_map(|w| MacroSpec::ZeroDetect {
            width: w,
            style: ZeroDetectStyle::Static,
        }),
        (4usize..=16).prop_map(|w| MacroSpec::ZeroDetect {
            width: w,
            style: ZeroDetectStyle::Domino,
        }),
        (1usize..=4).prop_map(|b| MacroSpec::Decoder { in_bits: b }),
        (2usize..=8).prop_map(|w| MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: w,
        }),
        (2usize..=8).prop_map(|w| MacroSpec::Mux {
            topology: MuxTopology::UnsplitDomino,
            width: w,
        }),
        (3usize..=8).prop_map(|w| MacroSpec::Mux {
            topology: MuxTopology::Tristate,
            width: w,
        }),
        (1usize..=3).prop_map(|b| MacroSpec::PriorityEncoder { out_bits: b }),
    ]
}

fn boundary_for(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compaction_accounting_holds(spec in arb_spec(), load in 5.0f64..30.0) {
        let circuit = spec.generate();
        let lib = ModelLibrary::reference();
        let boundary = boundary_for(&circuit, load);
        let opts = SizingOptions::default();
        let stats = compaction_stats(&circuit, &lib, &boundary, &opts).unwrap();
        prop_assert!(!stats.classes.is_empty());
        prop_assert!((stats.classes.len() as u128) <= stats.raw_paths);
        prop_assert!(stats.after_regularity >= stats.classes.len());
        // Every class's representative is a real connected path.
        for class in &stats.classes {
            prop_assert!(!class.arcs.is_empty());
            for pair in class.arcs.windows(2) {
                let a = &stats.graph.arcs[pair[0]];
                let b = &stats.graph.arcs[pair[1]];
                prop_assert_eq!(a.to, b.from, "class path must be connected");
            }
            let first = &stats.graph.arcs[class.arcs[0]];
            let last = &stats.graph.arcs[*class.arcs.last().unwrap()];
            prop_assert_eq!(first.from, class.source);
            prop_assert_eq!(last.to, class.endpoint);
        }
    }

    #[test]
    fn sizer_report_matches_independent_sta(spec in arb_spec(), load in 5.0f64..30.0) {
        let circuit = spec.generate();
        let lib = ModelLibrary::reference();
        let boundary = boundary_for(&circuit, load);
        let opts = SizingOptions::default();
        // A spec loose enough to always be feasible.
        let relaxed = DelaySpec::uniform(4000.0 * circuit.component_count() as f64 / 10.0 + 500.0);
        let out = size_circuit(&circuit, &lib, &boundary, &relaxed, &opts).unwrap();
        let independent = max_delay(&circuit, &lib, &out.sizing, &boundary).unwrap();
        prop_assert!(
            (independent - out.measured_delay.max(out.measured_precharge)).abs() < 1e-6,
            "flow {} / {} vs STA {}",
            out.measured_delay,
            out.measured_precharge,
            independent
        );
        prop_assert!(independent <= relaxed.data * (1.0 + opts.timing_tolerance));
    }

    #[test]
    fn heuristic_dominance_is_a_subset_of_pareto(spec in arb_spec()) {
        let circuit = spec.generate();
        let lib = ModelLibrary::reference();
        let boundary = boundary_for(&circuit, 12.0);
        let heuristic = SizingOptions::default();
        let exact = SizingOptions {
            heuristic_dominance: false,
            ..Default::default()
        };
        let sh = compaction_stats(&circuit, &lib, &boundary, &heuristic).unwrap();
        let se = compaction_stats(&circuit, &lib, &boundary, &exact).unwrap();
        prop_assert!(sh.classes.len() <= se.classes.len());
        prop_assert_eq!(sh.raw_paths, se.raw_paths);
        prop_assert_eq!(sh.after_regularity, se.after_regularity);
    }

    #[test]
    fn exact_dominance_also_converges(spec in arb_spec()) {
        // The sound mode must produce a feasible solution too (it has
        // strictly more constraints, so the spec needs headroom).
        let circuit = spec.generate();
        let lib = ModelLibrary::reference();
        let boundary = boundary_for(&circuit, 12.0);
        let exact = SizingOptions {
            heuristic_dominance: false,
            ..Default::default()
        };
        let relaxed = DelaySpec::uniform(4000.0 * circuit.component_count() as f64 / 10.0 + 500.0);
        let out = size_circuit(&circuit, &lib, &boundary, &relaxed, &exact).unwrap();
        prop_assert!(out.measured_delay <= relaxed.data * 1.01);
    }
}
