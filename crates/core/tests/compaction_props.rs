//! Randomized tests on the flow: across seeded random macro instances and
//! specs, compaction accounting holds, the sizer's self-report agrees with
//! an independent STA run, and the heuristic dominance mode is bounded by
//! the sound Pareto mode. Deterministic (fixed seeds via `smart-prng`).

use smart_core::{compaction_stats, size_circuit, DelaySpec, SizingOptions};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_prng::Prng;
use smart_sta::{max_delay, Boundary};

const CASES: usize = 24;

/// A pool of cheap, diverse macro instances.
fn spec(r: &mut Prng) -> MacroSpec {
    match r.usize_in(0, 9) {
        0 => MacroSpec::Incrementor {
            width: r.usize_in(2, 11),
        },
        1 => MacroSpec::Decrementor {
            width: r.usize_in(2, 11),
        },
        2 => MacroSpec::ZeroDetect {
            width: r.usize_in(2, 17),
            style: ZeroDetectStyle::Static,
        },
        3 => MacroSpec::ZeroDetect {
            width: r.usize_in(4, 17),
            style: ZeroDetectStyle::Domino,
        },
        4 => MacroSpec::Decoder {
            in_bits: r.usize_in(1, 5),
        },
        5 => MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: r.usize_in(2, 9),
        },
        6 => MacroSpec::Mux {
            topology: MuxTopology::UnsplitDomino,
            width: r.usize_in(2, 9),
        },
        7 => MacroSpec::Mux {
            topology: MuxTopology::Tristate,
            width: r.usize_in(3, 9),
        },
        _ => MacroSpec::PriorityEncoder {
            out_bits: r.usize_in(1, 4),
        },
    }
}

fn boundary_for(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

#[test]
fn compaction_accounting_holds() {
    let lib = ModelLibrary::reference();
    let mut r = Prng::new(0x201);
    for _ in 0..CASES {
        let circuit = spec(&mut r).generate();
        let load = r.f64_in(5.0, 30.0);
        let boundary = boundary_for(&circuit, load);
        let opts = SizingOptions::default();
        let stats = compaction_stats(&circuit, &lib, &boundary, &opts).unwrap();
        assert!(!stats.classes.is_empty());
        assert!((stats.classes.len() as u128) <= stats.raw_paths);
        assert!(stats.after_regularity >= stats.classes.len());
        // Every class's representative is a real connected path.
        for class in &stats.classes {
            assert!(!class.arcs.is_empty());
            for pair in class.arcs.windows(2) {
                let a = &stats.graph.arcs[pair[0]];
                let b = &stats.graph.arcs[pair[1]];
                assert_eq!(a.to, b.from, "class path must be connected");
            }
            let first = &stats.graph.arcs[class.arcs[0]];
            let last = &stats.graph.arcs[*class.arcs.last().unwrap()];
            assert_eq!(first.from, class.source);
            assert_eq!(last.to, class.endpoint);
        }
    }
}

#[test]
fn sizer_report_matches_independent_sta() {
    let lib = ModelLibrary::reference();
    let mut r = Prng::new(0x202);
    for _ in 0..CASES {
        let circuit = spec(&mut r).generate();
        let load = r.f64_in(5.0, 30.0);
        let boundary = boundary_for(&circuit, load);
        let opts = SizingOptions::default();
        // A spec loose enough to always be feasible.
        let relaxed =
            DelaySpec::uniform(4000.0 * circuit.component_count() as f64 / 10.0 + 500.0);
        let out = size_circuit(&circuit, &lib, &boundary, &relaxed, &opts).unwrap();
        let independent = max_delay(&circuit, &lib, &out.sizing, &boundary).unwrap();
        assert!(
            (independent - out.measured_delay.max(out.measured_precharge)).abs() < 1e-6,
            "flow {} / {} vs STA {}",
            out.measured_delay,
            out.measured_precharge,
            independent
        );
        assert!(independent <= relaxed.data * (1.0 + opts.timing_tolerance));
    }
}

#[test]
fn heuristic_dominance_is_a_subset_of_pareto() {
    let lib = ModelLibrary::reference();
    let mut r = Prng::new(0x203);
    for _ in 0..CASES {
        let circuit = spec(&mut r).generate();
        let boundary = boundary_for(&circuit, 12.0);
        let heuristic = SizingOptions::default();
        let exact = SizingOptions {
            heuristic_dominance: false,
            ..Default::default()
        };
        let sh = compaction_stats(&circuit, &lib, &boundary, &heuristic).unwrap();
        let se = compaction_stats(&circuit, &lib, &boundary, &exact).unwrap();
        assert!(sh.classes.len() <= se.classes.len());
        assert_eq!(sh.raw_paths, se.raw_paths);
        assert_eq!(sh.after_regularity, se.after_regularity);
    }
}

#[test]
fn exact_dominance_also_converges() {
    let lib = ModelLibrary::reference();
    let mut r = Prng::new(0x204);
    for _ in 0..CASES {
        // The sound mode must produce a feasible solution too (it has
        // strictly more constraints, so the spec needs headroom).
        let circuit = spec(&mut r).generate();
        let boundary = boundary_for(&circuit, 12.0);
        let exact = SizingOptions {
            heuristic_dominance: false,
            ..Default::default()
        };
        let relaxed =
            DelaySpec::uniform(4000.0 * circuit.component_count() as f64 / 10.0 + 500.0);
        let out = size_circuit(&circuit, &lib, &boundary, &relaxed, &exact).unwrap();
        assert!(out.measured_delay <= relaxed.data * 1.01);
    }
}
