//! Corner-parity differential suite — the contract of multi-corner
//! robust sizing against the single-corner flow it generalizes:
//!
//! (a) a singleton `CornerSet` containing the library's own process is
//!     **bit-identical** to the historical `corners: None` solve — the
//!     corner loop with one member must be the old code path, not an
//!     approximation of it;
//! (b) the multi-corner optimum is *feasible at every corner*, verified
//!     by re-measuring the shipped sizing standalone under each corner's
//!     library (not trusting the solver's own report);
//! (c) the robust solution is *never better* than the per-corner optimum
//!     at that corner — it satisfies a superset of each single-corner
//!     problem's constraints, so a cheaper robust sizing would mean the
//!     corner constraints leaked (soundness bound);
//! (d) the multi-corner solve is byte-identical across worker counts and
//!     across cache-cold vs cache-warm runs.

use std::sync::Arc;

use smart_core::{
    explore_with_parallel, measure_phase_delays, size_circuit, CornerDelay, DelaySpec,
    Exploration, ParallelOptions, SizingCache, SizingOptions, SizingOutcome,
};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::{Corner, CornerSet, ModelLibrary};
use smart_sta::Boundary;

fn mux(width: usize) -> MacroSpec {
    MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width,
    }
}

fn boundary(load: f64) -> Boundary {
    let mut b = Boundary::default();
    b.output_loads.insert("y".into(), load);
    b
}

fn with_corners(set: CornerSet) -> SizingOptions {
    let mut opts = SizingOptions::default();
    opts.corners = Some(set);
    opts
}

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Full bitwise equality of two outcomes, including the per-corner
/// measurement table — the parity contract is exact replay, not
/// tolerance-equal results.
fn assert_bitwise_equal(a: &SizingOutcome, b: &SizingOutcome, what: &str) {
    assert_eq!(a.sizing.len(), b.sizing.len(), "{what}: width count");
    for (i, (x, y)) in a
        .sizing
        .as_slice()
        .iter()
        .zip(b.sizing.as_slice())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: width[{i}]");
    }
    assert_eq!(
        a.measured_delay.to_bits(),
        b.measured_delay.to_bits(),
        "{what}: measured_delay"
    );
    assert_eq!(
        a.measured_precharge.to_bits(),
        b.measured_precharge.to_bits(),
        "{what}: measured_precharge"
    );
    assert_eq!(
        a.total_width.to_bits(),
        b.total_width.to_bits(),
        "{what}: total_width"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.constraint_paths, b.constraint_paths, "{what}: constraint_paths");
    assert_eq!(a.raw_paths, b.raw_paths, "{what}: raw_paths");
    assert_eq!(
        a.spec_relaxation.to_bits(),
        b.spec_relaxation.to_bits(),
        "{what}: spec_relaxation"
    );
    assert_eq!(a.gp_restarts, b.gp_restarts, "{what}: gp_restarts");
    assert_eq!(a.binding_corner, b.binding_corner, "{what}: binding_corner");
    assert_eq!(
        a.corner_delays.len(),
        b.corner_delays.len(),
        "{what}: corner count"
    );
    for (x, y) in a.corner_delays.iter().zip(&b.corner_delays) {
        assert_eq!(x.corner, y.corner, "{what}: corner name");
        assert_eq!(
            x.data.to_bits(),
            y.data.to_bits(),
            "{what}: corner {} data",
            x.corner
        );
        assert_eq!(
            x.precharge.to_bits(),
            y.precharge.to_bits(),
            "{what}: corner {} precharge",
            x.corner
        );
    }
}

// ---------------------------------------------------------------- (a)

#[test]
fn singleton_typical_corner_set_is_bit_identical_to_default_options() {
    let circuit = mux(4).generate();
    let lib = ModelLibrary::reference();
    let boundary = boundary(18.0);
    let spec = DelaySpec::uniform(300.0);

    let base = size_circuit(&circuit, &lib, &boundary, &spec, &SizingOptions::default())
        .expect("default solve");
    // Both paths populate the corner table: the default run reports its
    // single measurement under the name "typical".
    assert_eq!(base.corner_delays.len(), 1);
    assert_eq!(base.corner_delays[0].corner, "typical");
    assert_eq!(base.binding_corner, "typical");
    assert_eq!(
        base.corner_delays[0].data.to_bits(),
        base.measured_delay.to_bits()
    );

    // Explicit singleton with the library's own process.
    let explicit = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &spec,
        &with_corners(CornerSet::single("typical", lib.process().clone())),
    )
    .expect("explicit singleton solve");
    assert_bitwise_equal(&base, &explicit, "explicit singleton vs default");

    // Identity-derate singleton: `x * 1.0` must preserve every f64 bit.
    let derated = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &spec,
        &with_corners(CornerSet::typical_of(lib.process())),
    )
    .expect("identity-derate singleton solve");
    assert_bitwise_equal(&base, &derated, "identity-derate singleton vs default");
}

// ---------------------------------------------------------------- (b)

#[test]
fn multi_corner_optimum_is_feasible_at_every_corner_re_measured_standalone() {
    let circuit = mux(4).generate();
    let lib = ModelLibrary::reference();
    let boundary = boundary(18.0);
    let spec = DelaySpec::uniform(340.0);
    let set = CornerSet::slow_typical_fast(lib.process());
    let opts = with_corners(set.clone());

    let robust = size_circuit(&circuit, &lib, &boundary, &spec, &opts).expect("robust solve");
    assert_eq!(robust.corner_delays.len(), set.len());
    assert!(
        robust.spec_relaxation == 0.0,
        "spec must be loose enough that the ladder's first rung holds \
         (got relaxation {})",
        robust.spec_relaxation
    );

    let data_limit = spec.data * (1.0 + opts.timing_tolerance);
    let pre_limit = spec.precharge_budget() * (1.0 + opts.timing_tolerance);
    let mut worst: Option<&CornerDelay> = None;
    for (corner, reported) in set.corners().iter().zip(&robust.corner_delays) {
        assert_eq!(corner.name, reported.corner, "corner table order");
        // Standalone re-measure: fresh library from the corner's process,
        // default (corner-less) options — no shared state with the solve.
        let clib = ModelLibrary::new(corner.process.clone());
        let (data, pre) = measure_phase_delays(
            &circuit,
            &clib,
            &robust.sizing,
            &boundary,
            &SizingOptions::default(),
        )
        .expect("standalone corner measurement");
        assert_eq!(
            data.to_bits(),
            reported.data.to_bits(),
            "corner {}: reported data vs standalone re-measure",
            corner.name
        );
        assert_eq!(
            pre.to_bits(),
            reported.precharge.to_bits(),
            "corner {}: reported precharge vs standalone re-measure",
            corner.name
        );
        assert!(
            data <= data_limit,
            "corner {}: data {data} ps exceeds limit {data_limit} ps",
            corner.name
        );
        assert!(
            pre <= pre_limit,
            "corner {}: precharge {pre} ps exceeds limit {pre_limit} ps",
            corner.name
        );
        if worst.map(|w| reported.data > w.data).unwrap_or(true) {
            worst = Some(reported);
        }
    }
    // The binding corner is exactly the worst data-phase member.
    assert_eq!(
        robust.binding_corner,
        worst.expect("nonempty corner table").corner,
        "binding corner must be the worst-data member"
    );
    // The headline numbers are the max over the table.
    let max_data = robust
        .corner_delays
        .iter()
        .map(|c| c.data)
        .fold(0.0f64, f64::max);
    assert_eq!(robust.measured_delay.to_bits(), max_data.to_bits());
}

// ---------------------------------------------------------------- (c)

#[test]
fn robust_solution_is_never_better_than_the_per_corner_optimum() {
    let circuit = mux(4).generate();
    let lib = ModelLibrary::reference();
    let boundary = boundary(18.0);
    let spec = DelaySpec::uniform(340.0);
    let set = CornerSet::slow_typical_fast(lib.process());

    let robust = size_circuit(&circuit, &lib, &boundary, &spec, &with_corners(set.clone()))
        .expect("robust solve");

    for corner in set.corners() {
        // The single-corner problem at this corner: a strict subset of
        // the robust problem's constraints over the same variables.
        let single = size_circuit(
            &circuit,
            &lib,
            &boundary,
            &spec,
            &with_corners(CornerSet::new(vec![Corner {
                name: corner.name.clone(),
                process: corner.process.clone(),
            }])),
        )
        .expect("per-corner solve");
        // More constraints can only cost more area (GP solves to a small
        // relative tolerance, hence the epsilon).
        assert!(
            robust.total_width >= single.total_width * (1.0 - 1e-6),
            "corner {}: robust width {} beats the single-corner optimum {} \
             — corner constraints leaked out of the GP",
            corner.name,
            robust.total_width,
            single.total_width
        );
    }
}

#[test]
fn derated_corners_actually_move_the_measurement() {
    // Guard against a trivially-passing suite: slow and fast must not
    // alias the typical process, or (b) and (c) test nothing.
    let circuit = mux(4).generate();
    let lib = ModelLibrary::reference();
    let boundary = boundary(18.0);
    let spec = DelaySpec::uniform(340.0);

    let robust = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &spec,
        &with_corners(CornerSet::slow_typical_fast(lib.process())),
    )
    .expect("robust solve");
    let by_name = |n: &str| {
        robust
            .corner_delays
            .iter()
            .find(|c| c.corner == n)
            .unwrap_or_else(|| panic!("corner {n} missing"))
    };
    let (slow, typical, fast) = (by_name("slow"), by_name("typical"), by_name("fast"));
    assert!(
        slow.data > typical.data && typical.data > fast.data,
        "derates must order the corners: slow {} > typical {} > fast {}",
        slow.data,
        typical.data,
        fast.data
    );
    assert_eq!(robust.binding_corner, "slow");
}

// ---------------------------------------------------------------- (d)

fn render(table: &Exploration) -> String {
    let mut out = String::new();
    for (i, c) in table.candidates.iter().enumerate() {
        out.push_str(&format!("[{i}] spec={}", c.spec));
        match &c.result {
            Ok(m) => {
                out.push_str(&format!(
                    " ok delay={} pre={} width={} relax={} binding={} corners=",
                    bits(m.outcome.measured_delay),
                    bits(m.outcome.measured_precharge),
                    bits(m.outcome.total_width),
                    bits(m.outcome.spec_relaxation),
                    m.outcome.binding_corner,
                ));
                for cd in &m.outcome.corner_delays {
                    out.push_str(&format!("{}:{}:{};", cd.corner, bits(cd.data), bits(cd.precharge)));
                }
                out.push_str(" widths=");
                for w in m.outcome.sizing.as_slice() {
                    out.push_str(&bits(*w));
                    out.push(',');
                }
            }
            Err(e) => out.push_str(&format!(" err={e:?}")),
        }
        out.push('\n');
    }
    out
}

#[test]
fn multi_corner_sweep_is_byte_identical_across_worker_counts() {
    let lib = ModelLibrary::reference();
    let spec = DelaySpec::uniform(360.0);
    let boundary = boundary(15.0);
    let specs = vec![
        mux(2),
        mux(4),
        MacroSpec::Mux {
            topology: MuxTopology::Tristate,
            width: 4,
        },
    ];
    let opts = with_corners(CornerSet::slow_typical_fast(lib.process()));

    let serial = explore_with_parallel(
        specs.clone(),
        |s| s.generate(),
        &lib,
        &boundary,
        &spec,
        &opts,
        &ParallelOptions::serial(),
    );
    let parallel = explore_with_parallel(
        specs,
        |s| s.generate(),
        &lib,
        &boundary,
        &spec,
        &opts,
        &ParallelOptions::with_workers(4),
    );
    assert_eq!(
        render(&serial),
        render(&parallel),
        "multi-corner exploration must not depend on worker count"
    );
}

#[test]
fn multi_corner_solve_is_byte_identical_cache_warm_vs_cold() {
    let circuit = mux(4).generate();
    let lib = ModelLibrary::reference();
    let boundary = boundary(18.0);
    let spec = DelaySpec::uniform(340.0);

    let cache = Arc::new(SizingCache::new());
    let mut opts = with_corners(CornerSet::slow_typical_fast(lib.process()));
    opts.cache = Some(Arc::clone(&cache));

    let cold = size_circuit(&circuit, &lib, &boundary, &spec, &opts).expect("cold solve");
    let (h0, m0) = cache.stats();
    assert_eq!((h0, m0), (0, 1), "cold run must miss exactly once");
    let warm = size_circuit(&circuit, &lib, &boundary, &spec, &opts).expect("warm solve");
    let (h1, m1) = cache.stats();
    assert_eq!((h1, m1), (1, 1), "warm run must hit the cold entry");
    assert_bitwise_equal(&cold, &warm, "cache-warm vs cache-cold");
}
