//! Fault-isolation tests for the exploration runtime: pathological
//! candidates (panicking generators, infeasible specs, non-finite
//! boundaries, exhausted budgets) must become typed table rows or typed
//! errors — never a dead sweep, never a panic escaping the flow.

use std::time::Duration;

use smart_core::{
    explore, explore_with, minimize_delay, size_circuit, DelaySpec, FlowBudget, FlowError,
    LintGate, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_netlist::{Circuit, ComponentKind, DeviceRole, Skew};
use smart_sta::Boundary;

fn mux(topology: MuxTopology) -> MacroSpec {
    MacroSpec::Mux { topology, width: 4 }
}

fn boundary(load: f64) -> Boundary {
    let mut b = Boundary::default();
    b.output_loads.insert("y".into(), load);
    b
}

#[test]
fn panicking_candidate_still_yields_a_full_exploration_table() {
    let lib = ModelLibrary::reference();
    let specs = vec![
        mux(MuxTopology::StronglyMutexedPass),
        mux(MuxTopology::UnsplitDomino), // this one's generator will panic
        mux(MuxTopology::Tristate),
    ];
    let n = specs.len();
    let table = explore_with(
        specs,
        |s| {
            if matches!(
                s,
                MacroSpec::Mux {
                    topology: MuxTopology::UnsplitDomino,
                    ..
                }
            ) {
                panic!("deliberately broken generator");
            }
            s.generate()
        },
        &lib,
        &boundary(15.0),
        &DelaySpec::uniform(400.0),
        &SizingOptions::default(),
    );

    // One row per alternative — the panic cost one row, not the sweep.
    assert_eq!(table.candidates.len(), n);
    assert_eq!(table.feasible_count(), n - 1);
    let broken = &table.candidates[1];
    assert!(broken.circuit.is_none(), "panicked before elaboration");
    match &broken.result {
        Err(FlowError::Internal { candidate, panic_msg }) => {
            assert!(candidate.contains("mux"), "{candidate}");
            assert!(panic_msg.contains("deliberately broken"), "{panic_msg}");
        }
        other => panic!("expected Internal row, got {other:?}"),
    }
    assert_eq!(table.failure_taxonomy(), vec![("panic", 1)]);
    // The survivors still rank.
    assert!(table.best_by_width().is_some());
    assert!(table.best_by_power().is_some());
}

#[test]
fn panic_during_sizing_is_contained_too() {
    // A panic raised *after* elaboration (inside size_and_measure's
    // boundary) must also become an Internal row. We provoke it with a
    // generator returning a circuit whose sizing panics is hard to arrange
    // honestly, so instead panic in the elaborator for a middle candidate
    // and verify order/count bookkeeping stays exact.
    let lib = ModelLibrary::reference();
    let specs = vec![
        mux(MuxTopology::StronglyMutexedPass),
        mux(MuxTopology::Tristate),
    ];
    let table = explore_with(
        specs,
        |s| {
            if matches!(
                s,
                MacroSpec::Mux {
                    topology: MuxTopology::Tristate,
                    ..
                }
            ) {
                // Panic with a String payload to exercise that downcast arm.
                panic!("{}", String::from("string payload panic"));
            }
            s.generate()
        },
        &lib,
        &boundary(15.0),
        &DelaySpec::uniform(400.0),
        &SizingOptions::default(),
    );
    assert_eq!(table.candidates.len(), 2);
    match &table.candidates[1].result {
        Err(FlowError::Internal { panic_msg, .. }) => {
            assert_eq!(panic_msg, "string payload panic");
        }
        other => panic!("expected Internal row, got {other:?}"),
    }
}

#[test]
fn infeasible_spec_walks_the_relaxation_ladder_and_records_the_rung() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let b = boundary(15.0);
    let mut opts = SizingOptions::default();
    let (t_star, _) = minimize_delay(&circuit, &lib, &b, &opts).expect("t*");

    // 5% below the achievable minimum: infeasible as asked...
    let spec = DelaySpec::uniform(t_star * 0.95);
    let strict = size_circuit(&circuit, &lib, &b, &spec, &opts);
    assert!(strict.is_err(), "sub-minimum spec must fail without a ladder");

    // ...but the +2% / +10% relaxation ladder rescues it at the last rung.
    opts.relaxation = vec![0.02, 0.10];
    let out = size_circuit(&circuit, &lib, &b, &spec, &opts).expect("ladder rescues");
    assert_eq!(out.spec_relaxation, 0.10, "achieved rung must be recorded");
    let relaxed_target = spec.relaxed(0.10).data;
    assert!(
        out.measured_delay <= relaxed_target * (1.0 + opts.timing_tolerance),
        "delay {} vs relaxed target {relaxed_target}",
        out.measured_delay
    );

    // A feasible spec never relaxes.
    let easy = size_circuit(&circuit, &lib, &b, &DelaySpec::uniform(t_star * 1.5), &opts)
        .expect("feasible");
    assert_eq!(easy.spec_relaxation, 0.0);
}

#[test]
fn exhausted_ladder_returns_the_last_typed_error() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let b = boundary(15.0);
    let mut opts = SizingOptions::default();
    // 1 ps is hopeless even relaxed by 10%.
    opts.relaxation = vec![0.02, 0.05, 0.10];
    let err = size_circuit(&circuit, &lib, &b, &DelaySpec::uniform(1.0), &opts).unwrap_err();
    let tag = err.taxonomy();
    assert!(
        tag == "infeasible" || tag == "no-convergence",
        "expected a relaxable taxonomy, got {tag} ({err})"
    );
}

#[test]
fn zero_wall_clock_budget_trips_budget_exceeded() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let mut opts = SizingOptions::default();
    opts.budget.wall_clock = Some(Duration::ZERO);
    let err =
        size_circuit(&circuit, &lib, &boundary(15.0), &DelaySpec::uniform(400.0), &opts)
            .unwrap_err();
    match &err {
        FlowError::BudgetExceeded { .. } => {}
        other => panic!("expected BudgetExceeded, got {other}"),
    }
    assert_eq!(err.taxonomy(), "budget");
}

#[test]
fn newton_step_budget_is_cooperative_and_typed() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let mut opts = SizingOptions::default();
    // One Newton step total is never enough to center a real sizing GP.
    opts.budget.max_gp_iters = Some(1);
    let err =
        size_circuit(&circuit, &lib, &boundary(15.0), &DelaySpec::uniform(400.0), &opts)
            .unwrap_err();
    assert_eq!(err.taxonomy(), "budget", "{err}");
}

#[test]
fn candidate_budget_caps_the_sweep_but_keeps_the_table_complete() {
    let lib = ModelLibrary::reference();
    let mut opts = SizingOptions::default();
    opts.budget = FlowBudget {
        max_candidates: Some(1),
        ..FlowBudget::unlimited()
    };
    let request = mux(MuxTopology::StronglyMutexedPass);
    let table = explore(&request, &lib, &boundary(15.0), &DelaySpec::uniform(400.0), &opts);
    assert!(table.candidates.len() > 1, "mux database has alternatives");
    // Requested topology is evaluated first and within budget.
    assert_eq!(table.candidates[0].spec, request);
    assert!(table.candidates[0].result.is_ok());
    for over in &table.candidates[1..] {
        match &over.result {
            Err(FlowError::BudgetExceeded { what, .. }) => assert_eq!(*what, "candidates"),
            other => panic!("expected BudgetExceeded row, got {other:?}"),
        }
        assert!(over.circuit.is_none(), "capped candidates are not elaborated");
    }
    let tax = table.failure_taxonomy();
    assert_eq!(tax, vec![("budget", table.candidates.len() - 1)]);
}

#[test]
fn non_finite_boundary_is_a_typed_error_not_a_panic() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    for bad in [f64::NAN, f64::INFINITY] {
        let err = size_circuit(
            &circuit,
            &lib,
            &boundary(bad),
            &DelaySpec::uniform(400.0),
            &SizingOptions::default(),
        )
        .unwrap_err();
        let tag = err.taxonomy();
        assert!(
            tag == "non-finite" || tag == "sta",
            "load {bad}: expected non-finite taxonomy, got {tag} ({err})"
        );
    }
}

#[test]
fn non_finite_or_non_positive_delay_spec_is_a_typed_error() {
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    for bad in [f64::NAN, f64::INFINITY, 0.0, -5.0] {
        let err = size_circuit(
            &circuit,
            &lib,
            &boundary(15.0),
            &DelaySpec::uniform(bad),
            &SizingOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.taxonomy(), "non-finite", "spec {bad}: {err}");
    }
}

#[test]
fn exploration_with_all_infeasible_candidates_reports_every_row() {
    // Every mux alternative at a 1 ps spec: nothing is feasible, but the
    // table still carries one typed row per alternative.
    let lib = ModelLibrary::reference();
    let request = mux(MuxTopology::StronglyMutexedPass);
    let table = explore(
        &request,
        &lib,
        &boundary(15.0),
        &DelaySpec::uniform(1.0),
        &SizingOptions::default(),
    );
    assert!(!table.candidates.is_empty());
    assert_eq!(table.feasible_count(), 0);
    assert!(table.best_by_width().is_none());
    let total: usize = table.failure_taxonomy().iter().map(|(_, n)| n).sum();
    assert_eq!(total, table.candidates.len(), "every row classified");
}

/// Regression: a candidate whose output is reachable only from a net STA
/// never seeds (a floating driver, never exposed as an input port) used
/// to measure a 0 ps delay via the silent `unwrap_or(0.0)` fallback —
/// trivially "meeting" any spec and winning every delay comparison in the
/// sweep. It must instead be a typed `no-endpoints` taxonomy row.
#[test]
fn severed_candidate_is_a_no_endpoints_row_not_a_zero_ps_winner() {
    let lib = ModelLibrary::reference();
    // "fl" is never exposed as an input port, so timing analysis never
    // seeds it and no arrival ever reaches the output.
    let severed = || {
        let mut c = Circuit::new("severed");
        let fl = c.add_net("fl").unwrap();
        let y = c.add_net("y").unwrap();
        let bind = vec![
            (DeviceRole::PullUp, c.label("P")),
            (DeviceRole::PullDown, c.label("N")),
        ];
        c.add(
            "u0",
            ComponentKind::Inverter { skew: Skew::Balanced },
            &[fl, y],
            &bind,
        )
        .unwrap();
        c.expose_output("y", y);
        c
    };
    let mut opts = SizingOptions::default();
    // The lint gate would reject the floating driver before sizing; turn
    // it off so the sweep exercises the measurement path itself.
    opts.lint = LintGate::Off;
    let table = explore_with(
        vec![
            mux(MuxTopology::StronglyMutexedPass),
            mux(MuxTopology::Tristate), // becomes the severed circuit
        ],
        |s| {
            if matches!(
                s,
                MacroSpec::Mux {
                    topology: MuxTopology::Tristate,
                    ..
                }
            ) {
                severed()
            } else {
                s.generate()
            }
        },
        &lib,
        &boundary(15.0),
        &DelaySpec::uniform(400.0),
        &opts,
    );
    assert_eq!(table.candidates.len(), 2);
    match &table.candidates[1].result {
        Err(FlowError::NoEndpoints) => {}
        other => panic!("expected a NoEndpoints row, got {other:?}"),
    }
    assert!(
        table.failure_taxonomy().contains(&("no-endpoints", 1)),
        "{:?}",
        table.failure_taxonomy()
    );
    // The severed candidate must never outrank the honest one.
    assert_eq!(table.feasible_count(), 1);
    let best = table.best_by_width().expect("healthy candidate sizes");
    assert_eq!(best.spec, mux(MuxTopology::StronglyMutexedPass));
}

#[test]
fn gp_restart_counter_is_reported() {
    // The retry machinery is exercised indirectly; on a healthy problem it
    // must report zero restarts (the first attempt converges).
    let circuit = mux(MuxTopology::StronglyMutexedPass).generate();
    let lib = ModelLibrary::reference();
    let out = size_circuit(
        &circuit,
        &lib,
        &boundary(15.0),
        &DelaySpec::uniform(400.0),
        &SizingOptions::default(),
    )
    .expect("feasible");
    assert_eq!(out.gp_restarts, 0);
    assert_eq!(out.spec_relaxation, 0.0);
}
