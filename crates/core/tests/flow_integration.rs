//! End-to-end flow tests: compaction, GP sizing with STA verification,
//! delay minimization, exploration, and the §6.1 baseline-vs-SMART
//! protocol on real database macros.

use smart_core::{
    baseline_sizing, compaction_stats, explore, minimize_delay, size_circuit,
    BaselineMargins, DelaySpec, FlowError, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_sta::{max_delay, Boundary};

fn lib() -> ModelLibrary {
    ModelLibrary::reference()
}

fn loaded_boundary(out_ports: &[&str], load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in out_ports {
        b.output_loads.insert((*p).to_string(), load);
    }
    b
}

#[test]
fn mux_sizing_meets_spec_and_is_sta_verified() {
    let circuit = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    }
    .generate();
    let lib = lib();
    let boundary = loaded_boundary(&["y"], 25.0);
    let spec = DelaySpec::uniform(200.0);
    let out = size_circuit(&circuit, &lib, &boundary, &spec, &SizingOptions::default())
        .expect("sizing succeeds");
    assert!(
        out.measured_delay <= spec.data * 1.02,
        "measured {} vs spec {}",
        out.measured_delay,
        spec.data
    );
    // Re-measure independently with the STA convenience entry point.
    let independent = max_delay(&circuit, &lib, &out.sizing, &boundary).unwrap();
    assert!(independent <= spec.data * 1.02);
    assert!(out.total_width > 0.0);
}

#[test]
fn tighter_specs_cost_more_width() {
    let circuit = MacroSpec::Mux {
        topology: MuxTopology::UnsplitDomino,
        width: 8,
    }
    .generate();
    let lib = lib();
    let boundary = loaded_boundary(&["y"], 30.0);
    let opts = SizingOptions::default();
    let (t_star, _) = minimize_delay(&circuit, &lib, &boundary, &opts).expect("t*");
    let loose = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &DelaySpec::uniform(t_star * 2.2),
        &opts,
    )
    .expect("loose spec");
    let tight = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &DelaySpec::uniform(t_star * 1.2),
        &opts,
    )
    .expect("tight spec");
    assert!(
        tight.total_width > loose.total_width * 1.05,
        "tight {} vs loose {}",
        tight.total_width,
        loose.total_width
    );
}

#[test]
fn impossible_spec_is_reported_infeasible() {
    let circuit = MacroSpec::Incrementor { width: 8 }.generate();
    let lib = lib();
    let boundary = loaded_boundary(&["y7"], 10.0);
    let spec = DelaySpec::uniform(5.0); // less than one gate's intrinsic delay
    // Default gate: the static audit certifies the contradiction before
    // a single Newton step, naming the conflicting constraints.
    let err = size_circuit(&circuit, &lib, &boundary, &spec, &SizingOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, FlowError::InfeasibleCertificate { ref constraints, .. } if !constraints.is_empty()),
        "expected a static infeasibility certificate, got {err:?}"
    );
    assert_eq!(err.taxonomy(), "infeasible");
    // Audit off: the solver reaches the same verdict dynamically.
    let off = SizingOptions {
        audit: smart_core::AuditGate::Off,
        ..Default::default()
    };
    let err = size_circuit(&circuit, &lib, &boundary, &spec, &off).unwrap_err();
    assert!(
        matches!(err, FlowError::Gp(_)),
        "expected GP infeasibility with the audit off, got {err:?}"
    );
    assert_eq!(err.taxonomy(), "infeasible");
}

#[test]
fn minimize_delay_finds_the_fast_corner() {
    let circuit = MacroSpec::ZeroDetect {
        width: 16,
        style: ZeroDetectStyle::Static,
    }
    .generate();
    let lib = lib();
    let boundary = loaded_boundary(&["z"], 15.0);
    let opts = SizingOptions::default();
    let (t_star, fast) = minimize_delay(&circuit, &lib, &boundary, &opts).expect("min delay");
    assert!(t_star > 0.0);
    // The fast corner must be achievable as a spec (with slack for the
    // path-based vs graph-based slope difference).
    let spec = DelaySpec::uniform(t_star * 1.1);
    let sized = size_circuit(&circuit, &lib, &boundary, &spec, &opts).expect("achievable");
    // And a 30% relaxed spec must need no more width.
    let relaxed = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &DelaySpec::uniform(t_star * 1.4),
        &opts,
    )
    .expect("relaxed");
    assert!(relaxed.total_width <= sized.total_width * 1.001);
    let _ = fast;
}

#[test]
fn compaction_collapses_regular_structures() {
    // The 16-bit incrementor has shared labels on every slice: raw paths
    // grow with width, compacted classes must stay near-constant.
    let lib = lib();
    let opts = SizingOptions::default();
    let c8 = MacroSpec::Incrementor { width: 8 }.generate();
    let c16 = MacroSpec::Incrementor { width: 16 }.generate();
    let b = Boundary::default();
    let s8 = compaction_stats(&c8, &lib, &b, &opts).unwrap();
    let s16 = compaction_stats(&c16, &lib, &b, &opts).unwrap();
    assert!(s16.raw_paths > 2 * s8.raw_paths, "raw paths grow");
    // A ripple chain has O(width) genuinely distinct path lengths, so
    // classes may grow linearly — but never faster.
    assert!(
        s16.classes.len() <= s8.classes.len() * 5 / 2 + 4,
        "classes grow at most linearly: 8-bit {} vs 16-bit {}",
        s8.classes.len(),
        s16.classes.len()
    );
    assert!(s16.ratio() > 2.0, "ratio {}", s16.ratio());
}

#[test]
fn compaction_is_sound_for_the_critical_path() {
    // The measured critical delay must equal the worst compacted-class
    // delay: dominance never drops the true critical path.
    let circuit = MacroSpec::Decoder { in_bits: 4 }.generate();
    let lib = lib();
    let boundary = Boundary::default();
    let opts = SizingOptions::default();
    let (t_star, _) = minimize_delay(&circuit, &lib, &boundary, &opts).expect("t*");
    let out = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &DelaySpec::uniform(t_star * 1.3),
        &opts,
    )
    .expect("sizing");
    let independent = max_delay(&circuit, &lib, &out.sizing, &boundary).unwrap();
    assert!(
        (independent - out.measured_delay).abs() < 1e-6,
        "flow-reported {} vs full STA {}",
        out.measured_delay,
        independent
    );
}

#[test]
fn designer_pins_are_respected() {
    let circuit = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    }
    .generate();
    let lib = lib();
    let boundary = loaded_boundary(&["y"], 20.0);
    let mut opts = SizingOptions::default();
    opts.pinned.insert("N2".into(), 6.0); // designer fixes the pass label
    let out = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &DelaySpec::uniform(320.0),
        &opts,
    )
    .expect("sizing with pin");
    let n2 = circuit.labels().lookup("N2").unwrap();
    assert!(
        (out.sizing.width(n2) - 6.0).abs() < 0.01,
        "pinned N2 = {}",
        out.sizing.width(n2)
    );
    // Unknown pin name errors.
    let mut bad = SizingOptions::default();
    bad.pinned.insert("NOPE".into(), 2.0);
    let err =
        size_circuit(&circuit, &lib, &boundary, &DelaySpec::uniform(320.0), &bad).unwrap_err();
    assert!(matches!(err, FlowError::UnknownPin { .. }));
}

#[test]
fn smart_beats_baseline_at_equal_delay() {
    // The §6.1 protocol: hand-design the macro, measure it, re-size with
    // SMART to the same delay, compare widths.
    let lib = lib();
    for spec in [
        MacroSpec::Incrementor { width: 13 },
        MacroSpec::ZeroDetect {
            width: 16,
            style: ZeroDetectStyle::Static,
        },
        MacroSpec::Decoder { in_bits: 3 },
    ] {
        let circuit = spec.generate();
        let out_names: Vec<String> =
            circuit.output_ports().map(|p| p.name.clone()).collect();
        let mut boundary = Boundary::default();
        for n in &out_names {
            boundary.output_loads.insert(n.clone(), 12.0);
        }
        let base = baseline_sizing(&circuit, &lib, &boundary, &BaselineMargins::default());
        let base_delay = max_delay(&circuit, &lib, &base, &boundary).unwrap();
        let base_width = circuit.total_width(&base);

        let sized = size_circuit(
            &circuit,
            &lib,
            &boundary,
            &DelaySpec::uniform(base_delay),
            &SizingOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(
            sized.total_width < base_width,
            "{spec}: SMART {} vs baseline {}",
            sized.total_width,
            base_width
        );
        let savings = 1.0 - sized.total_width / base_width;
        assert!(
            savings > 0.05,
            "{spec}: savings should be material, got {:.1}%",
            savings * 100.0
        );
    }
}

#[test]
fn exploration_ranks_mux_topologies() {
    let request = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    };
    let lib = lib();
    let boundary = loaded_boundary(&["y"], 25.0);
    let spec = DelaySpec::uniform(300.0);
    let table = explore(&request, &lib, &boundary, &spec, &SizingOptions::default());
    assert!(table.candidates.len() >= 4);
    assert!(table.feasible_count() >= 2, "most topologies meet 300 ps");
    let best = table.best_by_width().expect("a winner exists");
    let metrics = best.result.as_ref().unwrap();
    // Every other feasible candidate is no lighter.
    for cand in &table.candidates {
        if let Ok(m) = &cand.result {
            assert!(m.outcome.total_width >= metrics.outcome.total_width - 1e-9);
        }
    }
}

#[test]
fn domino_mux_sizing_tracks_precharge_separately() {
    let circuit = MacroSpec::Mux {
        topology: MuxTopology::PartitionedDomino,
        width: 8,
    }
    .generate();
    let lib = lib();
    let boundary = loaded_boundary(&["y"], 20.0);
    let spec = DelaySpec {
        data: 220.0,
        precharge: Some(160.0),
    };
    let out = size_circuit(&circuit, &lib, &boundary, &spec, &SizingOptions::default())
        .expect("domino sizing");
    assert!(out.measured_delay <= spec.data * 1.02);
    assert!(out.measured_precharge <= 160.0 * 1.02);
    assert!(out.measured_precharge > 0.0, "precharge paths were timed");
}

#[test]
fn slow_corner_needs_more_width_at_the_same_spec() {
    use smart_models::Process;
    let circuit = MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    }
    .generate();
    let boundary = loaded_boundary(&["y"], 20.0);
    let spec = DelaySpec::uniform(280.0);
    let opts = SizingOptions::default();
    let typ = size_circuit(
        &circuit,
        &ModelLibrary::new(Process::reference()),
        &boundary,
        &spec,
        &opts,
    )
    .expect("typical");
    let slow = size_circuit(
        &circuit,
        &ModelLibrary::new(Process::slow_corner()),
        &boundary,
        &spec,
        &opts,
    )
    .expect("slow corner");
    let fast = size_circuit(
        &circuit,
        &ModelLibrary::new(Process::fast_corner()),
        &boundary,
        &spec,
        &opts,
    )
    .expect("fast corner");
    assert!(
        slow.total_width > typ.total_width && typ.total_width > fast.total_width,
        "corner ordering: slow {} typ {} fast {}",
        slow.total_width,
        typ.total_width,
        fast.total_width
    );
}

#[test]
fn incrementor_exploration_trades_ripple_vs_lookahead() {
    // At a relaxed spec the ripple chain wins on width; at a spec below
    // the ripple's reach, only the lookahead tree survives — the Fig.-1
    // story on a second macro family.
    let lib = lib();
    let width = 13;
    let request = MacroSpec::Incrementor { width };
    let ripple = request.generate();
    let out_names: Vec<String> = ripple.output_ports().map(|p| p.name.clone()).collect();
    let mut boundary = Boundary::default();
    for n in &out_names {
        boundary.output_loads.insert(n.clone(), 10.0);
    }
    let opts = SizingOptions::default();
    let (t_ripple, _) = minimize_delay(&ripple, &lib, &boundary, &opts).expect("ripple t*");
    let cla = MacroSpec::IncrementorCla { width }.generate();
    let (t_cla, _) = minimize_delay(&cla, &lib, &boundary, &opts).expect("cla t*");
    assert!(
        t_cla < t_ripple * 0.75,
        "log-depth must be materially faster: cla {t_cla} vs ripple {t_ripple}"
    );

    // Relaxed exploration: both feasible, ripple lighter.
    let relaxed = explore(
        &request,
        &lib,
        &boundary,
        &DelaySpec::uniform(t_ripple * 1.5),
        &opts,
    );
    assert_eq!(relaxed.candidates.len(), 2);
    assert_eq!(relaxed.feasible_count(), 2);
    let best = relaxed.best_by_width().unwrap();
    assert!(
        matches!(best.spec, MacroSpec::Incrementor { .. }),
        "ripple wins relaxed: {}",
        best.spec
    );

    // Tight exploration: only the lookahead makes it.
    let tight = explore(
        &request,
        &lib,
        &boundary,
        &DelaySpec::uniform(t_cla * 1.3),
        &opts,
    );
    assert_eq!(tight.feasible_count(), 1);
    let best = tight.best_by_width().unwrap();
    assert!(
        matches!(best.spec, MacroSpec::IncrementorCla { .. }),
        "lookahead is the only tight survivor: {}",
        best.spec
    );
}

#[test]
fn warm_start_reproduces_the_cold_solution() {
    let circuit = MacroSpec::Mux {
        topology: MuxTopology::UnsplitDomino,
        width: 8,
    }
    .generate();
    let lib = lib();
    let boundary = loaded_boundary(&["y"], 20.0);
    let spec = DelaySpec::uniform(300.0);
    let cold = size_circuit(&circuit, &lib, &boundary, &spec, &SizingOptions::default())
        .expect("cold run");
    let warm_opts = SizingOptions {
        warm_start: Some(cold.sizing.clone()),
        ..Default::default()
    };
    // Slightly perturbed spec, warm-started from the previous solution.
    let warm = size_circuit(
        &circuit,
        &lib,
        &boundary,
        &DelaySpec::uniform(305.0),
        &warm_opts,
    )
    .expect("warm run");
    assert!(warm.measured_delay <= 305.0 * 1.02);
    // Solutions are close (the optimum moved only slightly).
    for (label, _) in circuit.labels().iter() {
        let c = cold.sizing.width(label);
        let w = warm.sizing.width(label);
        assert!(
            (w - c).abs() / c < 0.25,
            "label widths should stay close: {c} vs {w}"
        );
    }
}
