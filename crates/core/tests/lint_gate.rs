//! The exploration lint gate (ISSUE PR 3 acceptance): an electrically
//! illegal candidate is rejected as a typed `FlowError::Lint` row
//! *before* any sizing work — zero GP iterations, zero cache lookups —
//! while clean candidates and `LintGate::Off` sweeps are unaffected.

use std::sync::Arc;

use smart_core::{
    explore_with, DelaySpec, FlowError, LintGate, SizingCache, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Network, Skew};
use smart_sta::Boundary;

/// The broken two-stage pipeline: D1 → inverter → *extra inverter* → D2.
/// The second inversion makes the D2 data input monotone-falling during
/// evaluate — rule SL101, Error severity.
fn broken_pipeline() -> Circuit {
    let mut c = Circuit::new("broken");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    let q = c.add_net("q").unwrap();
    let qb = c.add_net("qb").unwrap();
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    let y = c.add_net("y").unwrap();
    let p = c.label("P1");
    let n = c.label("N1");
    let inv = |c: &mut Circuit, path: &str, a, y| {
        c.add(
            path,
            ComponentKind::Inverter { skew: Skew::Balanced },
            &[a, y],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap();
    };
    let dom = |c: &mut Circuit, path: &str, clk, d, y| {
        c.add(
            path,
            ComponentKind::Domino { network: Network::Input(0), clocked_eval: true },
            &[clk, d, y],
            &[
                (DeviceRole::Precharge, p),
                (DeviceRole::DataN, n),
                (DeviceRole::Evaluate, n),
            ],
        )
        .unwrap();
    };
    dom(&mut c, "d1", clk, a, dyn1);
    inv(&mut c, "h1", dyn1, q);
    inv(&mut c, "bad", q, qb);
    dom(&mut c, "d2", clk, qb, dyn2);
    inv(&mut c, "h2", dyn2, y);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("y", y);
    c.add_route_parasitics(0.5, 0.8);
    c
}

/// The poisoned candidate is tagged by a spec the generator intercepts.
fn poison_tag() -> MacroSpec {
    MacroSpec::Mux { topology: MuxTopology::Tristate, width: 4 }
}

fn generate(spec: &MacroSpec) -> Circuit {
    if *spec == poison_tag() {
        broken_pipeline()
    } else {
        spec.generate()
    }
}

fn boundary() -> Boundary {
    let mut b = Boundary::default();
    b.output_loads.insert("y".into(), 15.0);
    b
}

#[test]
fn poisoned_candidate_is_rejected_with_zero_sizing_work() {
    let lib = ModelLibrary::reference();
    let cache = Arc::new(SizingCache::new());
    let mut opts = SizingOptions::default();
    opts.cache = Some(Arc::clone(&cache));
    assert_eq!(opts.lint, LintGate::Errors, "the gate must default on");

    let exploration = explore_with(
        vec![poison_tag()],
        generate,
        &lib,
        &boundary(),
        &DelaySpec::uniform(400.0),
        &opts,
    );

    assert_eq!(exploration.candidates.len(), 1);
    let row = &exploration.candidates[0];
    assert!(row.circuit.is_some(), "the elaborated circuit is kept for reporting");
    let err = row.result.as_ref().expect_err("poisoned candidate must fail");
    match err {
        FlowError::Lint { candidate, errors, findings } => {
            assert_eq!(candidate, &poison_tag().to_string());
            assert!(*errors >= 1);
            assert!(findings.iter().any(|f| f.starts_with("SL101")), "{findings:?}");
        }
        other => panic!("expected FlowError::Lint, got {other:?}"),
    }
    assert_eq!(err.taxonomy(), "lint");

    // The acceptance criterion: zero sizing iterations. The gate sits
    // before `size_and_measure`, so the attached cache saw no lookup at
    // all — not even a probing miss.
    assert_eq!(cache.stats(), (0, 0), "lint rejection must cost zero cache traffic");
    assert_eq!(exploration.cache_hits, 0);
    assert_eq!(exploration.cache_misses, 0);
}

#[test]
fn gate_off_lets_the_same_candidate_reach_sizing() {
    let lib = ModelLibrary::reference();
    let cache = Arc::new(SizingCache::new());
    let mut opts = SizingOptions::default();
    opts.cache = Some(Arc::clone(&cache));
    opts.lint = LintGate::Off;

    let exploration = explore_with(
        vec![poison_tag()],
        generate,
        &lib,
        &boundary(),
        &DelaySpec::uniform(400.0),
        &opts,
    );

    let row = &exploration.candidates[0];
    assert!(
        !matches!(row.result, Err(FlowError::Lint { .. })),
        "LintGate::Off must not produce lint rows"
    );
    // With the gate off the candidate reached the sizer: the cache saw
    // its lookup (a miss — nothing was cached beforehand).
    assert!(cache.stats().1 >= 1, "sizing must have probed the cache");
}

#[test]
fn mixed_sweep_reports_lint_in_the_failure_taxonomy() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions::default();

    let exploration = explore_with(
        vec![
            MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 },
            poison_tag(),
            MacroSpec::Mux { topology: MuxTopology::EncodedSelectPass, width: 2 },
        ],
        generate,
        &lib,
        &boundary(),
        &DelaySpec::uniform(400.0),
        &opts,
    );

    assert_eq!(exploration.candidates.len(), 3);
    // The sweep survives the poisoned row and the clean rows still size.
    assert!(exploration.feasible_count() >= 1, "clean candidates must still size");
    let taxonomy = exploration.failure_taxonomy();
    assert!(
        taxonomy.contains(&("lint", 1)),
        "taxonomy must carry the lint row: {taxonomy:?}"
    );
    // Display of the lint row names the rule for the report table.
    let lint_row = exploration
        .candidates
        .iter()
        .find(|c| matches!(c.result, Err(FlowError::Lint { .. })))
        .unwrap();
    let msg = lint_row.result.as_ref().unwrap_err().to_string();
    assert!(msg.contains("rejected by lint"), "{msg}");
    assert!(msg.contains("SL101"), "{msg}");
}

#[test]
fn clean_database_sweeps_are_unaffected_by_the_gate() {
    let lib = ModelLibrary::reference();
    let request = MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 };

    let mut gate_on = SizingOptions::default();
    gate_on.lint = LintGate::Errors;
    let mut gate_off = SizingOptions::default();
    gate_off.lint = LintGate::Off;

    let spec = DelaySpec::uniform(400.0);
    let on = explore_with(
        request.alternatives(),
        MacroSpec::generate,
        &lib,
        &boundary(),
        &spec,
        &gate_on,
    );
    let off = explore_with(
        request.alternatives(),
        MacroSpec::generate,
        &lib,
        &boundary(),
        &spec,
        &gate_off,
    );

    assert_eq!(on.candidates.len(), off.candidates.len());
    assert!(
        on.candidates
            .iter()
            .all(|c| !matches!(c.result, Err(FlowError::Lint { .. }))),
        "database macros are lint-clean; the gate must reject none of them"
    );
    assert_eq!(on.feasible_count(), off.feasible_count());
    for (a, b) in on.candidates.iter().zip(&off.candidates) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.result.is_ok(), b.result.is_ok());
    }
}
