//! Dedicated unit tests for the dynamic-node noise report
//! ([`smart_core::DynamicNodeNoise`]): each metric checked against a
//! hand-computed value on a hand-sized domino circuit, with a positive
//! and a negative case per metric, plus the corner interaction — a
//! derated process must shift the capacitance-based metrics while the
//! width-ratio metric stays put.

use smart_core::{analyze_noise, DynamicNodeNoise};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::{Derate, ModelLibrary};
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Sizing};

/// The single-dynamic-node fixture: an unsplit domino mux (every product
/// term on one node — Fig. 2(e)), whose stack shape is known by
/// construction: `width` parallel branches of two series devices each.
fn domino_mux(width: usize) -> Circuit {
    MacroSpec::Mux {
        topology: MuxTopology::UnsplitDomino,
        width,
    }
    .generate()
}

/// Finds the domino component driving a dynamic node and returns the
/// precharge / data label ids plus the stack's branch and device counts.
fn dynamic_gate(circuit: &Circuit) -> (smart_netlist::LabelId, smart_netlist::LabelId, f64, f64) {
    for (_, comp) in circuit.components() {
        let ComponentKind::Domino { ref network, .. } = comp.kind else {
            continue;
        };
        if circuit.net(comp.output_net()).kind != NetKind::Dynamic {
            continue;
        }
        return (
            comp.label_of(DeviceRole::Precharge),
            comp.label_of(DeviceRole::DataN),
            network.top_branch_count() as f64,
            network.device_count() as f64,
        );
    }
    panic!("fixture has no dynamic domino node");
}

fn node_for<'a>(report: &'a [DynamicNodeNoise], what: &str) -> &'a DynamicNodeNoise {
    assert!(!report.is_empty(), "{what}: no dynamic nodes reported");
    &report[0]
}

#[test]
fn leakage_ratio_is_branch_weighted_data_width_over_precharge_width() {
    let circuit = domino_mux(4);
    let lib = ModelLibrary::reference();
    let (pre, data, branches, _) = dynamic_gate(&circuit);

    // Hand sizing: weak precharge holding four wide parallel branches.
    let mut sizing = Sizing::uniform(circuit.labels(), 2.0);
    sizing.set_width(pre, 1.0);
    sizing.set_width(data, 3.0);
    let report = analyze_noise(&circuit, &lib, &sizing);
    let node = node_for(&report.nodes, "weak precharge");
    let expected = branches * 3.0 / 1.0;
    assert_eq!(
        node.leakage_ratio.to_bits(),
        expected.to_bits(),
        "leakage ratio must be branches*w_data/w_pre = {expected}"
    );
    // Positive case: 12:1 pull-down-to-keeper is leaky at any sane limit.
    assert!(node.leaky(8.0), "4 branches x 3.0 over 1.0 must flag");

    // Negative case: beef up the precharge until the same stack holds.
    sizing.set_width(pre, 6.0);
    let held = analyze_noise(&circuit, &lib, &sizing);
    let node = node_for(&held.nodes, "strong precharge");
    assert_eq!(node.leakage_ratio.to_bits(), (branches * 3.0 / 6.0).to_bits());
    assert!(!node.leaky(8.0), "2:1 ratio must not flag at limit 8");
}

#[test]
fn charge_sharing_is_internal_stack_cap_over_total_node_cap() {
    let circuit = domino_mux(4);
    let lib = ModelLibrary::reference();
    let (_, data, branches, devices) = dynamic_gate(&circuit);
    assert!(
        devices > branches,
        "fixture must have series devices below the top row \
         (got {devices} devices over {branches} branches)"
    );

    let sizing = Sizing::uniform(circuit.labels(), 2.0);
    let report = analyze_noise(&circuit, &lib, &sizing);
    let node = node_for(&report.nodes, "uniform");
    // Hand-compute the reservoir: every stack device not on the node.
    let w_data = sizing.width(data);
    let internal = (devices - branches) * w_data * lib.process().diff_factor;
    assert!(
        node.charge_sharing > 0.0 && node.charge_sharing < 1.0,
        "exposure is a capacitance fraction, got {}",
        node.charge_sharing
    );
    // Recover the node cap the report used and cross-check the ratio.
    let node_cap = internal / node.charge_sharing - internal;
    let expected = internal / (internal + node_cap);
    assert!(
        (node.charge_sharing - expected).abs() < 1e-12,
        "charge sharing must be internal/(internal+node) cap"
    );

    // Positive direction: widening the stack grows the reservoir faster
    // than the node, so exposure must rise.
    let mut wide = Sizing::uniform(circuit.labels(), 2.0);
    wide.set_width(data, 8.0);
    let wide_report = analyze_noise(&circuit, &lib, &wide);
    assert!(
        node_for(&wide_report.nodes, "wide stack").charge_sharing > node.charge_sharing,
        "4x data width must raise charge-sharing exposure"
    );
}

#[test]
fn cap_per_drive_falls_with_precharge_strength() {
    let circuit = domino_mux(4);
    let lib = ModelLibrary::reference();
    let (pre, _, _, _) = dynamic_gate(&circuit);

    let mut weak = Sizing::uniform(circuit.labels(), 2.0);
    weak.set_width(pre, 1.0);
    let weak_node_cpd =
        node_for(&analyze_noise(&circuit, &lib, &weak).nodes, "weak").cap_per_drive;

    let mut strong = Sizing::uniform(circuit.labels(), 2.0);
    strong.set_width(pre, 8.0);
    let strong_node_cpd =
        node_for(&analyze_noise(&circuit, &lib, &strong).nodes, "strong").cap_per_drive;

    assert!(weak_node_cpd > 0.0 && strong_node_cpd > 0.0);
    // Not a clean 8x: the precharge device's own junction cap sits on the
    // node, so the numerator grows a little as the drive grows. The
    // restoring-drive figure must still fall, and by most of the 8x.
    assert!(
        strong_node_cpd < weak_node_cpd / 4.0,
        "8x precharge must cut cap-per-drive well below 1/4 \
         (weak {weak_node_cpd}, strong {strong_node_cpd})"
    );
}

#[test]
fn derated_corner_shifts_cap_metrics_but_not_width_ratios() {
    let circuit = domino_mux(4);
    let typical = ModelLibrary::reference();
    let slow = ModelLibrary::new(Derate::slow().apply(typical.process()));
    let sizing = Sizing::uniform(circuit.labels(), 2.0);

    let t = analyze_noise(&circuit, &typical, &sizing);
    let s = analyze_noise(&circuit, &slow, &sizing);
    let (t, s) = (node_for(&t.nodes, "typical"), node_for(&s.nodes, "slow"));

    // Leakage ratio is a pure width ratio: corner-independent, bit for
    // bit — a noise report that drifts across corners for the same
    // sizing would be double-counting the derate.
    assert_eq!(
        t.leakage_ratio.to_bits(),
        s.leakage_ratio.to_bits(),
        "leakage ratio must not move with the process corner"
    );
    // The capacitance metrics see the derated diffusion factor: the slow
    // corner's fatter junctions mean more stored charge per width, so
    // both exposures shift.
    assert_ne!(
        t.charge_sharing.to_bits(),
        s.charge_sharing.to_bits(),
        "charge sharing must see the corner's diffusion derate"
    );
    assert_ne!(
        t.cap_per_drive.to_bits(),
        s.cap_per_drive.to_bits(),
        "cap-per-drive must see the corner's diffusion derate"
    );
    assert!(
        s.charge_sharing > 0.0 && s.charge_sharing < 1.0,
        "derated exposure stays a fraction"
    );
}
