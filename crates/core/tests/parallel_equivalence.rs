//! Differential harness: parallel exploration must be **byte-identical**
//! to the serial flow. Every sweep is rendered to a canonical string —
//! every float as its exact bit pattern, every error via `Debug`, winners
//! by candidate index — and the render at 2/4/8 workers is compared to
//! workers = 1. Covers healthy sweeps over seeded random macro sets,
//! panic injection, expired budgets, candidate caps and pre-cancelled
//! tokens (the stable-token cases of the DESIGN.md §9 determinism
//! contract).

use std::sync::Arc;
use std::time::Duration;

use smart_core::{
    explore_with_parallel, size_circuit, Candidate, DelaySpec, Exploration, FlowError,
    ParallelOptions, SizingOptions,
};
use smart_gp::CancelToken;
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_prng::Prng;
use smart_sta::Boundary;

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Canonical, lossless rendering of one exploration table. Two tables
/// render equally iff they are bitwise-equal in every candidate field,
/// every failure row, the taxonomy and both winners.
fn render(table: &Exploration) -> String {
    let mut out = String::new();
    for (i, c) in table.candidates.iter().enumerate() {
        out.push_str(&format!("[{i}] spec={}", c.spec));
        match &c.circuit {
            Some(circ) => out.push_str(&format!(" circuit={:016x}", circ.structural_hash())),
            None => out.push_str(" circuit=none"),
        }
        match &c.result {
            Ok(m) => {
                out.push_str(&format!(
                    " ok delay={} pre={} width={} iters={} paths={} raw={} relax={} restarts={} clk={} pdyn={} pclk={} dev={} widths=",
                    bits(m.outcome.measured_delay),
                    bits(m.outcome.measured_precharge),
                    bits(m.outcome.total_width),
                    m.outcome.iterations,
                    m.outcome.constraint_paths,
                    m.outcome.raw_paths,
                    bits(m.outcome.spec_relaxation),
                    m.outcome.gp_restarts,
                    bits(m.clock_load),
                    bits(m.power.dynamic),
                    bits(m.power.clock),
                    m.devices,
                ));
                for w in m.outcome.sizing.as_slice() {
                    out.push_str(&bits(*w));
                    out.push(',');
                }
            }
            Err(e) => out.push_str(&format!(" err={e:?}")),
        }
        out.push('\n');
    }
    out.push_str(&format!("taxonomy={:?}\n", table.failure_taxonomy()));
    out.push_str(&format!("feasible={}\n", table.feasible_count()));
    out.push_str(&format!(
        "best_width={:?} best_power={:?}\n",
        table.best_by_width().map(|c| index_of(table, c)),
        table.best_by_power().map(|c| index_of(table, c)),
    ));
    out
}

fn index_of(table: &Exploration, c: &Candidate) -> usize {
    table
        .candidates
        .iter()
        .position(|x| std::ptr::eq(x, c))
        .expect("winner comes from the table")
}

/// A seeded random candidate list. Candidates in one sweep must share a
/// port interface (exploration sizes alternatives of the *same function*
/// under one boundary), so each seed draws a single family — width-4 mux
/// topologies, or zero-detect style/width variants — with duplicates
/// allowed (they exercise memoization-free recomputation and exact ties).
fn random_specs(seed: u64, n: usize) -> Vec<MacroSpec> {
    let mut r = Prng::new(seed);
    if r.u64_below(2) == 0 {
        let topos: Vec<MuxTopology> = MuxTopology::all()
            .into_iter()
            .filter(|t| t.supports_width(4))
            .collect();
        (0..n)
            .map(|_| MacroSpec::Mux {
                topology: topos[r.u64_below(topos.len() as u64) as usize],
                width: 4,
            })
            .collect()
    } else {
        (0..n)
            .map(|_| MacroSpec::ZeroDetect {
                width: r.u64_in(4, 8) as usize,
                style: if r.u64_below(2) == 0 {
                    ZeroDetectStyle::Static
                } else {
                    ZeroDetectStyle::Domino
                },
            })
            .collect()
    }
}

/// A boundary loading every output port of every listed spec (all specs
/// of a sweep share a port interface).
fn boundary_for(specs: &[MacroSpec], load: f64) -> Boundary {
    let mut b = Boundary::default();
    for spec in specs {
        for port in spec.generate().output_ports() {
            b.output_loads.insert(port.name.clone(), load);
        }
    }
    b
}

fn sweep(
    specs: &[MacroSpec],
    generate: impl Fn(&MacroSpec) -> smart_netlist::Circuit + Sync,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    workers: usize,
) -> Exploration {
    explore_with_parallel(
        specs.to_vec(),
        generate,
        &ModelLibrary::reference(),
        boundary,
        spec,
        opts,
        &ParallelOptions::with_workers(workers),
    )
}

/// The core differential assertion: render at `workers = 1` equals the
/// render at every other worker count.
fn assert_worker_invariant(
    specs: &[MacroSpec],
    generate: impl Fn(&MacroSpec) -> smart_netlist::Circuit + Sync,
    boundary: &Boundary,
    spec: &DelaySpec,
    opts: &SizingOptions,
    worker_counts: &[usize],
    label: &str,
) -> String {
    let reference = render(&sweep(specs, &generate, boundary, spec, opts, 1));
    for &workers in worker_counts {
        let parallel = render(&sweep(specs, &generate, boundary, spec, opts, workers));
        assert_eq!(
            reference, parallel,
            "{label}: table at {workers} workers diverged from serial"
        );
    }
    reference
}

#[test]
fn seeded_random_sweeps_are_worker_count_invariant() {
    for seed in [3, 20] {
        let specs = random_specs(seed, 5);
        let boundary = boundary_for(&specs, 12.0);
        let table = assert_worker_invariant(
            &specs,
            MacroSpec::generate,
            &boundary,
            &DelaySpec::uniform(380.0),
            &SizingOptions::default(),
            &[2, 4, 8],
            &format!("seed {seed}"),
        );
        // The sweep must have produced real work, not trivially-empty
        // agreement.
        assert!(table.contains(" ok "), "seed {seed}: no feasible rows\n{table}");
    }
}

#[test]
fn panic_injection_is_worker_count_invariant() {
    // The second candidate's generator panics; the table must carry the
    // identical Internal row at every worker count, with the siblings
    // unaffected.
    let specs = vec![
        MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 },
        MacroSpec::Mux { topology: MuxTopology::UnsplitDomino, width: 4 },
        MacroSpec::Mux { topology: MuxTopology::Tristate, width: 4 },
    ];
    let boundary = boundary_for(&specs, 15.0);
    let table = assert_worker_invariant(
        &specs,
        |s| {
            if matches!(s, MacroSpec::Mux { topology: MuxTopology::UnsplitDomino, .. }) {
                panic!("deliberately broken generator");
            }
            s.generate()
        },
        &boundary,
        &DelaySpec::uniform(400.0),
        &SizingOptions::default(),
        &[2, 4, 8],
        "panic injection",
    );
    assert!(table.contains("deliberately broken generator"), "{table}");
    assert!(table.contains("(\"panic\", 1)"), "{table}");
}

#[test]
fn expired_wall_clock_budget_is_worker_count_invariant() {
    // A zero wall-clock budget turns every candidate into the same
    // deterministic budget row (the deadline is checked before any
    // iteration work).
    let specs = random_specs(11, 4);
    let boundary = boundary_for(&specs, 12.0);
    let mut opts = SizingOptions::default();
    opts.budget.wall_clock = Some(Duration::ZERO);
    let table = assert_worker_invariant(
        &specs,
        MacroSpec::generate,
        &boundary,
        &DelaySpec::uniform(380.0),
        &opts,
        &[2, 4],
        "zero wall clock",
    );
    assert!(table.contains("feasible=0"), "{table}");
    assert!(table.contains("(\"budget\", 4)"), "{table}");
}

#[test]
fn candidate_cap_is_worker_count_invariant() {
    let specs = random_specs(5, 5);
    let boundary = boundary_for(&specs, 12.0);
    let mut opts = SizingOptions::default();
    opts.budget.max_candidates = Some(2);
    let table = assert_worker_invariant(
        &specs,
        MacroSpec::generate,
        &boundary,
        &DelaySpec::uniform(380.0),
        &opts,
        &[2, 4],
        "candidate cap",
    );
    // Three rows beyond the cap, uniformly classified, at every count.
    assert!(table.contains("beyond cap 2"), "{table}");
}

#[test]
fn pre_cancelled_token_is_worker_count_invariant() {
    // A token cancelled *before* the sweep is a stable state: every
    // candidate must produce the identical "cancelled" row regardless of
    // which worker would have run it.
    let specs = random_specs(9, 4);
    let boundary = boundary_for(&specs, 12.0);
    let token = Arc::new(CancelToken::new());
    token.cancel();
    let mut opts = SizingOptions::default();
    opts.budget.cancel = Some(token);
    let table = assert_worker_invariant(
        &specs,
        MacroSpec::generate,
        &boundary,
        &DelaySpec::uniform(380.0),
        &opts,
        &[2, 4, 8],
        "pre-cancelled token",
    );
    assert!(table.contains("sweep cancelled before candidate"), "{table}");
    assert!(table.contains("(\"budget\", 4)"), "{table}");
    assert!(table.contains("feasible=0"), "{table}");
}

#[test]
fn cancelled_token_also_stops_a_direct_sizing_call() {
    // Flow-level coverage of the cancellation protocol outside the sweep:
    // size_circuit observes the token at entry.
    let spec = MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 };
    let circuit = spec.generate();
    let boundary = boundary_for(std::slice::from_ref(&spec), 15.0);
    let token = Arc::new(CancelToken::new());
    token.cancel();
    let mut opts = SizingOptions::default();
    opts.budget.cancel = Some(token);
    let err = size_circuit(
        &circuit,
        &ModelLibrary::reference(),
        &boundary,
        &DelaySpec::uniform(400.0),
        &opts,
    )
    .unwrap_err();
    match &err {
        FlowError::BudgetExceeded { what, .. } => assert_eq!(*what, "cancelled"),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert_eq!(err.taxonomy(), "budget");
}

#[test]
fn ties_break_toward_the_lower_candidate_index() {
    // Three *identical* specs produce three bitwise-identical outcomes: a
    // guaranteed tie on both width and power. The winner must be index 0
    // (database order is a designer preference), not an iterator accident
    // — `Iterator::min_by` alone returns the *last* minimum.
    let spec = MacroSpec::Mux { topology: MuxTopology::StronglyMutexedPass, width: 4 };
    let specs = vec![spec.clone(), spec.clone(), spec];
    let boundary = boundary_for(&specs, 15.0);
    let table = sweep(
        &specs,
        MacroSpec::generate,
        &boundary,
        &DelaySpec::uniform(400.0),
        &SizingOptions::default(),
        1,
    );
    assert_eq!(table.feasible_count(), 3);
    let w = table.best_by_width().expect("feasible");
    let p = table.best_by_power().expect("feasible");
    assert_eq!(index_of(&table, w), 0, "width tie must break to index 0");
    assert_eq!(index_of(&table, p), 0, "power tie must break to index 0");
}
