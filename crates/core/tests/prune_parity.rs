//! Prune-parity differential suite — the evidence behind promoting
//! [`AuditGate::Prune`]: dropping constraints the static analyzer proves
//! dominated must not move the optimum. For every macro of the
//! representative design database, at the single-corner flow and at the
//! slow/typical/fast corner set, the default gate (`Certificates`, which
//! never alters the solved system) and `Prune` are solved side by side:
//!
//! * when the analyzer found nothing to prune, the solver saw the
//!   identical problem and the outcomes must be **bit-identical**;
//! * when constraints were pruned, the feasible set is unchanged but the
//!   barrier trajectory is not, so the outcomes agree to the pinned
//!   tolerances: total width and measured delay within 1e-6 relative,
//!   individual label widths within 1e-4 relative (the interior-point
//!   solve is tight on the objective, looser coordinate-wise);
//! * a failing candidate fails identically (same error taxonomy) under
//!   both gates.

use smart_core::{
    audit_circuit, minimize_delay, size_circuit, AuditGate, DelaySpec, SizingOptions,
    SizingOutcome,
};
use smart_macros::representative_database;
use smart_models::{CornerSet, ModelLibrary};
use smart_netlist::Circuit;
use smart_sta::Boundary;

fn boundary_for(circuit: &Circuit) -> Boundary {
    let mut b = Boundary::default();
    for port in circuit.output_ports() {
        b.output_loads.insert(port.name.clone(), 12.0);
    }
    b
}

fn assert_bitwise(a: &SizingOutcome, b: &SizingOutcome, what: &str) {
    assert_eq!(a.sizing.len(), b.sizing.len(), "{what}: width count");
    for (i, (x, y)) in a.sizing.as_slice().iter().zip(b.sizing.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: width[{i}]");
    }
    assert_eq!(a.measured_delay.to_bits(), b.measured_delay.to_bits(), "{what}: delay");
    assert_eq!(a.total_width.to_bits(), b.total_width.to_bits(), "{what}: total width");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.gp_restarts, b.gp_restarts, "{what}: restarts");
}

fn assert_tolerance(a: &SizingOutcome, b: &SizingOutcome, what: &str) {
    let rel = |x: f64, y: f64| (x - y).abs() / x.abs().max(y.abs()).max(1e-30);
    assert!(
        rel(a.total_width, b.total_width) <= 1e-6,
        "{what}: total width {} vs {} beyond 1e-6 relative",
        a.total_width,
        b.total_width
    );
    assert!(
        rel(a.measured_delay, b.measured_delay) <= 1e-6,
        "{what}: delay {} vs {} beyond 1e-6 relative",
        a.measured_delay,
        b.measured_delay
    );
    for (i, (x, y)) in a.sizing.as_slice().iter().zip(b.sizing.as_slice()).enumerate() {
        assert!(
            rel(*x, *y) <= 1e-4,
            "{what}: width[{i}] {x} vs {y} beyond 1e-4 relative"
        );
    }
}

/// Sizes one macro under both gates at a spec comfortably above its
/// fastest corner and asserts parity. `corners` selects the corner mode.
fn check_parity(corners: Option<CornerSet>, mode: &str) {
    let lib = ModelLibrary::reference();
    for spec in representative_database() {
        let what = format!("{spec} [{mode}]");
        let circuit = spec.generate();
        let boundary = boundary_for(&circuit);
        let base = SizingOptions {
            corners: corners.clone(),
            ..Default::default()
        };
        // A spec every corner can meet: 1.35× the fastest achievable
        // delay of this corner mode (minimize_delay maximizes over the
        // configured set).
        let (t_star, _) = minimize_delay(&circuit, &lib, &boundary, &base)
            .unwrap_or_else(|e| panic!("{what}: t* failed: {e}"));
        let target = DelaySpec::uniform(t_star * 1.35);

        let prune = SizingOptions {
            audit: AuditGate::Prune,
            ..base.clone()
        };
        let prunable = audit_circuit(&circuit, &lib, &boundary, &target, &base, &what)
            .unwrap_or_else(|e| panic!("{what}: audit failed: {e}"))
            .prunable
            .len();

        let default_run = size_circuit(&circuit, &lib, &boundary, &target, &base);
        let pruned_run = size_circuit(&circuit, &lib, &boundary, &target, &prune);
        match (default_run, pruned_run) {
            (Ok(a), Ok(b)) => {
                if prunable == 0 {
                    assert_bitwise(&a, &b, &what);
                } else {
                    assert_tolerance(&a, &b, &what);
                }
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    a.taxonomy(),
                    b.taxonomy(),
                    "{what}: gates must fail identically ({a} vs {b})"
                );
            }
            (Ok(_), Err(e)) => panic!("{what}: prune gate broke a feasible solve: {e}"),
            (Err(e), Ok(_)) => panic!("{what}: prune gate healed an infeasible solve: {e}"),
        }
    }
}

#[test]
fn prune_parity_holds_on_every_representative_macro_single_corner() {
    check_parity(None, "single");
}

#[test]
fn prune_parity_holds_on_every_representative_macro_stf_corners() {
    let lib = ModelLibrary::reference();
    check_parity(Some(CornerSet::slow_typical_fast(lib.process())), "stf");
}
