//! Concurrent shared-cache suite (PR 9 tentpole): one sharded
//! [`SizingCache`] serving several racing exploration sweeps — the serve
//! daemon's workload — must change latency only, never bytes, and the
//! per-sweep hit/miss attribution must stay *exact* under the race (the
//! saturating-delta scheme it replaced blurred concurrent sweeps into
//! each other).

use std::sync::Arc;

use smart_core::{
    explore_parallel, exploration_report, DelaySpec, ParallelOptions, SizingCache, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_sta::Boundary;

fn boundary(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

struct SweepResult {
    /// The rendered exploration table *without* its `cache:` stats line:
    /// the determinism contract pins result bytes; the stats line
    /// legitimately reflects how warm the shared cache was.
    report: String,
    hits: usize,
    misses: usize,
    feasible: usize,
}

fn strip_stats(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.starts_with("cache"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn sweep(spec: &MacroSpec, cache: &Arc<SizingCache>, workers: usize) -> SweepResult {
    let lib = ModelLibrary::reference();
    let circuit = spec.generate();
    let opts = SizingOptions {
        cache: Some(Arc::clone(cache)),
        ..SizingOptions::default()
    };
    let table = explore_parallel(
        spec,
        &lib,
        &boundary(&circuit, 18.0),
        &DelaySpec::uniform(400.0),
        &opts,
        &ParallelOptions::with_workers(workers),
    );
    SweepResult {
        report: strip_stats(&exploration_report(&table)),
        hits: table.cache_hits,
        misses: table.cache_misses,
        feasible: table.feasible_count(),
    }
}

fn mux8() -> MacroSpec {
    MacroSpec::Mux {
        topology: MuxTopology::UnsplitDomino,
        width: 8,
    }
}

fn zd16() -> MacroSpec {
    MacroSpec::ZeroDetect {
        width: 16,
        style: ZeroDetectStyle::Domino,
    }
}

/// Two different macros racing on one shared cache: each sweep's report
/// and its per-sweep stats must be byte-identical to the same sweep run
/// alone on a private cache — no cross-request key bleed in either
/// direction (results or attribution).
#[test]
fn racing_sweeps_on_a_shared_cache_match_private_cache_runs() {
    let solo_mux = sweep(&mux8(), &Arc::new(SizingCache::bounded(4, None)), 1);
    let solo_zd = sweep(&zd16(), &Arc::new(SizingCache::bounded(4, None)), 1);

    for round in 0..3 {
        let shared = Arc::new(SizingCache::bounded(4, None));
        let (raced_mux, raced_zd) = std::thread::scope(|s| {
            let a = s.spawn(|| sweep(&mux8(), &shared, 2));
            let b = s.spawn(|| sweep(&zd16(), &shared, 2));
            (a.join().expect("mux sweep"), b.join().expect("zd sweep"))
        });
        assert_eq!(solo_mux.report, raced_mux.report, "round {round}");
        assert_eq!(solo_zd.report, raced_zd.report, "round {round}");
        // Disjoint key spaces: neither sweep can touch the other's
        // entries, so per-sweep stats equal the solo runs exactly.
        assert_eq!((solo_mux.hits, solo_mux.misses), (raced_mux.hits, raced_mux.misses));
        assert_eq!((solo_zd.hits, solo_zd.misses), (raced_zd.hits, raced_zd.misses));
        // Exact attribution: the two sweeps' traffic sums to the cache's
        // global counters — nothing double-counted, nothing leaked.
        let (hits, misses) = shared.stats();
        assert_eq!(raced_mux.hits + raced_zd.hits, hits, "round {round}");
        assert_eq!(raced_mux.misses + raced_zd.misses, misses, "round {round}");
    }
}

/// Two racing sweeps of the *same* macro: which one inserts first is a
/// race, but each sweep's lookup count is its own, and the total traffic
/// still sums exactly to the global counters.
#[test]
fn same_macro_races_keep_attribution_exact() {
    let cold = sweep(&mux8(), &Arc::new(SizingCache::new()), 1);
    let lookups = cold.hits + cold.misses;
    assert!(lookups > 0, "the sweep must exercise the cache");

    let shared = Arc::new(SizingCache::bounded(8, None));
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| sweep(&mux8(), &shared, 2));
        let b = s.spawn(|| sweep(&mux8(), &shared, 2));
        (a.join().expect("sweep a"), b.join().expect("sweep b"))
    });
    // Bytes never depend on the race.
    assert_eq!(a.report, b.report);
    assert_eq!(a.report, cold.report);
    // Each sweep performed exactly its own lookups (which of them hit is
    // the race; how many it made is not)...
    assert_eq!(a.hits + a.misses, lookups);
    assert_eq!(b.hits + b.misses, lookups);
    // ...and the global counters saw exactly the union.
    let (hits, misses) = shared.stats();
    assert_eq!(a.hits + b.hits, hits);
    assert_eq!(a.misses + b.misses, misses);
}

/// Warm racing sweeps over a pre-populated cache are all-hit and
/// byte-identical to the cold run — the daemon's steady state.
#[test]
fn warm_racing_sweeps_are_all_hits_with_identical_bytes() {
    let shared = Arc::new(SizingCache::bounded(4, None));
    let cold = sweep(&mux8(), &shared, 1);
    // Only successful outcomes are cached; failed rows re-solve warm.
    let cold_lookups = cold.hits + cold.misses;

    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| sweep(&mux8(), &shared, 2));
        let b = s.spawn(|| sweep(&mux8(), &shared, 2));
        (a.join().expect("sweep a"), b.join().expect("sweep b"))
    });
    for warm in [&a, &b] {
        assert_eq!(warm.report, cold.report);
        assert_eq!(warm.hits, cold.feasible, "every cached success replays");
        assert_eq!(
            warm.misses,
            cold_lookups - cold.feasible,
            "only uncached failures re-solve"
        );
    }
}

/// Snapshot → fresh cache (different shard count) → restore → replay:
/// the warm sweep is byte-identical to the cold one, performs zero
/// misses, and re-snapshotting reproduces the snapshot byte-for-byte.
#[test]
fn snapshot_restart_replay_is_byte_identical() {
    let cold_cache = Arc::new(SizingCache::bounded(4, None));
    let cold = sweep(&zd16(), &cold_cache, 2);
    let cold_lookups = cold.hits + cold.misses;
    let snap = cold_cache.snapshot();

    let warm_cache = Arc::new(SizingCache::bounded(3, Some(1024)));
    let restored = warm_cache.restore(&snap).expect("snapshot restores");
    assert_eq!(restored, cold_cache.len());

    let warm = sweep(&zd16(), &warm_cache, 2);
    assert_eq!(warm.report, cold.report);
    assert_eq!(warm.hits, cold.feasible, "every snapshotted success replays");
    assert_eq!(warm.misses, cold_lookups - cold.feasible);
    assert_eq!(warm_cache.snapshot(), snap, "restart must be lossless");
}

/// A bounded shared cache under racing sweeps never exceeds its entry
/// budget — eviction holds under concurrency, and evicted entries only
/// cost re-solves (misses), never wrong bytes.
#[test]
fn eviction_budget_holds_under_racing_sweeps() {
    let solo = sweep(&mux8(), &Arc::new(SizingCache::new()), 1);
    let shared = Arc::new(SizingCache::bounded(2, Some(3)));
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| sweep(&mux8(), &shared, 2));
        let b = s.spawn(|| sweep(&zd16(), &shared, 2));
        (a.join().expect("sweep a"), b.join().expect("sweep b"))
    });
    assert!(shared.len() <= 4, "per-shard rounding: 2 shards x 2 budget");
    assert_eq!(a.report, solo.report, "eviction must never change result bytes");
    assert_eq!(
        b.report,
        sweep(&zd16(), &Arc::new(SizingCache::new()), 1).report
    );
}
