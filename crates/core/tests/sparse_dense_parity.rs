//! Differential parity suite for the sparse GP Newton kernel.
//!
//! The production solver assembles gradients and Hessians sparsely
//! (`LogPosynomial::value_grad_hess_into` + packed scatter) while the
//! dense path (`value_grad_hess`, `GpProblem::solve_reference`) survives
//! as the oracle. This suite pins the two against each other on the real
//! sizing GPs of the representative macro database:
//!
//! * kernel parity — value, gradient and Hessian of the objective and of
//!   every constraint agree to 1e-12 at multiple evaluation points, for
//!   **every** macro in the database;
//! * solver parity — full `solve` vs `solve_reference` on a spread of
//!   macros: identical Newton step counts, solutions and KKT reports
//!   matching to tight tolerance.

use smart_core::constraints::{boundary_extra_loads, build_sizing_gp, SizingGp};
use smart_core::{compact, DelaySpec, SizingOptions};
use smart_gp::SolverOptions;
use smart_macros::{representative_database, MacroSpec, MuxTopology, ZeroDetectStyle};
use smart_models::ModelLibrary;
use smart_posy::{packed_index, GradHessWorkspace, LogPosynomial};
use smart_sta::Boundary;

fn loaded_boundary(circuit: &smart_netlist::Circuit, load: f64) -> Boundary {
    let mut b = Boundary::default();
    for p in circuit.output_ports() {
        b.output_loads.insert(p.name.clone(), load);
    }
    b
}

/// Builds the sizing GP of one macro exactly as `size_circuit` would.
fn sizing_gp(spec: &MacroSpec, delay: &DelaySpec) -> SizingGp {
    let circuit = spec.generate();
    let lib = ModelLibrary::reference();
    let boundary = loaded_boundary(&circuit, 20.0);
    let opts = SizingOptions::default();
    let (_, vars) = smart_models::label_vars(&circuit);
    let extra = boundary_extra_loads(&circuit, &boundary);
    let compaction =
        compact(&circuit, &lib, &vars, &extra, &opts).expect("compaction succeeds");
    build_sizing_gp(
        &circuit, &lib, &compaction, &boundary, &extra, delay, &opts,
    )
    .expect("GP builds")
}

/// Deterministic log-space jitter for evaluation points (splitmix64).
fn jitter(dim: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..dim)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 3.0
        })
        .collect()
}

/// Asserts sparse and dense evaluation of one posynomial agree at `y`.
fn assert_kernel_parity(lp: &LogPosynomial, y: &[f64], what: &str) {
    let dim = lp.dim();
    let (val, grad, hess) = lp.value_grad_hess(y);
    let mut ws = GradHessWorkspace::new(dim);
    let sval = lp.value_grad_hess_into(y, &mut ws);
    ws.scatter_staged(1.0, 1.0, 0.0);
    let scale = val.abs().max(1.0);
    assert!(
        (val - sval).abs() <= 1e-12 * scale,
        "{what}: value {val} vs {sval}"
    );
    assert!(
        (val - lp.value(y)).abs() <= 1e-12 * scale,
        "{what}: streaming value"
    );
    for i in 0..dim {
        let gs = grad[i].abs().max(1.0);
        assert!(
            (grad[i] - ws.grad()[i]).abs() <= 1e-12 * gs,
            "{what}: grad[{i}] {} vs {}",
            grad[i],
            ws.grad()[i]
        );
        for j in 0..=i {
            let hs = hess[i][j].abs().max(1.0);
            let got = ws.hess_packed()[packed_index(i, j)];
            assert!(
                (hess[i][j] - got).abs() <= 1e-12 * hs,
                "{what}: hess[{i}][{j}] {} vs {got}",
                hess[i][j]
            );
        }
    }
}

#[test]
fn kernel_parity_on_every_representative_macro() {
    for spec in representative_database() {
        let built = sizing_gp(&spec, &DelaySpec::uniform(900.0));
        let dim = built.gp.dim();
        let points = [jitter(dim, 0x5EED_0001), jitter(dim, 0xFACE_0002)];
        let obj = LogPosynomial::from_posynomial(built.gp.objective(), dim);
        for (pi, y) in points.iter().enumerate() {
            assert_kernel_parity(&obj, y, &format!("{spec:?} objective @p{pi}"));
        }
        for c in built.gp.constraints() {
            let lp = LogPosynomial::from_posynomial(&c.body, dim);
            for (pi, y) in points.iter().enumerate() {
                assert_kernel_parity(&lp, y, &format!("{spec:?} '{}' @p{pi}", c.label));
            }
        }
    }
}

#[test]
fn solver_parity_on_diverse_macros() {
    let cases: Vec<(MacroSpec, f64)> = vec![
        (
            MacroSpec::Mux {
                topology: MuxTopology::StronglyMutexedPass,
                width: 8,
            },
            900.0,
        ),
        (
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 8,
            },
            900.0,
        ),
        (
            MacroSpec::ZeroDetect {
                style: ZeroDetectStyle::Domino,
                width: 16,
            },
            900.0,
        ),
        (MacroSpec::Incrementor { width: 8 }, 1500.0),
        (MacroSpec::Decoder { in_bits: 3 }, 1200.0),
    ];
    for (spec, ps) in cases {
        let built = sizing_gp(&spec, &DelaySpec::uniform(ps));
        let opts = SolverOptions::default();
        let sparse = built.gp.solve(&opts).expect("sparse solve");
        let dense = built.gp.solve_reference(&opts).expect("dense solve");
        // Same arithmetic in the same order: the Newton trajectories must
        // not merely converge to the same optimum, they must be the same
        // trajectory.
        assert_eq!(
            sparse.phase1_newton_steps, dense.phase1_newton_steps,
            "{spec:?}: phase-1 step counts diverged"
        );
        assert_eq!(
            sparse.phase2_newton_steps, dense.phase2_newton_steps,
            "{spec:?}: phase-2 step counts diverged"
        );
        let os = sparse.objective.abs().max(1.0);
        assert!(
            (sparse.objective - dense.objective).abs() <= 1e-9 * os,
            "{spec:?}: objective {} vs {}",
            sparse.objective,
            dense.objective
        );
        for (i, (&xs, &xd)) in sparse.x.iter().zip(&dense.x).enumerate() {
            assert!(
                (xs - xd).abs() <= 1e-9 * xd.abs().max(1.0),
                "{spec:?}: x[{i}] {xs} vs {xd}"
            );
        }
        // KKT-report parity: both certificates describe the same point.
        let ks = &sparse.kkt;
        let kd = &dense.kkt;
        assert!(
            (ks.stationarity - kd.stationarity).abs()
                <= 1e-9 * kd.stationarity.abs().max(1.0),
            "{spec:?}: stationarity {} vs {}",
            ks.stationarity,
            kd.stationarity
        );
        assert!(
            (ks.primal_infeasibility - kd.primal_infeasibility).abs()
                <= 1e-9 * kd.primal_infeasibility.abs().max(1.0),
            "{spec:?}: infeasibility {} vs {}",
            ks.primal_infeasibility,
            kd.primal_infeasibility
        );
        assert!(
            (ks.duality_gap - kd.duality_gap).abs() <= 1e-9 * kd.duality_gap.abs().max(1.0),
            "{spec:?}: gap {} vs {}",
            ks.duality_gap,
            kd.duality_gap
        );
        assert_eq!(
            ks.is_optimal(1e-4),
            kd.is_optimal(1e-4),
            "{spec:?}: optimality verdicts diverged"
        );
    }
}
