//! smart-trace × exploration: the stable export is part of the
//! deterministic-parallelism contract (DESIGN.md §9 and §11). A traced
//! sweep must produce byte-identical stable JSON no matter how many
//! workers ran it, across repeated runs, and with the sizing cache cold
//! or shared — and tracing must never perturb the engineering results.

use std::sync::Arc;

use smart_core::{
    explore_parallel, DelaySpec, Exploration, ParallelOptions, SizingCache, SizingOptions,
};
use smart_macros::{MacroSpec, MuxTopology};
use smart_models::ModelLibrary;
use smart_sta::Boundary;
use smart_trace::Trace;

fn request() -> MacroSpec {
    MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    }
}

fn boundary() -> Boundary {
    let mut b = Boundary::default();
    b.output_loads.insert("y".into(), 15.0);
    b
}

/// Runs one traced sweep at the given worker count and returns the
/// stable JSON export plus the exploration table.
fn traced_sweep(workers: usize, cache: Option<Arc<SizingCache>>) -> (String, Exploration) {
    let lib = ModelLibrary::reference();
    let mut opts = SizingOptions::default();
    opts.trace = Trace::enabled();
    opts.cache = cache;
    let table = explore_parallel(
        &request(),
        &lib,
        &boundary(),
        &DelaySpec::uniform(450.0),
        &opts,
        &ParallelOptions::with_workers(workers),
    );
    (opts.trace.collect().to_json(), table)
}

#[test]
fn stable_export_is_byte_identical_across_worker_counts() {
    let (reference, ref_table) = traced_sweep(1, None);
    assert!(ref_table.feasible_count() > 0, "sweep must do real work");
    for workers in [2usize, 4] {
        let (json, table) = traced_sweep(workers, None);
        assert_eq!(
            json, reference,
            "stable export diverged at {workers} workers"
        );
        assert_eq!(table.feasible_count(), ref_table.feasible_count());
    }
}

#[test]
fn stable_export_is_byte_identical_across_repeated_runs() {
    let (first, _) = traced_sweep(4, None);
    let (second, _) = traced_sweep(4, None);
    assert_eq!(first, second);
}

#[test]
fn stable_export_covers_the_whole_flow() {
    let cache = Arc::new(SizingCache::new());
    let (json, _) = traced_sweep(4, Some(Arc::clone(&cache)));
    // Candidate lifecycle spans, the lint gate, the cache, the GP
    // solver's Newton telemetry and the STA engine must all be present:
    // the trace is an end-to-end record, not a single layer's log.
    for name in [
        "\"name\":\"sweep\"",
        "\"name\":\"candidate\"",
        "\"name\":\"lint/gate\"",
        "\"name\":\"cache/lookup\"",
        "\"name\":\"size/rung\"",
        "\"name\":\"size/iteration\"",
        "\"name\":\"gp/newton\"",
        "\"name\":\"gp/solve\"",
        "\"name\":\"sta/graph\"",
        "\"name\":\"sta/propagate\"",
    ] {
        assert!(json.contains(name), "stable export is missing {name}");
    }
    // Counters are order-independent sums, so a cold sweep over a fresh
    // cache records exactly one miss per candidate.
    assert!(json.contains("\"cache/miss\":5"), "expected 5 cold misses");
    // Scheduling-dependent telemetry must NOT leak into the stable
    // export — worker counts live in unstable events only.
    assert!(!json.contains("sweep/pool"), "unstable event leaked");
}

#[test]
fn tracing_does_not_perturb_results() {
    let lib = ModelLibrary::reference();
    let spec = DelaySpec::uniform(450.0);
    let untraced = SizingOptions::default();
    let plain = explore_parallel(
        &request(),
        &lib,
        &boundary(),
        &spec,
        &untraced,
        &ParallelOptions::serial(),
    );
    let (_, traced) = traced_sweep(4, None);
    assert_eq!(plain.candidates.len(), traced.candidates.len());
    for (p, t) in plain.candidates.iter().zip(&traced.candidates) {
        assert_eq!(p.spec, t.spec);
        match (&p.result, &t.result) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.outcome.total_width.to_bits(),
                    b.outcome.total_width.to_bits(),
                    "{}: tracing changed the sized width",
                    p.spec
                );
            }
            (Err(a), Err(b)) => assert_eq!(a.taxonomy(), b.taxonomy()),
            _ => panic!("{}: feasibility flipped under tracing", p.spec),
        }
    }
}

#[test]
fn disabled_trace_records_nothing() {
    let lib = ModelLibrary::reference();
    let opts = SizingOptions {
        trace: Trace::disabled(),
        ..SizingOptions::default()
    };
    let table = explore_parallel(
        &request(),
        &lib,
        &boundary(),
        &DelaySpec::uniform(450.0),
        &opts,
        &ParallelOptions::serial(),
    );
    assert!(table.feasible_count() > 0);
    let report = opts.trace.collect();
    assert_eq!(report.stable_event_count(), 0);
    assert_eq!(report.counter("cache/hit") + report.counter("cache/miss"), 0);
}
