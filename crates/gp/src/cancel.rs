//! Cooperative cancellation for in-flight solves.
//!
//! An exploration sweep fans candidates out across worker threads; when
//! the sweep-level budget expires (or a caller abandons the request), the
//! workers' GP solves must stop *promptly* without any preemption
//! machinery. A [`CancelToken`] is the shared flag that makes that work:
//! the sweep holds one `Arc<CancelToken>`, every solver checks it once
//! per Newton step (the same cadence as the deadline check), and a single
//! `cancel()` store reaches every thread on its next step.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A shared, thread-safe cancellation flag with an optional built-in
/// deadline.
///
/// Checking is lock-free (one relaxed atomic load, plus an `Instant`
/// comparison when a deadline is set). The token is *sticky*: once
/// cancelled it stays cancelled.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally auto-cancels once `deadline` passes —
    /// the shared sweep-level wall clock of a parallel exploration (as
    /// opposed to the per-candidate wall clock of
    /// `SolverOptions::deadline`).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation; every holder observes it on its next check.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn starts_clear_and_sticks_once_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "cancellation is sticky");
    }

    #[test]
    fn expired_deadline_cancels_without_a_call() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = Arc::new(CancelToken::new());
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || t2.cancel())
            .join()
            .expect("cancelling thread");
        assert!(t.is_cancelled());
    }
}
