//! Error type for GP construction and solving.

use std::error::Error;
use std::fmt;

/// Errors raised by [`crate::GpProblem`] construction or solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// A constraint was added with a zero (empty) posynomial body.
    EmptyConstraint {
        /// Label the caller supplied for the constraint.
        label: String,
    },
    /// Phase I finished without finding a strictly feasible point: the
    /// constraint set is (numerically) infeasible. For the sizing flow this
    /// means the delay target cannot be met at any device size — the signal
    /// for SMART to report "constraints unachievable" to the designer.
    Infeasible {
        /// Worst constraint body value `fᵢ(x)` achieved (≥ 1 means violated).
        worst_violation: f64,
    },
    /// Iterates escaped the sanity box: no positive minimizer (e.g. the
    /// objective keeps improving as a size goes to 0 or ∞ because a bound is
    /// missing).
    Unbounded,
    /// Newton/barrier machinery failed to make progress.
    Numerical {
        /// Stage that failed (`"phase1"`, `"phase2"`, `"setup"`).
        stage: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::EmptyConstraint { label } => {
                write!(f, "constraint '{label}' has an empty posynomial body")
            }
            GpError::Infeasible { worst_violation } => write!(
                f,
                "geometric program is infeasible (worst constraint body {worst_violation:.4}, needs <= 1)"
            ),
            GpError::Unbounded => {
                write!(f, "geometric program is unbounded; a size bound is missing")
            }
            GpError::Numerical { stage, detail } => {
                write!(f, "numerical failure in {stage}: {detail}")
            }
        }
    }
}

impl Error for GpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = GpError::Infeasible { worst_violation: 2.5 };
        assert!(e.to_string().contains("2.5"));
        let e = GpError::EmptyConstraint { label: "t1".into() };
        assert!(e.to_string().contains("t1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpError>();
    }
}
