//! Error type for GP construction and solving.

use std::error::Error;
use std::fmt;

/// Errors raised by [`crate::GpProblem`] construction or solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// A constraint was added with a zero (empty) posynomial body.
    EmptyConstraint {
        /// Label the caller supplied for the constraint.
        label: String,
    },
    /// Phase I finished without finding a strictly feasible point: the
    /// constraint set is (numerically) infeasible. For the sizing flow this
    /// means the delay target cannot be met at any device size — the signal
    /// for SMART to report "constraints unachievable" to the designer.
    Infeasible {
        /// Worst constraint body value `fᵢ(x)` achieved (≥ 1 means violated).
        worst_violation: f64,
    },
    /// Iterates escaped the sanity box: no positive minimizer (e.g. the
    /// objective keeps improving as a size goes to 0 or ∞ because a bound is
    /// missing).
    Unbounded,
    /// Newton/barrier machinery failed to make progress.
    Numerical {
        /// Stage that failed (`"phase1"`, `"phase2"`, `"setup"`).
        stage: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A non-finite value entered or left the solver: a NaN/Inf coefficient
    /// or exponent in the problem data, a bad warm-start point, or a
    /// non-finite iterate that slipped past the step-size safeguards. The
    /// flow treats this as a per-candidate failure, never a panic.
    NonFinite {
        /// Stage that detected the value (`"spec"`, `"setup"`,
        /// `"phase1"`, `"phase2"`, `"solution"`).
        stage: &'static str,
        /// Human-readable detail naming the offending quantity.
        detail: String,
    },
    /// A cooperative budget (wall-clock deadline or Newton-step cap from
    /// [`crate::SolverOptions`]) expired mid-solve. The partial iterate is
    /// discarded; the caller decides whether to retry with a larger budget.
    BudgetExceeded {
        /// Stage that was running when the budget expired.
        stage: &'static str,
        /// Which budget expired (`"wall-clock"` or `"newton-steps"`).
        budget: &'static str,
        /// Newton steps spent before the budget fired.
        spent_newton: usize,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::EmptyConstraint { label } => {
                write!(f, "constraint '{label}' has an empty posynomial body")
            }
            GpError::Infeasible { worst_violation } => write!(
                f,
                "geometric program is infeasible (worst constraint body {worst_violation:.4}, needs <= 1)"
            ),
            GpError::Unbounded => {
                write!(f, "geometric program is unbounded; a size bound is missing")
            }
            GpError::Numerical { stage, detail } => {
                write!(f, "numerical failure in {stage}: {detail}")
            }
            GpError::NonFinite { stage, detail } => {
                write!(f, "non-finite value in {stage}: {detail}")
            }
            GpError::BudgetExceeded {
                stage,
                budget,
                spent_newton,
            } => write!(
                f,
                "{budget} budget exceeded in {stage} after {spent_newton} Newton steps"
            ),
        }
    }
}

impl Error for GpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = GpError::Infeasible { worst_violation: 2.5 };
        assert!(e.to_string().contains("2.5"));
        let e = GpError::EmptyConstraint { label: "t1".into() };
        assert!(e.to_string().contains("t1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpError>();
    }
}
