//! First-order (KKT) optimality diagnostics for a solved GP.

use smart_posy::LogPosynomial;

use crate::linalg::norm;

/// Karush-Kuhn-Tucker residuals at a candidate optimum, computed in the
/// convex log-space formulation.
///
/// The barrier method's centering condition gives the multiplier estimates
/// `λᵢ = 1 / (t · (−Fᵢ(y)))`; at convergence, stationarity
/// `‖∇F₀ + Σ λᵢ∇Fᵢ‖` is small and the duality-gap estimate is `m/t`.
/// Tests assert these residuals rather than comparing against magic optimal
/// values.
#[derive(Debug, Clone)]
pub struct KktReport {
    /// `‖∇F₀(y) + Σ λᵢ ∇Fᵢ(y)‖₂` with the barrier multiplier estimates.
    pub stationarity: f64,
    /// Estimated duality gap `m/t` at the final barrier parameter.
    pub duality_gap: f64,
    /// Multiplier estimates, one per constraint (empty if unconstrained).
    pub multipliers: Vec<f64>,
    /// `max(0, Fᵢ(y))` over all constraints — primal infeasibility in
    /// log-space (0 when strictly feasible).
    pub primal_infeasibility: f64,
}

impl KktReport {
    /// Computes the report at log-point `y` with the solver's final barrier
    /// parameter `t` (multipliers are the barrier estimates `1/(t·(−Fᵢ))`).
    pub(crate) fn at_point(
        obj: &LogPosynomial,
        cons: &[LogPosynomial],
        y: &[f64],
        t: f64,
    ) -> Self {
        let m = cons.len();
        if m == 0 {
            let (_, g) = obj.value_grad(y);
            return KktReport {
                stationarity: norm(&g),
                duality_gap: 0.0,
                multipliers: Vec::new(),
                primal_infeasibility: 0.0,
            };
        }
        let (_, mut r) = obj.value_grad(y);
        let mut multipliers = Vec::with_capacity(m);
        let mut infeas = 0.0f64;
        for c in cons {
            let (fv, fg) = c.value_grad(y);
            infeas = infeas.max(fv.max(0.0));
            let lambda = if fv < 0.0 { 1.0 / (t * (-fv)) } else { f64::INFINITY };
            multipliers.push(lambda);
            if lambda.is_finite() {
                for (ri, gi) in r.iter_mut().zip(&fg) {
                    *ri += lambda * gi;
                }
            }
        }
        KktReport {
            stationarity: norm(&r),
            duality_gap: m as f64 / t,
            multipliers,
            primal_infeasibility: infeas,
        }
    }

    /// Whether the point satisfies first-order optimality within `tol`.
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.stationarity <= tol && self.primal_infeasibility <= tol && self.duality_gap <= tol
    }
}
