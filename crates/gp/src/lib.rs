//! Geometric-program solver for the SMART transistor sizer.
//!
//! The SMART flow (Nemani & Tiwari, DAC 2000, §5) formulates transistor
//! sizing as a geometric program: posynomial delay/slope/noise constraints,
//! posynomial cost (total width, power), solved after a log change of
//! variables as a convex problem "efficiently and quickly, in a numerically
//! stable fashion". This crate is that solver box of the paper's Fig. 4:
//!
//! * [`GpProblem`] — standard-form GP builder (`minimize f₀, fᵢ ≤ 1`),
//!   with size bounds and designer-pinned sizes as monomial constraints.
//! * [`GpProblem::solve`] — phase-I feasibility then barrier/Newton
//!   optimization over the log-transformed problem; the Newton systems are
//!   assembled sparsely per-constraint and factored with an in-place
//!   packed Cholesky (the dense twin survives as
//!   [`GpProblem::solve_reference`], the differential-test oracle).
//! * [`KktReport`] — first-order optimality residuals so callers can trust
//!   (or reject) a solution programmatically.
//!
//! # Example: minimum-width inverter chain under a delay budget
//!
//! ```
//! use smart_posy::{Monomial, Posynomial, VarPool};
//! use smart_gp::{GpProblem, SolverOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pool = VarPool::new();
//! let w1 = pool.var("W1");
//! let w2 = pool.var("W2");
//! let mut gp = GpProblem::new(pool);
//!
//! // minimize W1 + W2
//! gp.set_objective(Posynomial::var(w1) + Monomial::var(w2));
//! // delay: stage 1 drives W2, stage 2 drives a fixed load of 4.
//! let delay = Posynomial::from(Monomial::new(1.0).pow(w2, 1.0).pow(w1, -1.0))
//!     + Monomial::new(4.0).pow(w2, -1.0);
//! gp.add_le("delay", delay, Monomial::new(3.0))?;
//! gp.add_lower_bound(w1, 0.1);
//! gp.add_lower_bound(w2, 0.1);
//!
//! let sol = gp.solve(&SolverOptions::default())?;
//! assert!(sol.kkt.is_optimal(1e-4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod error;
mod kkt;
pub mod linalg;
mod problem;
mod reference;
mod solver;

pub use cancel::CancelToken;
pub use error::GpError;
pub use kkt::KktReport;
pub use problem::{GpConstraint, GpProblem};
pub use solver::{GpSolution, SolverOptions};
