//! Minimal dense linear algebra for the Newton steps of the GP solver.
//!
//! Problem sizes after SMART's label-sharing are tiny (tens to a few hundred
//! variables), so a dense Cholesky is both sufficient and fully inspectable —
//! no external linear-algebra dependency is warranted (cf. DESIGN.md §5).
//!
//! Two families live here:
//!
//! * the historical `Vec<Vec<f64>>` routines ([`cholesky`], [`solve_spd`],
//!   [`solve_spd_ridged`]) — kept as the *dense oracle* the differential
//!   parity suite and [`crate::GpProblem::solve_reference`] pin against;
//! * the **packed lower-triangular** routines the production solver uses
//!   ([`cholesky_packed_in_place`], [`solve_packed_in_place`],
//!   [`solve_spd_ridged_packed`]) — one flat row-major buffer
//!   (`a[i·(i+1)/2 + j]`, `j ≤ i`, the [`smart_posy::packed_index`]
//!   layout), factored in place, with in-place ridge escalation that
//!   copies into a caller-owned scratch buffer instead of cloning the
//!   matrix per attempt. Both families run the identical arithmetic in
//!   the identical order, so their results agree to the last bit.

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix,
/// returning the lower factor, or `None` if a pivot is not strictly positive
/// (matrix not PD to working precision).
#[allow(clippy::needless_range_loop)] // triangular index arithmetic reads better with indices
pub fn cholesky(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        debug_assert_eq!(a[i].len(), n, "matrix must be square");
        for j in 0..=i {
            let mut s = a[i][j];
            for k in 0..j {
                s -= l[i][k] * l[j][k];
            }
            if i == j {
                if !s.is_finite() || s <= 0.0 {
                    return None;
                }
                l[i][j] = s.sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// Returns `None` when `A` is not PD to working precision.
pub fn solve_spd(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    let n = b.len();
    // Forward solve L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i][k] * z[k];
        }
        z[i] = s / l[i][i];
    }
    // Back solve Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in (i + 1)..n {
            s -= l[k][i] * x[k];
        }
        x[i] = s / l[i][i];
    }
    Some(x)
}

/// Solves `A x = b` for symmetric `A`, adding a growing ridge `λI` until the
/// matrix factors. Used for Newton steps on nearly singular Hessians (e.g.
/// variables that appear in no active constraint).
///
/// Returns the solution together with the ridge that was needed.
pub fn solve_spd_ridged(a: &[Vec<f64>], b: &[f64]) -> (Vec<f64>, f64) {
    if let Some(x) = solve_spd(a, b) {
        return (x, 0.0);
    }
    let n = a.len();
    // Scale the ridge to the matrix magnitude.
    let diag_max = (0..n)
        .map(|i| a[i][i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut lambda = diag_max * 1e-10;
    loop {
        let mut ar = a.to_vec();
        for (i, row) in ar.iter_mut().enumerate() {
            row[i] += lambda;
        }
        if let Some(x) = solve_spd(&ar, b) {
            return (x, lambda);
        }
        lambda *= 10.0;
        assert!(
            lambda.is_finite() && lambda < diag_max * 1e12,
            "ridge escalation failed; matrix is pathological"
        );
    }
}

/// In-place Cholesky factorization of a symmetric positive-definite matrix
/// stored as a packed row-major lower triangle (`a[i·(i+1)/2 + j]`,
/// `j ≤ i`). On success `a` holds the lower factor `L`; on failure (a
/// pivot not strictly positive to working precision) returns `false` and
/// `a` is partially overwritten — re-copy before retrying.
///
/// Same arithmetic in the same order as [`cholesky`], so the packed factor
/// is bit-identical to the dense one.
///
/// # Panics
///
/// Panics if `a.len() != n·(n+1)/2`.
pub fn cholesky_packed_in_place(a: &mut [f64], n: usize) -> bool {
    assert_eq!(a.len(), n * (n + 1) / 2, "packed triangle has wrong length");
    for i in 0..n {
        let ti = i * (i + 1) / 2;
        for j in 0..=i {
            let tj = j * (j + 1) / 2;
            let mut s = a[ti + j];
            for k in 0..j {
                s -= a[ti + k] * a[tj + k];
            }
            if i == j {
                if !s.is_finite() || s <= 0.0 {
                    return false;
                }
                a[ti + j] = s.sqrt();
            } else {
                a[ti + j] = s / a[tj + j];
            }
        }
    }
    true
}

/// Solves `L·Lᵀ x = b` in place: `x` enters holding `b` and leaves holding
/// the solution. `l` is a packed lower factor from
/// [`cholesky_packed_in_place`].
///
/// # Panics
///
/// Panics if the buffer lengths disagree with `n`.
pub fn solve_packed_in_place(l: &[f64], n: usize, x: &mut [f64]) {
    assert_eq!(l.len(), n * (n + 1) / 2, "packed factor has wrong length");
    assert_eq!(x.len(), n, "rhs has wrong length");
    // Forward solve L z = b (z overwrites x).
    for i in 0..n {
        let ti = i * (i + 1) / 2;
        let mut s = x[i];
        for k in 0..i {
            s -= l[ti + k] * x[k];
        }
        x[i] = s / l[ti + i];
    }
    // Back solve Lᵀ x = z.
    for i in (0..n).rev() {
        let mut s = x[i];
        for k in (i + 1)..n {
            s -= l[k * (k + 1) / 2 + i] * x[k];
        }
        x[i] = s / l[i * (i + 1) / 2 + i];
    }
}

/// Packed twin of [`solve_spd_ridged`]: solves `A x = b` for a symmetric
/// matrix in packed lower-triangular form, escalating a ridge `λI` until
/// the matrix factors. `factor` is caller-owned scratch (the matrix copy
/// that gets factored in place) and `x` receives the solution — both are
/// resized once and reused across calls, so the steady state performs no
/// heap allocation, unlike the dense path's `a.to_vec()` per attempt.
///
/// Returns the ridge that was needed.
///
/// # Panics
///
/// Panics if `a.len() != n·(n+1)/2` or ridge escalation diverges (the
/// matrix is pathological — not symmetric-PSD within any reasonable
/// perturbation).
pub fn solve_spd_ridged_packed(
    a: &[f64],
    n: usize,
    b: &[f64],
    factor: &mut Vec<f64>,
    x: &mut Vec<f64>,
) -> f64 {
    assert_eq!(a.len(), n * (n + 1) / 2, "packed triangle has wrong length");
    assert_eq!(b.len(), n, "rhs has wrong length");
    let refill = |factor: &mut Vec<f64>, x: &mut Vec<f64>| {
        factor.clear();
        factor.extend_from_slice(a);
        x.clear();
        x.extend_from_slice(b);
    };
    refill(factor, x);
    if cholesky_packed_in_place(factor, n) {
        solve_packed_in_place(factor, n, x);
        return 0.0;
    }
    let diag_max = (0..n)
        .map(|i| a[i * (i + 1) / 2 + i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut lambda = diag_max * 1e-10;
    loop {
        refill(factor, x);
        for i in 0..n {
            factor[i * (i + 1) / 2 + i] += lambda;
        }
        if cholesky_packed_in_place(factor, n) {
            solve_packed_in_place(factor, n, x);
            return lambda;
        }
        lambda *= 10.0;
        assert!(
            lambda.is_finite() && lambda < diag_max * 1e12,
            "ridge escalation failed; matrix is pathological"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 + 18.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
        let a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let x = solve_spd(&a, &[2.0, 1.0]).expect("pd");
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(cholesky(&a).is_none());
        let a = vec![vec![-1.0]];
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn ridged_solve_handles_singular() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let (x, lambda) = solve_spd_ridged(&a, &[1.0, 0.0]);
        assert!(lambda > 0.0);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn packed_cholesky_matches_dense_bitwise() {
        // Deterministic SPD matrix, factored both ways.
        let n = 9;
        let mut seed = 7u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let m: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, aij) in row.iter_mut().enumerate() {
                for mk in &m {
                    *aij += mk[i] * mk[j];
                }
                if i == j {
                    *aij += 1.0;
                }
            }
        }
        let mut packed: Vec<f64> = Vec::new();
        for i in 0..n {
            for j in 0..=i {
                packed.push(a[i][j]);
            }
        }
        let l = cholesky(&a).expect("pd");
        assert!(cholesky_packed_in_place(&mut packed, n));
        for i in 0..n {
            for j in 0..=i {
                assert_eq!(
                    packed[i * (i + 1) / 2 + j].to_bits(),
                    l[i][j].to_bits(),
                    "factor entry ({i},{j}) differs"
                );
            }
        }
        // And the solves agree bitwise too.
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let xd = solve_spd(&a, &b).expect("pd");
        let mut xp = b.clone();
        solve_packed_in_place(&packed, n, &mut xp);
        for i in 0..n {
            assert_eq!(xp[i].to_bits(), xd[i].to_bits(), "solution entry {i} differs");
        }
    }

    #[test]
    fn packed_cholesky_rejects_indefinite() {
        // [[0,1],[1,0]] packed: [0, 1, 0]
        let mut a = vec![0.0, 1.0, 0.0];
        assert!(!cholesky_packed_in_place(&mut a, 2));
        let mut a = vec![-1.0];
        assert!(!cholesky_packed_in_place(&mut a, 1));
    }

    #[test]
    fn packed_ridged_solve_handles_singular_and_reuses_buffers() {
        // [[1,0],[0,0]] packed: [1, 0, 0]
        let a = vec![1.0, 0.0, 0.0];
        let mut factor = Vec::new();
        let mut x = Vec::new();
        let lambda = solve_spd_ridged_packed(&a, 2, &[1.0, 0.0], &mut factor, &mut x);
        assert!(lambda > 0.0);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
        // Matches the dense ridged path bitwise (same lambda schedule).
        let ad = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let (xd, ld) = solve_spd_ridged(&ad, &[1.0, 0.0]);
        assert_eq!(lambda.to_bits(), ld.to_bits());
        assert_eq!(x[0].to_bits(), xd[0].to_bits());
        assert_eq!(x[1].to_bits(), xd[1].to_bits());
        // Second solve on a PD matrix reuses the same buffers without growth.
        let cap_f = factor.capacity();
        let cap_x = x.capacity();
        let b = vec![2.0, 1.0];
        let apd = vec![4.0, 2.0, 3.0]; // [[4,2],[2,3]]
        let lambda = solve_spd_ridged_packed(&apd, 2, &b, &mut factor, &mut x);
        assert_eq!(lambda, 0.0);
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
        assert_eq!(factor.capacity(), cap_f);
        assert_eq!(x.capacity(), cap_x);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn solve_residual_is_small_on_random_spd() {
        // Deterministic pseudo-random SPD matrix: A = MᵀM + I.
        let n = 12;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let m: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i][j] += m[k][i] * m[k][j];
                }
            }
            a[i][i] += 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = solve_spd(&a, &b).expect("pd");
        // Check residual.
        for i in 0..n {
            let ri: f64 = (0..n).map(|j| a[i][j] * x[j]).sum::<f64>() - b[i];
            assert!(ri.abs() < 1e-9, "row {i} residual {ri}");
        }
    }
}
