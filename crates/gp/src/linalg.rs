//! Minimal dense linear algebra for the Newton steps of the GP solver.
//!
//! Problem sizes after SMART's label-sharing are tiny (tens to a few hundred
//! variables), so a dense Cholesky is both sufficient and fully inspectable —
//! no external linear-algebra dependency is warranted (cf. DESIGN.md §5).

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix,
/// returning the lower factor, or `None` if a pivot is not strictly positive
/// (matrix not PD to working precision).
#[allow(clippy::needless_range_loop)] // triangular index arithmetic reads better with indices
pub fn cholesky(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        debug_assert_eq!(a[i].len(), n, "matrix must be square");
        for j in 0..=i {
            let mut s = a[i][j];
            for k in 0..j {
                s -= l[i][k] * l[j][k];
            }
            if i == j {
                if !s.is_finite() || s <= 0.0 {
                    return None;
                }
                l[i][j] = s.sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// Returns `None` when `A` is not PD to working precision.
pub fn solve_spd(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    let n = b.len();
    // Forward solve L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i][k] * z[k];
        }
        z[i] = s / l[i][i];
    }
    // Back solve Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in (i + 1)..n {
            s -= l[k][i] * x[k];
        }
        x[i] = s / l[i][i];
    }
    Some(x)
}

/// Solves `A x = b` for symmetric `A`, adding a growing ridge `λI` until the
/// matrix factors. Used for Newton steps on nearly singular Hessians (e.g.
/// variables that appear in no active constraint).
///
/// Returns the solution together with the ridge that was needed.
pub fn solve_spd_ridged(a: &[Vec<f64>], b: &[f64]) -> (Vec<f64>, f64) {
    if let Some(x) = solve_spd(a, b) {
        return (x, 0.0);
    }
    let n = a.len();
    // Scale the ridge to the matrix magnitude.
    let diag_max = (0..n)
        .map(|i| a[i][i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut lambda = diag_max * 1e-10;
    loop {
        let mut ar = a.to_vec();
        for (i, row) in ar.iter_mut().enumerate() {
            row[i] += lambda;
        }
        if let Some(x) = solve_spd(&ar, b) {
            return (x, lambda);
        }
        lambda *= 10.0;
        assert!(
            lambda.is_finite() && lambda < diag_max * 1e12,
            "ridge escalation failed; matrix is pathological"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 + 18.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
        let a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let x = solve_spd(&a, &[2.0, 1.0]).expect("pd");
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(cholesky(&a).is_none());
        let a = vec![vec![-1.0]];
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn ridged_solve_handles_singular() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let (x, lambda) = solve_spd_ridged(&a, &[1.0, 0.0]);
        assert!(lambda > 0.0);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn solve_residual_is_small_on_random_spd() {
        // Deterministic pseudo-random SPD matrix: A = MᵀM + I.
        let n = 12;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let m: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i][j] += m[k][i] * m[k][j];
                }
            }
            a[i][i] += 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = solve_spd(&a, &b).expect("pd");
        // Check residual.
        for i in 0..n {
            let ri: f64 = (0..n).map(|j| a[i][j] * x[j]).sum::<f64>() - b[i];
            assert!(ri.abs() < 1e-9, "row {i} residual {ri}");
        }
    }
}
