//! Geometric-program problem construction.

use smart_posy::{Monomial, Posynomial, VarId, VarPool};

use crate::GpError;

/// One inequality constraint `body ≤ 1` in normalized GP form, with a label
/// for diagnostics (SMART uses labels like `"path p12 rise"` so the designer
/// can see which timing constraint is binding).
#[derive(Debug, Clone)]
pub struct GpConstraint {
    /// Human-readable origin of the constraint.
    pub label: String,
    /// The posynomial body `f(x)`; the constraint is `f(x) ≤ 1`.
    pub body: Posynomial,
}

/// A geometric program in standard form:
///
/// ```text
/// minimize    f₀(x)              (posynomial)
/// subject to  fᵢ(x) ≤ 1, i=1..m  (posynomials)
///             x > 0
/// ```
///
/// Bounds and pinned variables are expressed as monomial constraints
/// (`x/ub ≤ 1`, `lb·x⁻¹ ≤ 1`), exactly how the SMART sizer encodes device
/// min/max size and designer-pinned sizes.
///
/// ```
/// use smart_posy::{Monomial, Posynomial, VarPool};
/// use smart_gp::GpProblem;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pool = VarPool::new();
/// let w = pool.var("W");
/// let mut gp = GpProblem::new(pool);
/// gp.set_objective(Posynomial::var(w));                 // minimize W
/// gp.add_le("delay", Posynomial::from(Monomial::new(2.0).pow(w, -1.0)),
///           Monomial::new(1.0))?;                       // 2/W <= 1
/// let sol = gp.solve(&Default::default())?;
/// assert!((sol.x[w.index()] - 2.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GpProblem {
    pool: VarPool,
    objective: Posynomial,
    constraints: Vec<GpConstraint>,
}

impl GpProblem {
    /// Creates a problem over the variables of `pool`.
    ///
    /// The pool may keep growing through [`GpProblem::pool_mut`] until
    /// [`GpProblem::solve`] is called.
    pub fn new(pool: VarPool) -> Self {
        GpProblem {
            pool,
            objective: Posynomial::constant(1.0),
            constraints: Vec::new(),
        }
    }

    /// The variable pool.
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Mutable access to the pool, for registering further variables.
    pub fn pool_mut(&mut self) -> &mut VarPool {
        &mut self.pool
    }

    /// Sets the posynomial objective to minimize.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is the zero posynomial.
    pub fn set_objective(&mut self, objective: Posynomial) {
        assert!(!objective.is_zero(), "objective must be a nonzero posynomial");
        self.objective = objective;
    }

    /// The current objective.
    pub fn objective(&self) -> &Posynomial {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[GpConstraint] {
        &self.constraints
    }

    /// Adds `lhs ≤ rhs` where `rhs` is a monomial; normalized internally to
    /// `lhs/rhs ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::EmptyConstraint`] if `lhs` is the zero posynomial
    /// (such a constraint is vacuous and usually indicates a modeling bug).
    pub fn add_le(
        &mut self,
        label: impl Into<String>,
        lhs: Posynomial,
        rhs: Monomial,
    ) -> Result<(), GpError> {
        if lhs.is_zero() {
            return Err(GpError::EmptyConstraint { label: label.into() });
        }
        self.push_le(label.into(), lhs, rhs);
        Ok(())
    }

    /// Replaces the body of constraint `index` with `lhs ≤ rhs`, normalized
    /// exactly like [`GpProblem::add_le`] — a replace reproduces, bit for
    /// bit, the body a fresh `add_le` would build. This is what lets the
    /// sizing loop retarget its timing constraints in place instead of
    /// reassembling the whole problem every Fig.-4 iteration.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::EmptyConstraint`] if `lhs` is the zero posynomial.
    pub fn replace_le(
        &mut self,
        index: usize,
        lhs: &Posynomial,
        rhs: &Monomial,
    ) -> Result<(), GpError> {
        if lhs.is_zero() {
            return Err(GpError::EmptyConstraint {
                label: self.constraints[index].label.clone(),
            });
        }
        self.constraints[index].body = lhs.div_monomial(rhs);
        Ok(())
    }

    /// Infallible insertion for bodies that are nonzero by construction.
    fn push_le(&mut self, label: String, lhs: Posynomial, rhs: Monomial) {
        self.constraints.push(GpConstraint {
            label,
            body: lhs.div_monomial(&rhs),
        });
    }

    /// Adds an upper bound `x ≤ ub`.
    ///
    /// # Panics
    ///
    /// Panics if `ub` is not finite and strictly positive.
    pub fn add_upper_bound(&mut self, v: VarId, ub: f64) {
        let name = format!("{} <= {ub}", self.pool.name(v));
        self.push_le(name, Posynomial::var(v), Monomial::new(ub));
    }

    /// Adds a lower bound `x ≥ lb` (encoded `lb·x⁻¹ ≤ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not finite and strictly positive.
    pub fn add_lower_bound(&mut self, v: VarId, lb: f64) {
        let name = format!("{} >= {lb}", self.pool.name(v));
        let body = Posynomial::from(Monomial::new(lb).pow(v, -1.0));
        self.push_le(name, body, Monomial::new(1.0));
    }

    /// Pins `x = value` (designer-controlled size, paper §2): both bounds at
    /// `value` with a small relative slack so the feasible set keeps an
    /// interior for the barrier method.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite and strictly positive.
    pub fn pin(&mut self, v: VarId, value: f64) {
        assert!(
            value.is_finite() && value > 0.0,
            "pinned size must be finite and > 0, got {value}"
        );
        const SLACK: f64 = 1.0 + 1e-6;
        self.add_upper_bound(v, value * SLACK);
        self.add_lower_bound(v, value / SLACK);
    }

    /// Number of optimization variables.
    pub fn dim(&self) -> usize {
        self.pool.len()
    }

    /// A copy of the problem with the constraints at the given indices
    /// removed (out-of-range and duplicate indices are ignored). The pool,
    /// objective, and surviving constraints — bodies, labels, relative
    /// order — are untouched, so solving the copy is exactly solving the
    /// original minus the dropped rows. This is the static-audit pruning
    /// hook: the audit proves a constraint redundant, this drops it.
    #[must_use]
    pub fn without_constraints(&self, drop: &[usize]) -> GpProblem {
        let drop: std::collections::HashSet<usize> = drop.iter().copied().collect();
        GpProblem {
            pool: self.pool.clone(),
            objective: self.objective.clone(),
            constraints: self
                .constraints
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, c)| c.clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_constraint_is_rejected() {
        let mut pool = VarPool::new();
        let _ = pool.var("w");
        let mut gp = GpProblem::new(pool);
        let err = gp
            .add_le("empty", Posynomial::zero(), Monomial::one())
            .unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn normalization_divides_by_rhs() {
        let mut pool = VarPool::new();
        let w = pool.var("w");
        let mut gp = GpProblem::new(pool);
        gp.add_le("c", Posynomial::var(w), Monomial::new(4.0))
            .unwrap();
        let body = &gp.constraints()[0].body;
        // x/4 at x=4 is exactly 1.
        assert!((body.eval(&[4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pin_creates_two_constraints() {
        let mut pool = VarPool::new();
        let w = pool.var("w");
        let mut gp = GpProblem::new(pool);
        gp.pin(w, 3.0);
        assert_eq!(gp.constraints().len(), 2);
        // x=3 is strictly inside both.
        for c in gp.constraints() {
            assert!(c.body.eval(&[3.0]) < 1.0);
        }
    }
}
