//! Dense reference solver — the oracle for the sparse production kernel.
//!
//! [`GpProblem::solve_reference`] runs the same barrier pipeline as
//! [`GpProblem::solve`] but assembles every Newton system densely: each
//! posynomial evaluates through [`LogPosynomial::value_grad_hess`] (fresh
//! `dim×dim` matrix per constraint per step) and the system is solved
//! with the historical `Vec<Vec<f64>>` Cholesky. Both kernels compute the
//! same sums in the same order, so the differential parity suite can pin
//! the sparse path against this one to near machine precision. Use it
//! only in tests — it is the O(m·n²) path the production kernel exists to
//! avoid.

use smart_posy::LogPosynomial;

use crate::linalg::{axpy, dot, norm, solve_spd_ridged};
use crate::solver::{check_budget, finalize, prepare, MAX_STEP, Y_BOUND};
use crate::{GpError, GpProblem, GpSolution, SolverOptions};

impl GpProblem {
    /// Solves the geometric program with the dense reference kernel.
    ///
    /// Same contract and error cases as [`GpProblem::solve`]; exists so
    /// differential tests can verify the sparse kernel against an
    /// independent (and much simpler) implementation.
    ///
    /// # Errors
    ///
    /// Identical to [`GpProblem::solve`].
    pub fn solve_reference(&self, opts: &SolverOptions) -> Result<GpSolution, GpError> {
        let (obj, cons, start) = prepare(self, opts)?;
        let mut phase1_steps = 0;
        let y0 = if cons.is_empty() {
            start
        } else {
            phase1_dense(&cons, start, opts, &mut phase1_steps)?
        };
        let mut phase2_steps = 0;
        let (y, t_final) = phase2_dense(&obj, &cons, y0, opts, phase1_steps, &mut phase2_steps)?;
        finalize(self, &obj, &cons, y, t_final, phase1_steps, phase2_steps)
    }
}

/// Dense phase I: minimize slack `s` subject to `Fᵢ(y) ≤ s`.
fn phase1_dense(
    cons: &[LogPosynomial],
    start: Vec<f64>,
    opts: &SolverOptions,
    steps: &mut usize,
) -> Result<Vec<f64>, GpError> {
    let dim = start.len();
    let mut y = start;
    let worst = |y: &[f64]| -> f64 {
        cons.iter()
            .map(|c| c.value(y))
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let mut s = worst(&y) + 1.0;
    if s - 1.0 < -opts.feasibility_margin {
        return Ok(y);
    }

    let mut t = 1.0f64.max(cons.len() as f64);
    for _ in 0..opts.max_outer_iter {
        // Centering on φ(y,s) = t·s − Σ log(s − Fᵢ(y)).
        for _ in 0..opts.max_newton_iter {
            *steps += 1;
            check_budget(opts, "phase1", *steps)?;
            let n = dim + 1;
            let mut grad = vec![0.0; n];
            let mut hess = vec![vec![0.0; n]; n];
            grad[dim] = t;
            let mut domain_ok = true;
            for c in cons {
                let (fv, fg, fh) = c.value_grad_hess(&y);
                let g = s - fv;
                if g <= 0.0 {
                    domain_ok = false;
                    break;
                }
                let inv = 1.0 / g;
                let inv2 = inv * inv;
                for i in 0..dim {
                    grad[i] += inv * fg[i];
                    for j in 0..dim {
                        hess[i][j] += inv2 * fg[i] * fg[j] + inv * fh[i][j];
                    }
                    hess[i][dim] -= inv2 * fg[i];
                    hess[dim][i] -= inv2 * fg[i];
                }
                // s-part: ∂φ/∂s gains −inv, ∂²φ/∂s² gains inv².
                grad[dim] -= inv;
                hess[dim][dim] += inv2;
            }
            if !domain_ok {
                return Err(GpError::Numerical {
                    stage: "phase1",
                    detail: "iterate left the barrier domain".into(),
                });
            }
            let neg_grad: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let (d, _) = solve_spd_ridged(&hess, &neg_grad);
            let decrement2 = -dot(&grad, &d);
            if decrement2 / 2.0 < opts.newton_tol {
                break;
            }
            let value = |y: &[f64], s: f64| -> Option<f64> {
                let mut v = t * s;
                for c in cons {
                    let g = s - c.value(y);
                    if g <= 0.0 {
                        return None;
                    }
                    v -= g.ln();
                }
                Some(v)
            };
            let f0 = value(&y, s).ok_or(GpError::Numerical {
                stage: "phase1",
                detail: "current point infeasible for barrier".into(),
            })?;
            let mut alpha = (MAX_STEP / norm(&d)).min(1.0);
            let slope = dot(&grad, &d);
            let mut accepted = false;
            for _ in 0..60 {
                let mut yn = y.clone();
                axpy(alpha, &d[..dim], &mut yn);
                let sn = s + alpha * d[dim];
                if let Some(fv) = value(&yn, sn) {
                    if fv <= f0 + 0.25 * alpha * slope {
                        y = yn;
                        s = sn;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            if !accepted {
                break;
            }
            if s < -opts.feasibility_margin || worst(&y) < -opts.feasibility_margin {
                return Ok(y);
            }
            if y.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite {
                    stage: "phase1",
                    detail: "iterate became non-finite".into(),
                });
            }
            if y.iter().any(|v| v.abs() > Y_BOUND) {
                return Err(GpError::Unbounded);
            }
        }
        if s < -opts.feasibility_margin {
            return Ok(y);
        }
        if cons.len() as f64 / t < opts.tol {
            break;
        }
        t *= opts.mu;
    }
    Err(GpError::Infeasible {
        worst_violation: worst(&y).exp(),
    })
}

/// Dense phase II: barrier method on `t·F₀(y) − Σ log(−Fᵢ(y))`.
fn phase2_dense(
    obj: &LogPosynomial,
    cons: &[LogPosynomial],
    mut y: Vec<f64>,
    opts: &SolverOptions,
    spent_before: usize,
    steps: &mut usize,
) -> Result<(Vec<f64>, f64), GpError> {
    let dim = y.len();
    let m = cons.len();
    let mut t: f64 = 1.0f64.max(m as f64);

    let value = |y: &[f64], t: f64| -> Option<f64> {
        let mut v = t * obj.value(y);
        for c in cons {
            let fv = c.value(y);
            if fv >= 0.0 {
                return None;
            }
            v -= (-fv).ln();
        }
        Some(v)
    };

    loop {
        for _ in 0..opts.max_newton_iter {
            *steps += 1;
            check_budget(opts, "phase2", spent_before + *steps)?;
            let (_, og, oh) = obj.value_grad_hess(&y);
            let mut grad: Vec<f64> = og.iter().map(|&g| t * g).collect();
            let mut hess: Vec<Vec<f64>> = oh
                .iter()
                .map(|row| row.iter().map(|&h| t * h).collect())
                .collect();
            for c in cons {
                let (fv, fg, fh) = c.value_grad_hess(&y);
                if fv >= 0.0 {
                    return Err(GpError::Numerical {
                        stage: "phase2",
                        detail: "iterate left the feasible interior".into(),
                    });
                }
                let inv = -1.0 / fv;
                let inv2 = inv * inv;
                for i in 0..dim {
                    grad[i] += inv * fg[i];
                    for j in 0..dim {
                        hess[i][j] += inv2 * fg[i] * fg[j] + inv * fh[i][j];
                    }
                }
            }
            let neg_grad: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let (d, _) = solve_spd_ridged(&hess, &neg_grad);
            let decrement2 = -dot(&grad, &d);
            if decrement2.abs() / 2.0 < opts.newton_tol {
                break;
            }
            let f0 = value(&y, t).ok_or(GpError::Numerical {
                stage: "phase2",
                detail: "lost feasibility before line search".into(),
            })?;
            let slope = dot(&grad, &d);
            let mut alpha = (MAX_STEP / norm(&d)).min(1.0);
            let mut accepted = false;
            for _ in 0..60 {
                let mut yn = y.clone();
                axpy(alpha, &d, &mut yn);
                if let Some(fv) = value(&yn, t) {
                    if fv <= f0 + 0.25 * alpha * slope {
                        y = yn;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            if !accepted {
                break;
            }
            if y.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite {
                    stage: "phase2",
                    detail: "iterate became non-finite".into(),
                });
            }
            if y.iter().any(|v| v.abs() > Y_BOUND) {
                return Err(GpError::Unbounded);
            }
            if norm(&d) * alpha < 1e-14 {
                break;
            }
        }
        if m == 0 || (m as f64) / t < opts.tol {
            return Ok((y, t));
        }
        t *= opts.mu;
        if t > 1e18 {
            return Ok((y, t));
        }
    }
}
