//! Interior-point solver for geometric programs.
//!
//! Pipeline: log-transform every posynomial (convex `log-sum-exp` form),
//! find a strictly feasible point with a phase-I slack formulation, then run
//! a standard barrier method — damped Newton centering steps with
//! backtracking line search, geometric increase of the barrier parameter —
//! until the duality-gap estimate `m/t` is below tolerance. See Boyd &
//! Vandenberghe, ch. 11; this mirrors the "GP solver" box of the paper's
//! Fig. 4.
//!
//! The Newton step is assembled **sparsely**: each constraint scatters its
//! gradient and packed Hessian contribution only over its support via
//! [`smart_posy::GradHessWorkspace`], and the system is factored in place
//! in packed lower-triangular form. All per-step buffers live in a
//! [`NewtonWorkspace`] reused across steps and line-search trials, so a
//! steady-state Newton step performs no heap allocation. The historical
//! dense path survives as [`GpProblem::solve_reference`] (see
//! `reference.rs`), the oracle the differential parity suite pins this
//! kernel against.

use std::sync::Arc;
use std::time::Instant;

use smart_posy::{GradHessWorkspace, LogPosynomial};

use crate::linalg::{axpy, dot, norm, solve_spd_ridged_packed};
use crate::{CancelToken, GpError, GpProblem, KktReport};

/// Tuning knobs for the barrier solver. The defaults solve every sizing
/// problem in this repository; they are exposed for stress tests.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Target duality-gap estimate `m/t` at termination.
    pub tol: f64,
    /// Newton decrement threshold for each centering problem.
    pub newton_tol: f64,
    /// Barrier parameter multiplier per outer iteration.
    pub mu: f64,
    /// Maximum Newton iterations per centering problem.
    pub max_newton_iter: usize,
    /// Maximum outer (barrier) iterations.
    pub max_outer_iter: usize,
    /// Phase-I slack below which the point counts as strictly feasible.
    pub feasibility_margin: f64,
    /// Optional warm-start point in the original (positive) variables,
    /// indexed like the solution vector. A feasible start skips phase I
    /// entirely; an infeasible one still anchors phase I in the right
    /// region (important when a variable's natural scale is far from 1,
    /// e.g. an auxiliary delay variable in a min-delay program).
    pub initial_x: Option<Vec<f64>>,
    /// Cooperative wall-clock deadline: the Newton loops check it every
    /// step and bail with [`GpError::BudgetExceeded`] once passed, so a
    /// runaway candidate cannot hang an exploration sweep.
    pub deadline: Option<Instant>,
    /// Cap on total Newton steps across both phases; `None` is unlimited.
    /// Exceeding it yields [`GpError::BudgetExceeded`].
    pub max_total_newton: Option<usize>,
    /// Shared cooperative cancellation token, checked once per Newton step
    /// alongside the deadline. A parallel exploration sweep hands every
    /// in-flight solve the same token so one `cancel()` stops them all;
    /// tripping yields [`GpError::BudgetExceeded`] with budget
    /// `"cancelled"`.
    pub cancel: Option<Arc<CancelToken>>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tol: 1e-8,
            newton_tol: 1e-10,
            mu: 20.0,
            max_newton_iter: 200,
            max_outer_iter: 100,
            feasibility_margin: 1e-7,
            initial_x: None,
            deadline: None,
            max_total_newton: None,
            cancel: None,
        }
    }
}

/// Cooperative budget check, called once per Newton step (a step costs a
/// Hessian assembly + factorization, so the `Instant::now()` call is
/// negligible against it).
pub(crate) fn check_budget(
    opts: &SolverOptions,
    stage: &'static str,
    spent_newton: usize,
) -> Result<(), GpError> {
    let budget = if opts.max_total_newton.is_some_and(|cap| spent_newton > cap) {
        "newton-steps"
    } else if opts.deadline.is_some_and(|d| Instant::now() >= d) {
        "wall-clock"
    } else if opts.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
        "cancelled"
    } else {
        return Ok(());
    };
    smart_trace::emit_with("gp/budget", || {
        vec![
            ("stage", stage.into()),
            ("budget", budget.into()),
            ("spent_newton", spent_newton.into()),
        ]
    });
    Err(GpError::BudgetExceeded {
        stage,
        budget,
        spent_newton,
    })
}

/// Largest-magnitude coordinate without relying on a total order over
/// possibly-NaN floats (diagnostic use only).
fn max_abs_coord(y: &[f64]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for (i, &v) in y.iter().enumerate() {
        if v.abs() > best.1.abs() {
            best = (i, v);
        }
    }
    best
}

/// Result of a successful GP solve.
#[derive(Debug, Clone)]
pub struct GpSolution {
    /// Optimal point in the original (positive) variables, indexed by
    /// [`smart_posy::VarId::index`].
    pub x: Vec<f64>,
    /// Objective value `f₀(x)` at the optimum.
    pub objective: f64,
    /// Total Newton steps spent in phase I (feasibility).
    pub phase1_newton_steps: usize,
    /// Total Newton steps spent in phase II (optimization).
    pub phase2_newton_steps: usize,
    /// First-order optimality diagnostics.
    pub kkt: KktReport,
}

impl GpSolution {
    /// Constraint bodies `fᵢ(x)` at the optimum, paired with their labels;
    /// values near 1 are *tight* (binding) constraints.
    pub fn constraint_activity<'a>(&self, problem: &'a GpProblem) -> Vec<(&'a str, f64)> {
        problem
            .constraints()
            .iter()
            .map(|c| (c.label.as_str(), c.body.eval(&self.x)))
            .collect()
    }
}

/// Hard cap on `‖y‖∞` (log-space); beyond this the problem is declared
/// unbounded (x outside `[e⁻⁴⁰, e⁴⁰]` is physically meaningless for sizes).
pub(crate) const Y_BOUND: f64 = 40.0;

/// Trust-region-style cap on a single Newton step in log space.
pub(crate) const MAX_STEP: f64 = 8.0;

/// Per-solve scratch for the Newton loops: the sparse gradient/Hessian
/// accumulator plus the factorization, right-hand-side, direction and
/// line-search trial buffers. Every buffer keeps its capacity across
/// Newton steps and backtracking trials, so the steady-state step
/// allocates nothing.
#[derive(Debug, Default)]
struct NewtonWorkspace {
    /// Sparse scatter target: gradient + packed lower-triangular Hessian.
    ws: GradHessWorkspace,
    /// Packed matrix copy consumed by the in-place Cholesky (the ridge
    /// escalation re-copies into it instead of cloning the matrix).
    factor: Vec<f64>,
    /// Negated gradient handed to the linear solve.
    rhs: Vec<f64>,
    /// Newton direction.
    dir: Vec<f64>,
    /// Line-search trial point.
    trial: Vec<f64>,
}

/// Shared setup for [`GpProblem::solve`] and
/// [`GpProblem::solve_reference`]: validates the problem data,
/// log-transforms the objective and constraints, and maps the optional
/// warm start into log space.
pub(crate) fn prepare(
    problem: &GpProblem,
    opts: &SolverOptions,
) -> Result<(LogPosynomial, Vec<LogPosynomial>, Vec<f64>), GpError> {
    let dim = problem.dim();
    if dim == 0 {
        return Err(GpError::Numerical {
            stage: "setup",
            detail: "problem has no variables".into(),
        });
    }
    problem
        .objective()
        .validate()
        .map_err(|e| GpError::NonFinite {
            stage: "setup",
            detail: format!("objective: {e}"),
        })?;
    for c in problem.constraints() {
        c.body.validate().map_err(|e| GpError::NonFinite {
            stage: "setup",
            detail: format!("constraint '{}': {e}", c.label),
        })?;
    }
    let obj = LogPosynomial::from_posynomial(problem.objective(), dim);
    let cons: Vec<LogPosynomial> = problem
        .constraints()
        .iter()
        .map(|c| LogPosynomial::from_posynomial(&c.body, dim))
        .collect();

    let start: Vec<f64> = match &opts.initial_x {
        Some(x0) => {
            if x0.len() < dim {
                return Err(GpError::Numerical {
                    stage: "setup",
                    detail: format!(
                        "initial point has {} coordinates, problem has {dim}",
                        x0.len()
                    ),
                });
            }
            let mut y = Vec::with_capacity(dim);
            for (i, &v) in x0[..dim].iter().enumerate() {
                if !(v.is_finite() && v > 0.0) {
                    return Err(GpError::NonFinite {
                        stage: "setup",
                        detail: format!("initial point coordinate {i} is {v}"),
                    });
                }
                y.push(v.ln());
            }
            y
        }
        None => vec![0.0; dim],
    };
    Ok((obj, cons, start))
}

/// Shared epilogue: exponentiates the log-space optimum, validates it, and
/// assembles the [`GpSolution`] with its KKT report.
pub(crate) fn finalize(
    problem: &GpProblem,
    obj: &LogPosynomial,
    cons: &[LogPosynomial],
    y: Vec<f64>,
    t_final: f64,
    phase1_steps: usize,
    phase2_steps: usize,
) -> Result<GpSolution, GpError> {
    let x: Vec<f64> = y.iter().map(|&v| v.exp()).collect();
    if x.iter().any(|v| !v.is_finite()) {
        return Err(GpError::NonFinite {
            stage: "solution",
            detail: "optimizer returned a non-finite width".into(),
        });
    }
    let objective = problem.objective().eval(&x);
    if !objective.is_finite() {
        return Err(GpError::NonFinite {
            stage: "solution",
            detail: format!("objective evaluated to {objective} at the optimum"),
        });
    }
    let kkt = KktReport::at_point(obj, cons, &y, t_final);
    smart_trace::emit_with("gp/solve", || {
        vec![
            ("dim", problem.dim().into()),
            ("constraints", cons.len().into()),
            ("phase1_steps", phase1_steps.into()),
            ("phase2_steps", phase2_steps.into()),
            ("objective", objective.into()),
        ]
    });
    Ok(GpSolution {
        objective,
        x,
        phase1_newton_steps: phase1_steps,
        phase2_newton_steps: phase2_steps,
        kkt,
    })
}

impl GpProblem {
    /// Solves the geometric program.
    ///
    /// # Errors
    ///
    /// * [`GpError::Infeasible`] — phase I could not drive the worst
    ///   constraint violation below the feasibility margin.
    /// * [`GpError::Unbounded`] — iterates escaped the sanity box, meaning
    ///   the objective has no positive minimizer under the constraints.
    /// * [`GpError::Numerical`] — Newton failed to make progress (returned
    ///   with the stage name for diagnosis).
    /// * [`GpError::NonFinite`] — the problem data or warm start contains
    ///   NaN/Inf, or an iterate went non-finite despite the safeguards.
    /// * [`GpError::BudgetExceeded`] — a configured deadline or Newton-step
    ///   cap fired before convergence.
    pub fn solve(&self, opts: &SolverOptions) -> Result<GpSolution, GpError> {
        let (obj, cons, start) = prepare(self, opts)?;
        let mut nw = NewtonWorkspace::default();
        let mut phase1_steps = 0;
        let y0 = if cons.is_empty() {
            start
        } else {
            phase1(&cons, start, opts, &mut phase1_steps, &mut nw)?
        };

        let mut phase2_steps = 0;
        let (y, t_final) = phase2(
            &obj,
            &cons,
            y0,
            opts,
            phase1_steps,
            &mut phase2_steps,
            &mut nw,
        )?;
        finalize(self, &obj, &cons, y, t_final, phase1_steps, phase2_steps)
    }
}

/// Phase I: minimize slack `s` subject to `Fᵢ(y) ≤ s`; succeeds as soon as a
/// point with `s < -margin` is found.
fn phase1(
    cons: &[LogPosynomial],
    start: Vec<f64>,
    opts: &SolverOptions,
    steps: &mut usize,
    nw: &mut NewtonWorkspace,
) -> Result<Vec<f64>, GpError> {
    let NewtonWorkspace {
        ws,
        factor,
        rhs,
        dir,
        trial,
    } = nw;
    let dim = start.len();
    let mut y = start;
    let worst = |y: &[f64]| -> f64 {
        cons.iter()
            .map(|c| c.value(y))
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let mut s = worst(&y) + 1.0;
    if s - 1.0 < -opts.feasibility_margin {
        return Ok(y); // the start is already strictly feasible
    }

    // Start the barrier at t ≈ m: for small t the centering point has
    // slack s ≈ m/t, which un-tethers every constraint and lets the
    // iterate drift; at t = m the initial slack stays O(1).
    let mut t = 1.0f64.max(cons.len() as f64);
    for _ in 0..opts.max_outer_iter {
        // Centering on φ(y,s) = t·s − Σ log(s − Fᵢ(y)), assembled sparsely
        // over the slack-augmented space (the slack is coordinate `dim`).
        for _ in 0..opts.max_newton_iter {
            *steps += 1;
            check_budget(opts, "phase1", *steps)?;
            let n = dim + 1;
            ws.reset(n);
            ws.grad_mut()[dim] = t;
            // The barrier value at (y, s) falls out of the assembly for
            // free: the same constraint values, combined in the same order
            // as the line-search evaluator, so `f0` is bit-identical to a
            // separate evaluation and costs no extra posynomial sweeps.
            let mut f0 = t * s;
            let mut domain_ok = true;
            for c in cons {
                let fv = c.value_grad_hess_into(&y, ws);
                let g = s - fv;
                if g <= 0.0 {
                    domain_ok = false;
                    break;
                }
                f0 -= g.ln();
                let inv = 1.0 / g;
                let inv2 = inv * inv;
                // y-block of −∇²log(s−F): inv²·ffᵀ + inv·∇²F, …
                ws.scatter_staged(inv, inv, inv2);
                // … the s-row cross terms −inv²·f, …
                ws.scatter_staged_row(dim, -inv2);
                // … and the s-part: ∂φ/∂s gains −inv, ∂²φ/∂s² gains inv².
                ws.grad_mut()[dim] -= inv;
                ws.add_hess(dim, dim, inv2);
            }
            if !domain_ok {
                return Err(GpError::Numerical {
                    stage: "phase1",
                    detail: "iterate left the barrier domain".into(),
                });
            }
            rhs.clear();
            rhs.extend(ws.grad().iter().map(|&g| -g));
            solve_spd_ridged_packed(ws.hess_packed(), n, rhs, factor, dir);
            let decrement2 = -dot(ws.grad(), dir);
            if decrement2 / 2.0 < opts.newton_tol {
                break;
            }
            // Backtracking line search keeping s − Fᵢ > 0. Each trial also
            // reports the worst raw constraint value so the feasibility
            // check below reuses the accepted trial's sweep (the fold order
            // matches `worst`, keeping the result bit-identical).
            let value_worst = |y: &[f64], s: f64| -> Option<(f64, f64)> {
                let mut v = t * s;
                let mut w = f64::NEG_INFINITY;
                for c in cons {
                    let fv = c.value(y);
                    let g = s - fv;
                    if g <= 0.0 {
                        return None;
                    }
                    w = w.max(fv);
                    v -= g.ln();
                }
                Some((v, w))
            };
            // Cap the step so the phase-I recession direction (s → −∞ with
            // g fixed) cannot fling the iterate outside the sanity box
            // before the early feasibility return fires.
            let mut alpha = (MAX_STEP / norm(dir)).min(1.0);
            let slope = dot(ws.grad(), dir);
            let mut accepted = false;
            let mut worst_y = f64::INFINITY;
            for _ in 0..60 {
                trial.clear();
                trial.extend_from_slice(&y);
                axpy(alpha, &dir[..dim], trial);
                let sn = s + alpha * dir[dim];
                if let Some((fv, w)) = value_worst(trial, sn) {
                    if fv <= f0 + 0.25 * alpha * slope {
                        std::mem::swap(&mut y, trial);
                        s = sn;
                        worst_y = w;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            smart_trace::emit_with("gp/newton", || {
                vec![
                    ("stage", "phase1".into()),
                    ("step", (*steps).into()),
                    ("residual", (decrement2 / 2.0).into()),
                    ("alpha", alpha.into()),
                    ("accepted", accepted.into()),
                ]
            });
            if !accepted {
                break; // stalled; outer loop will tighten or fail
            }
            // Return on *actual* strict feasibility of y, not only via the
            // slack s — the slack can lag while the barrier drifts along
            // directions where some gᵢ grows without bound. `worst_y` is
            // the accepted trial's sweep, so no extra evaluation is needed.
            if s < -opts.feasibility_margin || worst_y < -opts.feasibility_margin {
                return Ok(y);
            }
            // NaN never compares > Y_BOUND, so catch it explicitly before
            // the escape check — a NaN iterate must become a typed error,
            // not a NaN solution.
            if y.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite {
                    stage: "phase1",
                    detail: "iterate became non-finite".into(),
                });
            }
            if y.iter().any(|v| v.abs() > Y_BOUND) {
                // Formerly an eprintln! behind SMART_GP_DEBUG: the escape
                // diagnosis is now a structured trace event, visible in
                // any traced run instead of a raw stderr side channel.
                smart_trace::emit_with("gp/escape", || {
                    let (i, v) = max_abs_coord(&y);
                    vec![
                        ("stage", "phase1".into()),
                        ("coord", i.into()),
                        ("value", v.into()),
                        ("s", s.into()),
                        ("t", t.into()),
                    ]
                });
                return Err(GpError::Unbounded);
            }
        }
        if s < -opts.feasibility_margin {
            return Ok(y);
        }
        if cons.len() as f64 / t < opts.tol {
            break;
        }
        t *= opts.mu;
    }
    Err(GpError::Infeasible {
        worst_violation: worst(&y).exp(),
    })
}

/// Phase II: barrier method on `t·F₀(y) − Σ log(−Fᵢ(y))` from a strictly
/// feasible start.
#[allow(clippy::too_many_arguments)]
fn phase2(
    obj: &LogPosynomial,
    cons: &[LogPosynomial],
    mut y: Vec<f64>,
    opts: &SolverOptions,
    spent_before: usize,
    steps: &mut usize,
    nw: &mut NewtonWorkspace,
) -> Result<(Vec<f64>, f64), GpError> {
    let NewtonWorkspace {
        ws,
        factor,
        rhs,
        dir,
        trial,
    } = nw;
    let dim = y.len();
    let m = cons.len();
    let mut t: f64 = 1.0f64.max(m as f64);

    let value = |y: &[f64], t: f64| -> Option<f64> {
        let mut v = t * obj.value(y);
        for c in cons {
            let fv = c.value(y);
            if fv >= 0.0 {
                return None;
            }
            v -= (-fv).ln();
        }
        Some(v)
    };

    loop {
        // Centering.
        for _ in 0..opts.max_newton_iter {
            *steps += 1;
            check_budget(opts, "phase2", spent_before + *steps)?;
            ws.reset(dim);
            // The objective contributes t·∇F₀ and t·∇²F₀ (no rank-one
            // barrier piece). As in phase I, the barrier value `f0` is
            // accumulated from the assembly's own evaluations, in the same
            // order as the line-search evaluator — bit-identical, no extra
            // sweeps.
            let obj_val = obj.value_grad_hess_into(&y, ws);
            ws.scatter_staged(t, t, 0.0);
            let mut f0 = t * obj_val;
            for c in cons {
                let fv = c.value_grad_hess_into(&y, ws);
                if fv >= 0.0 {
                    return Err(GpError::Numerical {
                        stage: "phase2",
                        detail: "iterate left the feasible interior".into(),
                    });
                }
                f0 -= (-fv).ln();
                let inv = -1.0 / fv; // 1/(−Fᵢ) > 0
                let inv2 = inv * inv;
                ws.scatter_staged(inv, inv, inv2);
            }
            rhs.clear();
            rhs.extend(ws.grad().iter().map(|&g| -g));
            solve_spd_ridged_packed(ws.hess_packed(), dim, rhs, factor, dir);
            let decrement2 = -dot(ws.grad(), dir);
            if decrement2.abs() / 2.0 < opts.newton_tol {
                break;
            }
            let slope = dot(ws.grad(), dir);
            let mut alpha = (MAX_STEP / norm(dir)).min(1.0);
            let mut accepted = false;
            for _ in 0..60 {
                trial.clear();
                trial.extend_from_slice(&y);
                axpy(alpha, dir, trial);
                if let Some(fv) = value(trial, t) {
                    if fv <= f0 + 0.25 * alpha * slope {
                        std::mem::swap(&mut y, trial);
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            smart_trace::emit_with("gp/newton", || {
                vec![
                    ("stage", "phase2".into()),
                    ("step", (*steps).into()),
                    ("residual", (decrement2.abs() / 2.0).into()),
                    ("alpha", alpha.into()),
                    ("accepted", accepted.into()),
                ]
            });
            if !accepted {
                break;
            }
            if y.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite {
                    stage: "phase2",
                    detail: "iterate became non-finite".into(),
                });
            }
            if y.iter().any(|v| v.abs() > Y_BOUND) {
                // Formerly an eprintln! behind SMART_GP_DEBUG (see the
                // phase-1 twin above).
                smart_trace::emit_with("gp/escape", || {
                    let (i, v) = max_abs_coord(&y);
                    vec![
                        ("stage", "phase2".into()),
                        ("coord", i.into()),
                        ("value", v.into()),
                        ("t", t.into()),
                        ("alpha", alpha.into()),
                    ]
                });
                return Err(GpError::Unbounded);
            }
            if norm(dir) * alpha < 1e-14 {
                break;
            }
        }
        if m == 0 || (m as f64) / t < opts.tol {
            return Ok((y, t));
        }
        t *= opts.mu;
        if t > 1e18 {
            return Ok((y, t));
        }
    }
}
