//! Interior-point solver for geometric programs.
//!
//! Pipeline: log-transform every posynomial (convex `log-sum-exp` form),
//! find a strictly feasible point with a phase-I slack formulation, then run
//! a standard barrier method — damped Newton centering steps with
//! backtracking line search, geometric increase of the barrier parameter —
//! until the duality-gap estimate `m/t` is below tolerance. See Boyd &
//! Vandenberghe, ch. 11; this mirrors the "GP solver" box of the paper's
//! Fig. 4.

use std::sync::Arc;
use std::time::Instant;

use smart_posy::LogPosynomial;

use crate::linalg::{axpy, dot, norm, solve_spd_ridged};
use crate::{CancelToken, GpError, GpProblem, KktReport};

/// Tuning knobs for the barrier solver. The defaults solve every sizing
/// problem in this repository; they are exposed for stress tests.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Target duality-gap estimate `m/t` at termination.
    pub tol: f64,
    /// Newton decrement threshold for each centering problem.
    pub newton_tol: f64,
    /// Barrier parameter multiplier per outer iteration.
    pub mu: f64,
    /// Maximum Newton iterations per centering problem.
    pub max_newton_iter: usize,
    /// Maximum outer (barrier) iterations.
    pub max_outer_iter: usize,
    /// Phase-I slack below which the point counts as strictly feasible.
    pub feasibility_margin: f64,
    /// Optional warm-start point in the original (positive) variables,
    /// indexed like the solution vector. A feasible start skips phase I
    /// entirely; an infeasible one still anchors phase I in the right
    /// region (important when a variable's natural scale is far from 1,
    /// e.g. an auxiliary delay variable in a min-delay program).
    pub initial_x: Option<Vec<f64>>,
    /// Cooperative wall-clock deadline: the Newton loops check it every
    /// step and bail with [`GpError::BudgetExceeded`] once passed, so a
    /// runaway candidate cannot hang an exploration sweep.
    pub deadline: Option<Instant>,
    /// Cap on total Newton steps across both phases; `None` is unlimited.
    /// Exceeding it yields [`GpError::BudgetExceeded`].
    pub max_total_newton: Option<usize>,
    /// Shared cooperative cancellation token, checked once per Newton step
    /// alongside the deadline. A parallel exploration sweep hands every
    /// in-flight solve the same token so one `cancel()` stops them all;
    /// tripping yields [`GpError::BudgetExceeded`] with budget
    /// `"cancelled"`.
    pub cancel: Option<Arc<CancelToken>>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tol: 1e-8,
            newton_tol: 1e-10,
            mu: 20.0,
            max_newton_iter: 200,
            max_outer_iter: 100,
            feasibility_margin: 1e-7,
            initial_x: None,
            deadline: None,
            max_total_newton: None,
            cancel: None,
        }
    }
}

/// Cooperative budget check, called once per Newton step (a step costs a
/// Hessian assembly + factorization, so the `Instant::now()` call is
/// negligible against it).
fn check_budget(
    opts: &SolverOptions,
    stage: &'static str,
    spent_newton: usize,
) -> Result<(), GpError> {
    let budget = if opts.max_total_newton.is_some_and(|cap| spent_newton > cap) {
        "newton-steps"
    } else if opts.deadline.is_some_and(|d| Instant::now() >= d) {
        "wall-clock"
    } else if opts.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
        "cancelled"
    } else {
        return Ok(());
    };
    smart_trace::emit_with("gp/budget", || {
        vec![
            ("stage", stage.into()),
            ("budget", budget.into()),
            ("spent_newton", spent_newton.into()),
        ]
    });
    Err(GpError::BudgetExceeded {
        stage,
        budget,
        spent_newton,
    })
}

/// Largest-magnitude coordinate without relying on a total order over
/// possibly-NaN floats (diagnostic use only).
fn max_abs_coord(y: &[f64]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for (i, &v) in y.iter().enumerate() {
        if v.abs() > best.1.abs() {
            best = (i, v);
        }
    }
    best
}

/// Result of a successful GP solve.
#[derive(Debug, Clone)]
pub struct GpSolution {
    /// Optimal point in the original (positive) variables, indexed by
    /// [`smart_posy::VarId::index`].
    pub x: Vec<f64>,
    /// Objective value `f₀(x)` at the optimum.
    pub objective: f64,
    /// Total Newton steps spent in phase I (feasibility).
    pub phase1_newton_steps: usize,
    /// Total Newton steps spent in phase II (optimization).
    pub phase2_newton_steps: usize,
    /// First-order optimality diagnostics.
    pub kkt: KktReport,
}

impl GpSolution {
    /// Constraint bodies `fᵢ(x)` at the optimum, paired with their labels;
    /// values near 1 are *tight* (binding) constraints.
    pub fn constraint_activity<'a>(&self, problem: &'a GpProblem) -> Vec<(&'a str, f64)> {
        problem
            .constraints()
            .iter()
            .map(|c| (c.label.as_str(), c.body.eval(&self.x)))
            .collect()
    }
}

/// Hard cap on `‖y‖∞` (log-space); beyond this the problem is declared
/// unbounded (x outside `[e⁻⁴⁰, e⁴⁰]` is physically meaningless for sizes).
const Y_BOUND: f64 = 40.0;

/// Trust-region-style cap on a single Newton step in log space.
const MAX_STEP: f64 = 8.0;

impl GpProblem {
    /// Solves the geometric program.
    ///
    /// # Errors
    ///
    /// * [`GpError::Infeasible`] — phase I could not drive the worst
    ///   constraint violation below the feasibility margin.
    /// * [`GpError::Unbounded`] — iterates escaped the sanity box, meaning
    ///   the objective has no positive minimizer under the constraints.
    /// * [`GpError::Numerical`] — Newton failed to make progress (returned
    ///   with the stage name for diagnosis).
    /// * [`GpError::NonFinite`] — the problem data or warm start contains
    ///   NaN/Inf, or an iterate went non-finite despite the safeguards.
    /// * [`GpError::BudgetExceeded`] — a configured deadline or Newton-step
    ///   cap fired before convergence.
    pub fn solve(&self, opts: &SolverOptions) -> Result<GpSolution, GpError> {
        let dim = self.dim();
        if dim == 0 {
            return Err(GpError::Numerical {
                stage: "setup",
                detail: "problem has no variables".into(),
            });
        }
        self.objective().validate().map_err(|e| GpError::NonFinite {
            stage: "setup",
            detail: format!("objective: {e}"),
        })?;
        for c in self.constraints() {
            c.body.validate().map_err(|e| GpError::NonFinite {
                stage: "setup",
                detail: format!("constraint '{}': {e}", c.label),
            })?;
        }
        let obj = LogPosynomial::from_posynomial(self.objective(), dim);
        let cons: Vec<LogPosynomial> = self
            .constraints()
            .iter()
            .map(|c| LogPosynomial::from_posynomial(&c.body, dim))
            .collect();

        let start: Vec<f64> = match &opts.initial_x {
            Some(x0) => {
                if x0.len() < dim {
                    return Err(GpError::Numerical {
                        stage: "setup",
                        detail: format!(
                            "initial point has {} coordinates, problem has {dim}",
                            x0.len()
                        ),
                    });
                }
                let mut y = Vec::with_capacity(dim);
                for (i, &v) in x0[..dim].iter().enumerate() {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(GpError::NonFinite {
                            stage: "setup",
                            detail: format!("initial point coordinate {i} is {v}"),
                        });
                    }
                    y.push(v.ln());
                }
                y
            }
            None => vec![0.0; dim],
        };
        let mut phase1_steps = 0;
        let y0 = if cons.is_empty() {
            start
        } else {
            phase1(&cons, start, opts, &mut phase1_steps)?
        };

        let mut phase2_steps = 0;
        let (y, t_final) = phase2(&obj, &cons, y0, opts, phase1_steps, &mut phase2_steps)?;

        let x: Vec<f64> = y.iter().map(|&v| v.exp()).collect();
        if x.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFinite {
                stage: "solution",
                detail: "optimizer returned a non-finite width".into(),
            });
        }
        let objective = self.objective().eval(&x);
        if !objective.is_finite() {
            return Err(GpError::NonFinite {
                stage: "solution",
                detail: format!("objective evaluated to {objective} at the optimum"),
            });
        }
        let kkt = KktReport::at_point(&obj, &cons, &y, t_final);
        smart_trace::emit_with("gp/solve", || {
            vec![
                ("dim", dim.into()),
                ("constraints", cons.len().into()),
                ("phase1_steps", phase1_steps.into()),
                ("phase2_steps", phase2_steps.into()),
                ("objective", objective.into()),
            ]
        });
        Ok(GpSolution {
            objective,
            x,
            phase1_newton_steps: phase1_steps,
            phase2_newton_steps: phase2_steps,
            kkt,
        })
    }
}

/// Phase I: minimize slack `s` subject to `Fᵢ(y) ≤ s`; succeeds as soon as a
/// point with `s < -margin` is found.
fn phase1(
    cons: &[LogPosynomial],
    start: Vec<f64>,
    opts: &SolverOptions,
    steps: &mut usize,
) -> Result<Vec<f64>, GpError> {
    let dim = start.len();
    let mut y = start;
    let worst = |y: &[f64]| -> f64 {
        cons.iter()
            .map(|c| c.value(y))
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let mut s = worst(&y) + 1.0;
    if s - 1.0 < -opts.feasibility_margin {
        return Ok(y); // the start is already strictly feasible
    }

    // Start the barrier at t ≈ m: for small t the centering point has
    // slack s ≈ m/t, which un-tethers every constraint and lets the
    // iterate drift; at t = m the initial slack stays O(1).
    let mut t = 1.0f64.max(cons.len() as f64);
    for _ in 0..opts.max_outer_iter {
        // Centering on φ(y,s) = t·s − Σ log(s − Fᵢ(y)).
        for _ in 0..opts.max_newton_iter {
            *steps += 1;
            check_budget(opts, "phase1", *steps)?;
            let n = dim + 1;
            let mut grad = vec![0.0; n];
            let mut hess = vec![vec![0.0; n]; n];
            grad[dim] = t;
            let mut domain_ok = true;
            for c in cons {
                let (fv, fg, fh) = c.value_grad_hess(&y);
                let g = s - fv;
                if g <= 0.0 {
                    domain_ok = false;
                    break;
                }
                let inv = 1.0 / g;
                let inv2 = inv * inv;
                for i in 0..dim {
                    grad[i] += inv * fg[i];
                    grad[dim] -= 0.0; // s-part accumulated below
                    for j in 0..dim {
                        hess[i][j] += inv2 * fg[i] * fg[j] + inv * fh[i][j];
                    }
                    hess[i][dim] -= inv2 * fg[i];
                    hess[dim][i] -= inv2 * fg[i];
                }
                grad[dim] -= inv;
                hess[dim][dim] += inv2;
            }
            if !domain_ok {
                return Err(GpError::Numerical {
                    stage: "phase1",
                    detail: "iterate left the barrier domain".into(),
                });
            }
            let neg_grad: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let (d, _) = solve_spd_ridged(&hess, &neg_grad);
            let decrement2 = -dot(&grad, &d);
            if decrement2 / 2.0 < opts.newton_tol {
                break;
            }
            // Backtracking line search keeping s − Fᵢ > 0.
            let value = |y: &[f64], s: f64| -> Option<f64> {
                let mut v = t * s;
                for c in cons {
                    let g = s - c.value(y);
                    if g <= 0.0 {
                        return None;
                    }
                    v -= g.ln();
                }
                Some(v)
            };
            let f0 = value(&y, s).ok_or(GpError::Numerical {
                stage: "phase1",
                detail: "current point infeasible for barrier".into(),
            })?;
            // Cap the step so the phase-I recession direction (s → −∞ with
            // g fixed) cannot fling the iterate outside the sanity box
            // before the early feasibility return fires.
            let mut alpha = (MAX_STEP / norm(&d)).min(1.0);
            let slope = dot(&grad, &d);
            let mut accepted = false;
            for _ in 0..60 {
                let mut yn = y.clone();
                axpy(alpha, &d[..dim], &mut yn);
                let sn = s + alpha * d[dim];
                if let Some(fv) = value(&yn, sn) {
                    if fv <= f0 + 0.25 * alpha * slope {
                        y = yn;
                        s = sn;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            smart_trace::emit_with("gp/newton", || {
                vec![
                    ("stage", "phase1".into()),
                    ("step", (*steps).into()),
                    ("residual", (decrement2 / 2.0).into()),
                    ("alpha", alpha.into()),
                    ("accepted", accepted.into()),
                ]
            });
            if !accepted {
                break; // stalled; outer loop will tighten or fail
            }
            // Return on *actual* strict feasibility of y, not only via the
            // slack s — the slack can lag while the barrier drifts along
            // directions where some gᵢ grows without bound.
            if s < -opts.feasibility_margin || worst(&y) < -opts.feasibility_margin {
                return Ok(y);
            }
            // NaN never compares > Y_BOUND, so catch it explicitly before
            // the escape check — a NaN iterate must become a typed error,
            // not a NaN solution.
            if y.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite {
                    stage: "phase1",
                    detail: "iterate became non-finite".into(),
                });
            }
            if y.iter().any(|v| v.abs() > Y_BOUND) {
                // Formerly an eprintln! behind SMART_GP_DEBUG: the escape
                // diagnosis is now a structured trace event, visible in
                // any traced run instead of a raw stderr side channel.
                smart_trace::emit_with("gp/escape", || {
                    let (i, v) = max_abs_coord(&y);
                    vec![
                        ("stage", "phase1".into()),
                        ("coord", i.into()),
                        ("value", v.into()),
                        ("s", s.into()),
                        ("t", t.into()),
                    ]
                });
                return Err(GpError::Unbounded);
            }
        }
        if s < -opts.feasibility_margin {
            return Ok(y);
        }
        if cons.len() as f64 / t < opts.tol {
            break;
        }
        t *= opts.mu;
    }
    Err(GpError::Infeasible {
        worst_violation: worst(&y).exp(),
    })
}

/// Phase II: barrier method on `t·F₀(y) − Σ log(−Fᵢ(y))` from a strictly
/// feasible start.
fn phase2(
    obj: &LogPosynomial,
    cons: &[LogPosynomial],
    mut y: Vec<f64>,
    opts: &SolverOptions,
    spent_before: usize,
    steps: &mut usize,
) -> Result<(Vec<f64>, f64), GpError> {
    let dim = y.len();
    let m = cons.len();
    let mut t: f64 = 1.0f64.max(m as f64);

    let value = |y: &[f64], t: f64| -> Option<f64> {
        let mut v = t * obj.value(y);
        for c in cons {
            let fv = c.value(y);
            if fv >= 0.0 {
                return None;
            }
            v -= (-fv).ln();
        }
        Some(v)
    };

    loop {
        // Centering.
        for _ in 0..opts.max_newton_iter {
            *steps += 1;
            check_budget(opts, "phase2", spent_before + *steps)?;
            let (_, og, oh) = obj.value_grad_hess(&y);
            let mut grad: Vec<f64> = og.iter().map(|&g| t * g).collect();
            let mut hess: Vec<Vec<f64>> = oh
                .iter()
                .map(|row| row.iter().map(|&h| t * h).collect())
                .collect();
            for c in cons {
                let (fv, fg, fh) = c.value_grad_hess(&y);
                if fv >= 0.0 {
                    return Err(GpError::Numerical {
                        stage: "phase2",
                        detail: "iterate left the feasible interior".into(),
                    });
                }
                let inv = -1.0 / fv; // 1/(−Fᵢ) > 0
                let inv2 = inv * inv;
                for i in 0..dim {
                    grad[i] += inv * fg[i];
                    for j in 0..dim {
                        hess[i][j] += inv2 * fg[i] * fg[j] + inv * fh[i][j];
                    }
                }
            }
            let neg_grad: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let (d, _) = solve_spd_ridged(&hess, &neg_grad);
            let decrement2 = -dot(&grad, &d);
            if decrement2.abs() / 2.0 < opts.newton_tol {
                break;
            }
            let f0 = value(&y, t).ok_or(GpError::Numerical {
                stage: "phase2",
                detail: "lost feasibility before line search".into(),
            })?;
            let slope = dot(&grad, &d);
            let mut alpha = (MAX_STEP / norm(&d)).min(1.0);
            let mut accepted = false;
            for _ in 0..60 {
                let mut yn = y.clone();
                axpy(alpha, &d, &mut yn);
                if let Some(fv) = value(&yn, t) {
                    if fv <= f0 + 0.25 * alpha * slope {
                        y = yn;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            smart_trace::emit_with("gp/newton", || {
                vec![
                    ("stage", "phase2".into()),
                    ("step", (*steps).into()),
                    ("residual", (decrement2.abs() / 2.0).into()),
                    ("alpha", alpha.into()),
                    ("accepted", accepted.into()),
                ]
            });
            if !accepted {
                break;
            }
            if y.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFinite {
                    stage: "phase2",
                    detail: "iterate became non-finite".into(),
                });
            }
            if y.iter().any(|v| v.abs() > Y_BOUND) {
                // Formerly an eprintln! behind SMART_GP_DEBUG (see the
                // phase-1 twin above).
                smart_trace::emit_with("gp/escape", || {
                    let (i, v) = max_abs_coord(&y);
                    vec![
                        ("stage", "phase2".into()),
                        ("coord", i.into()),
                        ("value", v.into()),
                        ("t", t.into()),
                        ("alpha", alpha.into()),
                    ]
                });
                return Err(GpError::Unbounded);
            }
            if norm(&d) * alpha < 1e-14 {
                break;
            }
        }
        if m == 0 || (m as f64) / t < opts.tol {
            return Ok((y, t));
        }
        t *= opts.mu;
        if t > 1e18 {
            return Ok((y, t));
        }
    }
}
