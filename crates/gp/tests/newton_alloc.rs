//! Asserts the steady-state Newton step of the GP kernel performs **zero
//! heap allocations**: sparse evaluation into the workspace, barrier
//! scatter, packed ridged Cholesky solve, and streaming line-search
//! value trials all reuse warmed-up buffers.
//!
//! This file holds exactly one `#[test]` and installs a counting global
//! allocator, so the counter window cannot race a sibling test thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use smart_gp::linalg::{axpy, solve_spd_ridged_packed};
use smart_posy::{GradHessWorkspace, LogPosynomial, Monomial, Posynomial, VarPool};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// All reusable buffers of one solver — the same set the production
/// `NewtonWorkspace` carries.
struct Buffers {
    ws: GradHessWorkspace,
    factor: Vec<f64>,
    rhs: Vec<f64>,
    dir: Vec<f64>,
    trial: Vec<f64>,
}

/// One full phase-II Newton step exactly as the production solver runs
/// it: sparse assembly, packed ridged solve, then backtracking trials
/// evaluated with the streaming `value()`.
fn newton_step(obj: &LogPosynomial, cons: &[LogPosynomial], y: &[f64], t: f64, b: &mut Buffers) {
    let dim = y.len();
    b.ws.reset(dim);
    let _ = obj.value_grad_hess_into(y, &mut b.ws);
    b.ws.scatter_staged(t, t, 0.0);
    for c in cons {
        let fv = c.value_grad_hess_into(y, &mut b.ws);
        assert!(fv < 0.0, "test point must be strictly interior");
        let inv = -1.0 / fv;
        b.ws.scatter_staged(inv, inv, inv * inv);
    }
    b.rhs.clear();
    b.rhs.extend(b.ws.grad().iter().map(|&g| -g));
    solve_spd_ridged_packed(b.ws.hess_packed(), dim, &b.rhs, &mut b.factor, &mut b.dir);
    // Backtracking trials: trial point + barrier value, allocation-free.
    let mut alpha = 0.25f64;
    for _ in 0..4 {
        b.trial.clear();
        b.trial.extend_from_slice(y);
        axpy(alpha, &b.dir, &mut b.trial);
        let mut v = t * obj.value(&b.trial);
        for c in cons {
            let fv = c.value(&b.trial);
            assert!(fv < 0.0, "trial left the interior; shrink alpha in the test");
            v -= (-fv).ln();
        }
        std::hint::black_box(v);
        alpha *= 0.5;
    }
}

#[test]
fn steady_state_newton_step_allocates_nothing() {
    // A chain-structured GP like a sizing problem: each constraint touches
    // two adjacent width variables (support 2 in a 24-dim ambient space).
    let dim = 24usize;
    let mut pool = VarPool::new();
    let vars: Vec<_> = (0..dim).map(|i| pool.var(&format!("w{i}"))).collect();
    let obj_p = vars
        .iter()
        .fold(Posynomial::zero(), |acc, &v| acc + Monomial::var(v));
    let obj = LogPosynomial::from_posynomial(&obj_p, dim);
    let cons: Vec<LogPosynomial> = (0..dim - 1)
        .map(|i| {
            // 0.2·w_{i+1}/w_i + 0.1/w_i ≤ 1, strictly interior at x = 1.
            let body = Posynomial::from(
                Monomial::new(0.2).pow(vars[i + 1], 1.0).pow(vars[i], -1.0),
            ) + Monomial::new(0.1).pow(vars[i], -1.0);
            LogPosynomial::from_posynomial(&body, dim)
        })
        .collect();

    let y = vec![0.0; dim]; // x = 1: strictly feasible
    let t = 8.0;
    let mut b = Buffers {
        ws: GradHessWorkspace::new(dim),
        factor: Vec::new(),
        rhs: Vec::new(),
        dir: Vec::new(),
        trial: Vec::new(),
    };

    // Warm-up: every buffer reaches its steady-state capacity.
    newton_step(&obj, &cons, &y, t, &mut b);
    newton_step(&obj, &cons, &y, t, &mut b);

    let before = ALLOCS.load(Ordering::SeqCst);
    newton_step(&obj, &cons, &y, t, &mut b);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state Newton step performed {} heap allocations",
        after - before
    );
}
