//! Solver validation against geometric programs with known analytic optima.

use smart_gp::{GpError, GpProblem, SolverOptions};
use smart_posy::{Monomial, Posynomial, VarPool};

fn opts() -> SolverOptions {
    SolverOptions::default()
}

#[test]
fn single_variable_tight_bound() {
    // minimize W s.t. 2/W <= 1  ->  W* = 2.
    let mut pool = VarPool::new();
    let w = pool.var("W");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(w));
    gp.add_le(
        "delay",
        Posynomial::from(Monomial::new(2.0).pow(w, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    let sol = gp.solve(&opts()).unwrap();
    assert!((sol.x[0] - 2.0).abs() < 1e-6, "got {}", sol.x[0]);
    assert!(sol.kkt.is_optimal(1e-4));
}

#[test]
fn box_design_problem() {
    // Classic GP: maximize box volume h·w·d (minimize (hwd)^-1)
    // s.t. wall area 2(hw + hd) <= 200, floor area wd <= 100,
    // aspect ratios 0.5 <= h/w <= 2, 0.5 <= d/w <= 2.
    // Optimum: w=d=10, h=5, volume 500 (wall and floor constraints tight).
    let mut pool = VarPool::new();
    let h = pool.var("h");
    let w = pool.var("w");
    let d = pool.var("d");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::from(
        Monomial::new(1.0).pow(h, -1.0).pow(w, -1.0).pow(d, -1.0),
    ));
    let wall = Posynomial::from(Monomial::new(2.0).pow(h, 1.0).pow(w, 1.0))
        + Monomial::new(2.0).pow(h, 1.0).pow(d, 1.0);
    gp.add_le("wall", wall, Monomial::new(200.0)).unwrap();
    gp.add_le(
        "floor",
        Posynomial::from(Monomial::new(1.0).pow(w, 1.0).pow(d, 1.0)),
        Monomial::new(100.0),
    )
    .unwrap();
    gp.add_le(
        "h/w<=2",
        Posynomial::from(Monomial::new(1.0).pow(h, 1.0).pow(w, -1.0)),
        Monomial::new(2.0),
    )
    .unwrap();
    gp.add_le(
        "w/h<=2",
        Posynomial::from(Monomial::new(1.0).pow(w, 1.0).pow(h, -1.0)),
        Monomial::new(2.0),
    )
    .unwrap();
    gp.add_le(
        "d/w<=2",
        Posynomial::from(Monomial::new(1.0).pow(d, 1.0).pow(w, -1.0)),
        Monomial::new(2.0),
    )
    .unwrap();
    gp.add_le(
        "w/d<=2",
        Posynomial::from(Monomial::new(1.0).pow(w, 1.0).pow(d, -1.0)),
        Monomial::new(2.0),
    )
    .unwrap();
    let sol = gp.solve(&opts()).unwrap();
    let volume = sol.x[0] * sol.x[1] * sol.x[2];
    let expected = 500.0; // symmetric w=d=10, h=5 saturates wall and floor area
    assert!(
        (volume - expected).abs() / expected < 1e-3,
        "volume {volume}, expected {expected}"
    );
}

#[test]
fn am_gm_equality_split() {
    // minimize x + y s.t. 1/(xy) <= 1: by AM-GM, x = y = 1, objective 2.
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let y = pool.var("y");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x) + Monomial::var(y));
    gp.add_le(
        "xy>=1",
        Posynomial::from(Monomial::new(1.0).pow(x, -1.0).pow(y, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    let sol = gp.solve(&opts()).unwrap();
    assert!((sol.x[0] - 1.0).abs() < 1e-5);
    assert!((sol.x[1] - 1.0).abs() < 1e-5);
    assert!((sol.objective - 2.0).abs() < 1e-5);
}

#[test]
fn inverter_chain_matches_logical_effort() {
    // Three-stage inverter chain driving load C_L = 64 with input cap fixed
    // at 1: delay = W1 (input stage load, W1/1) ... classic logical effort:
    // minimize delay = W1/1 + W2/W1 + W3/W2 + 64/W3 has optimum at equal
    // stage efforts of 64^(1/4) = 2.828: W1=2.83, W2=8, W3=22.6.
    let mut pool = VarPool::new();
    let w1 = pool.var("W1");
    let w2 = pool.var("W2");
    let w3 = pool.var("W3");
    let mut gp = GpProblem::new(pool);
    let delay = Posynomial::var(w1)
        + Monomial::new(1.0).pow(w2, 1.0).pow(w1, -1.0)
        + Monomial::new(1.0).pow(w3, 1.0).pow(w2, -1.0)
        + Monomial::new(64.0).pow(w3, -1.0);
    gp.set_objective(delay);
    for v in [w1, w2, w3] {
        gp.add_lower_bound(v, 1e-3);
        gp.add_upper_bound(v, 1e3);
    }
    let sol = gp.solve(&opts()).unwrap();
    let rho = 64f64.powf(0.25);
    assert!((sol.x[0] - rho).abs() < 1e-3, "W1 {}", sol.x[0]);
    assert!((sol.x[1] - rho * rho).abs() < 1e-2, "W2 {}", sol.x[1]);
    assert!((sol.x[2] - rho * rho * rho).abs() < 0.1, "W3 {}", sol.x[2]);
    assert!((sol.objective - 4.0 * rho).abs() < 1e-3);
}

#[test]
fn infeasible_problem_is_reported() {
    // x <= 1 and x >= 2 simultaneously.
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    gp.add_upper_bound(x, 1.0);
    gp.add_lower_bound(x, 2.0);
    match gp.solve(&opts()) {
        Err(GpError::Infeasible { worst_violation }) => {
            assert!(worst_violation > 1.0, "violation {worst_violation}");
        }
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn unbounded_problem_is_reported() {
    // minimize 1/x with no upper bound on x.
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::from(Monomial::new(1.0).pow(x, -1.0)));
    gp.add_lower_bound(x, 0.5);
    match gp.solve(&opts()) {
        Err(GpError::Unbounded) => {}
        other => panic!("expected unbounded, got {other:?}"),
    }
}

#[test]
fn pinned_variable_stays_put() {
    let mut pool = VarPool::new();
    let a = pool.var("a");
    let b = pool.var("b");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(a) + Monomial::var(b));
    gp.add_le(
        "product",
        Posynomial::from(Monomial::new(4.0).pow(a, -1.0).pow(b, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    gp.pin(a, 1.0); // designer fixed this device at width 1
    let sol = gp.solve(&opts()).unwrap();
    assert!((sol.x[0] - 1.0).abs() < 1e-4, "a pinned: {}", sol.x[0]);
    assert!((sol.x[1] - 4.0).abs() < 1e-3, "b must absorb: {}", sol.x[1]);
}

#[test]
fn constraint_activity_identifies_binding_constraints() {
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    gp.add_le(
        "binding",
        Posynomial::from(Monomial::new(3.0).pow(x, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    gp.add_upper_bound(x, 100.0);
    let sol = gp.solve(&opts()).unwrap();
    let act = sol.constraint_activity(&gp);
    assert!(act[0].1 > 0.999, "binding constraint at {}", act[0].1);
    assert!(act[1].1 < 0.1, "slack bound at {}", act[1].1);
}

#[test]
fn solution_scales_with_problem_data() {
    // Optimal W for `k/W <= 1` is exactly k; sweep k across magnitudes to
    // exercise conditioning.
    for k in [1e-3, 0.1, 1.0, 7.5, 1e3, 1e6] {
        let mut pool = VarPool::new();
        let w = pool.var("W");
        let mut gp = GpProblem::new(pool);
        gp.set_objective(Posynomial::var(w));
        gp.add_le(
            "c",
            Posynomial::from(Monomial::new(k).pow(w, -1.0)),
            Monomial::one(),
        )
        .unwrap();
        let sol = gp.solve(&opts()).unwrap();
        assert!(
            (sol.x[0] - k).abs() / k < 1e-5,
            "k={k}: got {}",
            sol.x[0]
        );
    }
}

#[test]
fn moderately_large_chain_solves() {
    // 40-stage chain: minimize sum of widths under a path-delay budget —
    // shape of real SMART sizing problems.
    let n = 40;
    let mut pool = VarPool::new();
    let vars: Vec<_> = (0..n).map(|i| pool.var(&format!("W{i}"))).collect();
    let mut gp = GpProblem::new(pool);
    let mut area = Posynomial::zero();
    for &v in &vars {
        area += Monomial::var(v);
    }
    gp.set_objective(area);
    let mut delay = Posynomial::var(vars[0]);
    for i in 1..n {
        delay += Monomial::new(1.0).pow(vars[i], 1.0).pow(vars[i - 1], -1.0);
    }
    delay += Monomial::new(256.0).pow(vars[n - 1], -1.0);
    gp.add_le("path", delay, Monomial::new(60.0)).unwrap();
    for &v in &vars {
        gp.add_lower_bound(v, 1e-2);
        gp.add_upper_bound(v, 1e4);
    }
    let sol = gp.solve(&opts()).unwrap();
    // Delay constraint must be met.
    let act = sol.constraint_activity(&gp);
    assert!(act[0].1 <= 1.0 + 1e-6, "delay body {}", act[0].1);
    assert!(sol.kkt.primal_infeasibility < 1e-9);
}
