//! Property-based solver tests: on random feasible GPs, solutions satisfy
//! all constraints and cannot be dominated by uniform shrink/perturbation.

use proptest::prelude::*;
use smart_gp::{GpProblem, SolverOptions};
use smart_posy::{Monomial, Posynomial, VarId, VarPool};

const DIM: usize = 3;

/// Random "sizing-shaped" GP: minimize Σ wᵢ subject to a handful of random
/// load/drive style constraints `c · wⱼ/wᵢ + k/wᵢ <= budget` plus bounds.
/// Always feasible by construction (budget chosen above the value at w = ub).
fn arb_problem() -> impl Strategy<Value = GpProblem> {
    let cons = proptest::collection::vec(
        (0usize..DIM, 0usize..DIM, 0.1f64..4.0, 0.1f64..4.0),
        1..6,
    );
    cons.prop_map(|rows| {
        let mut pool = VarPool::new();
        let vars: Vec<VarId> = (0..DIM).map(|i| pool.var(&format!("w{i}"))).collect();
        let mut gp = GpProblem::new(pool);
        let mut obj = Posynomial::zero();
        for &v in &vars {
            obj += Monomial::var(v);
        }
        gp.set_objective(obj);
        for (idx, (i, j, c, k)) in rows.into_iter().enumerate() {
            let body = Posynomial::from(
                Monomial::new(c).pow(vars[j], 1.0).pow(vars[i], -1.0),
            ) + Monomial::new(k).pow(vars[i], -1.0);
            // Feasible budget: evaluate at all-16 and give 2x headroom.
            let at = body.eval(&[16.0; DIM]);
            gp.add_le(format!("c{idx}"), body, Monomial::new(at * 2.0))
                .unwrap();
        }
        for &v in &vars {
            gp.add_lower_bound(v, 0.05);
            gp.add_upper_bound(v, 64.0);
        }
        gp
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solutions_are_feasible(gp in arb_problem()) {
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        for (label, body) in sol.constraint_activity(&gp) {
            prop_assert!(body <= 1.0 + 1e-6, "constraint {} violated: {}", label, body);
        }
        for &xi in &sol.x {
            prop_assert!(xi > 0.0 && xi.is_finite());
        }
    }

    #[test]
    fn kkt_certificate_holds(gp in arb_problem()) {
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        prop_assert!(sol.kkt.primal_infeasibility < 1e-9);
        prop_assert!(sol.kkt.stationarity < 1e-3,
            "stationarity {}", sol.kkt.stationarity);
        for &l in &sol.kkt.multipliers {
            prop_assert!(l >= 0.0);
        }
    }

    #[test]
    fn no_feasible_uniform_shrink_improves(gp in arb_problem()) {
        // If shrinking all sizes by 2% keeps every constraint feasible, the
        // solver left area on the table (objective is Σ w, monotone).
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        let shrunk: Vec<f64> = sol.x.iter().map(|&x| x * 0.98).collect();
        let still_feasible = gp
            .constraints()
            .iter()
            .all(|c| c.body.eval(&shrunk) <= 1.0);
        if still_feasible {
            // Then some lower bound must be pinning a variable.
            let near_lb = sol.x.iter().any(|&x| x < 0.05 * 1.05);
            prop_assert!(near_lb,
                "shrink feasible but no variable at its lower bound: {:?}", sol.x);
        }
    }

    #[test]
    fn objective_not_beaten_by_random_feasible_points(
        gp in arb_problem(),
        probe in proptest::collection::vec(0.06f64..60.0, DIM)
    ) {
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        let feasible = gp.constraints().iter().all(|c| c.body.eval(&probe) <= 1.0);
        if feasible {
            let probe_obj = gp.objective().eval(&probe);
            prop_assert!(sol.objective <= probe_obj * (1.0 + 1e-6),
                "solver {} beaten by probe {}", sol.objective, probe_obj);
        }
    }
}
