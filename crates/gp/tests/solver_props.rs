//! Randomized solver tests: on seeded random feasible GPs, solutions
//! satisfy all constraints, carry a KKT certificate, cannot be dominated
//! by uniform shrink or random feasible probes, and never contain a
//! non-finite width. Deterministic (fixed seeds via `smart-prng`).

use smart_gp::{GpProblem, SolverOptions};
use smart_posy::{Monomial, Posynomial, VarId, VarPool};
use smart_prng::Prng;

const DIM: usize = 3;
const CASES: usize = 64;

/// Random "sizing-shaped" GP: minimize Σ wᵢ subject to a handful of random
/// load/drive style constraints `c · wⱼ/wᵢ + k/wᵢ <= budget` plus bounds.
/// Always feasible by construction (budget chosen above the value at w = ub).
fn problem(r: &mut Prng) -> GpProblem {
    let mut pool = VarPool::new();
    let vars: Vec<VarId> = (0..DIM).map(|i| pool.var(&format!("w{i}"))).collect();
    let mut gp = GpProblem::new(pool);
    let mut obj = Posynomial::zero();
    for &v in &vars {
        obj += Monomial::var(v);
    }
    gp.set_objective(obj);
    let rows = r.usize_in(1, 6);
    for idx in 0..rows {
        let i = r.usize_in(0, DIM);
        let j = r.usize_in(0, DIM);
        let c = r.f64_in(0.1, 4.0);
        let k = r.f64_in(0.1, 4.0);
        let body = Posynomial::from(Monomial::new(c).pow(vars[j], 1.0).pow(vars[i], -1.0))
            + Monomial::new(k).pow(vars[i], -1.0);
        // Feasible budget: evaluate at all-16 and give 2x headroom.
        let at = body.eval(&[16.0; DIM]);
        gp.add_le(format!("c{idx}"), body, Monomial::new(at * 2.0))
            .unwrap();
    }
    for &v in &vars {
        gp.add_lower_bound(v, 0.05);
        gp.add_upper_bound(v, 64.0);
    }
    gp
}

#[test]
fn solutions_are_feasible() {
    let mut r = Prng::new(0xB1);
    for _ in 0..CASES {
        let gp = problem(&mut r);
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        for (label, body) in sol.constraint_activity(&gp) {
            assert!(body <= 1.0 + 1e-6, "constraint {label} violated: {body}");
        }
        for &xi in &sol.x {
            assert!(xi > 0.0 && xi.is_finite());
        }
    }
}

#[test]
fn kkt_certificate_holds() {
    let mut r = Prng::new(0xB2);
    for _ in 0..CASES {
        let gp = problem(&mut r);
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        assert!(sol.kkt.primal_infeasibility < 1e-9);
        assert!(
            sol.kkt.stationarity < 1e-3,
            "stationarity {}",
            sol.kkt.stationarity
        );
        for &l in &sol.kkt.multipliers {
            assert!(l >= 0.0);
        }
    }
}

#[test]
fn no_feasible_uniform_shrink_improves() {
    let mut r = Prng::new(0xB3);
    for _ in 0..CASES {
        // If shrinking all sizes by 2% keeps every constraint feasible, the
        // solver left area on the table (objective is Σ w, monotone).
        let gp = problem(&mut r);
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        let shrunk: Vec<f64> = sol.x.iter().map(|&x| x * 0.98).collect();
        let still_feasible = gp.constraints().iter().all(|c| c.body.eval(&shrunk) <= 1.0);
        if still_feasible {
            // Then some lower bound must be pinning a variable.
            let near_lb = sol.x.iter().any(|&x| x < 0.05 * 1.05);
            assert!(
                near_lb,
                "shrink feasible but no variable at its lower bound: {:?}",
                sol.x
            );
        }
    }
}

#[test]
fn objective_not_beaten_by_random_feasible_points() {
    let mut r = Prng::new(0xB4);
    for _ in 0..CASES {
        let gp = problem(&mut r);
        let probe = r.f64_vec(0.06, 60.0, DIM);
        let sol = gp.solve(&SolverOptions::default()).unwrap();
        let feasible = gp.constraints().iter().all(|c| c.body.eval(&probe) <= 1.0);
        if feasible {
            let probe_obj = gp.objective().eval(&probe);
            assert!(
                sol.objective <= probe_obj * (1.0 + 1e-6),
                "solver {} beaten by probe {}",
                sol.objective,
                probe_obj
            );
        }
    }
}

#[test]
fn solve_never_returns_non_finite_widths() {
    // The non-finite guards at the gp boundary promise: whatever comes out
    // of `solve` — from any starting point, including hostile ones — is
    // finite or a typed error, never NaN/inf widths.
    let mut r = Prng::new(0xB5);
    for case in 0..CASES {
        let gp = problem(&mut r);
        let mut opts = SolverOptions::default();
        // Exercise odd-but-valid starting points on some cases.
        if case % 3 == 1 {
            opts.initial_x = Some(vec![r.f64_in(1e-4, 1e3); DIM]);
        }
        match gp.solve(&opts) {
            Ok(sol) => {
                assert!(sol.objective.is_finite());
                for &xi in &sol.x {
                    assert!(xi.is_finite() && xi > 0.0, "non-finite width {xi}");
                }
            }
            Err(e) => {
                // Typed failure is acceptable; a panic or NaN escape is not.
                let _ = format!("{e}");
            }
        }
    }
}

#[test]
fn hostile_starting_points_yield_typed_errors_not_panics() {
    let mut r = Prng::new(0xB6);
    let gp = problem(&mut r);
    for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
        let mut opts = SolverOptions::default();
        opts.initial_x = Some(vec![bad; DIM]);
        let err = gp.solve(&opts);
        assert!(err.is_err(), "start {bad} should be rejected");
    }
}
