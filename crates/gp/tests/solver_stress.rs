//! Stress and edge-case tests for the GP solver: warm starts, degenerate
//! dimensions, constraint floods, and option validation.

use smart_gp::{GpError, GpProblem, SolverOptions};
use smart_posy::{Monomial, Posynomial, VarPool};

#[test]
fn warm_start_is_respected_and_matches_cold_start() {
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let y = pool.var("y");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x) + Monomial::var(y));
    gp.add_le(
        "xy>=4",
        Posynomial::from(Monomial::new(4.0).pow(x, -1.0).pow(y, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    let cold = gp.solve(&SolverOptions::default()).unwrap();
    let warm = gp
        .solve(&SolverOptions {
            initial_x: Some(vec![7.0, 0.3]),
            ..Default::default()
        })
        .unwrap();
    assert!((cold.x[0] - warm.x[0]).abs() < 1e-4);
    assert!((cold.x[1] - warm.x[1]).abs() < 1e-4);
    assert!((cold.objective - 4.0).abs() < 1e-4, "x=y=2 by AM-GM");
}

#[test]
fn nonpositive_warm_start_is_a_typed_error() {
    // Used to assert/panic; the fault-isolated runtime instead rejects the
    // point with a typed error the flow can contain and report.
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    gp.add_lower_bound(x, 1.0);
    let err = gp
        .solve(&SolverOptions {
            initial_x: Some(vec![0.0]),
            ..Default::default()
        })
        .unwrap_err();
    match err {
        GpError::NonFinite { stage, ref detail } => {
            assert_eq!(stage, "setup");
            assert!(detail.contains("coordinate 0"), "{detail}");
        }
        other => panic!("expected NonFinite setup error, got {other}"),
    }
}

#[test]
fn feasible_warm_start_skips_phase_one() {
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    gp.add_lower_bound(x, 2.0);
    gp.add_upper_bound(x, 10.0);
    let sol = gp
        .solve(&SolverOptions {
            initial_x: Some(vec![5.0]), // strictly feasible
            ..Default::default()
        })
        .unwrap();
    assert_eq!(sol.phase1_newton_steps, 0, "phase I must exit immediately");
    assert!((sol.x[0] - 2.0).abs() < 1e-5);
}

#[test]
fn many_redundant_constraints_still_solve() {
    // 400 copies of the same constraint with slightly different budgets:
    // stresses the barrier's constraint handling and the t0 = m start.
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    for i in 0..400 {
        let budget = 1.0 + (i % 7) as f64 * 0.25;
        gp.add_le(
            format!("c{i}"),
            Posynomial::from(Monomial::new(3.0).pow(x, -1.0)),
            Monomial::new(budget),
        )
        .unwrap();
    }
    let sol = gp.solve(&SolverOptions::default()).unwrap();
    // Tightest budget is 1.0 -> x >= 3.
    assert!((sol.x[0] - 3.0).abs() < 1e-4, "got {}", sol.x[0]);
}

#[test]
fn zero_variable_problem_errors_cleanly() {
    let gp = GpProblem::new(VarPool::new());
    match gp.solve(&SolverOptions::default()) {
        Err(GpError::Numerical { stage, .. }) => assert_eq!(stage, "setup"),
        other => panic!("expected setup error, got {other:?}"),
    }
}

#[test]
fn wide_coefficient_range_is_handled() {
    // Coefficients spanning 9 orders of magnitude in one problem.
    let mut pool = VarPool::new();
    let a = pool.var("a");
    let b = pool.var("b");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(
        Posynomial::from(Monomial::new(1e-4).pow(a, 1.0)) + Monomial::new(1e4).pow(b, 1.0),
    );
    gp.add_le(
        "c1",
        Posynomial::from(Monomial::new(1e5).pow(a, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    gp.add_le(
        "c2",
        Posynomial::from(Monomial::new(1e-3).pow(b, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    let sol = gp.solve(&SolverOptions::default()).unwrap();
    assert!((sol.x[0] - 1e5).abs() / 1e5 < 1e-4);
    assert!((sol.x[1] - 1e-3).abs() / 1e-3 < 1e-4);
}

#[test]
fn barely_feasible_problem_solves() {
    // Feasible set is an interval of relative width 1e-5.
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    gp.add_lower_bound(x, 5.0);
    gp.add_upper_bound(x, 5.0 * (1.0 + 1e-5));
    let sol = gp.solve(&SolverOptions::default()).unwrap();
    assert!((sol.x[0] - 5.0).abs() < 1e-3, "got {}", sol.x[0]);
}

#[test]
fn kkt_multiplier_signs_and_gap() {
    let mut pool = VarPool::new();
    let x = pool.var("x");
    let mut gp = GpProblem::new(pool);
    gp.set_objective(Posynomial::var(x));
    gp.add_le(
        "active",
        Posynomial::from(Monomial::new(2.0).pow(x, -1.0)),
        Monomial::one(),
    )
    .unwrap();
    gp.add_upper_bound(x, 50.0); // inactive
    let sol = gp.solve(&SolverOptions::default()).unwrap();
    assert_eq!(sol.kkt.multipliers.len(), 2);
    // Active constraint carries the weight; inactive one is ~0.
    assert!(sol.kkt.multipliers[0] > 0.5);
    assert!(sol.kkt.multipliers[1] < 1e-3);
    assert!(sol.kkt.duality_gap <= 1e-8 * 1.01);
}
