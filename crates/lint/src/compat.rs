//! Compatibility shim for the deprecated `smart_netlist::drc` API.
//!
//! The old checker's logic now lives in [`crate::rules::legacy`] (shared
//! with rules `SL001`–`SL004`); this module re-expresses those structured
//! issues as the historical `DrcIssue` values — same findings, same
//! order, so existing callers can migrate by swapping the import.
//!
//! (The delegation is inverted relative to the issue's phrasing — the
//! netlist crate cannot depend on this crate without a Cargo cycle, so
//! the deprecated `smart_netlist::drc::methodology_check` keeps its
//! frozen implementation and *this* function is the maintained one. The
//! parity test in `tests/compat.rs` pins the two together.)

#![allow(deprecated)]

use smart_netlist::{Circuit, DrcIssue};

use crate::engine::LintConfig;
use crate::rules::legacy::{legacy_issues, LegacyIssue};

/// Drop-in replacement for the deprecated
/// `smart_netlist::drc::methodology_check`, backed by the rule engine's
/// shared legacy pass. Uses the default pass-chain limit; run
/// [`crate::lint_circuit_with`] for configurable severities, waivers and
/// the full rule set.
pub fn methodology_check(circuit: &Circuit) -> Vec<DrcIssue> {
    legacy_issues(circuit, LintConfig::default().pass_chain_limit)
        .into_iter()
        .map(|issue| match issue {
            LegacyIssue::ClockWiring { comp, path, net } => {
                DrcIssue::ClockWiring { comp, path, net }
            }
            LegacyIssue::DynamicMarking { net, name } => DrcIssue::DynamicMarking { net, name },
            LegacyIssue::Unfooted { comp, path, input } => {
                DrcIssue::UnfootedInputDiscipline { comp, path, input }
            }
            LegacyIssue::PassChain { net, depth, limit } => {
                DrcIssue::PassChainTooDeep { net, depth, limit }
            }
        })
        .collect()
}
