//! Monotonicity dataflow: which signal edges can occur on each net during
//! the *evaluate* phase of the domino clock?
//!
//! The analysis is a forward reachability fixpoint over the timing graph
//! (`smart_sta::TimingGraph`, the same component-graph builder the STA
//! uses), on the edge-event domain {net rises, net falls}. Per net the
//! reachable edge set maps onto the four-point lattice
//!
//! ```text
//!              Unknown          (both edges possible)
//!              /      \
//!   RisingMonotone  FallingMonotone
//!              \      /
//!               Static           (no evaluate-phase event)
//! ```
//!
//! Seeds: the **rising** edge of every `NetKind::Clock` net — the clock
//! edge that opens evaluate. Primary data inputs are *not* seeded: the
//! domino timing discipline requires them stable during evaluate, so any
//! event on an internal net must be caused by the clock edge. Transfer
//! functions are the arc templates of `smart-models` (an inverting static
//! arc maps a rise to a fall, a domino data arc maps a rise to a dynamic-
//! node fall, ...), with **precharge arcs excluded** — those fire on the
//! falling clock, outside the phase under analysis.
//!
//! The propagation marks each of the `2 × nets` events at most once, so
//! the fixpoint is reached after at most `node_count` worklist pops —
//! [`MonotonicityAnalysis::converged`] asserts exactly that bound.

use std::collections::VecDeque;

use smart_models::arcs::{ArcPhase, Edge};
use smart_netlist::{Circuit, NetId, NetKind};
use smart_sta::{TNode, TimingGraph};

/// Evaluate-phase behavior of one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monotonicity {
    /// No evaluate-phase event reaches the net: it holds its value.
    Static,
    /// The net can only rise during evaluate (legal domino data).
    RisingMonotone,
    /// The net can only fall during evaluate (e.g. a dynamic node).
    FallingMonotone,
    /// Both edges are possible — non-monotone, top of the lattice.
    Unknown,
}

impl std::fmt::Display for Monotonicity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Monotonicity::Static => "static",
            Monotonicity::RisingMonotone => "monotone-rising",
            Monotonicity::FallingMonotone => "monotone-falling",
            Monotonicity::Unknown => "non-monotone",
        })
    }
}

/// The fixpoint result: per-net monotonicity plus convergence telemetry.
#[derive(Debug, Clone)]
pub struct MonotonicityAnalysis {
    reachable: Vec<bool>,
    node_count: usize,
    iterations: usize,
}

impl MonotonicityAnalysis {
    /// Runs the dataflow on `circuit` to fixpoint.
    pub fn run(circuit: &Circuit) -> Self {
        let graph = TimingGraph::extract(circuit);
        Self::run_on(circuit, &graph)
    }

    /// Runs the dataflow on an already-extracted timing graph (callers
    /// that keep one around, e.g. the STA, avoid a re-extraction).
    pub fn run_on(circuit: &Circuit, graph: &TimingGraph) -> Self {
        let node_count = graph.node_count();
        let mut reachable = vec![false; node_count];
        let mut worklist = VecDeque::new();
        for (id, net) in circuit.nets() {
            if net.kind == NetKind::Clock {
                let seed = TNode { net: id, edge: Edge::Rise };
                if !reachable[seed.index()] {
                    reachable[seed.index()] = true;
                    worklist.push_back(seed.index());
                }
            }
        }
        let mut iterations = 0;
        while let Some(node) = worklist.pop_front() {
            iterations += 1;
            for &arc_idx in &graph.fanout[node] {
                let arc = &graph.arcs[arc_idx];
                // Precharge arcs fire on the falling clock — outside the
                // evaluate phase this lattice describes.
                if arc.phase == ArcPhase::Precharge {
                    continue;
                }
                let to = arc.to.index();
                if !reachable[to] {
                    reachable[to] = true;
                    worklist.push_back(to);
                }
            }
        }
        MonotonicityAnalysis {
            reachable,
            node_count,
            iterations,
        }
    }

    /// The lattice value of `net`.
    pub fn of(&self, net: NetId) -> Monotonicity {
        let rise = self.can(net, Edge::Rise);
        let fall = self.can(net, Edge::Fall);
        match (rise, fall) {
            (false, false) => Monotonicity::Static,
            (true, false) => Monotonicity::RisingMonotone,
            (false, true) => Monotonicity::FallingMonotone,
            (true, true) => Monotonicity::Unknown,
        }
    }

    /// Whether `edge` on `net` is reachable during evaluate.
    pub fn can(&self, net: NetId, edge: Edge) -> bool {
        self.reachable[TNode { net, edge }.index()]
    }

    /// Worklist pops performed before the fixpoint was reached.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of (net, edge) events in the domain.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether the propagation provably reached its fixpoint: each event
    /// is marked at most once, so the pop count can never exceed the
    /// domain size. Always true by construction; exposed so tests (and
    /// the acceptance criteria) can assert it per database macro instead
    /// of trusting the argument.
    pub fn converged(&self) -> bool {
        self.iterations <= self.node_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_netlist::{ComponentKind, DeviceRole, Network, Skew};

    /// clk ─ D1(a) ─ dyn1 ─ inv ─ q: the canonical footed stage.
    fn stage() -> Circuit {
        let mut c = Circuit::new("stage");
        let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
        let a = c.add_net("a").unwrap();
        let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
        let q = c.add_net("q").unwrap();
        let p = c.label("P1");
        let n = c.label("N1");
        let f = c.label("N2");
        c.add(
            "d1",
            ComponentKind::Domino { network: Network::Input(0), clocked_eval: true },
            &[clk, a, dyn1],
            &[
                (DeviceRole::Precharge, p),
                (DeviceRole::DataN, n),
                (DeviceRole::Evaluate, f),
            ],
        )
        .unwrap();
        c.add(
            "h1",
            ComponentKind::Inverter { skew: Skew::High },
            &[dyn1, q],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap();
        c.expose_input("clk", clk);
        c.expose_input("a", a);
        c.expose_output("q", q);
        c
    }

    #[test]
    fn domino_stage_classification() {
        let c = stage();
        let m = MonotonicityAnalysis::run(&c);
        assert!(m.converged());
        let net = |n: &str| c.find_net(n).unwrap();
        assert_eq!(m.of(net("clk")), Monotonicity::RisingMonotone);
        assert_eq!(m.of(net("a")), Monotonicity::Static);
        assert_eq!(m.of(net("dyn1")), Monotonicity::FallingMonotone);
        assert_eq!(m.of(net("q")), Monotonicity::RisingMonotone);
    }

    #[test]
    fn inverting_static_logic_breaks_monotonicity() {
        let mut c = stage();
        let q = c.find_net("q").unwrap();
        let r = c.add_net("r").unwrap();
        let p = c.label("P1");
        let n = c.label("N1");
        c.add(
            "bad_inv",
            ComponentKind::Inverter { skew: Skew::Balanced },
            &[q, r],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap();
        c.expose_output("r", r);
        let m = MonotonicityAnalysis::run(&c);
        assert_eq!(m.of(r), Monotonicity::FallingMonotone);
    }

    #[test]
    fn xor_of_rising_signals_is_unknown() {
        let mut c = stage();
        let q = c.find_net("q").unwrap();
        let x = c.add_net("x").unwrap();
        let p = c.label("P1");
        let n = c.label("N1");
        c.add(
            "x1",
            ComponentKind::Xor2,
            &[q, q, x],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap();
        c.expose_output("x", x);
        let m = MonotonicityAnalysis::run(&c);
        assert_eq!(m.of(x), Monotonicity::Unknown);
    }

    #[test]
    fn static_circuit_is_all_static() {
        let mut c = Circuit::new("static");
        let a = c.add_net("a").unwrap();
        let y = c.add_net("y").unwrap();
        let p = c.label("P1");
        let n = c.label("N1");
        c.add(
            "u1",
            ComponentKind::Inverter { skew: Skew::Balanced },
            &[a, y],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap();
        c.expose_input("a", a);
        c.expose_output("y", y);
        let m = MonotonicityAnalysis::run(&c);
        assert_eq!(m.of(a), Monotonicity::Static);
        assert_eq!(m.of(y), Monotonicity::Static);
        assert_eq!(m.iterations(), 0);
    }
}
