//! The rule engine: registry, configuration, and the lint driver.

use std::collections::{BTreeMap, BTreeSet};

use smart_netlist::Circuit;

use crate::report::LintReport;

/// How severe a finding is. `Error`-severity findings gate the
/// exploration flow; `Warning`s are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: legal but risky structure the designer should review.
    Warning,
    /// Methodology violation: the candidate is rejected by the flow gate.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
///
/// Findings are *name-based*: they carry instance paths and net names,
/// never raw ids, so structurally equal circuits produce equal findings
/// regardless of net/component insertion order (the reorder-invariance
/// property the test suite enforces). The derived `Ord` (field order:
/// rule, severity, path, nets, message) is the canonical report order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Finding {
    /// Stable rule id (`"SL101"`).
    pub rule: &'static str,
    /// Effective severity (default, or the configured override).
    pub severity: Severity,
    /// Instance path the finding anchors to (may be empty for net-level
    /// findings with no unique component).
    pub path: String,
    /// Net names involved, in rule-defined order.
    pub nets: Vec<String>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.rule, self.severity)?;
        if !self.path.is_empty() {
            write!(f, " at {}", self.path)?;
        }
        if !self.nets.is_empty() {
            write!(f, " [{}]", self.nets.join(", "))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A path-based waiver: suppress `rule` (or every rule, `"*"`) for
/// findings anchored under `path_prefix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id to waive, or `"*"` for all rules.
    pub rule: String,
    /// Instance-path prefix the waiver covers (`""` covers everything).
    pub path_prefix: String,
}

impl Waiver {
    fn covers(&self, finding: &Finding) -> bool {
        (self.rule == "*" || self.rule == finding.rule)
            && finding.path.starts_with(&self.path_prefix)
    }
}

/// Per-run lint configuration: rule enablement, severity overrides,
/// waivers, and the numeric knobs of the parameterized rules.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Rule ids to skip entirely.
    pub disabled: BTreeSet<String>,
    /// Severity overrides by rule id (e.g. promote `SL104` to `Error`
    /// on a block that must prove all its mutual exclusions).
    pub severities: BTreeMap<String, Severity>,
    /// Path-based waivers applied after severity resolution.
    pub waivers: Vec<Waiver>,
    /// `SL004`: maximum tolerated series pass-gate depth.
    pub pass_chain_limit: usize,
    /// `SL106`: NMOS stack depth at which a domino pull-down network is
    /// flagged for charge-sharing exposure.
    pub charge_share_depth: usize,
    /// `SL111`: fast-corner scale factor applied to the static min-path
    /// stage count (each "stage" is one typical gate delay; a fast corner
    /// shrinks it).
    pub fast_derate: f64,
    /// `SL111`: precharge window, in the same typical-stage units — the
    /// earliest a downstream domino data input may legally rise after the
    /// evaluate clock edge.
    pub precharge_window: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            disabled: BTreeSet::new(),
            severities: BTreeMap::new(),
            waivers: Vec::new(),
            pass_chain_limit: 3,
            charge_share_depth: 3,
            fast_derate: 0.5,
            precharge_window: 1.0,
        }
    }
}

/// A registered rule.
pub struct RuleInfo {
    /// Stable id (`SL` + number; 0xx = legacy DRC, 1xx = graph/dataflow).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Severity findings carry unless overridden by configuration.
    pub default_severity: Severity,
    /// One-line description of what the rule enforces.
    pub description: &'static str,
    pub(crate) check: fn(&Circuit, &LintConfig, &mut Vec<Finding>),
}

/// The rule registry, in rule-id order.
pub fn rules() -> &'static [RuleInfo] {
    crate::rules::REGISTRY
}

/// Lints `circuit` under the default configuration.
pub fn lint_circuit(circuit: &Circuit) -> LintReport {
    lint_circuit_with(circuit, &LintConfig::default())
}

/// Lints `circuit` under `config`: runs every enabled rule, applies
/// severity overrides and waivers, and returns the findings in canonical
/// order (sorted, deduplicated) — the foundation of the determinism
/// contract (equal circuits ⇒ byte-equal reports).
pub fn lint_circuit_with(circuit: &Circuit, config: &LintConfig) -> LintReport {
    let mut findings = Vec::new();
    for rule in rules() {
        if config.disabled.contains(rule.id) {
            continue;
        }
        let before = findings.len();
        (rule.check)(circuit, config, &mut findings);
        if let Some(&sev) = config.severities.get(rule.id) {
            for f in &mut findings[before..] {
                f.severity = sev;
            }
        }
    }
    findings.retain(|f| !config.waivers.iter().any(|w| w.covers(f)));
    findings.sort();
    findings.dedup();
    LintReport {
        circuit: circuit.name().to_owned(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_sorted() {
        let ids: Vec<&str> = rules().iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids, sorted, "registry must be id-ordered and duplicate-free");
    }

    #[test]
    fn waiver_matches_rule_and_prefix() {
        let f = Finding {
            rule: "SL001",
            severity: Severity::Error,
            path: "u_mux/pg0".into(),
            nets: vec![],
            message: String::new(),
        };
        let hit = Waiver { rule: "SL001".into(), path_prefix: "u_mux".into() };
        let wildcard = Waiver { rule: "*".into(), path_prefix: "".into() };
        let miss_rule = Waiver { rule: "SL002".into(), path_prefix: "u_mux".into() };
        let miss_path = Waiver { rule: "SL001".into(), path_prefix: "u_adder".into() };
        assert!(hit.covers(&f));
        assert!(wildcard.covers(&f));
        assert!(!miss_rule.covers(&f));
        assert!(!miss_path.covers(&f));
    }
}
