//! `smart-lint` — the electrical-rule engine of the SMART methodology.
//!
//! The paper (§5.3) warns that mixing circuit families — static, pass,
//! tri-state, D1/D2 domino — "must be carefully handled". This crate is
//! that handling as *static analysis*: a registry of identified rules
//! ([`rules`]) run over a [`Circuit`](smart_netlist::Circuit) by
//! [`lint_circuit`], producing stable, ordered [`Finding`]s that the
//! exploration flow (`smart-core::explore`) uses to reject illegal
//! candidates before any sizing effort is spent on them.
//!
//! Two analysis styles back the rules:
//!
//! * **Monotonicity dataflow** ([`dataflow`]): a fixpoint propagation of
//!   evaluate-phase signal edges over the timing graph, classifying every
//!   net on the lattice {Static, RisingMonotone, FallingMonotone,
//!   Unknown}. Domino data inputs must be monotone-rising during
//!   evaluate; the dataflow proves it (or names the net that is not).
//! * **Graph reachability** over the connectivity indices of the netlist:
//!   sneak paths, multi-driver contention, pass-chain depth,
//!   floating/undriven nets.
//!
//! The four historical checks of `smart_netlist::drc` live on here as
//! rules `SL001`–`SL004`; [`compat::methodology_check`] reproduces the
//! old API verbatim for callers that still want `DrcIssue` values.

#![warn(missing_docs)]

pub mod compat;
pub mod dataflow;
mod engine;
mod report;
pub mod rules;

pub use engine::{
    lint_circuit, lint_circuit_with, rules, Finding, LintConfig, RuleInfo, Severity, Waiver,
};
pub use report::LintReport;
