//! Machine-readable lint reports.

use crate::engine::{Finding, Severity};

/// The result of linting one circuit: canonical-order findings plus the
/// circuit's name, serializable to deterministic JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Name of the linted circuit.
    pub circuit: String,
    /// Findings in canonical order (sorted by rule, severity, path,
    /// nets, message; deduplicated).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warning`-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Whether any finding is an `Error` — the flow-gate predicate.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Serializes the report as JSON. The encoding is fully
    /// deterministic — fixed key order, findings in canonical order — so
    /// equal reports are byte-equal strings (the determinism test
    /// compares these bytes across runs and thread counts).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.findings.len() * 96);
        out.push_str("{\"circuit\":");
        json_string(&mut out, &self.circuit);
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"findings\":[",
            self.errors(),
            self.warnings()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, f.rule);
            out.push_str(",\"severity\":");
            json_string(&mut out, &f.severity.to_string());
            out.push_str(",\"path\":");
            json_string(&mut out, &f.path);
            out.push_str(",\"nets\":[");
            for (j, n) in f.nets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, n);
            }
            out.push_str("],\"message\":");
            json_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_orders_keys() {
        let report = LintReport {
            circuit: "a\"b\\c\n".into(),
            findings: vec![Finding {
                rule: "SL001",
                severity: Severity::Error,
                path: "u1".into(),
                nets: vec!["n\t1".into()],
                message: "bad".into(),
            }],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"circuit\":\"a\\\"b\\\\c\\n\",\"errors\":1,\"warnings\":0,\
             \"findings\":[{\"rule\":\"SL001\",\"severity\":\"error\",\
             \"path\":\"u1\",\"nets\":[\"n\\t1\"],\"message\":\"bad\"}]}"
        );
    }

    #[test]
    fn counts_split_by_severity() {
        let f = |sev| Finding {
            rule: "SL104",
            severity: sev,
            path: String::new(),
            nets: vec![],
            message: String::new(),
        };
        let report = LintReport {
            circuit: "c".into(),
            findings: vec![f(Severity::Warning), f(Severity::Error)],
        };
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        assert!(report.has_errors());
    }
}
