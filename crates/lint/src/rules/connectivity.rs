//! `SL107`–`SL110`: structural connectivity rules (the conditions
//! `Circuit::lint` reports, re-expressed as engine findings with names
//! instead of ids).

use smart_netlist::Circuit;

use crate::engine::{Finding, LintConfig, Severity};

fn input_net_mask(circuit: &Circuit) -> Vec<bool> {
    let mut mask = vec![false; circuit.net_count()];
    for p in circuit.input_ports() {
        mask[p.net.index()] = true;
    }
    mask
}

/// `SL107`: a net with loads, no driver, and no input port.
pub(crate) fn check_floating(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    let inputs = input_net_mask(circuit);
    for (id, net) in circuit.nets() {
        if circuit.drivers_of(id).is_empty()
            && !circuit.loads_of(id).is_empty()
            && !inputs[id.index()]
        {
            out.push(Finding {
                rule: "SL107",
                severity: Severity::Error,
                path: String::new(),
                nets: vec![net.name.clone()],
                message: format!("net '{}' has loads but no driver and no input port", net.name),
            });
        }
    }
}

/// `SL108`: an output port on an undriven net.
pub(crate) fn check_undriven_outputs(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    let inputs = input_net_mask(circuit);
    for p in circuit.output_ports() {
        if circuit.drivers_of(p.net).is_empty() && !inputs[p.net.index()] {
            let name = circuit.net(p.net).name.clone();
            out.push(Finding {
                rule: "SL108",
                severity: Severity::Error,
                path: String::new(),
                nets: vec![name.clone()],
                message: format!("output port '{}' sits on undriven net '{name}'", p.name),
            });
        }
    }
}

/// `SL109`: several always-on drivers on one net. The mixed
/// restoring-plus-shared case is `SL102`'s sneak path; this rule covers
/// the all-restoring conflict, so together they partition the legacy
/// `DriverConflict` condition without double-reporting.
pub(crate) fn check_driver_conflicts(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    for (id, net) in circuit.nets() {
        let drivers = circuit.drivers_of(id);
        if drivers.len() > 1
            && drivers
                .iter()
                .all(|&d| !circuit.comp(d).kind.is_shared_driver())
        {
            let path = drivers
                .iter()
                .map(|&d| circuit.comp(d).path.as_str())
                .min()
                .unwrap_or("")
                .to_owned();
            out.push(Finding {
                rule: "SL109",
                severity: Severity::Error,
                path,
                nets: vec![net.name.clone()],
                message: format!(
                    "net '{}' has {} always-on drivers; only pass/tri-state \
                     drivers may share a net",
                    net.name,
                    drivers.len()
                ),
            });
        }
    }
}

/// `SL110`: a size label bound by no device.
pub(crate) fn check_unused_labels(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    let mut used = vec![false; circuit.labels().len()];
    for (_, comp) in circuit.components() {
        for &(_, label) in comp.label_bindings() {
            used[label.index()] = true;
        }
    }
    for (label, name) in circuit.labels().iter() {
        if !used[label.index()] {
            out.push(Finding {
                rule: "SL110",
                severity: Severity::Warning,
                path: String::new(),
                nets: Vec::new(),
                message: format!("size label '{name}' is bound to no device"),
            });
        }
    }
}
