//! `SL102`–`SL106`: electrical graph-reachability rules over the
//! connectivity indices — sneak paths, contention, mutual exclusion,
//! level degradation, charge sharing.

use smart_netlist::{Circuit, ComponentKind, NetId};

use crate::engine::{Finding, LintConfig, Severity};

/// Is the component a restoring (always-on, rail-connected) driver?
fn is_restoring(kind: &ComponentKind) -> bool {
    !kind.is_shared_driver()
}

/// `SL102`: a net driven by both restoring and pass/tri-state drivers.
/// When the shared driver conducts it connects the net to another driven
/// node; the two restoring endpoints then fight through the pass network
/// — a DC path from VDD to GND.
pub(crate) fn check_sneak_paths(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    for (id, net) in circuit.nets() {
        let drivers = circuit.drivers_of(id);
        let shared = drivers
            .iter()
            .filter(|&&d| circuit.comp(d).kind.is_shared_driver())
            .count();
        let restoring = drivers.len() - shared;
        if shared > 0 && restoring > 0 {
            // Anchor on the lexicographically first restoring driver so the
            // finding is invariant under component reordering.
            let path = drivers
                .iter()
                .filter(|&&d| is_restoring(&circuit.comp(d).kind))
                .map(|&d| circuit.comp(d).path.as_str())
                .min()
                .unwrap_or("")
                .to_owned();
            out.push(Finding {
                rule: "SL102",
                severity: Severity::Error,
                path,
                nets: vec![net.name.clone()],
                message: format!(
                    "net '{}' mixes {restoring} restoring driver(s) with {shared} \
                     pass/tri-state driver(s): a conducting pass network shorts the \
                     restoring output to another driven node (VDD\u{2192}GND sneak path)",
                    net.name
                ),
            });
        }
    }
}

/// Shared drivers of `net` as `(comp index, data net, select/enable net,
/// path)`, for the pairwise rules. Pin 1 is the select (pass gate) or
/// enable (tri-state); pin 0 the data.
fn shared_drivers(circuit: &Circuit, net: NetId) -> Vec<(NetId, NetId, String)> {
    circuit
        .drivers_of(net)
        .iter()
        .filter_map(|&d| {
            let comp = circuit.comp(d);
            comp.kind
                .is_shared_driver()
                .then(|| (comp.conns[0], comp.conns[1], comp.path.clone()))
        })
        .collect()
}

/// `SL103`: two shared drivers with the *same* select/enable net but
/// different data nets conduct simultaneously whenever that select is
/// active — guaranteed contention, not a mutual-exclusion question.
pub(crate) fn check_contention(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    for (id, net) in circuit.nets() {
        let drivers = shared_drivers(circuit, id);
        for i in 0..drivers.len() {
            for j in i + 1..drivers.len() {
                let (data_a, sel_a, path_a) = &drivers[i];
                let (data_b, sel_b, path_b) = &drivers[j];
                if sel_a == sel_b && data_a != data_b {
                    let (first, second) = if path_a <= path_b {
                        (path_a, path_b)
                    } else {
                        (path_b, path_a)
                    };
                    let sel = circuit.net(*sel_a).name.clone();
                    out.push(Finding {
                        rule: "SL103",
                        severity: Severity::Error,
                        path: first.clone(),
                        nets: vec![net.name.clone(), sel.clone()],
                        message: format!(
                            "'{first}' and '{second}' drive net '{}' from different \
                             data with the same select '{sel}': both conduct whenever \
                             '{sel}' is active",
                            net.name
                        ),
                    });
                }
            }
        }
    }
}

/// Are `a` and `b` provably complementary — one the inverter image of
/// the other?
fn complementary(circuit: &Circuit, a: NetId, b: NetId) -> bool {
    let inverts = |src: NetId, dst: NetId| {
        circuit.drivers_of(dst).iter().any(|&d| {
            let comp = circuit.comp(d);
            matches!(comp.kind, ComponentKind::Inverter { .. }) && comp.conns[0] == src
        })
    };
    inverts(a, b) || inverts(b, a)
}

/// `SL104`: multiple shared drivers whose enables the linter cannot prove
/// mutually exclusive. Enable pairs that are inverter complements (an
/// encoded select, `s` / `!s`) are proven; identical enables are `SL103`
/// territory (contention if the data differs, harmless if not); anything
/// else — one-hot decoders, independent primary selects — is legal but
/// rests on a dynamic invariant the netlist cannot exhibit, so it is
/// surfaced as a warning.
pub(crate) fn check_mutex(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    for (id, net) in circuit.nets() {
        let drivers = shared_drivers(circuit, id);
        if drivers.len() < 2 {
            continue;
        }
        let unproven = (0..drivers.len()).any(|i| {
            (i + 1..drivers.len()).any(|j| {
                let (_, sel_a, _) = drivers[i];
                let (_, sel_b, _) = drivers[j];
                sel_a != sel_b && !complementary(circuit, sel_a, sel_b)
            })
        });
        if unproven {
            out.push(Finding {
                rule: "SL104",
                severity: Severity::Warning,
                path: String::new(),
                nets: vec![net.name.clone()],
                message: format!(
                    "{} pass/tri-state drivers share net '{}' without statically \
                     provable mutually-exclusive enables (proof requires a one-hot \
                     or complementary select structure)",
                    drivers.len(),
                    net.name
                ),
            });
        }
    }
}

/// `SL105`: a pass-gate-driven level feeding a non-restoring load — a
/// further pass data pin (the degraded level propagates) or a domino
/// data input (a weak high on the pull-down gate leaks charge off the
/// dynamic node). Restoring static loads re-buffer the level and are
/// fine.
pub(crate) fn check_threshold_drops(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    for (id, net) in circuit.nets() {
        let drivers = circuit.drivers_of(id);
        if drivers.is_empty()
            || !drivers
                .iter()
                .all(|&d| matches!(circuit.comp(d).kind, ComponentKind::PassGate))
        {
            continue;
        }
        for &(load, pin) in circuit.loads_of(id) {
            let comp = circuit.comp(load);
            let non_restoring = match &comp.kind {
                ComponentKind::PassGate => pin == 0,
                ComponentKind::Domino { .. } => pin != 0,
                _ => false,
            };
            if non_restoring {
                out.push(Finding {
                    rule: "SL105",
                    severity: Severity::Warning,
                    path: comp.path.clone(),
                    nets: vec![net.name.clone()],
                    message: format!(
                        "pass-driven net '{}' feeds the non-restoring input \
                         '{}' of '{}'; insert a restoring buffer before \
                         propagating a degraded level",
                        net.name,
                        comp.kind.pin_name(pin),
                        comp.path
                    ),
                });
            }
        }
    }
}

/// `SL106`: domino pull-down stacks at or beyond the configured depth.
/// Internal stack nodes retain charge from previous cycles; when the
/// stack partially conducts, that charge redistributes onto the dynamic
/// node and can flip the output inverter.
pub(crate) fn check_charge_sharing(circuit: &Circuit, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for (_, comp) in circuit.components() {
        if let ComponentKind::Domino { network, .. } = &comp.kind {
            let depth = network.max_stack_depth();
            if depth >= cfg.charge_share_depth {
                let name = circuit.net(comp.output_net()).name.clone();
                out.push(Finding {
                    rule: "SL106",
                    severity: Severity::Warning,
                    path: comp.path.clone(),
                    nets: vec![name.clone()],
                    message: format!(
                        "domino pull-down stack depth {depth} (threshold {}) exposes \
                         dynamic node '{name}' to internal-node charge sharing; \
                         consider precharging internal nodes or splitting the stack",
                        cfg.charge_share_depth
                    ),
                });
            }
        }
    }
}
