//! `SL001`–`SL004`: the four methodology DRC checks that predate the
//! rule engine, ported verbatim from `smart_netlist::drc`.
//!
//! The detection logic lives here in one shared pass ([`legacy_issues`])
//! consumed two ways: the `SL00x` rules translate the structured issues
//! into [`Finding`]s, and [`crate::compat::methodology_check`] translates
//! the *same* issues into the deprecated `DrcIssue` values — exact parity
//! with the historical checker by construction, in content and in order.

use smart_netlist::{Circuit, CompId, ComponentKind, NetId, NetKind};

use crate::engine::{Finding, LintConfig, Severity};

/// One issue in the legacy DRC's vocabulary.
pub(crate) enum LegacyIssue {
    /// Domino clock pin off-clock, or a non-clock input pin on a clock net.
    ClockWiring { comp: CompId, path: String, net: NetId },
    /// `NetKind::Dynamic` marking and domino drivers disagree.
    DynamicMarking { net: NetId, name: String },
    /// D2 data input not provably low during precharge.
    Unfooted { comp: CompId, path: String, input: String },
    /// Series pass chain beyond the depth limit.
    PassChain { net: NetId, depth: usize, limit: usize },
}

/// Runs the four legacy checks in their historical order.
pub(crate) fn legacy_issues(circuit: &Circuit, pass_chain_limit: usize) -> Vec<LegacyIssue> {
    let mut issues = Vec::new();

    // Clock wiring + dynamic marking, in component order.
    for (id, comp) in circuit.components() {
        match &comp.kind {
            ComponentKind::Domino { .. } => {
                let clk = comp.conns[0];
                if circuit.net(clk).kind != NetKind::Clock {
                    issues.push(LegacyIssue::ClockWiring {
                        comp: id,
                        path: comp.path.clone(),
                        net: clk,
                    });
                }
                let out = comp.output_net();
                if circuit.net(out).kind != NetKind::Dynamic {
                    issues.push(LegacyIssue::DynamicMarking {
                        net: out,
                        name: circuit.net(out).name.clone(),
                    });
                }
            }
            _ => {
                for (pin, net) in comp.input_nets() {
                    if circuit.net(net).kind == NetKind::Clock && !comp.kind.is_clock_pin(pin)
                    {
                        issues.push(LegacyIssue::ClockWiring {
                            comp: id,
                            path: comp.path.clone(),
                            net,
                        });
                    }
                }
            }
        }
    }
    // Dynamic nets must be domino-driven.
    for (id, net) in circuit.nets() {
        if net.kind == NetKind::Dynamic {
            let domino_driven = circuit
                .drivers_of(id)
                .iter()
                .any(|&d| matches!(circuit.comp(d).kind, ComponentKind::Domino { .. }));
            if !domino_driven {
                issues.push(LegacyIssue::DynamicMarking {
                    net: id,
                    name: net.name.clone(),
                });
            }
        }
    }

    // D2 input discipline.
    for (id, comp) in circuit.components() {
        if let ComponentKind::Domino { clocked_eval: false, .. } = comp.kind {
            for (pin, net) in comp.input_nets() {
                if pin == 0 {
                    continue; // clock pin
                }
                if !is_monotone_low_in_precharge(circuit, net, 0) {
                    issues.push(LegacyIssue::Unfooted {
                        comp: id,
                        path: comp.path.clone(),
                        input: circuit.net(net).name.clone(),
                    });
                }
            }
        }
    }

    // Pass-chain depth (memoized DFS over pass-gate data edges).
    let mut depth = vec![None::<usize>; circuit.net_count()];
    for (id, _) in circuit.nets() {
        let d = pass_depth(circuit, id, &mut depth, 0);
        if d > pass_chain_limit {
            issues.push(LegacyIssue::PassChain {
                net: id,
                depth: d,
                limit: pass_chain_limit,
            });
        }
    }

    issues
}

/// A net is safe for a D2 data pin if every driver is an inverter whose
/// input is itself safe-inverted — i.e. the signal is provably low during
/// precharge. An inverter ON a dynamic node outputs low during precharge;
/// an inverter on THAT is high again, so polarity is tracked two levels
/// at a time. (Verbatim port of the `smart_netlist::drc` predicate.)
fn is_monotone_low_in_precharge(circuit: &Circuit, net: NetId, depth: usize) -> bool {
    if depth > 8 {
        return false;
    }
    let drivers = circuit.drivers_of(net);
    if drivers.is_empty() {
        return false; // primary input: static, undisciplined
    }
    drivers.iter().all(|&d| {
        let comp = circuit.comp(d);
        match &comp.kind {
            // The dynamic node itself is high during precharge — a data
            // pin wired straight to it would conduct.
            ComponentKind::Domino { .. } => false,
            ComponentKind::Inverter { .. } => {
                let src = comp.conns[0];
                if circuit.net(src).kind == NetKind::Dynamic {
                    true
                } else {
                    circuit.drivers_of(src).iter().all(|&dd| {
                        let inner = circuit.comp(dd);
                        matches!(inner.kind, ComponentKind::Inverter { .. })
                            && is_monotone_low_in_precharge(circuit, inner.conns[0], depth + 2)
                    })
                }
            }
            _ => false,
        }
    })
}

/// Longest chain of pass gates ending at `net`.
fn pass_depth(circuit: &Circuit, net: NetId, memo: &mut Vec<Option<usize>>, guard: usize) -> usize {
    if guard > circuit.net_count() {
        return 0; // cycle guard
    }
    if let Some(d) = memo[net.index()] {
        return d;
    }
    memo[net.index()] = Some(0); // break cycles
    let mut best = 0;
    for &d in circuit.drivers_of(net) {
        let comp = circuit.comp(d);
        if matches!(comp.kind, ComponentKind::PassGate) {
            let upstream = comp.conns[0]; // data pin
            best = best.max(1 + pass_depth(circuit, upstream, memo, guard + 1));
        }
    }
    memo[net.index()] = Some(best);
    best
}

pub(crate) fn check_clock_wiring(circuit: &Circuit, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for issue in legacy_issues(circuit, cfg.pass_chain_limit) {
        if let LegacyIssue::ClockWiring { comp, path, net } = issue {
            let name = circuit.net(net).name.clone();
            let message = if matches!(circuit.comp(comp).kind, ComponentKind::Domino { .. }) {
                format!("domino clock pin wired to non-clock net '{name}'")
            } else {
                format!("non-clock input pin reads clock net '{name}'")
            };
            out.push(Finding {
                rule: "SL001",
                severity: Severity::Error,
                path,
                nets: vec![name],
                message,
            });
        }
    }
}

pub(crate) fn check_dynamic_marking(circuit: &Circuit, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for issue in legacy_issues(circuit, cfg.pass_chain_limit) {
        if let LegacyIssue::DynamicMarking { name, .. } = issue {
            out.push(Finding {
                rule: "SL002",
                severity: Severity::Error,
                path: String::new(),
                nets: vec![name.clone()],
                message: format!(
                    "net '{name}': NetKind::Dynamic marking and domino drivers disagree \
                     (dynamic nets must be domino-driven, domino outputs must be dynamic)"
                ),
            });
        }
    }
}

pub(crate) fn check_unfooted_inputs(circuit: &Circuit, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for issue in legacy_issues(circuit, cfg.pass_chain_limit) {
        if let LegacyIssue::Unfooted { path, input, .. } = issue {
            out.push(Finding {
                rule: "SL003",
                severity: Severity::Error,
                path,
                nets: vec![input.clone()],
                message: format!(
                    "unfooted (D2) data input '{input}' is not provably low during \
                     precharge; it can crowbar the uncut pull-down"
                ),
            });
        }
    }
}

pub(crate) fn check_pass_chains(circuit: &Circuit, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for issue in legacy_issues(circuit, cfg.pass_chain_limit) {
        if let LegacyIssue::PassChain { net, depth, limit } = issue {
            let name = circuit.net(net).name.clone();
            out.push(Finding {
                rule: "SL004",
                severity: Severity::Error,
                path: String::new(),
                nets: vec![name.clone()],
                message: format!(
                    "series pass chain of depth {depth} ends at net '{name}' \
                     (methodology limit {limit})"
                ),
            });
        }
    }
}
