//! The rule catalogue.
//!
//! Rule ids are stable API: `SL0xx` are the four legacy methodology DRC
//! checks migrated from `smart_netlist::drc`, `SL1xx` are the dataflow
//! and graph-reachability rules introduced with this crate.

pub(crate) mod connectivity;
pub(crate) mod electrical;
pub(crate) mod legacy;
pub(crate) mod monotonicity;
pub(crate) mod timing;

use crate::engine::{RuleInfo, Severity};

/// All registered rules in id order.
pub(crate) static REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        id: "SL001",
        name: "clock-wiring",
        default_severity: Severity::Error,
        description: "domino clock pins must sit on clock nets, and clock nets \
                      must not feed non-clock inputs",
        check: legacy::check_clock_wiring,
    },
    RuleInfo {
        id: "SL002",
        name: "dynamic-marking",
        default_severity: Severity::Error,
        description: "NetKind::Dynamic marking and domino drivers must agree",
        check: legacy::check_dynamic_marking,
    },
    RuleInfo {
        id: "SL003",
        name: "unfooted-input-discipline",
        default_severity: Severity::Error,
        description: "every data input of an unfooted (D2) domino gate must be \
                      low during precharge",
        check: legacy::check_unfooted_inputs,
    },
    RuleInfo {
        id: "SL004",
        name: "pass-chain-depth",
        default_severity: Severity::Error,
        description: "series pass-gate chains must not exceed the methodology \
                      depth limit",
        check: legacy::check_pass_chains,
    },
    RuleInfo {
        id: "SL101",
        name: "domino-monotonicity",
        default_severity: Severity::Error,
        description: "every domino data input must be monotone-rising during \
                      evaluate (no inverting static logic between stages)",
        check: monotonicity::check,
    },
    RuleInfo {
        id: "SL102",
        name: "dc-sneak-path",
        default_severity: Severity::Error,
        description: "a net must not mix restoring drivers with pass/tri-state \
                      drivers (VDD-to-GND sneak path when both conduct)",
        check: electrical::check_sneak_paths,
    },
    RuleInfo {
        id: "SL103",
        name: "shared-driver-contention",
        default_severity: Severity::Error,
        description: "two pass/tri-state drivers with the same select but \
                      different data fight whenever that select is active",
        check: electrical::check_contention,
    },
    RuleInfo {
        id: "SL104",
        name: "mutex-unproven",
        default_severity: Severity::Warning,
        description: "multiple pass/tri-state drivers whose enables are not \
                      statically provably mutually exclusive",
        check: electrical::check_mutex,
    },
    RuleInfo {
        id: "SL105",
        name: "threshold-drop",
        default_severity: Severity::Warning,
        description: "a pass-driven level feeding a non-restoring load (another \
                      pass data pin, or a domino data input)",
        check: electrical::check_threshold_drops,
    },
    RuleInfo {
        id: "SL106",
        name: "charge-sharing",
        default_severity: Severity::Warning,
        description: "deep domino pull-down stacks expose the dynamic node to \
                      internal-node charge sharing",
        check: electrical::check_charge_sharing,
    },
    RuleInfo {
        id: "SL107",
        name: "floating-net",
        default_severity: Severity::Error,
        description: "a net with loads but no driver and no input port",
        check: connectivity::check_floating,
    },
    RuleInfo {
        id: "SL108",
        name: "undriven-output",
        default_severity: Severity::Error,
        description: "an output port on a net nothing drives",
        check: connectivity::check_undriven_outputs,
    },
    RuleInfo {
        id: "SL109",
        name: "driver-conflict",
        default_severity: Severity::Error,
        description: "several always-on drivers contend for one net",
        check: connectivity::check_driver_conflicts,
    },
    RuleInfo {
        id: "SL110",
        name: "unused-label",
        default_severity: Severity::Warning,
        description: "a size label no device binds (usually a generator bug)",
        check: connectivity::check_unused_labels,
    },
    RuleInfo {
        id: "SL111",
        name: "min-delay-race",
        default_severity: Severity::Warning,
        description: "a domino stage's static min-path interval at the fast \
                      corner undercuts the precharge window (hold race against \
                      the predecessor's precharge)",
        check: timing::check,
    },
];
