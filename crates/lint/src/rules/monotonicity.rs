//! `SL101`: domino data inputs must be monotone-rising during evaluate.
//!
//! This is the check the legacy DRC could not express: `SL003` only
//! looks at *precharge* levels of D2 inputs, so a static inverter pair
//! between two domino stages — output falls during evaluate, violating
//! the domino discipline — sails through it. The monotonicity dataflow
//! ([`crate::dataflow`]) sees it: the second inversion makes the D2
//! input monotone-*falling*, and any net classified falling or unknown
//! on a domino data pin is a violation.

use smart_netlist::{Circuit, ComponentKind};

use crate::dataflow::{Monotonicity, MonotonicityAnalysis};
use crate::engine::{Finding, LintConfig, Severity};

pub(crate) fn check(circuit: &Circuit, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    let analysis = MonotonicityAnalysis::run(circuit);
    for (_, comp) in circuit.components() {
        if !matches!(comp.kind, ComponentKind::Domino { .. }) {
            continue;
        }
        for (pin, net) in comp.input_nets() {
            if pin == 0 {
                continue; // clock pin
            }
            let class = analysis.of(net);
            if matches!(class, Monotonicity::FallingMonotone | Monotonicity::Unknown) {
                let name = circuit.net(net).name.clone();
                out.push(Finding {
                    rule: "SL101",
                    severity: Severity::Error,
                    path: comp.path.clone(),
                    nets: vec![name.clone()],
                    message: format!(
                        "domino data input '{name}' is {class} during evaluate; domino \
                         inputs must be monotone-rising (a falling input re-opens an \
                         already-evaluated pull-down — remove the inverting static \
                         logic between stages or re-buffer from the domino output)"
                    ),
                });
            }
        }
    }
}
