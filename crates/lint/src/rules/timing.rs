//! `SL111`: min-delay/hold race — a domino stage whose static min-path
//! arrival at the fast corner undercuts the precharge window.
//!
//! The audit crate's interval discipline applied to the timing graph: we
//! propagate a *lower bound* on arrival (in typical-stage units — one
//! unit per gate) from every dynamic node through the static fabric, and
//! compare the receiving stage's earliest possible evaluation, scaled to
//! the fast corner ([`LintConfig::fast_derate`]), against the precharge
//! window ([`LintConfig::precharge_window`]). A stage that can evaluate
//! before the window closes races its predecessor's precharge: at the
//! fast corner the early-rising data input re-discharges a dynamic node
//! that has not finished precharging.
//!
//! Only paths *from dynamic nodes* participate: primary inputs are timed
//! externally (their arrival is a boundary condition the sizer checks),
//! so a first-stage domino fed straight from ports has no race to flag.
//! With the default knobs (derate 0.5, window 1.0) a direct D1→D2
//! hand-off sits exactly on the boundary — min interval 2 stages,
//! `2 × 0.5 = 1.0`, not below the window — so the discipline the
//! methodology allows stays clean and anything *faster* than the
//! sanctioned hand-off (a window widened by configuration, or a derate
//! below one half) is named.

use smart_netlist::{Circuit, ComponentKind};

use crate::engine::{Finding, LintConfig, Severity};

pub(crate) fn check(circuit: &Circuit, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let n = circuit.net_count();
    // dist[net] = minimum stage count from any dynamic node's evaluation
    // to a rising transition on this net (usize::MAX = unreachable).
    let mut dist = vec![usize::MAX; n];
    for (_, comp) in circuit.components() {
        if matches!(comp.kind, ComponentKind::Domino { .. }) {
            dist[comp.output_net().index()] = 1;
        }
    }
    // Fixpoint over the static fabric: a static gate's output rises one
    // stage after its earliest reachable input. Domino components do not
    // relay (their outputs re-time at the clock edge and are already
    // seeded above). Bounded by the longest acyclic chain.
    loop {
        let mut changed = false;
        for (_, comp) in circuit.components() {
            if matches!(comp.kind, ComponentKind::Domino { .. }) {
                continue;
            }
            let best = comp
                .input_nets()
                .map(|(_, net)| dist[net.index()])
                .min()
                .unwrap_or(usize::MAX);
            if best == usize::MAX {
                continue;
            }
            let through = best.saturating_add(1);
            let slot = &mut dist[comp.output_net().index()];
            if through < *slot {
                *slot = through;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (_, comp) in circuit.components() {
        if !matches!(comp.kind, ComponentKind::Domino { .. }) {
            continue;
        }
        // Earliest data arrival over the stage's data pins (pin 0 is the
        // clock), restricted to dynamic-node-origin paths.
        let Some((net, d)) = comp
            .input_nets()
            .filter(|&(pin, _)| pin != 0)
            .map(|(_, net)| (net, dist[net.index()]))
            .filter(|&(_, d)| d != usize::MAX)
            .min_by_key(|&(_, d)| d)
        else {
            continue;
        };
        // The stage itself is one more gate: its earliest evaluation.
        let stages = (d + 1) as f64;
        let fast = stages * cfg.fast_derate;
        if fast < cfg.precharge_window {
            let name = circuit.net(net).name.clone();
            out.push(Finding {
                rule: "SL111",
                severity: Severity::Warning,
                path: comp.path.clone(),
                nets: vec![name.clone()],
                message: format!(
                    "min-delay race: earliest evaluation via '{name}' is {fast:.2} \
                     typical-stage units at the fast corner, inside the {:.2}-unit \
                     precharge window — the stage can re-discharge a dynamic node \
                     that is still precharging (add a buffer stage or slow the \
                     min path)",
                    cfg.precharge_window
                ),
            });
        }
    }
}
