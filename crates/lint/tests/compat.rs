//! Parity between the deprecated `smart_netlist::drc::methodology_check`
//! (frozen implementation) and its maintained replacement,
//! `smart_lint::compat::methodology_check`: identical issues, identical
//! order, on clean macros and on circuits that trip every legacy check.

#![allow(deprecated)]

use smart_macros::representative_database;
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Network, Skew};

fn assert_parity(c: &Circuit) {
    let old = smart_netlist::methodology_check(c);
    let new = smart_lint::compat::methodology_check(c);
    assert_eq!(old, new, "parity broke on '{}'", c.name());
}

#[test]
fn parity_on_every_database_macro() {
    for spec in representative_database() {
        assert_parity(&spec.generate());
    }
}

#[test]
fn parity_on_a_circuit_violating_every_legacy_check() {
    let mut c = Circuit::new("all_violations");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let notclk = c.add_net("notclk").unwrap();
    let a = c.add_net("a").unwrap();
    let p = c.label("P1");
    let n = c.label("N1");

    // ClockWiring + DynamicMarking: clock pin off-clock, output unmarked.
    let y1 = c.add_net("y1").unwrap();
    c.add(
        "d_badclk",
        ComponentKind::Domino { network: Network::Input(0), clocked_eval: true },
        &[notclk, a, y1],
        &[
            (DeviceRole::Precharge, p),
            (DeviceRole::DataN, n),
            (DeviceRole::Evaluate, n),
        ],
    )
    .unwrap();
    // ClockWiring the other way: static input reads the clock.
    let y2 = c.add_net("y2").unwrap();
    c.add(
        "i_onclk",
        ComponentKind::Inverter { skew: Skew::Balanced },
        &[clk, y2],
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .unwrap();
    // UnfootedInputDiscipline: D2 data wired to a primary input.
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    c.add(
        "d2_bad",
        ComponentKind::Domino { network: Network::Input(0), clocked_eval: false },
        &[clk, a, dyn2],
        &[(DeviceRole::Precharge, p), (DeviceRole::DataN, n)],
    )
    .unwrap();
    // PassChainTooDeep: four series pass gates.
    let s = c.add_net("s").unwrap();
    let l = c.label("N2");
    let mut prev = c.add_net("p0").unwrap();
    c.expose_input("p0", prev);
    for i in 0..4 {
        let next = c.add_net(format!("p{}", i + 1)).unwrap();
        c.add(
            format!("pg{i}"),
            ComponentKind::PassGate,
            &[prev, s, next],
            &[
                (DeviceRole::PassN, l),
                (DeviceRole::PassP, l),
                (DeviceRole::PassInv, l),
            ],
        )
        .unwrap();
        prev = next;
    }
    c.expose_input("clk", clk);
    c.expose_input("notclk", notclk);
    c.expose_input("a", a);
    c.expose_input("s", s);
    c.expose_output("y1", y1);
    c.expose_output("y2", y2);
    c.expose_output("dyn2", dyn2);
    c.expose_output("tail", prev);

    let issues = smart_netlist::methodology_check(&c);
    let kinds: Vec<&str> = issues
        .iter()
        .map(|i| match i {
            smart_netlist::DrcIssue::ClockWiring { .. } => "clock",
            smart_netlist::DrcIssue::DynamicMarking { .. } => "dyn",
            smart_netlist::DrcIssue::UnfootedInputDiscipline { .. } => "unfooted",
            smart_netlist::DrcIssue::PassChainTooDeep { .. } => "pass",
            _ => "other",
        })
        .collect();
    for expected in ["clock", "dyn", "unfooted", "pass"] {
        assert!(kinds.contains(&expected), "{expected} missing from {kinds:?}");
    }
    assert_parity(&c);
}

#[test]
fn sl00x_findings_match_legacy_issue_count() {
    // The SL001-SL004 rules consume the same shared pass as the compat
    // shim, so per-circuit their finding count equals the issue count
    // (modulo engine-level dedup, which the legacy checker never needed).
    for spec in representative_database() {
        let c = spec.generate();
        let legacy = smart_lint::compat::methodology_check(&c).len();
        let findings = smart_lint::lint_circuit(&c)
            .findings
            .iter()
            .filter(|f| f.rule < "SL100")
            .count();
        assert_eq!(legacy, findings, "{spec}");
    }
}
