//! Database-wide acceptance: every macro the generators produce is
//! lint-clean at `Error` severity, and the monotonicity dataflow reaches
//! its fixpoint on each of them (ISSUE PR 3 acceptance criteria).

use smart_lint::dataflow::MonotonicityAnalysis;
use smart_lint::{lint_circuit, Severity};
use smart_macros::representative_database;

#[test]
fn every_database_macro_is_error_clean() {
    let specs = representative_database();
    assert!(specs.len() >= 25, "representative sweep looks truncated");
    for spec in specs {
        let c = spec.generate();
        let report = lint_circuit(&c);
        let errors: Vec<String> = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .map(|f| f.to_string())
            .collect();
        assert!(errors.is_empty(), "{spec} has lint errors: {errors:#?}");
    }
}

#[test]
fn dataflow_reaches_fixpoint_on_every_database_macro() {
    for spec in representative_database() {
        let c = spec.generate();
        let m = MonotonicityAnalysis::run(&c);
        assert!(
            m.converged(),
            "{spec}: {} worklist pops exceed the {}-event domain",
            m.iterations(),
            m.node_count()
        );
    }
}

#[test]
fn unrouted_variants_are_error_clean_too() {
    // Lint must not depend on parasitic annotation.
    for spec in representative_database() {
        let c = spec.generate_unrouted();
        let report = lint_circuit(&c);
        assert!(
            !report.has_errors(),
            "{spec} (unrouted) has lint errors: {:?}",
            report.findings
        );
    }
}
