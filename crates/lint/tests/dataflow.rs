//! Acceptance tests for the monotonicity dataflow (ISSUE PR 3):
//! the analysis flags the deliberately broken circuit (inverting static
//! logic between domino stages), proves the legal two-stage D1→inv→D2
//! comparator monotone, and reaches its fixpoint within the iteration
//! bound on real macros.

use smart_lint::dataflow::{Monotonicity, MonotonicityAnalysis};
use smart_lint::lint_circuit;
use smart_macros::{ComparatorVariant, MacroSpec};
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Network, Skew};

fn inv(c: &mut Circuit, path: &str, a: smart_netlist::NetId, y: smart_netlist::NetId) {
    let p = c.label("P1");
    let n = c.label("N1");
    c.add(
        path,
        ComponentKind::Inverter { skew: Skew::Balanced },
        &[a, y],
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .unwrap();
}

/// The ISSUE's canonical broken circuit: D1 stage, then an *extra*
/// inverting static gate, then a second domino stage reading the now
/// monotone-falling signal.
fn broken_pipeline() -> Circuit {
    let mut c = Circuit::new("broken");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    let q = c.add_net("q").unwrap();
    let qb = c.add_net("qb").unwrap();
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    let out = c.add_net("out").unwrap();
    let p = c.label("P1");
    let n = c.label("N1");
    c.add(
        "d1",
        ComponentKind::Domino { network: Network::Input(0), clocked_eval: true },
        &[clk, a, dyn1],
        &[
            (DeviceRole::Precharge, p),
            (DeviceRole::DataN, n),
            (DeviceRole::Evaluate, n),
        ],
    )
    .unwrap();
    inv(&mut c, "h1", dyn1, q);
    inv(&mut c, "bad", q, qb);
    c.add(
        "d2",
        ComponentKind::Domino { network: Network::Input(0), clocked_eval: true },
        &[clk, qb, dyn2],
        &[
            (DeviceRole::Precharge, p),
            (DeviceRole::DataN, n),
            (DeviceRole::Evaluate, n),
        ],
    )
    .unwrap();
    inv(&mut c, "h2", dyn2, out);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("out", out);
    c
}

#[test]
fn broken_pipeline_lattice_values() {
    let c = broken_pipeline();
    let m = MonotonicityAnalysis::run(&c);
    assert!(m.converged());
    let net = |n: &str| c.find_net(n).unwrap();
    assert_eq!(m.of(net("clk")), Monotonicity::RisingMonotone);
    assert_eq!(m.of(net("dyn1")), Monotonicity::FallingMonotone);
    assert_eq!(m.of(net("q")), Monotonicity::RisingMonotone);
    // The extra inversion flips the monotone direction...
    assert_eq!(m.of(net("qb")), Monotonicity::FallingMonotone);
    // ...which is exactly what a domino data pin must never see.
}

#[test]
fn broken_pipeline_is_rejected_by_sl101() {
    let report = lint_circuit(&broken_pipeline());
    assert!(report.has_errors());
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL101")
        .expect("the broken pipeline must produce an SL101 finding");
    assert_eq!(f.path, "d2");
    assert_eq!(f.nets, vec!["qb".to_owned()]);
    assert!(f.message.contains("monotone-falling"));
}

#[test]
fn legal_comparator_is_monotone_and_clean() {
    // The Merced-style D1→inverter→D2 comparator of paper Fig. 7 is the
    // legal counterpart of the broken pipeline: domino, static inverter,
    // domino — but the inverter sits on a dynamic (falling) node, so the
    // D2 data inputs are monotone-rising.
    let spec = MacroSpec::Comparator { width: 32, variant: ComparatorVariant::merced() };
    let c = spec.generate();
    let m = MonotonicityAnalysis::run(&c);
    assert!(m.converged());
    for (id, _) in c.components() {
        let comp = c.comp(id);
        if let ComponentKind::Domino { .. } = comp.kind {
            for (pin, net) in comp.input_nets() {
                if pin == 0 {
                    continue; // clock
                }
                let mono = m.of(net);
                assert!(
                    matches!(mono, Monotonicity::RisingMonotone | Monotonicity::Static),
                    "domino data net '{}' is {mono}",
                    c.net(net).name
                );
            }
        }
    }
    let report = lint_circuit(&c);
    assert!(
        !report.has_errors(),
        "legal comparator must lint clean: {:?}",
        report.findings
    );
}

#[test]
fn fixpoint_bound_holds_on_real_macros() {
    for spec in [
        MacroSpec::Comparator { width: 64, variant: ComparatorVariant::merced() },
        MacroSpec::ClaAdder { width: 16 },
        MacroSpec::ZeroDetect { width: 32, style: smart_macros::ZeroDetectStyle::Domino },
    ] {
        let c = spec.generate();
        let m = MonotonicityAnalysis::run(&c);
        assert!(m.converged(), "{spec}: {} pops > {} nodes", m.iterations(), m.node_count());
        assert!(m.iterations() > 0, "{spec}: clocked macro must propagate");
    }
}

#[test]
fn primary_inputs_stay_static_during_evaluate() {
    let c = MacroSpec::ClaAdder { width: 8 }.generate();
    let m = MonotonicityAnalysis::run(&c);
    for p in c.input_ports() {
        if c.net(p.net).kind == NetKind::Clock {
            continue;
        }
        assert_eq!(
            m.of(p.net),
            Monotonicity::Static,
            "primary input '{}' must hold during evaluate",
            p.name
        );
    }
}
