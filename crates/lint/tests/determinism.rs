//! The determinism contract: equal circuits produce byte-equal JSON
//! reports — across repeated runs, across threads, and (the property
//! test) across arbitrary net/component insertion orders, because
//! findings are name-based and canonically sorted.

use std::thread;

use smart_lint::lint_circuit;
use smart_macros::{MacroSpec, MuxTopology};
use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetId, NetKind, Network, Skew};
use smart_prng::Prng;

#[test]
fn repeated_runs_are_byte_identical() {
    let c = MacroSpec::ClaAdder { width: 8 }.generate();
    let first = lint_circuit(&c).to_json();
    for _ in 0..5 {
        assert_eq!(lint_circuit(&c).to_json(), first);
    }
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let dirty = dirty_circuit(&identity_order());
    let reference = lint_circuit(&dirty).to_json();
    for workers in [1usize, 4] {
        let results: Vec<String> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| s.spawn(|| lint_circuit(&dirty_circuit(&identity_order())).to_json()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for json in results {
            assert_eq!(json, reference, "worker-count {workers} diverged");
        }
    }
}

/// Net creation ops of the dirty circuit, by (name, kind).
const NETS: &[(&str, NetKind)] = &[
    ("clk", NetKind::Clock),
    ("a", NetKind::Signal),
    ("dyn1", NetKind::Dynamic),
    ("q", NetKind::Signal),
    ("qb", NetKind::Signal),
    ("dyn2", NetKind::Dynamic),
    ("out", NetKind::Signal),
    ("s0", NetKind::Signal),
    ("s1", NetKind::Signal),
    ("d0", NetKind::Signal),
    ("d1", NetKind::Signal),
    ("d2", NetKind::Signal),
    ("shared", NetKind::Signal),
    ("float_in", NetKind::Signal),
    ("float_y", NetKind::Signal),
    ("dangling", NetKind::Signal),
];

/// Component add ops, as (path, builder) so the insertion order can be
/// permuted while each op resolves its nets by *name*.
fn components() -> Vec<(&'static str, fn(&mut Circuit))> {
    fn net(c: &Circuit, name: &str) -> NetId {
        c.find_net(name).unwrap()
    }
    fn inv(c: &mut Circuit, path: &str, a: &str, y: &str) {
        let p = c.label("P1");
        let n = c.label("N1");
        let (a, y) = (net(c, a), net(c, y));
        c.add(
            path,
            ComponentKind::Inverter { skew: Skew::Balanced },
            &[a, y],
            &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
        )
        .unwrap();
    }
    fn pass(c: &mut Circuit, path: &str, d: &str, s: &str, y: &str) {
        let l = c.label("N2");
        let (d, s, y) = (net(c, d), net(c, s), net(c, y));
        c.add(
            path,
            ComponentKind::PassGate,
            &[d, s, y],
            &[
                (DeviceRole::PassN, l),
                (DeviceRole::PassP, l),
                (DeviceRole::PassInv, l),
            ],
        )
        .unwrap();
    }
    fn domino(c: &mut Circuit, path: &str, network: Network, clk: &str, d: &str, y: &str) {
        let p = c.label("P1");
        let n = c.label("N1");
        let (clk, d, y) = (net(c, clk), net(c, d), net(c, y));
        c.add(
            path,
            ComponentKind::Domino { network, clocked_eval: true },
            &[clk, d, y],
            &[
                (DeviceRole::Precharge, p),
                (DeviceRole::DataN, n),
                (DeviceRole::Evaluate, n),
            ],
        )
        .unwrap();
    }
    vec![
        // Broken domino pipeline: SL101 on qb (plus the legal stage).
        ("d1", |c| domino(c, "d1", Network::Input(0), "clk", "a", "dyn1")),
        ("h1", |c| inv(c, "h1", "dyn1", "q")),
        ("bad", |c| inv(c, "bad", "q", "qb")),
        ("d2", |c| domino(c, "d2", Network::Input(0), "clk", "qb", "dyn2")),
        ("h2", |c| inv(c, "h2", "dyn2", "out")),
        // Contention cluster on 'shared': same select s0 with different
        // data (SL103), an independent select s1 (SL104), and a restoring
        // driver mixed in (SL102).
        ("pg0", |c| pass(c, "pg0", "d0", "s0", "shared")),
        ("pg1", |c| pass(c, "pg1", "d1", "s0", "shared")),
        ("pg2", |c| pass(c, "pg2", "d2", "s1", "shared")),
        ("mix", |c| inv(c, "mix", "a", "shared")),
        // Floating net with a real load (SL107).
        ("fl", |c| inv(c, "fl", "float_in", "float_y")),
    ]
}

fn identity_order() -> (Vec<usize>, Vec<usize>) {
    ((0..NETS.len()).collect(), (0..components().len()).collect())
}

/// Builds the dirty circuit with nets created in `order.0` and
/// components inserted in `order.1`.
fn dirty_circuit(order: &(Vec<usize>, Vec<usize>)) -> Circuit {
    let mut c = Circuit::new("dirty");
    for &i in &order.0 {
        let (name, kind) = NETS[i];
        c.add_net_kind(name, kind).unwrap();
    }
    let ops = components();
    for &i in &order.1 {
        (ops[i].1)(&mut c);
    }
    c.label("N99"); // unused label: SL110
    for name in ["clk", "a", "s0", "s1", "d0", "d1", "d2"] {
        let n = c.find_net(name).unwrap();
        c.expose_input(name, n);
    }
    for name in ["out", "float_y"] {
        let n = c.find_net(name).unwrap();
        c.expose_output(name, n);
    }
    let dangling = c.find_net("dangling").unwrap();
    c.expose_output("dangling", dangling); // SL108
    c
}

fn shuffled(rng: &mut Prng, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.u64_below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
    v
}

#[test]
fn dirty_circuit_exercises_many_rules() {
    let report = lint_circuit(&dirty_circuit(&identity_order()));
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    for expected in ["SL101", "SL102", "SL103", "SL104", "SL107", "SL108", "SL110"] {
        assert!(rules.contains(&expected), "{expected} missing from {rules:?}");
    }
}

/// Property: findings are invariant under net-creation and
/// component-insertion order. 32 random permutations, fixed seeds.
#[test]
fn findings_invariant_under_reordering() {
    let reference = lint_circuit(&dirty_circuit(&identity_order()));
    assert!(!reference.findings.is_empty());
    let ref_json = reference.to_json();
    let mut rng = Prng::new(0x5eed_1a7e);
    for trial in 0..32 {
        let order = (
            shuffled(&mut rng, NETS.len()),
            shuffled(&mut rng, components().len()),
        );
        let permuted = lint_circuit(&dirty_circuit(&order));
        assert_eq!(
            permuted.to_json(),
            ref_json,
            "trial {trial} with order {order:?} produced different findings"
        );
    }
}

#[test]
fn database_macro_reports_equal_across_regeneration() {
    // Generators are deterministic, so two independent elaborations of
    // the same spec must lint byte-identically.
    let spec = MacroSpec::Mux { topology: MuxTopology::Tristate, width: 8 };
    let a = lint_circuit(&spec.generate()).to_json();
    let b = lint_circuit(&spec.generate()).to_json();
    assert_eq!(a, b);
}
