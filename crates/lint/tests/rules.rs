//! Per-rule positive/negative coverage: every rule in the registry has at
//! least one hand-built circuit that triggers it and one structurally
//! close circuit that does not, plus engine-level tests for disabling,
//! severity overrides and waivers.

use smart_lint::{lint_circuit, lint_circuit_with, rules, LintConfig, Severity, Waiver};
use smart_netlist::{Circuit, ComponentKind, DeviceRole, LabelId, NetId, NetKind, Network, Skew};

fn inv(c: &mut Circuit, path: &str, a: NetId, y: NetId) {
    let p = c.label("P1");
    let n = c.label("N1");
    c.add(
        path,
        ComponentKind::Inverter { skew: Skew::Balanced },
        &[a, y],
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .unwrap();
}

fn pass(c: &mut Circuit, path: &str, d: NetId, s: NetId, y: NetId) {
    let l = c.label("N2");
    c.add(
        path,
        ComponentKind::PassGate,
        &[d, s, y],
        &[
            (DeviceRole::PassN, l),
            (DeviceRole::PassP, l),
            (DeviceRole::PassInv, l),
        ],
    )
    .unwrap();
}

fn domino(c: &mut Circuit, path: &str, network: Network, clocked_eval: bool, conns: &[NetId]) {
    let p = c.label("P1");
    let n = c.label("N1");
    let mut bindings = vec![(DeviceRole::Precharge, p), (DeviceRole::DataN, n)];
    if clocked_eval {
        bindings.push((DeviceRole::Evaluate, n));
    }
    c.add(
        path,
        ComponentKind::Domino { network, clocked_eval },
        conns,
        &bindings,
    )
    .unwrap();
}

/// Rule ids present in the report.
fn fired(c: &Circuit) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = lint_circuit(c).findings.iter().map(|f| f.rule).collect();
    ids.dedup();
    ids
}

/// The canonical legal footed stage: clk ─ D1(a) ─ dyn1 ─ hs-inv ─ q.
fn stage() -> Circuit {
    let mut c = Circuit::new("stage");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    let q = c.add_net("q").unwrap();
    domino(&mut c, "d1", Network::Input(0), true, &[clk, a, dyn1]);
    inv(&mut c, "h1", dyn1, q);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("q", q);
    c
}

#[test]
fn legal_stage_is_clean() {
    assert_eq!(fired(&stage()), Vec::<&str>::new());
}

#[test]
fn sl001_domino_clock_pin_off_clock() {
    let mut c = Circuit::new("sl001_pos");
    let notclk = c.add_net("notclk").unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    domino(&mut c, "d1", Network::Input(0), true, &[notclk, a, dyn1]);
    c.expose_input("notclk", notclk);
    c.expose_input("a", a);
    c.expose_output("y", dyn1);
    assert!(fired(&c).contains(&"SL001"));
}

#[test]
fn sl001_static_input_on_clock_net() {
    let mut c = Circuit::new("sl001_static");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let y = c.add_net("y").unwrap();
    inv(&mut c, "u1", clk, y);
    c.expose_input("clk", clk);
    c.expose_output("y", y);
    let report = lint_circuit(&c);
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL001")
        .expect("static gate reading a clock must fire SL001");
    assert!(f.message.contains("non-clock input pin"));
    assert!(!fired(&stage()).contains(&"SL001"));
}

#[test]
fn sl002_marking_mismatch_both_directions() {
    // Domino output not marked Dynamic.
    let mut c = Circuit::new("sl002_out");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let y = c.add_net("y").unwrap(); // should be Dynamic
    domino(&mut c, "d1", Network::Input(0), true, &[clk, a, y]);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("y", y);
    assert!(fired(&c).contains(&"SL002"));

    // Dynamic net without a domino driver.
    let mut c = Circuit::new("sl002_net");
    let a = c.add_net("a").unwrap();
    let y = c.add_net_kind("y", NetKind::Dynamic).unwrap();
    inv(&mut c, "u1", a, y);
    c.expose_input("a", a);
    c.expose_output("y", y);
    assert!(fired(&c).contains(&"SL002"));
    assert!(!fired(&stage()).contains(&"SL002"));
}

/// Legal D1 → inverter → D2 two-stage pipeline (the comparator shape).
fn two_stage() -> Circuit {
    let mut c = Circuit::new("two_stage");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    let q = c.add_net("q").unwrap();
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    let out = c.add_net("out").unwrap();
    domino(&mut c, "d1", Network::Input(0), true, &[clk, a, dyn1]);
    inv(&mut c, "h1", dyn1, q);
    domino(&mut c, "d2", Network::Input(0), false, &[clk, q, dyn2]);
    inv(&mut c, "h2", dyn2, out);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("out", out);
    c
}

#[test]
fn sl003_unfooted_data_from_static_source() {
    let mut c = Circuit::new("sl003_pos");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    // D2 data wired straight to a primary input: high during precharge.
    domino(&mut c, "d2", Network::Input(0), false, &[clk, a, dyn2]);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("y", dyn2);
    assert!(fired(&c).contains(&"SL003"));
    // The disciplined D1 → inv → D2 shape does not fire.
    assert!(!fired(&two_stage()).contains(&"SL003"));
}

/// `depth` series pass gates ending at an output buffer.
fn pass_chain(depth: usize) -> Circuit {
    let mut c = Circuit::new("chain");
    let s = c.add_net("s").unwrap();
    c.expose_input("s", s);
    let mut prev = c.add_net("n0").unwrap();
    c.expose_input("n0", prev);
    for i in 0..depth {
        let next = c.add_net(format!("n{}", i + 1)).unwrap();
        pass(&mut c, &format!("pg{i}"), prev, s, next);
        prev = next;
    }
    let y = c.add_net("y").unwrap();
    inv(&mut c, "buf", prev, y);
    c.expose_output("y", y);
    c
}

#[test]
fn sl004_pass_chain_depth() {
    assert!(fired(&pass_chain(4)).contains(&"SL004"));
    assert!(!fired(&pass_chain(3)).contains(&"SL004"));
    // The limit is configurable.
    let mut cfg = LintConfig::default();
    cfg.pass_chain_limit = 1;
    let report = lint_circuit_with(&pass_chain(2), &cfg);
    assert!(report.findings.iter().any(|f| f.rule == "SL004"));
}

#[test]
fn sl101_inverting_static_logic_between_stages() {
    // Two inverters between D1 and D2: the D2 data input becomes
    // monotone-FALLING during evaluate — the classic illegal structure.
    let mut c = Circuit::new("sl101_pos");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    let q = c.add_net("q").unwrap();
    let qb = c.add_net("qb").unwrap();
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    let out = c.add_net("out").unwrap();
    domino(&mut c, "d1", Network::Input(0), true, &[clk, a, dyn1]);
    inv(&mut c, "h1", dyn1, q);
    inv(&mut c, "bad", q, qb);
    domino(&mut c, "d2", Network::Input(0), true, &[clk, qb, dyn2]);
    inv(&mut c, "h2", dyn2, out);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("out", out);
    let report = lint_circuit(&c);
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL101")
        .expect("falling-monotone domino data must fire SL101");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.nets, vec!["qb".to_owned()]);
    // One inverter (non-inverting in the monotone sense: dynamic falls,
    // output rises) is the legal shape.
    assert!(!fired(&two_stage()).contains(&"SL101"));
}

#[test]
fn sl102_restoring_and_pass_drivers_mix() {
    let mut c = Circuit::new("sl102_pos");
    let a = c.add_net("a").unwrap();
    let s = c.add_net("s").unwrap();
    let d = c.add_net("d").unwrap();
    let shared = c.add_net("shared").unwrap();
    inv(&mut c, "u1", a, shared); // restoring driver
    pass(&mut c, "pg0", d, s, shared); // shared driver on the same net
    for (name, net) in [("a", a), ("s", s), ("d", d)] {
        c.expose_input(name, net);
    }
    c.expose_output("y", shared);
    assert!(fired(&c).contains(&"SL102"));
    // All-pass sharing is SL104 territory, not a sneak path.
    let mut c2 = Circuit::new("sl102_neg");
    let s0 = c2.add_net("s0").unwrap();
    let s1 = c2.add_net("s1").unwrap();
    let d0 = c2.add_net("d0").unwrap();
    let d1 = c2.add_net("d1").unwrap();
    let sh = c2.add_net("sh").unwrap();
    pass(&mut c2, "pg0", d0, s0, sh);
    pass(&mut c2, "pg1", d1, s1, sh);
    for (name, net) in [("s0", s0), ("s1", s1), ("d0", d0), ("d1", d1)] {
        c2.expose_input(name, net);
    }
    c2.expose_output("y", sh);
    assert!(!fired(&c2).contains(&"SL102"));
}

/// Two pass gates onto one net; select nets and data nets chosen per test.
fn pass_pair(same_select: bool, same_data: bool) -> Circuit {
    let mut c = Circuit::new("pair");
    let s0 = c.add_net("s0").unwrap();
    let s1 = if same_select { s0 } else { c.add_net("s1").unwrap() };
    let d0 = c.add_net("d0").unwrap();
    let d1 = if same_data { d0 } else { c.add_net("d1").unwrap() };
    let sh = c.add_net("sh").unwrap();
    pass(&mut c, "pg0", d0, s0, sh);
    pass(&mut c, "pg1", d1, s1, sh);
    c.expose_input("s0", s0);
    if !same_select {
        c.expose_input("s1", s1);
    }
    c.expose_input("d0", d0);
    if !same_data {
        c.expose_input("d1", d1);
    }
    let y = c.add_net("y").unwrap();
    inv(&mut c, "buf", sh, y);
    c.expose_output("y", y);
    c
}

#[test]
fn sl103_same_select_different_data_is_contention() {
    assert!(fired(&pass_pair(true, false)).contains(&"SL103"));
    // Same select, same data: redundant but not contending.
    assert!(!fired(&pass_pair(true, true)).contains(&"SL103"));
    // Different selects: a mutual-exclusion question (SL104), not SL103.
    assert!(!fired(&pass_pair(false, false)).contains(&"SL103"));
}

#[test]
fn sl104_unproven_vs_complementary_enables() {
    let report = lint_circuit(&pass_pair(false, false));
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL104")
        .expect("independent selects are not provably exclusive");
    assert_eq!(f.severity, Severity::Warning);

    // An encoded 2:1 mux — s and its inverter image — is proven exclusive.
    let mut c = Circuit::new("encoded");
    let s = c.add_net("s").unwrap();
    let sb = c.add_net("sb").unwrap();
    inv(&mut c, "seln", s, sb);
    let d0 = c.add_net("d0").unwrap();
    let d1 = c.add_net("d1").unwrap();
    let sh = c.add_net("sh").unwrap();
    pass(&mut c, "pg0", d0, s, sh);
    pass(&mut c, "pg1", d1, sb, sh);
    for (name, net) in [("s", s), ("d0", d0), ("d1", d1)] {
        c.expose_input(name, net);
    }
    let y = c.add_net("y").unwrap();
    inv(&mut c, "buf", sh, y);
    c.expose_output("y", y);
    assert!(!fired(&c).contains(&"SL104"));
}

#[test]
fn sl105_pass_level_into_non_restoring_load() {
    // Pass-driven net feeding another pass gate's *data* pin.
    let c = pass_chain(2);
    let report = lint_circuit(&c);
    assert!(report.findings.iter().any(|f| f.rule == "SL105"));
    // Pass-driven net feeding a restoring inverter: fine.
    let c = pass_chain(1);
    assert!(!fired(&c).contains(&"SL105"));
}

#[test]
fn sl106_deep_domino_stack() {
    let mk = |depth: usize| {
        let mut c = Circuit::new("stack");
        let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
        let ins: Vec<NetId> = (0..depth)
            .map(|i| {
                let n = c.add_net(format!("a{i}")).unwrap();
                c.expose_input(format!("a{i}"), n);
                n
            })
            .collect();
        let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
        let q = c.add_net("q").unwrap();
        let series = Network::series_of(0..depth);
        let mut conns = vec![clk];
        conns.extend(ins);
        conns.push(dyn1);
        domino(&mut c, "d1", series, true, &conns);
        inv(&mut c, "h1", dyn1, q);
        c.expose_input("clk", clk);
        c.expose_output("q", q);
        c
    };
    assert!(fired(&mk(3)).contains(&"SL106"));
    assert!(!fired(&mk(2)).contains(&"SL106"));
}

#[test]
fn sl107_floating_net() {
    let mut c = Circuit::new("float");
    let f = c.add_net("f").unwrap(); // no driver, no port
    let y = c.add_net("y").unwrap();
    inv(&mut c, "u1", f, y);
    c.expose_output("y", y);
    assert!(fired(&c).contains(&"SL107"));
    // Exposing it as an input makes it legal.
    let mut c2 = Circuit::new("float_neg");
    let f = c2.add_net("f").unwrap();
    let y = c2.add_net("y").unwrap();
    inv(&mut c2, "u1", f, y);
    c2.expose_input("f", f);
    c2.expose_output("y", y);
    assert!(!fired(&c2).contains(&"SL107"));
}

#[test]
fn sl108_undriven_output_port() {
    let mut c = Circuit::new("undriven");
    let a = c.add_net("a").unwrap();
    let y = c.add_net("y").unwrap();
    let dangling = c.add_net("dangling").unwrap();
    inv(&mut c, "u1", a, y);
    c.expose_input("a", a);
    c.expose_output("y", y);
    c.expose_output("z", dangling);
    let report = lint_circuit(&c);
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL108")
        .expect("output port on an undriven net must fire");
    assert!(f.message.contains("'z'"));
    assert!(!fired(&stage()).contains(&"SL108"));
}

#[test]
fn sl109_two_always_on_drivers() {
    let mut c = Circuit::new("conflict");
    let a = c.add_net("a").unwrap();
    let b = c.add_net("b").unwrap();
    let y = c.add_net("y").unwrap();
    inv(&mut c, "u1", a, y);
    inv(&mut c, "u2", b, y);
    c.expose_input("a", a);
    c.expose_input("b", b);
    c.expose_output("y", y);
    let report = lint_circuit(&c);
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL109")
        .expect("two restoring drivers must conflict");
    // Anchored on the lexicographically first driver path.
    assert_eq!(f.path, "u1");
    assert!(!fired(&stage()).contains(&"SL109"));
}

/// The canonical legal two-stage domino chain:
/// clk ─ D1(a) ─ dyn1 ─ hs-inv ─ q1 ─ D1 ─ dyn2 ─ hs-inv ─ q2.
fn domino_chain() -> Circuit {
    let mut c = Circuit::new("sl111_chain");
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    let a = c.add_net("a").unwrap();
    let dyn1 = c.add_net_kind("dyn1", NetKind::Dynamic).unwrap();
    let q1 = c.add_net("q1").unwrap();
    let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
    let q2 = c.add_net("q2").unwrap();
    domino(&mut c, "d1", Network::Input(0), true, &[clk, a, dyn1]);
    inv(&mut c, "h1", dyn1, q1);
    domino(&mut c, "d2", Network::Input(0), true, &[clk, q1, dyn2]);
    inv(&mut c, "h2", dyn2, q2);
    c.expose_input("clk", clk);
    c.expose_input("a", a);
    c.expose_output("q", q2);
    c
}

#[test]
fn sl111_sanctioned_handoff_is_clean_at_default_knobs() {
    // Three typical stages from dyn1's evaluation to d2's data pin
    // (dyn1 → h1 → the stage itself): 3 x 0.5 = 1.5, outside the
    // 1.0-unit window. Port-fed d1 has no dynamic-origin path at all.
    assert_eq!(fired(&domino_chain()), Vec::<&str>::new());
}

#[test]
fn sl111_widened_window_names_the_receiving_stage() {
    let cfg = LintConfig { precharge_window: 1.75, ..LintConfig::default() };
    let report = lint_circuit_with(&domino_chain(), &cfg);
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "SL111")
        .expect("1.5 fast-corner stages inside a 1.75 window must fire SL111");
    assert_eq!(f.severity, Severity::Warning);
    assert_eq!(f.path, "d2");
    assert_eq!(f.nets, vec!["q1".to_owned()]);
    // The first stage is timed from primary inputs only: no race to flag.
    assert!(!report.findings.iter().any(|f| f.rule == "SL111" && f.path == "d1"));
}

#[test]
fn sl111_aggressive_derate_fires_without_touching_the_window() {
    // 3 stages x 0.3 = 0.9 < 1.0.
    let cfg = LintConfig { fast_derate: 0.3, ..LintConfig::default() };
    assert!(lint_circuit_with(&domino_chain(), &cfg)
        .findings
        .iter()
        .any(|f| f.rule == "SL111"));
}

#[test]
fn sl110_unused_label() {
    let mut c = stage();
    c.label("N99"); // never bound
    assert!(fired(&c).contains(&"SL110"));
    assert!(!fired(&stage()).contains(&"SL110"));
}

#[test]
fn disabled_rules_are_skipped() {
    let mut cfg = LintConfig::default();
    cfg.disabled.insert("SL109".to_owned());
    let mut c = Circuit::new("conflict");
    let a = c.add_net("a").unwrap();
    let b = c.add_net("b").unwrap();
    let y = c.add_net("y").unwrap();
    inv(&mut c, "u1", a, y);
    inv(&mut c, "u2", b, y);
    c.expose_input("a", a);
    c.expose_input("b", b);
    c.expose_output("y", y);
    let report = lint_circuit_with(&c, &cfg);
    assert!(report.findings.iter().all(|f| f.rule != "SL109"));
}

#[test]
fn severity_override_promotes_and_demotes() {
    let mut cfg = LintConfig::default();
    cfg.severities.insert("SL104".to_owned(), Severity::Error);
    let report = lint_circuit_with(&pass_pair(false, false), &cfg);
    let f = report.findings.iter().find(|f| f.rule == "SL104").unwrap();
    assert_eq!(f.severity, Severity::Error);
    assert!(report.has_errors());
}

#[test]
fn waivers_suppress_by_rule_and_path() {
    let mut c = Circuit::new("conflict");
    let a = c.add_net("a").unwrap();
    let b = c.add_net("b").unwrap();
    let y = c.add_net("y").unwrap();
    inv(&mut c, "u1", a, y);
    inv(&mut c, "u2", b, y);
    c.expose_input("a", a);
    c.expose_input("b", b);
    c.expose_output("y", y);
    assert!(lint_circuit(&c).has_errors());
    let mut cfg = LintConfig::default();
    cfg.waivers.push(Waiver {
        rule: "SL109".to_owned(),
        path_prefix: "u".to_owned(),
    });
    assert!(!lint_circuit_with(&c, &cfg).has_errors());
    // A waiver for a different path prefix does not cover the finding.
    let mut cfg = LintConfig::default();
    cfg.waivers.push(Waiver {
        rule: "SL109".to_owned(),
        path_prefix: "x".to_owned(),
    });
    assert!(lint_circuit_with(&c, &cfg).has_errors());
}

#[test]
fn registry_covers_every_documented_rule() {
    let ids: Vec<&str> = rules().iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        [
            "SL001", "SL002", "SL003", "SL004", "SL101", "SL102", "SL103", "SL104", "SL105",
            "SL106", "SL107", "SL108", "SL109", "SL110", "SL111",
        ]
    );
    for rule in rules() {
        assert!(!rule.name.is_empty());
        assert!(!rule.description.is_empty());
    }
}
