//! Dynamic carry-lookahead adder — the "64 bit dual-rail carry-look-ahead
//! adder" of the paper's §6.2 (Fig. 6 area-delay experiment).
//!
//! Structure (domino-static mix, standard for high-performance CLAs):
//!
//! * **D1** (clock-footed): per-bit generate `gᵢ = aᵢ·bᵢ` and transmit
//!   `tᵢ = aᵢ + bᵢ` domino gates — the monotone high-true signal pair that
//!   plays the role of the dual rails.
//! * **Kogge-Stone prefix tree** of **D2** (unfooted) domino nodes over the
//!   `(g, t)` pairs, `cin` injected as a virtual low-order element through
//!   its own D1 buffer: each node computes `G' = G_hi + T_hi·G_lo`,
//!   `T' = T_hi·T_lo`.
//! * **Static sum stage**: `sᵢ = pᵢ XOR cᵢ` with `pᵢ = aᵢ XOR bᵢ` (static
//!   XORs consuming the domino carries at the phase boundary).
//!
//! Labels are shared per tree level, which is what lets the sizer collapse
//! the >32,000 timing paths of §5.2 to ~120 optimization paths.

use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetId, NetKind, Network, Skew};

use crate::helpers::{input_bus, inverter, output_bus, xor2};

/// Adds a domino gate + its high-skew output inverter; returns the
/// inverter's (monotone, high-true) output net.
#[allow(clippy::too_many_arguments)]
fn domino_stage(
    c: &mut Circuit,
    path: &str,
    clk: NetId,
    inputs: &[NetId],
    network: Network,
    footed: bool,
    labels: (&str, &str, Option<&str>),
    inv_labels: (&str, &str),
) -> NetId {
    let (lp, ln, lf) = labels;
    let p = c.label(lp);
    let n = c.label(ln);
    let dyn_n = c
        .add_net_kind(format!("{path}_dyn"), NetKind::Dynamic)
        .unwrap();
    let mut conns = vec![clk];
    conns.extend(inputs);
    conns.push(dyn_n);
    let mut bindings = vec![(DeviceRole::Precharge, p), (DeviceRole::DataN, n)];
    if footed {
        let f = c.label(lf.expect("footed stage needs a foot label"));
        bindings.push((DeviceRole::Evaluate, f));
    }
    c.add(
        path,
        ComponentKind::Domino {
            network,
            clocked_eval: footed,
        },
        &conns,
        &bindings,
    )
    .expect("generator netlist must be valid");
    let (ip, inn) = inv_labels;
    let ip = c.label(ip);
    let inn = c.label(inn);
    let out = c.add_net(format!("{path}_q")).unwrap();
    inverter(c, format!("{path}_inv"), dyn_n, out, ip, inn, Skew::High);
    out
}

/// Generates a `width`-bit dynamic CLA adder with carry-in.
///
/// Ports: `clk`, `a0..`, `b0..`, `cin`; outputs `s0..` and `cout`.
/// Evaluate-phase semantics: `{cout, s} = a + b + cin`.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
pub fn cla_adder(width: usize) -> Circuit {
    assert!(
        (1..=64).contains(&width),
        "adder supports 1..=64 bits, got {width}"
    );
    let mut c = Circuit::new(format!("cla{width}"));
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    c.expose_input("clk", clk);
    let a = input_bus(&mut c, "a", width);
    let b = input_bus(&mut c, "b", width);
    let cin = input_bus(&mut c, "cin", 1)[0];
    let s = output_bus(&mut c, "s", width);

    // D1: per-bit generate/transmit, plus the cin buffer as prefix
    // element 0. Prefix element i+1 covers bit i.
    let n = width + 1;
    let mut g: Vec<NetId> = Vec::with_capacity(n);
    let mut t: Vec<NetId> = Vec::with_capacity(n);
    let cin_buf = domino_stage(
        &mut c,
        "d1_cin",
        clk,
        &[cin],
        Network::Input(0),
        true,
        ("CBP", "CBN", Some("CBF")),
        ("CBIP", "CBIN"),
    );
    g.push(cin_buf);
    // t for the virtual element is never used (nothing propagates past
    // the carry-in); push a placeholder that no node reads.
    t.push(cin_buf);
    for i in 0..width {
        g.push(domino_stage(
            &mut c,
            &format!("d1_g{i}"),
            clk,
            &[a[i], b[i]],
            Network::series_of([0, 1]),
            true,
            ("G1P", "G1N", Some("G1F")),
            ("G1IP", "G1IN"),
        ));
        t.push(domino_stage(
            &mut c,
            &format!("d1_t{i}"),
            clk,
            &[a[i], b[i]],
            Network::parallel_of([0, 1]),
            true,
            ("T1P", "T1N", Some("T1F")),
            ("T1IP", "T1IN"),
        ));
    }

    // Kogge-Stone prefix: after ceil(log2(n)) levels, element i holds
    // (G, T) of the span 0..=i.
    let mut level = 0usize;
    let mut offset = 1usize;
    while offset < n {
        let mut next_g = g.clone();
        let mut next_t = t.clone();
        for i in offset..n {
            let hi_g = g[i];
            let hi_t = t[i];
            let lo_g = g[i - offset];
            let lo_t = t[i - offset];
            // G' = hi_g + hi_t·lo_g
            next_g[i] = domino_stage(
                &mut c,
                &format!("ks{level}_g{i}"),
                clk,
                &[hi_g, hi_t, lo_g],
                Network::Parallel(vec![
                    Network::Input(0),
                    Network::series_of([1, 2]),
                ]),
                false,
                (&format!("KG{level}P"), &format!("KG{level}N"), None),
                (&format!("KG{level}IP"), &format!("KG{level}IN")),
            );
            // T' = hi_t·lo_t — only needed while a longer span can still
            // combine below this element (i >= 2*offset keeps it useful);
            // computing it uniformly keeps the slice regular, as a layout
            // designer would.
            if i >= 2 * offset || i - offset > 0 {
                next_t[i] = domino_stage(
                    &mut c,
                    &format!("ks{level}_t{i}"),
                    clk,
                    &[hi_t, lo_t],
                    Network::series_of([0, 1]),
                    false,
                    (&format!("KT{level}P"), &format!("KT{level}N"), None),
                    (&format!("KT{level}IP"), &format!("KT{level}IN")),
                );
            }
        }
        g = next_g;
        t = next_t;
        offset *= 2;
        level += 1;
    }

    // Static sum stage: s_i = p_i XOR c_i, where c_i = prefix G at element
    // i (carry INTO bit i) and p_i = a_i XOR b_i.
    let sp = c.label("SP");
    let sn = c.label("SN");
    let up = c.label("UP");
    let un = c.label("UN");
    for i in 0..width {
        let p_i = c.add_net(format!("p{i}")).unwrap();
        xor2(&mut c, format!("prop{i}"), a[i], b[i], p_i, sp, sn);
        xor2(&mut c, format!("sum{i}"), p_i, g[i], s[i], up, un);
    }
    // cout = prefix G over everything.
    let op = c.label("OP");
    let on = c.label("ON");
    let cb = c.add_net("coutb").unwrap();
    inverter(&mut c, "cout_a", g[width], cb, op, on, Skew::Balanced);
    let cout = c.add_net("cout").unwrap();
    inverter(&mut c, "cout_b", cb, cout, op, on, Skew::Balanced);
    c.expose_output("cout", cout);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_lints_clean_across_widths() {
        for w in [1, 2, 4, 8, 16] {
            let c = cla_adder(w);
            let issues: Vec<_> = c
                .lint()
                .into_iter()
                // The virtual t[0] placeholder leaves cin's t unused; all
                // other lint classes must be clean.
                .collect();
            assert!(issues.is_empty(), "width {w}: {issues:?}");
        }
    }

    #[test]
    fn component_count_is_n_log_n() {
        let c16 = cla_adder(16).component_count();
        let c64 = cla_adder(64).component_count();
        // 64-bit should be > 4x but < 8x the 16-bit count (n log n).
        assert!(c64 > 4 * c16 / 2, "c64={c64} c16={c16}");
        assert!(c64 < 8 * c16, "c64={c64} c16={c16}");
    }

    #[test]
    fn sixty_four_bit_is_macro_scale() {
        let c = cla_adder(64);
        assert!(
            c.device_count() > 3000,
            "64b CLA should be a large macro: {}",
            c.device_count()
        );
        assert!(c.labels().len() < 80, "labels stay compact: {}", c.labels().len());
    }
}
