//! Two-stage dynamic (D1-D2) equality comparator — the macro of the
//! paper's Fig. 7 topology-exploration example.
//!
//! Stage D1 (clock-footed): "XorsumK" domino gates, each detecting a
//! mismatch across K bit pairs via dual-rail branches
//! `aⱼ·b̄ⱼ + āⱼ·bⱼ`. Stage D2 (unfooted): domino NOR gates over the
//! group-mismatch flags. Precharged-high D2 nodes are combined by a static
//! NAND + inverter into the final `eq` flag.

use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetId, NetKind, Network, Skew};

use crate::helpers::{input_bus, inverter, nand};

/// One comparator topology: how many bit pairs each D1 Xorsum gate covers
/// and the fan-in of the D2 NOR stage. The Fig. 7 candidates:
///
/// | variant | D1 | D2 |
/// |---|---|---|
/// | `merced()` (original) | Xorsum2 | Nor4 |
/// | `xorsum1_nor8()` | Xorsum1 | Nor8 |
/// | `xorsum4_nor4()` | Xorsum4 | Nor4 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComparatorVariant {
    /// Bit pairs per D1 Xorsum gate.
    pub xorsum: usize,
    /// Mismatch flags per D2 NOR gate.
    pub d2_fanin: usize,
}

impl ComparatorVariant {
    /// The original hand-designed topology of the paper's example
    /// (D1 Xorsum2 → D2 Nor4).
    pub fn merced() -> Self {
        ComparatorVariant {
            xorsum: 2,
            d2_fanin: 4,
        }
    }

    /// Exploration alternative: one bit pair per D1 gate, wide D2 NOR8.
    pub fn xorsum1_nor8() -> Self {
        ComparatorVariant {
            xorsum: 1,
            d2_fanin: 8,
        }
    }

    /// Exploration alternative: four bit pairs per D1 gate, D2 Nor4.
    pub fn xorsum4_nor4() -> Self {
        ComparatorVariant {
            xorsum: 4,
            d2_fanin: 4,
        }
    }

    /// The Fig. 7 exploration set, original first.
    pub fn exploration_set() -> [ComparatorVariant; 3] {
        [
            Self::merced(),
            Self::xorsum1_nor8(),
            Self::xorsum4_nor4(),
        ]
    }

    /// Report name, e.g. `"xorsum2-nor4"`.
    pub fn name(&self) -> String {
        format!("xorsum{}-nor{}", self.xorsum, self.d2_fanin)
    }
}

/// Generates a `width`-bit equality comparator in the given variant.
///
/// Ports: `clk`, `a0..`, `b0..`; output `eq` (high after evaluate iff
/// `a == b`).
///
/// # Panics
///
/// Panics if `width` is not divisible by `variant.xorsum`.
pub fn comparator(width: usize, variant: ComparatorVariant) -> Circuit {
    assert!(width > 0, "comparator width must be positive");
    assert_eq!(
        width % variant.xorsum,
        0,
        "width {width} not divisible by xorsum {}",
        variant.xorsum
    );
    let mut c = Circuit::new(format!("cmp{width}_{}", variant.name()));
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    c.expose_input("clk", clk);
    let a = input_bus(&mut c, "a", width);
    let b = input_bus(&mut c, "b", width);
    let ap = c.label("AP");
    let an = c.label("AN");

    // Complement rails (static; safe for clock-footed D1 inputs).
    let abar: Vec<NetId> = (0..width)
        .map(|i| {
            let net = c.add_net(format!("ab{i}")).unwrap();
            inverter(&mut c, format!("acomp{i}"), a[i], net, ap, an, Skew::Balanced);
            net
        })
        .collect();
    let bbar: Vec<NetId> = (0..width)
        .map(|i| {
            let net = c.add_net(format!("bb{i}")).unwrap();
            inverter(&mut c, format!("bcomp{i}"), b[i], net, ap, an, Skew::Balanced);
            net
        })
        .collect();

    // D1: Xorsum gates.
    let p1 = c.label("P1");
    let n1 = c.label("N1");
    let n2 = c.label("N2");
    let h1p = c.label("H1P");
    let h1n = c.label("H1N");
    let k = variant.xorsum;
    let groups = width / k;
    let mut mismatch = Vec::with_capacity(groups);
    for g in 0..groups {
        let dyn_n = c
            .add_net_kind(format!("dyn1_{g}"), NetKind::Dynamic)
            .unwrap();
        // Pins per bit t: a, bbar, abar, b at indices 4t..4t+3.
        let network = Network::Parallel(
            (0..k)
                .flat_map(|t| {
                    [
                        Network::series_of([4 * t, 4 * t + 1]),
                        Network::series_of([4 * t + 2, 4 * t + 3]),
                    ]
                })
                .collect(),
        );
        let mut conns = vec![clk];
        for t in 0..k {
            let bit = g * k + t;
            conns.extend([a[bit], bbar[bit], abar[bit], b[bit]]);
        }
        conns.push(dyn_n);
        c.add(
            format!("xorsum{g}"),
            ComponentKind::Domino {
                network,
                clocked_eval: true,
            },
            &conns,
            &[
                (DeviceRole::Precharge, p1),
                (DeviceRole::DataN, n1),
                (DeviceRole::Evaluate, n2),
            ],
        )
        .expect("generator netlist must be valid");
        let m = c.add_net(format!("m{g}")).unwrap();
        inverter(&mut c, format!("h1_{g}"), dyn_n, m, h1p, h1n, Skew::High);
        mismatch.push(m);
    }

    // D2: unfooted domino NORs over the mismatch flags; the dynamic node
    // stays precharged-high exactly when its subset matched.
    let p3 = c.label("P3");
    let n3 = c.label("N3");
    let mut d2_nodes = Vec::new();
    for (j, chunk) in mismatch.chunks(variant.d2_fanin).enumerate() {
        let dyn2 = c
            .add_net_kind(format!("dyn2_{j}"), NetKind::Dynamic)
            .unwrap();
        let mut conns = vec![clk];
        conns.extend(chunk);
        conns.push(dyn2);
        c.add(
            format!("d2_{j}"),
            ComponentKind::Domino {
                network: Network::parallel_of(0..chunk.len()),
                clocked_eval: false,
            },
            &conns,
            &[(DeviceRole::Precharge, p3), (DeviceRole::DataN, n3)],
        )
        .expect("generator netlist must be valid");
        d2_nodes.push(dyn2);
    }

    // Final static combine: eq = AND of all precharged-high D2 nodes.
    let p5 = c.label("P5");
    let n5 = c.label("N5");
    let op = c.label("OP");
    let on = c.label("ON");
    let eq = c.add_net("eq").unwrap();
    if d2_nodes.len() == 1 {
        let nb = c.add_net("eqb").unwrap();
        inverter(&mut c, "combine", d2_nodes[0], nb, p5, n5, Skew::Balanced);
        inverter(&mut c, "outdrv", nb, eq, op, on, Skew::Balanced);
    } else {
        let nb = c.add_net("eqb").unwrap();
        nand(&mut c, "combine", &d2_nodes, nb, p5, n5);
        inverter(&mut c, "outdrv", nb, eq, op, on, Skew::Balanced);
    }
    c.expose_output("eq", eq);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_lint_clean() {
        for v in ComparatorVariant::exploration_set() {
            let c = comparator(32, v);
            assert!(c.lint().is_empty(), "{}: {:?}", v.name(), c.lint());
        }
    }

    #[test]
    fn gate_counts_follow_variant() {
        let count_domino = |c: &Circuit| {
            c.components()
                .filter(|(_, comp)| matches!(comp.kind, ComponentKind::Domino { .. }))
                .count()
        };
        // Xorsum2/Nor4: 16 D1 + 4 D2 = 20 domino gates.
        let c = comparator(32, ComparatorVariant::merced());
        assert_eq!(count_domino(&c), 20);
        // Xorsum1/Nor8: 32 D1 + 4 D2 = 36.
        let c = comparator(32, ComparatorVariant::xorsum1_nor8());
        assert_eq!(count_domino(&c), 36);
        // Xorsum4/Nor4: 8 D1 + 2 D2 = 10.
        let c = comparator(32, ComparatorVariant::xorsum4_nor4());
        assert_eq!(count_domino(&c), 10);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_width_rejected() {
        let _ = comparator(10, ComparatorVariant::xorsum4_nor4());
    }
}
