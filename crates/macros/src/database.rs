//! The SMART design database: a registry of macro specifications, their
//! generators, and the per-family topology alternatives that the
//! exploration flow (paper Fig. 1) sizes and compares.
//!
//! The database is *expandable* (paper §3(i)): designer-provided circuits
//! can be registered next to the built-in generators and participate in
//! exploration on equal terms.

use std::collections::BTreeMap;
use std::fmt;

use smart_netlist::Circuit;

use crate::comparator::{comparator, ComparatorVariant};
use crate::decoder::decoder;
use crate::encoder::{onehot_encoder, priority_encoder};
use crate::incrementor::{decrementor, incrementor, incrementor_cla};
use crate::mux::{generate as mux_generate, MuxTopology};
use crate::regfile::regfile_read;
use crate::shifter::{barrel_shifter, ShiftKind};
use crate::zero_detect::{zero_detect, ZeroDetectStyle};
use crate::adder::cla_adder;

/// A fully parameterized macro request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MacroSpec {
    /// N-input mux in one of the Fig. 2 topologies.
    Mux {
        /// The Fig. 2 topology.
        topology: MuxTopology,
        /// Number of data inputs.
        width: usize,
    },
    /// Ripple incrementor (`y = a + 1`).
    Incrementor {
        /// Bit width.
        width: usize,
    },
    /// Carry-lookahead incrementor (`y = a + 1`, log-depth carry tree).
    IncrementorCla {
        /// Bit width.
        width: usize,
    },
    /// Ripple decrementor (`y = a - 1`).
    Decrementor {
        /// Bit width.
        width: usize,
    },
    /// Zero-detect (`z = (a == 0)`).
    ZeroDetect {
        /// Bit width.
        width: usize,
        /// Static tree or domino.
        style: ZeroDetectStyle,
    },
    /// `n`-to-`2^n` decoder.
    Decoder {
        /// Address bits.
        in_bits: usize,
    },
    /// Priority encoder (`2^out_bits` → `out_bits` + valid).
    PriorityEncoder {
        /// Output index bits.
        out_bits: usize,
    },
    /// One-hot encoder.
    OnehotEncoder {
        /// Output index bits.
        out_bits: usize,
    },
    /// Two-stage D1-D2 equality comparator.
    Comparator {
        /// Bit width.
        width: usize,
        /// Fig. 7 topology variant.
        variant: ComparatorVariant,
    },
    /// Dynamic Kogge-Stone CLA adder.
    ClaAdder {
        /// Bit width.
        width: usize,
    },
    /// Register-file read port.
    RegFileRead {
        /// Number of words (power of two).
        words: usize,
        /// Bits per word.
        bits: usize,
    },
    /// Pass-gate barrel shifter.
    BarrelShifter {
        /// Bit width (power of two).
        width: usize,
        /// Shift behaviour.
        kind: ShiftKind,
    },
}

impl MacroSpec {
    /// Elaborates the spec into a labeled unsized circuit.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are outside the generator's supported
    /// range (each generator documents its own limits).
    pub fn generate(&self) -> Circuit {
        let mut c = self.generate_unrouted();
        // Standard route-parasitic model of the reference process: every
        // connected net carries layout capacitance in addition to device
        // loading. This anchors absolute scale during sizing.
        c.add_route_parasitics(0.5, 0.8);
        c
    }

    /// Elaborates without routing parasitics (unit tests on pure device
    /// structure use this).
    pub fn generate_unrouted(&self) -> Circuit {
        match self {
            MacroSpec::Mux { topology, width } => mux_generate(*topology, *width),
            MacroSpec::Incrementor { width } => incrementor(*width),
            MacroSpec::IncrementorCla { width } => incrementor_cla(*width),
            MacroSpec::Decrementor { width } => decrementor(*width),
            MacroSpec::ZeroDetect { width, style } => zero_detect(*width, *style),
            MacroSpec::Decoder { in_bits } => decoder(*in_bits),
            MacroSpec::PriorityEncoder { out_bits } => priority_encoder(*out_bits),
            MacroSpec::OnehotEncoder { out_bits } => onehot_encoder(*out_bits),
            MacroSpec::Comparator { width, variant } => comparator(*width, *variant),
            MacroSpec::ClaAdder { width } => cla_adder(*width),
            MacroSpec::RegFileRead { words, bits } => regfile_read(*words, *bits),
            MacroSpec::BarrelShifter { width, kind } => barrel_shifter(*width, *kind),
        }
    }

    /// Parses the compact macro-name grammar shared by the CLI and the
    /// serve wire protocol:
    ///
    /// ```text
    /// mux<N>[:pass|weak|enc|tri|dom|split]   inc<N>   dec<N>
    /// zd<N>[:domino]   decoder<N>   penc<N>   cmp<N>   cla<N>
    /// rf<W>x<B>   shift<N>[:sll|srl|rol]
    /// ```
    ///
    /// `None` for anything outside the grammar **or** outside the
    /// generator's supported parameter range ([`MacroSpec::supported`])
    /// — malformed names are a caller-facing "invalid request", never a
    /// panic.
    pub fn parse(name: &str) -> Option<MacroSpec> {
        Self::parse_unchecked(name).filter(MacroSpec::supported)
    }

    /// Whether [`MacroSpec::generate`] accepts this spec's parameters —
    /// the union of every generator's documented panic conditions, so
    /// callers holding untrusted parameters (the serve wire protocol,
    /// the CLI) can turn an out-of-range request into a typed error
    /// instead of a panic.
    pub fn supported(&self) -> bool {
        match self {
            MacroSpec::Mux { topology, width } => topology.supports_width(*width),
            MacroSpec::Incrementor { width }
            | MacroSpec::IncrementorCla { width }
            | MacroSpec::Decrementor { width } => *width >= 1,
            MacroSpec::ZeroDetect { width, .. } => *width >= 1,
            MacroSpec::Decoder { in_bits } => (1..=8).contains(in_bits),
            MacroSpec::PriorityEncoder { out_bits } | MacroSpec::OnehotEncoder { out_bits } => {
                (1..=6).contains(out_bits)
            }
            MacroSpec::Comparator { width, variant } => {
                *width >= 1 && width.is_multiple_of(variant.xorsum)
            }
            MacroSpec::ClaAdder { width } => (1..=64).contains(width),
            MacroSpec::RegFileRead { words, bits } => {
                words.is_power_of_two() && (2..=64).contains(words) && *bits >= 1
            }
            MacroSpec::BarrelShifter { width, .. } => {
                width.is_power_of_two() && (2..=64).contains(width)
            }
        }
    }

    fn parse_unchecked(name: &str) -> Option<MacroSpec> {
        let (base, variant) = match name.split_once(':') {
            Some((b, v)) => (b, Some(v)),
            None => (name, None),
        };
        let num = |prefix: &str| -> Option<usize> { base.strip_prefix(prefix)?.parse().ok() };
        if let Some(w) = num("mux") {
            let topology = match variant.unwrap_or("pass") {
                "pass" => MuxTopology::StronglyMutexedPass,
                "weak" => MuxTopology::WeaklyMutexedPass,
                "enc" => MuxTopology::EncodedSelectPass,
                "tri" => MuxTopology::Tristate,
                "dom" => MuxTopology::UnsplitDomino,
                "split" => MuxTopology::PartitionedDomino,
                _ => return None,
            };
            return Some(MacroSpec::Mux { topology, width: w });
        }
        if let Some(w) = num("inc") {
            return Some(MacroSpec::Incrementor { width: w });
        }
        // `decoder` before `dec`: both are prefixes of "decoder4".
        if let Some(w) = num("decoder") {
            return Some(MacroSpec::Decoder { in_bits: w });
        }
        if let Some(w) = num("dec") {
            return Some(MacroSpec::Decrementor { width: w });
        }
        if let Some(w) = num("zd") {
            let style = match variant {
                Some("domino") => ZeroDetectStyle::Domino,
                _ => ZeroDetectStyle::Static,
            };
            return Some(MacroSpec::ZeroDetect { width: w, style });
        }
        if let Some(w) = num("penc") {
            return Some(MacroSpec::PriorityEncoder { out_bits: w });
        }
        if let Some(w) = num("cmp") {
            return Some(MacroSpec::Comparator {
                width: w,
                variant: ComparatorVariant::merced(),
            });
        }
        if let Some(w) = num("cla") {
            return Some(MacroSpec::ClaAdder { width: w });
        }
        if let Some(w) = num("shift") {
            let kind = match variant.unwrap_or("rol") {
                "sll" => ShiftKind::LogicalLeft,
                "srl" => ShiftKind::LogicalRight,
                "rol" => ShiftKind::RotateLeft,
                _ => return None,
            };
            return Some(MacroSpec::BarrelShifter { width: w, kind });
        }
        if let Some(rest) = base.strip_prefix("rf") {
            let (w, b) = rest.split_once('x')?;
            return Some(MacroSpec::RegFileRead {
                words: w.parse().ok()?,
                bits: b.parse().ok()?,
            });
        }
        None
    }

    /// The macro family, for database grouping.
    pub fn family(&self) -> MacroFamily {
        match self {
            MacroSpec::Mux { .. } => MacroFamily::Mux,
            MacroSpec::Incrementor { .. }
            | MacroSpec::IncrementorCla { .. }
            | MacroSpec::Decrementor { .. } => MacroFamily::Incrementor,
            MacroSpec::ZeroDetect { .. } => MacroFamily::ZeroDetect,
            MacroSpec::Decoder { .. } => MacroFamily::Decoder,
            MacroSpec::PriorityEncoder { .. } | MacroSpec::OnehotEncoder { .. } => {
                MacroFamily::Encoder
            }
            MacroSpec::Comparator { .. } => MacroFamily::Comparator,
            MacroSpec::ClaAdder { .. } => MacroFamily::Adder,
            MacroSpec::RegFileRead { .. } => MacroFamily::RegFile,
            MacroSpec::BarrelShifter { .. } => MacroFamily::Shifter,
        }
    }

    /// Alternative topologies for the *same function* — the candidate set
    /// the exploration flow sizes and compares (paper Fig. 1 "topology
    /// choices"). Includes `self`.
    pub fn alternatives(&self) -> Vec<MacroSpec> {
        match self {
            MacroSpec::Mux { width, .. } => MuxTopology::all()
                .into_iter()
                .filter(|t| t.supports_width(*width))
                .map(|topology| MacroSpec::Mux {
                    topology,
                    width: *width,
                })
                .collect(),
            MacroSpec::ZeroDetect { width, .. } => [
                ZeroDetectStyle::Static,
                ZeroDetectStyle::Domino,
            ]
            .into_iter()
            .map(|style| MacroSpec::ZeroDetect {
                width: *width,
                style,
            })
            .collect(),
            MacroSpec::Incrementor { width } | MacroSpec::IncrementorCla { width } => vec![
                MacroSpec::Incrementor { width: *width },
                MacroSpec::IncrementorCla { width: *width },
            ],
            MacroSpec::Comparator { width, .. } => ComparatorVariant::exploration_set()
                .into_iter()
                .filter(|v| width % v.xorsum == 0)
                .map(|variant| MacroSpec::Comparator {
                    width: *width,
                    variant,
                })
                .collect(),
            other => vec![other.clone()],
        }
    }
}

/// Representative specs covering every macro family × topology at
/// characteristic widths — the sweep the lint CI gate and the
/// database-wide analysis tests run over. Small enough to elaborate
/// in seconds, broad enough that every generator code path (every
/// mux topology, both zero-detect styles, all shifter kinds, every
/// comparator exploration variant) appears at least once.
pub fn representative_database() -> Vec<MacroSpec> {
    let mut specs = Vec::new();
    for topology in MuxTopology::all() {
        let width = if topology.supports_width(8) { 8 } else { 2 };
        specs.push(MacroSpec::Mux { topology, width });
    }
    specs.push(MacroSpec::Mux {
        topology: MuxTopology::StronglyMutexedPass,
        width: 4,
    });
    specs.push(MacroSpec::Incrementor { width: 8 });
    specs.push(MacroSpec::Incrementor { width: 32 });
    specs.push(MacroSpec::IncrementorCla { width: 8 });
    specs.push(MacroSpec::IncrementorCla { width: 32 });
    specs.push(MacroSpec::Decrementor { width: 8 });
    for style in [ZeroDetectStyle::Static, ZeroDetectStyle::Domino] {
        specs.push(MacroSpec::ZeroDetect { width: 16, style });
        specs.push(MacroSpec::ZeroDetect { width: 64, style });
    }
    specs.push(MacroSpec::Decoder { in_bits: 3 });
    specs.push(MacroSpec::Decoder { in_bits: 5 });
    specs.push(MacroSpec::PriorityEncoder { out_bits: 3 });
    specs.push(MacroSpec::OnehotEncoder { out_bits: 3 });
    for variant in ComparatorVariant::exploration_set() {
        specs.push(MacroSpec::Comparator { width: 32, variant });
    }
    specs.push(MacroSpec::Comparator {
        width: 64,
        variant: ComparatorVariant::merced(),
    });
    specs.push(MacroSpec::ClaAdder { width: 8 });
    specs.push(MacroSpec::ClaAdder { width: 64 });
    specs.push(MacroSpec::RegFileRead { words: 16, bits: 8 });
    for kind in [
        ShiftKind::LogicalLeft,
        ShiftKind::LogicalRight,
        ShiftKind::RotateLeft,
    ] {
        specs.push(MacroSpec::BarrelShifter { width: 8, kind });
    }
    specs.push(MacroSpec::BarrelShifter {
        width: 32,
        kind: ShiftKind::RotateLeft,
    });
    specs
}

impl fmt::Display for MacroSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroSpec::Mux { topology, width } => {
                write!(f, "mux{width} ({})", topology.name())
            }
            MacroSpec::Incrementor { width } => write!(f, "inc{width}"),
            MacroSpec::IncrementorCla { width } => write!(f, "inc{width}-cla"),
            MacroSpec::Decrementor { width } => write!(f, "dec{width}"),
            MacroSpec::ZeroDetect { width, style } => write!(f, "zd{width} ({style:?})"),
            MacroSpec::Decoder { in_bits } => write!(f, "dec{}to{}", in_bits, 1 << in_bits),
            MacroSpec::PriorityEncoder { out_bits } => {
                write!(f, "penc{}to{}", 1usize << out_bits, out_bits)
            }
            MacroSpec::OnehotEncoder { out_bits } => {
                write!(f, "enc{}to{}", 1usize << out_bits, out_bits)
            }
            MacroSpec::Comparator { width, variant } => {
                write!(f, "cmp{width} ({})", variant.name())
            }
            MacroSpec::ClaAdder { width } => write!(f, "cla{width}"),
            MacroSpec::RegFileRead { words, bits } => write!(f, "rf{words}x{bits}"),
            MacroSpec::BarrelShifter { width, kind } => {
                write!(f, "shift{width} ({})", kind.name())
            }
        }
    }
}

/// Macro family, the database's top-level grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MacroFamily {
    /// Multiplexors.
    Mux,
    /// Incrementors / decrementors.
    Incrementor,
    /// Zero detects.
    ZeroDetect,
    /// Decoders.
    Decoder,
    /// Encoders.
    Encoder,
    /// Comparators.
    Comparator,
    /// Adders.
    Adder,
    /// Register files.
    RegFile,
    /// Shifters.
    Shifter,
}

/// The expandable design database: built-in generator entries plus
/// designer-registered custom circuits (paper §3: "Whenever a designer
/// comes up with an implementation not available in the database, it can
/// be incorporated").
#[derive(Debug, Default)]
pub struct Database {
    custom: BTreeMap<String, Circuit>,
}

impl Database {
    /// An empty database (built-in generators are always available).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a designer-provided implementation under `name`.
    ///
    /// Returns the previous circuit under that name, if any.
    pub fn register(&mut self, name: impl Into<String>, circuit: Circuit) -> Option<Circuit> {
        self.custom.insert(name.into(), circuit)
    }

    /// Fetches a custom entry.
    pub fn custom(&self, name: &str) -> Option<&Circuit> {
        self.custom.get(name)
    }

    /// Names of all custom entries.
    pub fn custom_names(&self) -> impl Iterator<Item = &str> {
        self.custom.keys().map(String::as_str)
    }

    /// Elaborates a spec (convenience passthrough kept on the database so
    /// call sites read `db.generate(spec)`).
    pub fn generate(&self, spec: &MacroSpec) -> Circuit {
        spec.generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_generates_and_lints() {
        let specs = [
            MacroSpec::Mux {
                topology: MuxTopology::UnsplitDomino,
                width: 4,
            },
            MacroSpec::Incrementor { width: 8 },
            MacroSpec::Decrementor { width: 8 },
            MacroSpec::ZeroDetect {
                width: 16,
                style: ZeroDetectStyle::Static,
            },
            MacroSpec::Decoder { in_bits: 4 },
            MacroSpec::PriorityEncoder { out_bits: 3 },
            MacroSpec::OnehotEncoder { out_bits: 3 },
            MacroSpec::Comparator {
                width: 32,
                variant: ComparatorVariant::merced(),
            },
            MacroSpec::ClaAdder { width: 8 },
            MacroSpec::RegFileRead { words: 8, bits: 4 },
        ];
        for spec in &specs {
            let c = spec.generate();
            assert!(c.lint().is_empty(), "{spec}: {:?}", c.lint());
            assert!(c.device_count() > 0);
        }
    }

    #[test]
    fn mux_alternatives_exclude_unsupported_widths() {
        let spec = MacroSpec::Mux {
            topology: MuxTopology::StronglyMutexedPass,
            width: 8,
        };
        let alts = spec.alternatives();
        assert!(alts.len() >= 4);
        assert!(!alts.iter().any(|s| matches!(
            s,
            MacroSpec::Mux {
                topology: MuxTopology::EncodedSelectPass,
                ..
            }
        )));
    }

    #[test]
    fn comparator_alternatives_are_the_fig7_set() {
        let spec = MacroSpec::Comparator {
            width: 32,
            variant: ComparatorVariant::merced(),
        };
        assert_eq!(spec.alternatives().len(), 3);
    }

    #[test]
    fn parse_covers_the_grammar() {
        let cases: &[(&str, MacroSpec)] = &[
            (
                "mux8:dom",
                MacroSpec::Mux {
                    topology: MuxTopology::UnsplitDomino,
                    width: 8,
                },
            ),
            (
                "mux4",
                MacroSpec::Mux {
                    topology: MuxTopology::StronglyMutexedPass,
                    width: 4,
                },
            ),
            ("inc8", MacroSpec::Incrementor { width: 8 }),
            ("dec8", MacroSpec::Decrementor { width: 8 }),
            ("decoder4", MacroSpec::Decoder { in_bits: 4 }),
            (
                "zd16:domino",
                MacroSpec::ZeroDetect {
                    width: 16,
                    style: ZeroDetectStyle::Domino,
                },
            ),
            ("penc4", MacroSpec::PriorityEncoder { out_bits: 4 }),
            (
                "cmp32",
                MacroSpec::Comparator {
                    width: 32,
                    variant: ComparatorVariant::merced(),
                },
            ),
            ("cla64", MacroSpec::ClaAdder { width: 64 }),
            (
                "shift32:sll",
                MacroSpec::BarrelShifter {
                    width: 32,
                    kind: ShiftKind::LogicalLeft,
                },
            ),
            ("rf32x64", MacroSpec::RegFileRead { words: 32, bits: 64 }),
        ];
        for (name, want) in cases {
            assert_eq!(MacroSpec::parse(name).as_ref(), Some(want), "{name}");
        }
    }

    /// Every parsed name must be generatable: `parse` rejects parameters
    /// the generators would panic on, so untrusted input (CLI argument,
    /// serve wire request) can never elaborate its way into an assert.
    #[test]
    fn parse_rejects_out_of_range_parameters_not_just_bad_grammar() {
        for name in [
            "mux8:enc",    // encoded-select pass is a 2-input topology
            "mux0",        // no zero-width macros anywhere
            "inc0",
            "zd0",
            "decoder9",    // decoder supports 1..=8 address bits
            "penc16",      // encoders support 1..=6 *output* bits
            "cmp3",        // merced xorsum-2 needs an even width
            "cla65",       // adder tops out at 64 bits
            "shift24",     // barrel shifter needs a power of two
            "rf3x8",       // regfile words must be a power of two
            "rf8x0",
        ] {
            assert_eq!(MacroSpec::parse(name), None, "{name} must be rejected");
        }
        // The rejected names above are out of *range*; the grammar
        // itself still accepts their families.
        for name in ["mux2:enc", "inc1", "decoder8", "penc6", "cmp4", "shift16"] {
            let spec = MacroSpec::parse(name).expect(name);
            assert!(spec.supported(), "{name}");
            assert!(spec.generate().device_count() > 0, "{name}");
        }
    }

    #[test]
    fn custom_registration_roundtrip() {
        let mut db = Database::new();
        let c = Circuit::new("designer_special");
        assert!(db.register("special", c).is_none());
        assert!(db.custom("special").is_some());
        assert_eq!(db.custom_names().collect::<Vec<_>>(), vec!["special"]);
    }
}
