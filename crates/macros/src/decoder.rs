//! Address decoder macros (the circuits of the paper's Fig. 5(c)):
//! `n`-to-`2ⁿ` one-hot decoders.

use smart_netlist::{Circuit, NetId, Skew};

use crate::helpers::{input_bus, inverter, nand, output_bus};

/// Generates an `in_bits`-to-`2^in_bits` decoder. Output `y[k]` is high
/// exactly when the input bus reads `k`.
///
/// Structure: complement rail per address bit (`AP/AN`), one NAND of
/// `in_bits` literals per output (`DP/DN`), output inverters (`OP/ON`) —
/// the classic word-line decoder slice, with all slices sharing labels.
///
/// # Panics
///
/// Panics unless `1 <= in_bits <= 8` (up to 256 outputs; the paper's
/// largest instance is 7→128).
pub fn decoder(in_bits: usize) -> Circuit {
    assert!(
        (1..=8).contains(&in_bits),
        "decoder supports 1..=8 address bits, got {in_bits}"
    );
    let outputs = 1usize << in_bits;
    let mut c = Circuit::new(format!("dec{in_bits}to{outputs}"));
    let a = input_bus(&mut c, "a", in_bits);
    let y = output_bus(&mut c, "y", outputs);
    let ap = c.label("AP");
    let an = c.label("AN");
    let dp = c.label("DP");
    let dn = c.label("DN");
    let op = c.label("OP");
    let on = c.label("ON");

    // Complement rails.
    let abar: Vec<NetId> = (0..in_bits)
        .map(|i| {
            let net = c.add_net(format!("ab{i}")).unwrap();
            inverter(&mut c, format!("comp{i}"), a[i], net, ap, an, Skew::Balanced);
            net
        })
        .collect();

    for (k, &yk) in y.iter().enumerate() {
        let literals: Vec<NetId> = (0..in_bits)
            .map(|i| if (k >> i) & 1 == 1 { a[i] } else { abar[i] })
            .collect();
        let nb = c.add_net(format!("nb{k}")).unwrap();
        if in_bits == 1 {
            // Degenerate 1→2: buffer the single literal through two stages
            // to keep the same two-stage depth as wider decoders.
            inverter(&mut c, format!("word{k}"), literals[0], nb, dp, dn, Skew::Balanced);
        } else {
            nand(&mut c, format!("word{k}"), &literals, nb, dp, dn);
        }
        inverter(&mut c, format!("out{k}"), nb, yk, op, on, Skew::Balanced);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_shapes() {
        for bits in [2, 3, 4, 6, 7] {
            let c = decoder(bits);
            assert!(c.lint().is_empty(), "{bits}: {:?}", c.lint());
            assert_eq!(c.output_ports().count(), 1 << bits);
            // Label set independent of size.
            assert_eq!(c.labels().len(), 6);
        }
    }

    #[test]
    fn component_count_matches_structure() {
        let c = decoder(3);
        // 3 complement inverters + 8 NAND3 + 8 output inverters.
        assert_eq!(c.component_count(), 3 + 8 + 8);
    }

    #[test]
    #[should_panic(expected = "decoder supports")]
    fn oversized_decoder_rejected() {
        let _ = decoder(9);
    }
}
