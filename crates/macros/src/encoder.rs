//! Priority encoder macro: highest asserted input wins; binary index plus
//! a `valid` flag.

use smart_netlist::{Circuit, NetId, Skew};

use crate::helpers::{input_bus, inverter, or_tree, output_bus};

/// Generates a `2^out_bits`-to-`out_bits` priority encoder.
///
/// Ports: inputs `d0..d{m-1}` (m = `2^out_bits`), outputs `y0..` (binary
/// index of the highest asserted input) and `valid` (any input asserted).
///
/// Structure: a top-down OR chain computes "some higher input asserted";
/// each input is masked by it; masked one-hots are OR-reduced per output
/// bit. All chain/mask/reduce gates share per-function labels.
///
/// # Panics
///
/// Panics unless `1 <= out_bits <= 6`.
pub fn priority_encoder(out_bits: usize) -> Circuit {
    assert!(
        (1..=6).contains(&out_bits),
        "priority encoder supports 1..=6 output bits, got {out_bits}"
    );
    let m = 1usize << out_bits;
    let mut c = Circuit::new(format!("penc{m}to{out_bits}"));
    let d = input_bus(&mut c, "d", m);
    let y = output_bus(&mut c, "y", out_bits);
    let mp = c.label("MP");
    let mn = c.label("MN");
    let ip = c.label("IP");
    let inn = c.label("IN");

    // hbar[i] = !(d[i+1] | d[i+2] | ... ) built as a NOR chain from the top:
    // hbar[m-2] = !d[m-1]; hbar[i] = !(d[i+1] | !hbar[i+1]) — implemented
    // with NAND(hbar[i+1], !d[i+1]) ... simpler: carry the OR-so-far `h`
    // (true = some higher input set) via NOR+INV pairs.
    //
    // h[i] = d[i+1] OR h[i+1], h[m-1] = const 0 (omitted: top input is
    // never masked).
    let mut masked: Vec<NetId> = vec![d[0]; m];
    masked[m - 1] = d[m - 1];
    let mut h: Option<NetId> = None; // OR of inputs above the current one
    for i in (0..m - 1).rev() {
        let next_h = match h {
            None => d[i + 1],
            Some(prev) => {
                // h = d[i+1] OR prev, built as NOR + INV.
                let hp = c.label("HP");
                let hn = c.label("HN");
                let nb = c.add_net(format!("hn{i}")).unwrap();
                crate::helpers::nor(&mut c, format!("hnor{i}"), &[d[i + 1], prev], nb, hp, hn);
                let hh = c.add_net(format!("h{i}")).unwrap();
                inverter(&mut c, format!("hinv{i}"), nb, hh, ip, inn, Skew::Balanced);
                hh
            }
        };
        // masked[i] = d[i] AND !next_h = NOR(!d[i], next_h): need !d[i].
        let db = c.add_net(format!("db{i}")).unwrap();
        inverter(&mut c, format!("dinv{i}"), d[i], db, ip, inn, Skew::Balanced);
        let mi = c.add_net(format!("m{i}")).unwrap();
        crate::helpers::nor(&mut c, format!("mask{i}"), &[db, next_h], mi, mp, mn);
        masked[i] = mi;
        h = Some(next_h);
    }

    // Output bit j = OR of masked[i] for i with bit j set.
    for (j, &yj) in y.iter().enumerate() {
        let group: Vec<NetId> = (0..m)
            .filter(|i| (i >> j) & 1 == 1)
            .map(|i| masked[i])
            .collect();
        let or = or_tree(&mut c, &format!("ybit{j}"), &group, "RP", "RN");
        // Present through a buffer pair so output drivers share labels.
        let ob = c.add_net(format!("ob{j}")).unwrap();
        inverter(&mut c, format!("obufa{j}"), or, ob, ip, inn, Skew::Balanced);
        // Final inversion back to true polarity.
        let op = c.label("OP");
        let on = c.label("ON");
        inverter(&mut c, format!("obufb{j}"), ob, yj, op, on, Skew::Balanced);
    }

    // valid = OR of all inputs.
    let v = or_tree(&mut c, "valid", &d, "VP", "VN");
    let vb = c.add_net("vb").unwrap();
    inverter(&mut c, "vbufa", v, vb, ip, inn, Skew::Balanced);
    let valid = c.add_net("valid_out").unwrap();
    let op = c.label("OP");
    let on = c.label("ON");
    inverter(&mut c, "vbufb", vb, valid, op, on, Skew::Balanced);
    c.expose_output("valid", valid);
    c
}

/// A plain (non-priority) one-hot-to-binary encoder used where selects are
/// already guaranteed mutexed: output bit j = OR over the one-hot inputs
/// whose index has bit j set.
pub fn onehot_encoder(out_bits: usize) -> Circuit {
    assert!(
        (1..=6).contains(&out_bits),
        "encoder supports 1..=6 output bits, got {out_bits}"
    );
    let m = 1usize << out_bits;
    let mut c = Circuit::new(format!("enc{m}to{out_bits}"));
    let d = input_bus(&mut c, "d", m);
    let y = output_bus(&mut c, "y", out_bits);
    let ip = c.label("IP");
    let inn = c.label("IN");
    let op = c.label("OP");
    let on = c.label("ON");
    for (j, &yj) in y.iter().enumerate() {
        let group: Vec<NetId> = (0..m)
            .filter(|i| (i >> j) & 1 == 1)
            .map(|i| d[i])
            .collect();
        let or = or_tree(&mut c, &format!("ybit{j}"), &group, "RP", "RN");
        let ob = c.add_net(format!("ob{j}")).unwrap();
        inverter(&mut c, format!("obufa{j}"), or, ob, ip, inn, Skew::Balanced);
        inverter(&mut c, format!("obufb{j}"), ob, yj, op, on, Skew::Balanced);
    }
    // Tie the unused d[0] input into a dummy load so it is observable for
    // loading purposes (it does not affect any output bit).
    let dummy = c.add_net("d0_load").unwrap();
    inverter(&mut c, "d0_obs", d[0], dummy, ip, inn, Skew::Balanced);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoders_lint_clean() {
        for bits in [1, 2, 3, 4] {
            let c = priority_encoder(bits);
            assert!(c.lint().is_empty(), "penc {bits}: {:?}", c.lint());
            let c = onehot_encoder(bits);
            assert!(c.lint().is_empty(), "enc {bits}: {:?}", c.lint());
        }
    }

    #[test]
    fn port_shape() {
        let c = priority_encoder(3);
        assert_eq!(c.input_ports().count(), 8);
        // 3 index bits + valid.
        assert_eq!(c.output_ports().count(), 4);
    }

    #[test]
    fn nand_free_path_exists() {
        // Structure check: the encoder uses NOR-based masking.
        let c = priority_encoder(2);
        let has_nor = c
            .components()
            .any(|(_, comp)| matches!(comp.kind, smart_netlist::ComponentKind::Nor { .. }));
        assert!(has_nor);
    }
}
