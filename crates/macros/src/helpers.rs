//! Shared construction helpers for macro generators.

use smart_netlist::{Circuit, CompId, ComponentKind, DeviceRole, LabelId, NetId, Skew};

/// Adds an inverter with the given pull-up/pull-down labels.
///
/// # Panics
///
/// Panics on netlist construction errors — generators build from scratch,
/// so any failure is a generator bug, not a user error.
pub fn inverter(
    c: &mut Circuit,
    path: impl Into<String>,
    a: NetId,
    y: NetId,
    p: LabelId,
    n: LabelId,
    skew: Skew,
) -> CompId {
    c.add(
        path,
        ComponentKind::Inverter { skew },
        &[a, y],
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .expect("generator netlist must be valid")
}

/// Adds an n-input NAND.
///
/// # Panics
///
/// Panics on netlist construction errors (generator bug).
pub fn nand(
    c: &mut Circuit,
    path: impl Into<String>,
    ins: &[NetId],
    y: NetId,
    p: LabelId,
    n: LabelId,
) -> CompId {
    let mut conns = ins.to_vec();
    conns.push(y);
    c.add(
        path,
        ComponentKind::Nand {
            inputs: ins.len() as u8,
        },
        &conns,
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .expect("generator netlist must be valid")
}

/// Adds an n-input NOR.
///
/// # Panics
///
/// Panics on netlist construction errors (generator bug).
pub fn nor(
    c: &mut Circuit,
    path: impl Into<String>,
    ins: &[NetId],
    y: NetId,
    p: LabelId,
    n: LabelId,
) -> CompId {
    let mut conns = ins.to_vec();
    conns.push(y);
    c.add(
        path,
        ComponentKind::Nor {
            inputs: ins.len() as u8,
        },
        &conns,
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .expect("generator netlist must be valid")
}

/// Adds a 2-input XOR.
///
/// # Panics
///
/// Panics on netlist construction errors (generator bug).
pub fn xor2(
    c: &mut Circuit,
    path: impl Into<String>,
    a: NetId,
    b: NetId,
    y: NetId,
    p: LabelId,
    n: LabelId,
) -> CompId {
    c.add(
        path,
        ComponentKind::Xor2,
        &[a, b, y],
        &[(DeviceRole::PullUp, p), (DeviceRole::PullDown, n)],
    )
    .expect("generator netlist must be valid")
}

/// Adds a transmission gate (pass gate); all pass devices and the local
/// complement inverter share one label, matching the paper's `N2` labeling
/// of Fig. 2(a).
///
/// # Panics
///
/// Panics on netlist construction errors (generator bug).
pub fn pass_gate(
    c: &mut Circuit,
    path: impl Into<String>,
    d: NetId,
    s: NetId,
    y: NetId,
    label: LabelId,
) -> CompId {
    c.add(
        path,
        ComponentKind::PassGate,
        &[d, s, y],
        &[
            (DeviceRole::PassN, label),
            (DeviceRole::PassP, label),
            (DeviceRole::PassInv, label),
        ],
    )
    .expect("generator netlist must be valid")
}

/// Adds a tri-state driver; the local enable inverter shares the N label.
///
/// # Panics
///
/// Panics on netlist construction errors (generator bug).
pub fn tristate(
    c: &mut Circuit,
    path: impl Into<String>,
    d: NetId,
    en: NetId,
    y: NetId,
    p: LabelId,
    n: LabelId,
) -> CompId {
    c.add(
        path,
        ComponentKind::Tristate,
        &[d, en, y],
        &[
            (DeviceRole::TriP, p),
            (DeviceRole::TriN, n),
            (DeviceRole::TriInv, n),
        ],
    )
    .expect("generator netlist must be valid")
}

/// Adds a bus of input nets `"{prefix}{i}"` exposed as input ports.
pub fn input_bus(c: &mut Circuit, prefix: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| {
            let name = format!("{prefix}{i}");
            let net = c.add_net(&name).expect("bus net name collision");
            c.expose_input(name, net);
            net
        })
        .collect()
}

/// Adds a bus of output nets `"{prefix}{i}"` exposed as output ports.
pub fn output_bus(c: &mut Circuit, prefix: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| {
            let name = format!("{prefix}{i}");
            let net = c.add_net(&name).expect("bus net name collision");
            c.expose_output(name, net);
            net
        })
        .collect()
}

/// Builds `OR(signals)` as an alternating NOR/NAND tree (fan-in ≤ 4),
/// the canonical wide-OR structure of datapath zero-detects. A final
/// inverter fixes polarity when the tree ends on an inverted level.
///
/// Gate labels alternate `"{lp}{level}"`/`"{ln}{level}"` so each level
/// shares one label pair — the regularity the sizer exploits.
///
/// # Panics
///
/// Panics if `signals` is empty.
pub fn or_tree(
    c: &mut Circuit,
    prefix: &str,
    signals: &[NetId],
    lp: &str,
    ln: &str,
) -> NetId {
    assert!(!signals.is_empty(), "or_tree needs at least one signal");
    // `inverted == false` means the working signals carry OR-so-far;
    // `true` means they carry NOR-so-far.
    let mut level = 0usize;
    let mut inverted = false;
    let mut work: Vec<NetId> = signals.to_vec();
    while work.len() > 1 || level == 0 {
        let p = c.label(&format!("{lp}{level}"));
        let n = c.label(&format!("{ln}{level}"));
        let mut next = Vec::new();
        for (g, chunk) in work.chunks(4).enumerate() {
            let out = c
                .add_net(format!("{prefix}_l{level}g{g}"))
                .expect("tree net collision");
            if chunk.len() == 1 {
                // Parity-preserving buffer stage implemented as inverter.
                inverter(c, format!("{prefix}_i{level}g{g}"), chunk[0], out, p, n, Skew::Balanced);
            } else if inverted {
                // NAND of NOR-so-far signals = OR-so-far.
                nand(c, format!("{prefix}_a{level}g{g}"), chunk, out, p, n);
            } else {
                // NOR of OR-so-far signals = NOR-so-far.
                nor(c, format!("{prefix}_o{level}g{g}"), chunk, out, p, n);
            }
            next.push(out);
        }
        inverted = !inverted;
        work = next;
        level += 1;
        if work.len() == 1 && !inverted {
            break;
        }
        if work.len() == 1 && inverted {
            // One more inverter level fixes polarity.
            let p = c.label(&format!("{lp}{level}"));
            let n = c.label(&format!("{ln}{level}"));
            let out = c
                .add_net(format!("{prefix}_l{level}fix"))
                .expect("tree net collision");
            inverter(c, format!("{prefix}_fix{level}"), work[0], out, p, n, Skew::Balanced);
            work = vec![out];
            break;
        }
    }
    work[0]
}
