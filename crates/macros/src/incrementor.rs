//! Incrementor / decrementor macros (the circuits of the paper's
//! Fig. 5(a)).
//!
//! Classic ripple structures with fully shared per-function labels: all
//! sum XORs share one label pair, all carry/borrow gates another — the
//! bit-slice regularity a hand datapath layout would have, and exactly the
//! label sharing the sizer's path compaction feeds on (§5.2).

use smart_netlist::{Circuit, NetId, Skew};

use crate::helpers::{input_bus, inverter, nand, output_bus, xor2};

/// Generates an `width`-bit incrementor: `y = a + 1` (wrapping), with a
/// `cout` port for the carry out of the top bit.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn incrementor(width: usize) -> Circuit {
    assert!(width > 0, "incrementor width must be positive");
    let mut c = Circuit::new(format!("inc{width}"));
    let a = input_bus(&mut c, "a", width);
    let y = output_bus(&mut c, "y", width);
    let xp = c.label("XP");
    let xn = c.label("XN");
    let cp = c.label("CP");
    let cn = c.label("CN");
    let ip = c.label("IP");
    let inn = c.label("IN");

    // Bit 0: y0 = a0 XOR 1 = !a0; carry0 = a0.
    inverter(&mut c, "sum0", a[0], y[0], ip, inn, Skew::Balanced);
    let mut carry: NetId = a[0];
    for i in 1..width {
        // y_i = a_i XOR carry_{i-1}
        xor2(&mut c, format!("sum{i}"), a[i], carry, y[i], xp, xn);
        // carry_i = a_i AND carry_{i-1} (NAND + INV keeps static polarity).
        let cb = c.add_net(format!("cb{i}")).unwrap();
        nand(&mut c, format!("cnand{i}"), &[a[i], carry], cb, cp, cn);
        let cnet = c.add_net(format!("c{i}")).unwrap();
        inverter(&mut c, format!("cinv{i}"), cb, cnet, ip, inn, Skew::Balanced);
        carry = cnet;
    }
    let cout = c.add_net("cout").unwrap();
    inverter(&mut c, "cout_buf_a", carry, cout, ip, inn, Skew::Balanced);
    let cout_t = c.add_net("cout_t").unwrap();
    inverter(&mut c, "cout_buf_b", cout, cout_t, ip, inn, Skew::Balanced);
    c.expose_output("cout", cout_t);
    c
}

/// Generates an `width`-bit decrementor: `y = a - 1` (wrapping), with a
/// `bout` borrow-out port.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn decrementor(width: usize) -> Circuit {
    assert!(width > 0, "decrementor width must be positive");
    let mut c = Circuit::new(format!("dec{width}"));
    let a = input_bus(&mut c, "a", width);
    let y = output_bus(&mut c, "y", width);
    let xp = c.label("XP");
    let xn = c.label("XN");
    let bp = c.label("BP");
    let bn = c.label("BN");
    let ip = c.label("IP");
    let inn = c.label("IN");

    // Bit 0: y0 = !a0; borrow0 = !a0.
    inverter(&mut c, "sum0", a[0], y[0], ip, inn, Skew::Balanced);
    let ab0 = c.add_net("ab0").unwrap();
    inverter(&mut c, "comp0", a[0], ab0, ip, inn, Skew::Balanced);
    let mut borrow: NetId = ab0;
    for i in 1..width {
        // y_i = a_i XOR borrow_{i-1}
        xor2(&mut c, format!("sum{i}"), a[i], borrow, y[i], xp, xn);
        // borrow_i = !a_i AND borrow_{i-1}.
        let abi = c.add_net(format!("ab{i}")).unwrap();
        inverter(&mut c, format!("comp{i}"), a[i], abi, ip, inn, Skew::Balanced);
        let bb = c.add_net(format!("bb{i}")).unwrap();
        nand(&mut c, format!("bnand{i}"), &[abi, borrow], bb, bp, bn);
        let bnet = c.add_net(format!("b{i}")).unwrap();
        inverter(&mut c, format!("binv{i}"), bb, bnet, ip, inn, Skew::Balanced);
        borrow = bnet;
    }
    let bout = c.add_net("bout_b").unwrap();
    inverter(&mut c, "bout_buf_a", borrow, bout, ip, inn, Skew::Balanced);
    let bout_t = c.add_net("bout").unwrap();
    inverter(&mut c, "bout_buf_b", bout, bout_t, ip, inn, Skew::Balanced);
    c.expose_output("bout", bout_t);
    c
}

/// Generates a `width`-bit *carry-lookahead* incrementor: the carry into
/// bit `i` is `AND(a_0..a_{i-1})`, computed by a Kogge-Stone prefix-AND
/// tree of NAND/INV pairs with per-level shared labels.
///
/// Ports match [`incrementor`]: `a0..`, `y0..`, `cout`.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn incrementor_cla(width: usize) -> Circuit {
    assert!(width > 0, "incrementor width must be positive");
    let mut c = Circuit::new(format!("inc{width}_cla"));
    let a = input_bus(&mut c, "a", width);
    let y = output_bus(&mut c, "y", width);
    let ip = c.label("IP");
    let inn = c.label("IN");

    // Kogge-Stone prefix AND over a: after the tree, p[i] = AND(a_0..a_i).
    // Each combine is NAND + INV so the working rail stays true-polarity,
    // with one label pair per level.
    let mut p: Vec<NetId> = a.clone();
    let mut offset = 1usize;
    let mut level = 0usize;
    while offset < width {
        let lp = c.label(&format!("L{level}P"));
        let ln = c.label(&format!("L{level}N"));
        let mut next = p.clone();
        for i in offset..width {
            let nb = c.add_net(format!("ks{level}_nb{i}")).unwrap();
            nand(&mut c, format!("ks{level}_nand{i}"), &[p[i], p[i - offset]], nb, lp, ln);
            let out = c.add_net(format!("ks{level}_p{i}")).unwrap();
            inverter(&mut c, format!("ks{level}_inv{i}"), nb, out, ip, inn, Skew::Balanced);
            next[i] = out;
        }
        p = next;
        offset *= 2;
        level += 1;
    }

    // y_0 = !a_0; y_i = a_i XOR p[i-1]; cout = p[width-1].
    inverter(&mut c, "sum0", a[0], y[0], ip, inn, Skew::Balanced);
    for i in 1..width {
        // Label the sum XORs lazily: a 1-bit instance has none.
        let xp = c.label("XP");
        let xn = c.label("XN");
        xor2(&mut c, format!("sum{i}"), a[i], p[i - 1], y[i], xp, xn);
    }
    let cb = c.add_net("coutb").unwrap();
    inverter(&mut c, "cout_a", p[width - 1], cb, ip, inn, Skew::Balanced);
    let cout = c.add_net("cout").unwrap();
    inverter(&mut c, "cout_b", cb, cout, ip, inn, Skew::Balanced);
    c.expose_output("cout", cout);
    c
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_set_is_width_independent() {
        let c3 = incrementor(3);
        let c48 = incrementor(48);
        assert_eq!(c3.labels().len(), c48.labels().len());
        assert_eq!(c48.labels().len(), 6, "XP XN CP CN IP IN");
    }

    #[test]
    fn structure_scales_linearly() {
        let c8 = incrementor(8);
        let c16 = incrementor(16);
        assert!(c16.component_count() as f64 > 1.8 * c8.component_count() as f64);
        assert!(c8.lint().is_empty(), "{:?}", c8.lint());
        assert!(decrementor(8).lint().is_empty());
    }
}
