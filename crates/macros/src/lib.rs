//! The SMART design database: parameterized generators for every datapath
//! macro family the paper names (§2: "multiplexors, shifters, adders,
//! comparators, decoders, encoders, zero-detects, register files"), each
//! producing a labeled *unsized* [`smart_netlist::Circuit`] with the
//! paper's default labelings.
//!
//! * [`mux`] — the six topologies of Fig. 2 (pass-gate strongly/weakly
//!   mutexed, encoded-select, tri-state, un-split domino, partitioned
//!   domino).
//! * [`mod@incrementor`] — ripple incrementors/decrementors (Fig. 5(a)).
//! * [`mod@zero_detect`] — static trees and domino variants (Fig. 5(b)).
//! * [`mod@decoder`] — n-to-2ⁿ decoders (Fig. 5(c)).
//! * [`encoder`] — priority and one-hot encoders.
//! * [`mod@comparator`] — the 2-stage D1-D2 comparator and its Fig. 7
//!   exploration variants.
//! * [`adder`] — the 64-bit dynamic carry-lookahead adder of §6.2.
//! * [`regfile`] — register-file read path.
//! * [`shifter`] — pass-gate barrel shifters (§2's "shifters").
//! * [`Database`] / [`MacroSpec`] — the expandable registry plus the
//!   per-function topology alternatives the exploration flow compares.

// Generator internals build netlists whose structure is correct by
// construction, so builder errors are contract panics, not recoverable
// states. The exploration runtime contains them per-candidate with
// catch_unwind (FlowError::Internal), which is why the workspace-wide
// unwrap/expect deny lint is relaxed for this crate.
#![allow(clippy::unwrap_used, clippy::expect_used)]
//!
//! Every generator is functionally verified against its golden function by
//! the `smart-sim` test suite (`tests/functional.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod comparator;
mod database;
pub mod decoder;
pub mod encoder;
pub mod helpers;
pub mod incrementor;
pub mod mux;
pub mod regfile;
pub mod shifter;
pub mod zero_detect;

pub use adder::cla_adder;
pub use comparator::{comparator, ComparatorVariant};
pub use database::{representative_database, Database, MacroFamily, MacroSpec};
pub use decoder::decoder;
pub use encoder::{onehot_encoder, priority_encoder};
pub use incrementor::{decrementor, incrementor, incrementor_cla};
pub use mux::MuxTopology;
pub use regfile::regfile_read;
pub use shifter::{barrel_shifter, ShiftKind};
pub use zero_detect::{zero_detect, ZeroDetectStyle};
