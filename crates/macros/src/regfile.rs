//! Register-file read-path macro: address decoder + per-bit tri-state
//! word muxing — the composition showing database macros assembling into a
//! larger datapath macro (the paper's §2 lists register files among the
//! regular structures SMART targets).
//!
//! Storage cells are outside the scope of a sizing advisor; the stored
//! words enter as input buses `w{word}_{bit}` and the macro implements the
//! timing-critical read path: `addr → word line → bit line → output`.

use smart_netlist::{Circuit, NetId, Skew};

use crate::helpers::{input_bus, inverter, nand, output_bus, tristate};

/// Generates a read port over `words × bits` storage inputs.
///
/// Ports: address `a0..` (`log2(words)` bits), data inputs `w{i}_{j}`
/// (word `i`, bit `j`), outputs `q0..q{bits-1}`.
///
/// # Panics
///
/// Panics unless `words` is a power of two in `2..=64` and `bits >= 1`.
pub fn regfile_read(words: usize, bits: usize) -> Circuit {
    assert!(
        words.is_power_of_two() && (2..=64).contains(&words),
        "words must be a power of two in 2..=64, got {words}"
    );
    assert!(bits >= 1, "bits must be >= 1");
    let abits = words.trailing_zeros() as usize;
    let mut c = Circuit::new(format!("rf{words}x{bits}_read"));
    let a = input_bus(&mut c, "a", abits);
    let q = output_bus(&mut c, "q", bits);

    // Word-line decoder (same slice as the standalone decoder macro).
    let ap = c.label("AP");
    let an = c.label("AN");
    let dp = c.label("DP");
    let dn = c.label("DN");
    let wp = c.label("WP");
    let wn = c.label("WN");
    let abar: Vec<NetId> = (0..abits)
        .map(|i| {
            let net = c.add_net(format!("ab{i}")).unwrap();
            inverter(&mut c, format!("comp{i}"), a[i], net, ap, an, Skew::Balanced);
            net
        })
        .collect();
    let mut wordlines = Vec::with_capacity(words);
    #[allow(clippy::needless_range_loop)] // w doubles as the word address in names
    for w in 0..words {
        let literals: Vec<NetId> = (0..abits)
            .map(|i| if (w >> i) & 1 == 1 { a[i] } else { abar[i] })
            .collect();
        let nb = c.add_net(format!("wlb{w}")).unwrap();
        if abits == 1 {
            inverter(&mut c, format!("wl_nand{w}"), literals[0], nb, dp, dn, Skew::Balanced);
        } else {
            nand(&mut c, format!("wl_nand{w}"), &literals, nb, dp, dn);
        }
        let wl = c.add_net(format!("wl{w}")).unwrap();
        inverter(&mut c, format!("wl_drv{w}"), nb, wl, wp, wn, Skew::Balanced);
        wordlines.push(wl);
    }

    // Per-bit tri-state bit line (Fig. 2(d) structure, shared labels).
    let tp = c.label("TP");
    let tn = c.label("TN");
    let op = c.label("OP");
    let on = c.label("ON");
    #[allow(clippy::needless_range_loop)] // j/w are the bit/word addresses used in names
    for j in 0..bits {
        let bitline = c.add_net(format!("bl{j}")).unwrap();
        for w in 0..words {
            let cell = c.add_net(format!("w{w}_{j}")).unwrap();
            c.expose_input(format!("w{w}_{j}"), cell);
            tristate(
                &mut c,
                format!("rd_w{w}_b{j}"),
                cell,
                wordlines[w],
                bitline,
                tp,
                tn,
            );
        }
        // Tri-states invert; the output driver restores polarity.
        inverter(&mut c, format!("q_drv{j}"), bitline, q[j], op, on, Skew::Balanced);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_clean() {
        let c = regfile_read(8, 4);
        assert!(c.lint().is_empty(), "{:?}", c.lint());
    }

    #[test]
    fn port_counts() {
        let c = regfile_read(4, 2);
        // 2 address + 4*2 data inputs, 2 outputs.
        assert_eq!(c.input_ports().count(), 2 + 8);
        assert_eq!(c.output_ports().count(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = regfile_read(6, 2);
    }
}
