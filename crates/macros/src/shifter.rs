//! Barrel shifter macros — "shifters" are on the paper's §2 list of
//! regular datapath structures SMART targets.
//!
//! Structure: log₂(width) stages of 2:1 encoded-select pass muxes, stage
//! `k` shifting by `2^k` when its select bit is high — the classic
//! pass-gate barrel. Each stage's devices share one label set (`N2{k}`,
//! drivers `P1{k}/N1{k}`), giving the same per-stage regularity a hand
//! layout has.

use smart_netlist::{Circuit, NetId, Skew};

use crate::helpers::{input_bus, inverter, output_bus, pass_gate};

/// Shift behaviour of a [`barrel_shifter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Logical left shift; zeros enter at the bottom.
    LogicalLeft,
    /// Logical right shift; zeros enter at the top.
    LogicalRight,
    /// Rotate left (no fill needed — fully pass-gate).
    RotateLeft,
}

impl ShiftKind {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ShiftKind::LogicalLeft => "sll",
            ShiftKind::LogicalRight => "srl",
            ShiftKind::RotateLeft => "rol",
        }
    }
}

/// Generates a `width`-bit barrel shifter.
///
/// Ports: data `a0..`, shift amount `s0..s{log2(width)-1}`, plus a `zero`
/// input rail for logical fills (tie it low; keeping it a port avoids
/// constant generators in the IR); outputs `y0..`.
///
/// # Panics
///
/// Panics unless `width` is a power of two in `2..=64`.
pub fn barrel_shifter(width: usize, kind: ShiftKind) -> Circuit {
    assert!(
        width.is_power_of_two() && (2..=64).contains(&width),
        "barrel shifter supports power-of-two widths 2..=64, got {width}"
    );
    let stages = width.trailing_zeros() as usize;
    let mut c = Circuit::new(format!("shift{width}_{}", kind.name()));
    let a = input_bus(&mut c, "a", width);
    let s = input_bus(&mut c, "s", stages);
    // Fill rail for logical shifts (exposed so the instance can tie it).
    let zero = match kind {
        ShiftKind::RotateLeft => None,
        _ => Some(input_bus(&mut c, "zero", 1)[0]),
    };

    // Stage k: y = s[k] ? shifted(input, 2^k) : input.
    // Implemented as inverting driver per bit + two pass gates onto a
    // shared node per output bit; stage parity alternates polarity, fixed
    // at the output drivers.
    let mut rail: Vec<NetId> = a;
    let mut inverted = false;
    #[allow(clippy::needless_range_loop)] // k is the shift-stage number used in names
    for k in 0..stages {
        let shift = 1usize << k;
        let p1 = c.label(&format!("P1{k}"));
        let n1 = c.label(&format!("N1{k}"));
        let n2 = c.label(&format!("N2{k}"));
        let p4 = c.label(&format!("P4{k}"));
        let n4 = c.label(&format!("N4{k}"));
        // Select complement for the "no shift" leg.
        let sb = c.add_net(format!("sb{k}")).unwrap();
        inverter(&mut c, format!("selinv{k}"), s[k], sb, p4, n4, Skew::Balanced);

        // Invert the rail once per stage (drivers double as the mux's
        // input buffers).
        let driven: Vec<NetId> = rail
            .iter()
            .enumerate()
            .map(|(i, &net)| {
                let d = c.add_net(format!("st{k}_d{i}")).unwrap();
                inverter(&mut c, format!("st{k}_drv{i}"), net, d, p1, n1, Skew::Balanced);
                d
            })
            .collect();
        // Fill value in the *driven* rail's polarity: the drivers invert,
        // so a true-polarity input rail needs a complemented (high) fill
        // and vice versa.
        let fill = zero.map(|z| {
            if inverted {
                // Driven rail is true-polarity: logical 0 fill = z itself.
                z
            } else {
                // Driven rail is complemented: logical 0 fill = !z (high).
                let f = c.add_net(format!("st{k}_fill")).unwrap();
                inverter(&mut c, format!("st{k}_fillinv"), z, f, p1, n1, Skew::Balanced);
                f
            }
        });

        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let node = c.add_net(format!("st{k}_n{i}")).unwrap();
            // "No shift" leg.
            pass_gate(&mut c, format!("st{k}_pg0_{i}"), driven[i], sb, node, n2);
            // "Shift by 2^k" leg.
            let src: Option<usize> = match kind {
                ShiftKind::LogicalLeft => i.checked_sub(shift),
                ShiftKind::LogicalRight => {
                    let j = i + shift;
                    (j < width).then_some(j)
                }
                ShiftKind::RotateLeft => Some((i + width - shift) % width),
            };
            let from = match src {
                Some(j) => driven[j],
                None => fill.expect("logical shifts have a fill rail"),
            };
            pass_gate(&mut c, format!("st{k}_pg1_{i}"), from, s[k], node, n2);
            next.push(node);
        }
        rail = next;
        inverted = !inverted;
    }

    // Output drivers restore true polarity (stages invert once each).
    let y = output_bus(&mut c, "y", width);
    let op = c.label("OP");
    let on = c.label("ON");
    for i in 0..width {
        if inverted {
            inverter(&mut c, format!("out{i}"), rail[i], y[i], op, on, Skew::Balanced);
        } else {
            // Even stage count: buffer with two inverters to present a
            // driven, true-polarity output.
            let mid = c.add_net(format!("ob{i}")).unwrap();
            inverter(&mut c, format!("outa{i}"), rail[i], mid, op, on, Skew::Balanced);
            inverter(&mut c, format!("outb{i}"), mid, y[i], op, on, Skew::Balanced);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifter_lints_clean() {
        for kind in [ShiftKind::LogicalLeft, ShiftKind::LogicalRight, ShiftKind::RotateLeft] {
            for width in [4, 8, 16] {
                let c = barrel_shifter(width, kind);
                assert!(c.lint().is_empty(), "{} {width}: {:?}", kind.name(), c.lint());
            }
        }
    }

    #[test]
    fn per_stage_label_sets() {
        let c = barrel_shifter(16, ShiftKind::RotateLeft);
        // 4 stages × 5 labels + OP/ON.
        assert_eq!(c.labels().len(), 4 * 5 + 2);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = barrel_shifter(12, ShiftKind::RotateLeft);
    }
}
