//! Zero-detect macros (the circuits of the paper's Fig. 5(b)): `z = 1`
//! iff the whole input bus is zero.

use smart_netlist::{Circuit, ComponentKind, DeviceRole, NetKind, Network, Skew};

use crate::helpers::{input_bus, inverter, or_tree};

/// Implementation style for a zero-detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZeroDetectStyle {
    /// Static alternating NOR/NAND reduction tree.
    Static,
    /// Domino: D1 wide-OR gates (≤ 8 bits each) feeding a D2 combining
    /// stage — the fast variant used on critical zero-flags.
    Domino,
}

/// Generates an `width`-bit zero-detect in the given style. The output
/// port is `z` (active high when all inputs are 0); domino variants also
/// take a `clk` port.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn zero_detect(width: usize, style: ZeroDetectStyle) -> Circuit {
    assert!(width > 0, "zero-detect width must be positive");
    match style {
        ZeroDetectStyle::Static => zero_detect_static(width),
        ZeroDetectStyle::Domino => zero_detect_domino(width),
    }
}

fn zero_detect_static(width: usize) -> Circuit {
    let mut c = Circuit::new(format!("zd{width}_static"));
    let a = input_bus(&mut c, "a", width);
    let any = or_tree(&mut c, "or", &a, "TP", "TN");
    let z = c.add_net("z").unwrap();
    let zp = c.label("ZP");
    let zn = c.label("ZN");
    inverter(&mut c, "zinv", any, z, zp, zn, Skew::Balanced);
    c.expose_output("z", z);
    c
}

fn zero_detect_domino(width: usize) -> Circuit {
    let mut c = Circuit::new(format!("zd{width}_domino"));
    let clk = c.add_net_kind("clk", NetKind::Clock).unwrap();
    c.expose_input("clk", clk);
    let a = input_bus(&mut c, "a", width);
    let p1 = c.label("P1");
    let n1 = c.label("N1");
    let n2 = c.label("N2");
    let hp = c.label("HP");
    let hn = c.label("HN");

    // D1 level: wide domino ORs over groups of up to 8 bits.
    let mut group_nz = Vec::new();
    for (g, chunk) in a.chunks(8).enumerate() {
        let dyn_n = c
            .add_net_kind(format!("dyn1_{g}"), NetKind::Dynamic)
            .unwrap();
        let network = Network::parallel_of(0..chunk.len());
        let mut conns = vec![clk];
        conns.extend(chunk);
        conns.push(dyn_n);
        c.add(
            format!("d1_{g}"),
            ComponentKind::Domino {
                network,
                clocked_eval: true,
            },
            &conns,
            &[
                (DeviceRole::Precharge, p1),
                (DeviceRole::DataN, n1),
                (DeviceRole::Evaluate, n2),
            ],
        )
        .expect("generator netlist must be valid");
        let nz = c.add_net(format!("nz{g}")).unwrap();
        inverter(&mut c, format!("h1_{g}"), dyn_n, nz, hp, hn, Skew::High);
        group_nz.push(nz);
    }

    // D2 level: one unfooted domino OR over the group flags; its dynamic
    // node stays high exactly when every group is zero.
    let z = c.add_net("z").unwrap();
    if group_nz.len() == 1 {
        // Single group: z = !nz.
        let zp = c.label("ZP");
        let zn = c.label("ZN");
        inverter(&mut c, "zinv", group_nz[0], z, zp, zn, Skew::Balanced);
    } else {
        let p3 = c.label("P3");
        let n3 = c.label("N3");
        let dyn2 = c.add_net_kind("dyn2", NetKind::Dynamic).unwrap();
        let mut conns = vec![clk];
        conns.extend(&group_nz);
        conns.push(dyn2);
        c.add(
            "d2",
            ComponentKind::Domino {
                network: Network::parallel_of(0..group_nz.len()),
                clocked_eval: false,
            },
            &conns,
            &[(DeviceRole::Precharge, p3), (DeviceRole::DataN, n3)],
        )
        .expect("generator netlist must be valid");
        // dyn2 is already the zero flag (high = zero); buffer it with two
        // inverters to present a driven static output.
        let hp2 = c.label("HP2");
        let hn2 = c.label("HN2");
        let nzall = c.add_net("nz_all").unwrap();
        inverter(&mut c, "h2", dyn2, nzall, hp2, hn2, Skew::High);
        let zp = c.label("ZP");
        let zn = c.label("ZN");
        inverter(&mut c, "zinv", nzall, z, zp, zn, Skew::Balanced);
    }
    c.expose_output("z", z);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_variants_lint_clean() {
        for w in [1, 3, 6, 8, 16, 22, 63] {
            let c = zero_detect(w, ZeroDetectStyle::Static);
            assert!(c.lint().is_empty(), "width {w}: {:?}", c.lint());
        }
    }

    #[test]
    fn domino_variants_lint_clean() {
        for w in [6, 8, 16, 32, 63] {
            let c = zero_detect(w, ZeroDetectStyle::Domino);
            assert!(c.lint().is_empty(), "width {w}: {:?}", c.lint());
        }
    }

    #[test]
    fn domino_group_count() {
        let c = zero_detect(22, ZeroDetectStyle::Domino);
        let d1_count = c
            .components()
            .filter(|(_, comp)| matches!(comp.kind, ComponentKind::Domino { .. }))
            .count();
        assert_eq!(d1_count, 4, "three 8-bit D1 groups (8+8+6) plus one D2");
    }
}
